package ppclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"ppclust/internal/codec"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTokenCaptureAndErrors exercises the client plumbing against a stub
// daemon: minted tokens are captured once, bearer auth is attached, and
// non-2xx responses surface as typed APIErrors. The full protocol is
// covered end to end by cmd/ppclustd's federation tests.
func TestTokenCaptureAndErrors(t *testing.T) {
	var sawAuth string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("owner") != "alice" {
			t.Errorf("owner query = %q", r.URL.Query().Get("owner"))
		}
		switch r.URL.Path {
		case "/v1/federations":
			w.Header().Set("X-Ppclust-Token", "tok-1")
			w.WriteHeader(http.StatusCreated)
			w.Write([]byte(`{"id":"fabc","state":"open","coordinator":"alice"}`))
		case "/v1/federations/fabc":
			sawAuth = r.Header.Get("Authorization")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"federation: not found"}`))
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, "alice")
	fed, err := c.CreateFederation(context.Background(), FederationConfig{Name: "n", Columns: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if fed.ID != "fabc" || c.Token != "tok-1" {
		t.Fatalf("fed = %+v, token = %q", fed, c.Token)
	}

	_, err = c.Federation(context.Background(), "fabc")
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if sawAuth != "Bearer tok-1" {
		t.Fatalf("Authorization = %q", sawAuth)
	}
}

func TestPartyAssignments(t *testing.T) {
	r := &Result{
		Parties:     []ResultParty{{Owner: "a", Rows: 2, Offset: 0}, {Owner: "b", Rows: 3, Offset: 2}},
		Assignments: []int{0, 0, 1, 1, 2},
	}
	if got := r.PartyAssignments("b"); len(got) != 3 || got[0] != 1 || got[2] != 2 {
		t.Fatalf("b assignments = %v", got)
	}
	if got := r.PartyAssignments("nobody"); got != nil {
		t.Fatalf("unknown party = %v", got)
	}
}

// TestDatasetJobAndTunePlumbing drives the new dataset/job/tune client
// calls against a stub daemon: upload captures a minted token, SubmitTune
// sends a well-formed tune spec, and TuneResult polls to completion and
// decodes the frontier.
func TestDatasetJobAndTunePlumbing(t *testing.T) {
	ctx := context.Background()
	polls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method + " " + r.URL.Path {
		case "POST /v1/datasets":
			if r.URL.Query().Get("name") != "blobs" || r.URL.Query().Get("labels") != "last" {
				t.Errorf("upload query = %v", r.URL.Query())
			}
			w.Header().Set("X-Ppclust-Token", "tok-9")
			w.WriteHeader(http.StatusCreated)
			w.Write([]byte(`{"owner":"alice","name":"blobs","rows":2,"cols":2,"labeled":true}`))
		case "POST /v1/jobs":
			var spec map[string]any
			if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
				t.Error(err)
			}
			if spec["type"] != "tune" || spec["dataset"] != "blobs" || spec["min_sec"] != 0.3 {
				t.Errorf("tune spec = %v", spec)
			}
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"id":"j1","state":"queued"}`))
		case "GET /v1/jobs/j1":
			polls++
			state := "running"
			if polls >= 2 {
				state = "done"
			}
			fmt.Fprintf(w, `{"id":"j1","state":%q,"progress":0.5}`, state)
		case "GET /v1/jobs/j1/result":
			w.Write([]byte(`{"status":{"id":"j1","state":"done"},"result":{"evaluated":3,"frontier":[{"mechanism":"rbt","rho":0.3,"misclassification":0,"min_security":0.8}],"recommended":{"mechanism":"rbt","rho":0.3}}}`))
		default:
			t.Errorf("unexpected call %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, "alice")
	c.PollInterval = time.Millisecond
	meta, err := c.UploadDatasetCSV(ctx, "blobs", strings.NewReader("a,b\n1,0\n2,1\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Rows != 2 || !meta.Labeled || c.Token != "tok-9" {
		t.Fatalf("meta = %+v, token = %q", meta, c.Token)
	}
	st, err := c.SubmitTune(ctx, "blobs", TuneSpec{Algorithm: "kmeans", K: 3, MinSec: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var sawProgress bool
	res, err := c.TuneResult(ctx, st.ID, func(js *JobStatus) { sawProgress = true })
	if err != nil {
		t.Fatal(err)
	}
	if !sawProgress || res.Evaluated != 3 || len(res.Frontier) != 1 || res.Recommended == nil {
		t.Fatalf("tune result = %+v (progress seen: %v)", res, sawProgress)
	}
	if res.Frontier[0].Mechanism != "rbt" || res.Frontier[0].MinSecurity != 0.8 {
		t.Fatalf("frontier = %+v", res.Frontier)
	}
}

// TestWaitJobHonorsContext: a cancelled context aborts the poll loop with
// the context's error — the point of threading ctx through the SDK.
func TestWaitJobHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"id":"j1","state":"running"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, "alice")
	c.PollInterval = 5 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.WaitJob(ctx, "j1", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestAPIErrorEnvelope: the client decodes the daemon's shared error
// envelope {"error":{"code","message"}} into a typed APIError, and still
// understands the legacy flat string shape.
func TestAPIErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"not_found","message":"datastore: not found: alice/ghost"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, "alice")
	_, err := c.Dataset(context.Background(), "ghost")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want APIError, got %v", err)
	}
	if ae.Status != http.StatusNotFound || ae.Code != "not_found" || !strings.Contains(ae.Message, "alice/ghost") {
		t.Fatalf("APIError = %+v", ae)
	}
	if !IsCode(err, "not_found") || IsCode(err, "conflict") {
		t.Fatalf("IsCode misclassified %v", err)
	}
	if !strings.Contains(ae.Error(), "not_found") {
		t.Fatalf("Error() should carry the code: %q", ae.Error())
	}

	// Legacy flat shape still decodes (code stays empty).
	legacy := apiError(http.StatusConflict, []byte(`{"error":"old style"}`))
	if !errors.As(legacy, &ae) || ae.Code != "" || ae.Message != "old style" {
		t.Fatalf("legacy decode = %+v", ae)
	}
}

// TestRetryDrainCycle: a drain-time 503 on a write is retried with the
// body rewound, so a submission that lands mid-SIGTERM survives into the
// restarted daemon.
func TestRetryDrainCycle(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(raw))
		n := len(bodies)
		mu.Unlock()
		if n <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"draining","message":"jobs: manager is draining"}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j1","state":"queued"}`))
	}))
	defer ts.Close()
	c := New(ts.URL, "alice")
	c.RetryBackoff = time.Millisecond
	st, err := c.SubmitJob(context.Background(), map[string]any{"type": "cluster", "dataset": "d", "k": 2})
	if err != nil {
		t.Fatalf("submit through drain: %v", err)
	}
	if st.ID != "j1" {
		t.Fatalf("status = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 3 {
		t.Fatalf("attempts = %d, want 3", len(bodies))
	}
	if bodies[0] == "" || bodies[0] != bodies[1] || bodies[1] != bodies[2] {
		t.Fatalf("body not rewound across retries: %q", bodies)
	}
}

// TestRetryGivesUpAndHonorsContext: retries are capped, and a cancelled
// context aborts the backoff wait immediately.
func TestRetryGivesUpAndHonorsContext(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"draining","message":"draining"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, "alice")
	c.Retries = 2
	c.RetryBackoff = time.Millisecond
	_, err := c.Datasets(context.Background())
	if !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("want final 503, got %v", err)
	}
	mu.Lock()
	if calls != 3 { // 1 try + 2 retries
		t.Fatalf("calls = %d, want 3", calls)
	}
	mu.Unlock()

	// A cancelled context stops the backoff without burning the budget.
	c2 := New(ts.URL, "alice")
	c2.RetryBackoff = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	if _, err := c2.Datasets(ctx); err == nil {
		t.Fatal("expected an error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff ignored context cancellation")
	}
}

// TestNoRetryUnrewindableBody: a streaming upload whose body cannot be
// replayed is not retried — the first 503 surfaces.
func TestNoRetryUnrewindableBody(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		mu.Lock()
		calls++
		mu.Unlock()
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"draining","message":"draining"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, "alice")
	c.RetryBackoff = time.Millisecond
	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte("a,b\n1,2\n"))
		pw.Close()
	}()
	_, err := c.UploadDatasetCSV(context.Background(), "d", pr, false)
	if !IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("want 503, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of a consumed stream)", calls)
	}
}

// TestWireNegotiationBinary checks that the structured-row calls speak
// the framed binary format by default: uploads carry the binary
// Content-Type with a decodable framed body, and DownloadDatasetRows
// decodes a framed response.
func TestWireNegotiationBinary(t *testing.T) {
	ctx := context.Background()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method + " " + r.URL.Path {
		case "POST /v1/datasets":
			if r.URL.Query().Get("format") != "binary" || r.Header.Get("Content-Type") != codec.ContentType {
				t.Errorf("upload format=%q content-type=%q", r.URL.Query().Get("format"), r.Header.Get("Content-Type"))
			}
			rd := codec.NewReader(r.Body)
			rows := 0
			for {
				if _, err := rd.Read(); err != nil {
					if !errors.Is(err, io.EOF) {
						t.Errorf("decoding upload: %v", err)
					}
					break
				}
				rows++
			}
			if names := rd.Names(); len(names) != 2 || names[0] != "a" || rows != 3 {
				t.Errorf("decoded names=%v rows=%d", rd.Names(), rows)
			}
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintf(w, `{"owner":"alice","name":"d","rows":%d,"cols":2}`, rows)
		case "GET /v1/datasets/d/rows":
			if r.URL.Query().Get("format") != "binary" {
				t.Errorf("download format = %q", r.URL.Query().Get("format"))
			}
			w.Header().Set("Content-Type", codec.ContentType)
			cw := codec.NewWriter(w)
			cw.WriteHeader([]string{"a", "b"}, false)
			cw.WriteRow([]float64{1.5, -2})
			cw.WriteRow([]float64{3, 4})
			if err := cw.Close(); err != nil {
				t.Error(err)
			}
		default:
			t.Errorf("unexpected call %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, "alice")
	meta, err := c.UploadDataset(ctx, "d", []string{"a", "b"}, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Rows != 3 {
		t.Fatalf("meta = %+v", meta)
	}
	names, rows, err := c.DownloadDatasetRows(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || len(rows) != 2 || rows[0][0] != 1.5 || rows[1][1] != 4 {
		t.Fatalf("names=%v rows=%v", names, rows)
	}
}

// TestWireNegotiationFallback drives the client against a daemon that
// predates the binary format: the first binary attempt gets the crisp
// unknown-format 400, the client retries as CSV transparently, and — the
// sticky part — the next call goes straight to CSV without re-probing.
func TestWireNegotiationFallback(t *testing.T) {
	ctx := context.Background()
	binaryProbes, csvUploads := 0, 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/datasets" {
			t.Errorf("unexpected call %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "binary" {
			binaryProbes++
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":{"code":"invalid","message":"unknown format \"binary\" (want csv or ndjson)"}}`))
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "text/csv" {
			t.Errorf("fallback content-type = %q", ct)
		}
		body, _ := io.ReadAll(r.Body)
		if !strings.HasPrefix(string(body), "a,b\n") {
			t.Errorf("fallback body = %q", body)
		}
		csvUploads++
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"owner":"alice","name":"d","rows":1,"cols":2}`))
	}))
	defer ts.Close()

	c := New(ts.URL, "alice")
	for i := 0; i < 2; i++ {
		if _, err := c.UploadDataset(ctx, "d", []string{"a", "b"}, [][]float64{{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if binaryProbes != 1 || csvUploads != 2 {
		t.Fatalf("binary probes = %d (want 1), csv uploads = %d (want 2)", binaryProbes, csvUploads)
	}

	// Wire=csv skips the probe entirely.
	c2 := New(ts.URL, "alice")
	c2.Wire = WireCSV
	if _, err := c2.UploadDataset(ctx, "d", []string{"a", "b"}, [][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if binaryProbes != 1 {
		t.Fatalf("Wire=csv still probed binary (%d probes)", binaryProbes)
	}
}
