package ppclient

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestTokenCaptureAndErrors exercises the client plumbing against a stub
// daemon: minted tokens are captured once, bearer auth is attached, and
// non-2xx responses surface as typed APIErrors. The full protocol is
// covered end to end by cmd/ppclustd's federation tests.
func TestTokenCaptureAndErrors(t *testing.T) {
	var sawAuth string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("owner") != "alice" {
			t.Errorf("owner query = %q", r.URL.Query().Get("owner"))
		}
		switch r.URL.Path {
		case "/v1/federations":
			w.Header().Set("X-Ppclust-Token", "tok-1")
			w.WriteHeader(http.StatusCreated)
			w.Write([]byte(`{"id":"fabc","state":"open","coordinator":"alice"}`))
		case "/v1/federations/fabc":
			sawAuth = r.Header.Get("Authorization")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"federation: not found"}`))
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, "alice")
	fed, err := c.CreateFederation(FederationConfig{Name: "n", Columns: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if fed.ID != "fabc" || c.Token != "tok-1" {
		t.Fatalf("fed = %+v, token = %q", fed, c.Token)
	}

	_, err = c.Federation("fabc")
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if sawAuth != "Bearer tok-1" {
		t.Fatalf("Authorization = %q", sawAuth)
	}
}

func TestPartyAssignments(t *testing.T) {
	r := &Result{
		Parties:     []ResultParty{{Owner: "a", Rows: 2, Offset: 0}, {Owner: "b", Rows: 3, Offset: 2}},
		Assignments: []int{0, 0, 1, 1, 2},
	}
	if got := r.PartyAssignments("b"); len(got) != 3 || got[0] != 1 || got[2] != 2 {
		t.Fatalf("b assignments = %v", got)
	}
	if got := r.PartyAssignments("nobody"); got != nil {
		t.Fatalf("unknown party = %v", got)
	}
}
