package ppclient

// pppulse client surface: sampled metrics history, live alerts and
// captured incident bundles. Like the rest of the observability plane
// these endpoints are ownerless and unauthenticated on the daemon, and
// the history and alert listings can answer for the whole ring with
// Scope "cluster".

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HistoryPoint is one sample of a history series: wall-clock
// milliseconds and the value.
type HistoryPoint struct {
	TMs int64   `json:"t_ms"`
	V   float64 `json:"v"`
}

// HistorySeries is one sampled series, points oldest first. Counter
// series carry a ":rate" base suffix (per-second), histogram series a
// "_p50"/"_p95"/"_p99" per-step percentile suffix; gauges keep their
// registry names.
type HistorySeries struct {
	Name   string         `json:"name"`
	Points []HistoryPoint `json:"points"`
}

// MetricsHistory is GET /v1/metrics/history: the sampler's retained
// series. In cluster scope, series names carry a node label and Nodes
// lists every node that answered; PeerErrors names the ones that did
// not.
type MetricsHistory struct {
	IntervalMs int64             `json:"interval_ms"`
	Nodes      []string          `json:"nodes,omitempty"`
	PeerErrors map[string]string `json:"peer_errors,omitempty"`
	Truncated  bool              `json:"truncated,omitempty"`
	Series     []HistorySeries   `json:"series"`
}

// HistoryFilter narrows a MetricsHistory call; the zero value returns
// every retained series from the answering node.
type HistoryFilter struct {
	// Series keeps series whose name contains any of these substrings
	// (case-insensitive).
	Series []string
	// Since drops points older than this look-back window.
	Since time.Duration
	// Step downsamples to one point per step, folded by Agg.
	Step time.Duration
	// Agg is the downsample fold: "avg" (default), "max", "min" or "last".
	Agg string
	// MaxSeries caps the matched series count (0: server default).
	MaxSeries int
	// Cluster asks for every ring node's history (node-labelled) instead
	// of just the answering node's.
	Cluster bool
}

// MetricsHistory fetches sampled metrics history. A partial cluster
// answer (some peers down) is a success with PeerErrors set.
func (c *Client) MetricsHistory(ctx context.Context, f HistoryFilter) (*MetricsHistory, error) {
	q := url.Values{}
	for _, s := range f.Series {
		q.Add("series", s)
	}
	if f.Since > 0 {
		q.Set("since", f.Since.String())
	}
	if f.Step > 0 {
		q.Set("step", f.Step.String())
	}
	if f.Agg != "" {
		q.Set("agg", f.Agg)
	}
	if f.MaxSeries > 0 {
		q.Set("max_series", strconv.Itoa(f.MaxSeries))
	}
	if f.Cluster {
		q.Set("scope", "cluster")
	}
	path := "/v1/metrics/history"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out MetricsHistory
	if err := c.doJSON(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Alert is one rule instance's live state: "pending" (condition holding
// but not yet past its 'for' duration), "firing", or "resolved".
type Alert struct {
	Rule       string    `json:"rule"`
	Kind       string    `json:"kind"`
	Series     string    `json:"series,omitempty"`
	Node       string    `json:"node,omitempty"`
	State      string    `json:"state"`
	Value      float64   `json:"value"`
	Threshold  float64   `json:"threshold"`
	Since      time.Time `json:"since"`
	FiredAt    time.Time `json:"fired_at,omitzero"`
	ResolvedAt time.Time `json:"resolved_at,omitzero"`
}

// AlertList is GET /v1/alerts: firing first, then pending, then
// recently resolved. Enabled is false when the answering node has no
// alert rules and no SLOs configured.
type AlertList struct {
	Enabled    bool              `json:"enabled"`
	Nodes      []string          `json:"nodes,omitempty"`
	PeerErrors map[string]string `json:"peer_errors,omitempty"`
	Alerts     []Alert           `json:"alerts"`
}

// Alerts fetches live alert instances from the answering node, or from
// every ring node when cluster is true (each alert carries the node
// that evaluated it).
func (c *Client) Alerts(ctx context.Context, cluster bool) (*AlertList, error) {
	path := "/v1/alerts"
	if cluster {
		path += "?scope=cluster"
	}
	var out AlertList
	if err := c.doJSON(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Incident is one captured incident bundle's manifest: the alert that
// fired it, the evidence files captured, and the trace IDs of the worst
// requests in the breach window (each resolvable via Trace).
type Incident struct {
	ID        string    `json:"id"`
	Rule      string    `json:"rule"`
	Kind      string    `json:"kind,omitempty"`
	Series    string    `json:"series,omitempty"`
	Node      string    `json:"node,omitempty"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	At        time.Time `json:"at"`
	TraceIDs  []string  `json:"trace_ids,omitempty"`
	Files     []string  `json:"files"`
	Notes     []string  `json:"notes,omitempty"`
}

// Incidents lists the answering node's captured incident bundles,
// newest first. Enabled is false when the daemon runs without an
// incident directory.
func (c *Client) Incidents(ctx context.Context) (bool, []Incident, error) {
	var out struct {
		Enabled   bool       `json:"enabled"`
		Incidents []Incident `json:"incidents"`
	}
	if err := c.doJSON(ctx, http.MethodGet, "/v1/incidents", nil, &out); err != nil {
		return false, nil, err
	}
	return out.Enabled, out.Incidents, nil
}

// Incident fetches one bundle's manifest by ID.
func (c *Client) Incident(ctx context.Context, id string) (*Incident, error) {
	var out Incident
	if err := c.doJSON(ctx, http.MethodGet, "/v1/incidents/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IncidentFile downloads one bundle file (goroutines.txt, cpu.pprof,
// traces.json, ...) raw.
func (c *Client) IncidentFile(ctx context.Context, id, name string) ([]byte, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		"/v1/incidents/"+url.PathEscape(id)+"/files/"+url.PathEscape(name), nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}
