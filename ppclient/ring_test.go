package ppclient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestRetryConnRefusedWrite: connection-refused to a dead peer is
// retried for a *write* with a rewindable body — the forwarded-request
// case. A ring node forwarding to a peer that just died gets ECONNREFUSED;
// the peer never saw the request, so the resend (here: to the same
// address after the "node" comes back) must happen instead of surfacing
// the dial error.
func TestRetryConnRefusedWrite(t *testing.T) {
	// Reserve an address, then close the listener: dials now get refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var mu sync.Mutex
	var bodies []string
	started := make(chan struct{})
	go func() {
		// "Restart the node" on the same address after a moment.
		time.Sleep(30 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		close(started)
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			raw, _ := io.ReadAll(r.Body)
			mu.Lock()
			bodies = append(bodies, string(raw))
			mu.Unlock()
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"id":"j1","state":"queued"}`))
		})}
		go srv.Serve(ln2)
	}()

	c := New("http://"+addr, "alice")
	c.Token = "tok"
	c.Retries = 8
	c.RetryBackoff = 20 * time.Millisecond
	st, err := c.SubmitJob(context.Background(), map[string]any{"type": "cluster", "dataset": "d", "k": 2})
	if err != nil {
		t.Fatalf("submit across refused connections: %v", err)
	}
	if st.ID != "j1" {
		t.Fatalf("status = %+v", st)
	}
	<-started
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 1 || bodies[0] == "" {
		t.Fatalf("server saw %d requests (%q); want exactly the one replayed body", len(bodies), bodies)
	}
}

// TestNoRetryConnRefusedUnrewindable: refused + a consumed stream body
// must surface, not silently truncate a resend.
func TestNoRetryConnRefusedUnrewindable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := New("http://"+addr, "alice")
	c.Retries = 3
	c.RetryBackoff = time.Millisecond
	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte("a,b\n1,2\n"))
		pw.Close()
	}()
	start := time.Now()
	_, err = c.UploadDatasetCSV(context.Background(), "d", pr, false)
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("want ECONNREFUSED, got %v", err)
	}
	// No backoff rounds should have happened for an unrewindable body.
	if time.Since(start) > 2*time.Second {
		t.Fatal("unrewindable refused write appears to have been retried")
	}
}

// TestConnRefusedDetection: the classifier that gates write retries.
func TestConnRefusedDetection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, derr := http.Get("http://" + addr)
	if !connRefused(derr) {
		t.Fatalf("dial to closed port not classified as refused: %v", derr)
	}
	if connRefused(nil) || connRefused(errors.New("boom")) {
		t.Fatal("false positives")
	}
	if connRefused(fmt.Errorf("wrapped: %w", context.DeadlineExceeded)) {
		t.Fatal("timeout misclassified as refused")
	}
}

// TestDoRawPassesStatusesThrough: DoRaw returns non-retryable non-2xx
// responses as responses — headers, status and body intact — which is
// what lets the ring proxy relay an owner's 404 or 409 verbatim.
func TestDoRawPassesStatusesThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":{"code":"conflict","message":"taken"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, "alice")
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets/d", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.DoRaw(req)
	if err != nil {
		t.Fatalf("DoRaw errored on a 409: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("X-Custom") != "yes" {
		t.Fatalf("status=%d headers=%v", resp.StatusCode, resp.Header)
	}
	raw, _ := io.ReadAll(resp.Body)
	if string(raw) != `{"error":{"code":"conflict","message":"taken"}}` {
		t.Fatalf("body = %q", raw)
	}
}

// TestUseRingRoutsToOwnerNode: after UseRing, owner-keyed calls go to
// the owner's home node, not the bootstrap node.
func TestUseRingRoutesToOwnerNode(t *testing.T) {
	var mu sync.Mutex
	hits := map[string]int{}
	mk := func(name string, status *RingStatus) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[name]++
			mu.Unlock()
			if r.URL.Path == "/v1/ring" {
				json := fmt.Sprintf(`{"enabled":true,"self":%q,"epoch":1,"vnodes":16,"replicas":1,"nodes":[{"id":"a","addr":%q},{"id":"b","addr":%q}]}`,
					name, status.Nodes[0].Addr, status.Nodes[1].Addr)
				w.Write([]byte(json))
				return
			}
			w.Write([]byte(`[]`))
		}))
	}
	// Two servers; fill addresses in after both exist.
	st := &RingStatus{Nodes: []RingNode{{ID: "a"}, {ID: "b"}}}
	sa := mk("a", st)
	defer sa.Close()
	sb := mk("b", st)
	defer sb.Close()
	st.Nodes[0].Addr = sa.URL
	st.Nodes[1].Addr = sb.URL

	c := New(sa.URL, "some-owner")
	c.Token = "tok"
	if err := c.UseRing(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Datasets(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The datasets call must have gone to whichever node owns
	// "owner:some-owner" under the same hash the daemons use.
	want := "a"
	if n, ok := c.ringTable.ring.Owner("owner:some-owner"); ok && n.ID == "b" {
		want = "b"
	}
	mu.Lock()
	defer mu.Unlock()
	other := map[string]string{"a": "b", "b": "a"}[want]
	if hits[want] < 1 {
		t.Fatalf("owner node %q never hit: %v", want, hits)
	}
	// The other node saw only the bootstrap RingStatus call (if that).
	if other == "a" && hits["a"] > 1 {
		t.Fatalf("non-owner bootstrap node hit beyond /v1/ring: %v", hits)
	}
	if other == "b" && hits["b"] > 0 {
		t.Fatalf("non-owner node hit: %v", hits)
	}
}
