package ppclient

// Ring awareness: any ppclustd node proxies any request to the right
// owner, so a client never *needs* to know the ring exists. Knowing it
// saves a network hop per call: UseRing fetches the membership once and
// routes owner-scoped requests straight to the owner's home node with
// the same consistent-hash placement the daemons use.

import (
	"context"
	"net/http"
	"strings"
	"sync"

	"ppclust/internal/ring"
)

// RingNode is one member of a ppclustd ring.
type RingNode struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// RingStatus mirrors GET /v1/ring: the node's view of the membership.
type RingStatus struct {
	// Enabled is false on a daemon running single-node; the rest of the
	// fields are then zero.
	Enabled bool `json:"enabled"`
	// Self is the answering node's ID.
	Self string `json:"self"`
	// Epoch is the membership version; higher supersedes lower.
	Epoch int64 `json:"epoch"`
	// Vnodes is the virtual-node count placement hashing uses. Clients
	// must hash with the same value to agree with the daemons.
	Vnodes int `json:"vnodes"`
	// Replicas is how many successor nodes mirror each owner.
	Replicas int `json:"replicas"`
	// Nodes is the full member list.
	Nodes []RingNode `json:"nodes"`
}

// RingStatus fetches the answering node's view of the ring. A daemon
// running single-node reports Enabled=false.
func (c *Client) RingStatus(ctx context.Context) (*RingStatus, error) {
	var out RingStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/ring", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ringState is the client-side placement table built by UseRing.
type ringState struct {
	mu    sync.RWMutex
	ring  *ring.Ring
	nodes map[string]string // id → addr
}

// UseRing fetches the ring membership from BaseURL and routes subsequent
// owner-scoped requests directly to the owner's home node instead of
// letting an arbitrary node forward them. A no-op (returning nil) when
// the daemon is not in ring mode. Call it again to refresh after
// membership changes; stale placement is harmless — the receiving node
// forwards — just one hop slower.
func (c *Client) UseRing(ctx context.Context) error {
	st, err := c.RingStatus(ctx)
	if err != nil {
		return err
	}
	if !st.Enabled || len(st.Nodes) == 0 {
		return nil
	}
	r := ring.New(st.Vnodes)
	members := make([]ring.Node, len(st.Nodes))
	nodes := make(map[string]string, len(st.Nodes))
	for i, n := range st.Nodes {
		members[i] = ring.Node{ID: n.ID, Addr: n.Addr}
		nodes[n.ID] = n.Addr
	}
	r.Seed(st.Epoch, members)
	c.ringMu.Lock()
	c.ringTable = &ringState{ring: r, nodes: nodes}
	c.ringMu.Unlock()
	return nil
}

// routeBase picks the base URL for a request path: the owner's home
// node when a ring table is loaded, BaseURL otherwise. Federation
// routes are left on BaseURL — their placement key is the federation
// ID, which the serving node resolves (and forwards) itself.
func (c *Client) routeBase(path string) string {
	c.ringMu.RLock()
	table := c.ringTable
	c.ringMu.RUnlock()
	if table == nil || strings.HasPrefix(path, "/v1/federations") || strings.HasPrefix(path, "/v1/ring") {
		return c.BaseURL
	}
	n, ok := table.ring.Owner(ring.OwnerKey(c.Owner))
	if !ok || n.Addr == "" {
		return c.BaseURL
	}
	return strings.TrimRight(n.Addr, "/")
}
