// Package ppclient is the Go client SDK for ppclustd: first-class
// datasets (upload, list, download, delete), async jobs (submit, poll,
// cancel, fetch results — including the tune sweep's Pareto frontier),
// and the federation workload (create, join, contribute, seal, joint
// result).
//
// One Client speaks for one owner. Every call takes a context.Context, so
// uploads, submissions and polls are cancellable end to end. The bearer
// token minted when the owner is first claimed (by the first dataset
// upload, CreateFederation or JoinFederation for an owner the daemon has
// never seen) is captured into Token automatically; persist it — the
// daemon only ever reveals it once.
package ppclient

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ppclust/internal/codec"
)

// Wire format values for Client.Wire.
const (
	// WireBinary is the framed binary row-batch format
	// (application/x-ppclust-rows) — the default.
	WireBinary = codec.FormatName
	// WireCSV forces text CSV for structured-row calls.
	WireCSV = "csv"
)

// TraceHeader is the request-ID header the daemon adopts and reflects:
// set it (or use WithTraceID) to pin the server-side trace ID a request
// runs under, so client-side reports can quote server traces.
const TraceHeader = "X-Ppclust-Trace"

// traceKeyT keys a pinned outgoing trace ID on a context. Kept private
// and package-local so ppclient stays dependency-free of the daemon's
// internals.
type traceKeyT struct{}

// WithTraceID returns a context that pins id as the X-Ppclust-Trace
// header of every request built from it.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKeyT{}, id)
}

// Client talks to one ppclustd instance on behalf of one owner.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// Owner is the keyring owner name this client authenticates as.
	Owner string
	// Token is the owner's bearer token. Left empty for a new owner, it
	// is filled in from the first response that mints one.
	Token string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// PollInterval is the result-polling cadence (default 50ms).
	PollInterval time.Duration
	// Retries caps the automatic retries of idempotent GETs (transport
	// errors, 502/503/504) and of drain-time 503s on rewindable writes —
	// what lets a client ride out a SIGTERM drain/restart cycle.
	// 0 means the default of 4; negative disables retrying.
	Retries int
	// RetryBackoff is the first retry delay (default 50ms). It doubles
	// per attempt up to RetryMaxBackoff (default 2s), with ±50% jitter;
	// the request context cancels the wait.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// Wire selects the row wire format for the structured-row calls
	// (UploadDataset, Contribute, DownloadDatasetRows). Empty or
	// WireBinary sends the framed binary row-batch format; against a
	// daemon that predates it (400 unknown-format) the client falls
	// back to CSV once and remembers, so negotiation is transparent.
	// WireCSV forces CSV from the first request.
	Wire string

	// wireCSV remembers a failed binary negotiation so later calls skip
	// straight to CSV without re-probing.
	wireCSV atomic.Bool

	// ringTable, when loaded by UseRing, routes owner-scoped requests
	// straight to the owner's home node.
	ringMu    sync.RWMutex
	ringTable *ringState
}

// New returns a client for owner against baseURL.
func New(baseURL, owner string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), Owner: owner}
}

// APIError is a non-2xx daemon response, decoded from the shared error
// envelope {"error": {"code", "message"}}.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the service error code ("not_found", "conflict",
	// "forbidden", "unauthenticated", "invalid", "draining", "internal");
	// empty when the server predates the envelope.
	Code string
	// Message is the human-readable error.
	Message string
	// TraceID is the server-side trace ID of the failed request (from the
	// X-Ppclust-Trace response header) — quote it when reporting.
	TraceID string
}

func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("ppclustd: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("ppclustd: %d: %s", e.Status, e.Message)
}

// IsCode reports whether err is an APIError carrying the given service
// error code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// IsStatus reports whether err is an APIError with the given HTTP status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// Party mirrors the daemon's federation member record.
type Party struct {
	Owner    string    `json:"owner"`
	JoinedAt time.Time `json:"joined_at"`
	Dataset  string    `json:"dataset,omitempty"`
	Rows     int       `json:"rows,omitempty"`
}

// Federation mirrors the daemon's secret-free federation view.
type Federation struct {
	ID            string    `json:"id"`
	Name          string    `json:"name"`
	Coordinator   string    `json:"coordinator"`
	State         string    `json:"state"`
	Columns       []string  `json:"columns"`
	Norm          string    `json:"norm,omitempty"`
	Rho1          float64   `json:"rho1,omitempty"`
	Rho2          float64   `json:"rho2,omitempty"`
	Parties       []Party   `json:"parties"`
	Contributions int       `json:"contributions"`
	RowsTotal     int       `json:"rows_total"`
	JobID         string    `json:"job_id,omitempty"`
	CreatedAt     time.Time `json:"created_at"`
}

// FederationConfig is the creation spec: the agreed schema and transform
// parameters of the shared key fit.
type FederationConfig struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Norm    string   `json:"norm,omitempty"`
	Rho1    float64  `json:"rho1,omitempty"`
	Rho2    float64  `json:"rho2,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
}

// Analysis selects the joint clustering a seal schedules.
type Analysis struct {
	Algorithm string  `json:"algorithm,omitempty"`
	K         int     `json:"k,omitempty"`
	Linkage   string  `json:"linkage,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	MinPts    int     `json:"min_pts,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`
	ClustSeed int64   `json:"cluster_seed,omitempty"`
}

// ResultParty locates one party's rows inside the joint assignments.
type ResultParty struct {
	Owner  string `json:"owner"`
	Rows   int    `json:"rows"`
	Offset int    `json:"offset"`
}

// Result is the joint clustering outcome.
type Result struct {
	Federation  string        `json:"federation"`
	Algorithm   string        `json:"algorithm"`
	K           int           `json:"k"`
	Parties     []ResultParty `json:"parties"`
	Assignments []int         `json:"assignments"`
	Inertia     float64       `json:"inertia,omitempty"`
	Converged   bool          `json:"converged"`
	Silhouette  *float64      `json:"silhouette,omitempty"`
}

// PartyAssignments returns the slice of the joint assignments that belongs
// to owner's rows, in contribution order.
func (r *Result) PartyAssignments(owner string) []int {
	for _, p := range r.Parties {
		if p.Owner == owner {
			return r.Assignments[p.Offset : p.Offset+p.Rows]
		}
	}
	return nil
}

// CreateFederation creates a federation coordinated by the client's owner.
func (c *Client) CreateFederation(ctx context.Context, cfg FederationConfig) (*Federation, error) {
	var out Federation
	if err := c.doJSON(ctx, http.MethodPost, "/v1/federations", cfg, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Federation fetches the member view of federation id.
func (c *Client) Federation(ctx context.Context, id string) (*Federation, error) {
	var out Federation
	if err := c.doJSON(ctx, http.MethodGet, "/v1/federations/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Federations lists the federations the owner belongs to.
func (c *Client) Federations(ctx context.Context) ([]Federation, error) {
	var out []Federation
	if err := c.doJSON(ctx, http.MethodGet, "/v1/federations", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// JoinFederation adds the owner as a member of federation id. The ID is
// the invitation: only someone the coordinator told it to can join.
func (c *Client) JoinFederation(ctx context.Context, id string) (*Federation, error) {
	var out Federation
	if err := c.doJSON(ctx, http.MethodPost, "/v1/federations/"+id+"/join", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Contribute uploads the owner's horizontal partition. The daemon
// protects the rows under the federation's shared transform and stores
// only the protected release; when the owner is the coordinator and the
// federation is still open, this contribution fits and freezes the
// shared key. Rows travel as framed binary batches unless Wire forces
// CSV (or a binary-unaware daemon already forced the fallback).
func (c *Client) Contribute(ctx context.Context, id string, columns []string, rows [][]float64) (*Federation, error) {
	if c.useBinary() {
		out, err := c.contributeBinary(ctx, id, columns, rows)
		if err == nil || !wireUnsupported(err) {
			return out, err
		}
		c.wireCSV.Store(true)
	}
	buf, err := renderCSV(columns, rows)
	if err != nil {
		return nil, err
	}
	return c.ContributeCSV(ctx, id, buf)
}

func (c *Client) contributeBinary(ctx context.Context, id string, columns []string, rows [][]float64) (*Federation, error) {
	buf, err := renderBinary(columns, rows)
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/federations/"+id+"/contribute?format="+WireBinary, buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", codec.ContentType)
	var out Federation
	if err := c.exec(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// useBinary reports whether the next structured-row call should attempt
// the binary wire format.
func (c *Client) useBinary() bool {
	return c.Wire != WireCSV && !c.wireCSV.Load()
}

// wireUnsupported recognizes the crisp 400 a binary-unaware daemon gives
// the explicit format=binary query — the only error that should flip the
// client to its CSV fallback.
func wireUnsupported(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusBadRequest &&
		strings.Contains(ae.Message, "unknown format")
}

// renderBinary frames a header plus numeric rows as binary row batches.
func renderBinary(columns []string, rows [][]float64) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	if err := w.WriteHeader(columns, false); err != nil {
		return nil, err
	}
	for _, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("ppclient: row has %d values, schema has %d columns", len(row), len(columns))
		}
		if err := w.WriteRow(row); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &buf, nil
}

// renderCSV writes a header row of column names and numeric rows.
func renderCSV(columns []string, rows [][]float64) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(columns); err != nil {
		return nil, err
	}
	rec := make([]string, len(columns))
	for _, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("ppclient: row has %d values, schema has %d columns", len(row), len(columns))
		}
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return &buf, nil
}

// ContributeCSV uploads a partition already rendered as CSV (header row
// of column names, then numeric rows).
func (c *Client) ContributeCSV(ctx context.Context, id string, body io.Reader) (*Federation, error) {
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/federations/"+id+"/contribute", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	var out Federation
	if err := c.exec(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WithdrawContribution removes the owner's own contribution (before seal).
func (c *Client) WithdrawContribution(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/federations/"+id+"/contribute", nil, nil)
}

// Seal finalizes federation id and schedules the joint analysis.
// Coordinator only.
func (c *Client) Seal(ctx context.Context, id string, analysis Analysis) (*Federation, error) {
	var out Federation
	if err := c.doJSON(ctx, http.MethodPost, "/v1/federations/"+id+"/seal", analysis, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteFederation tears federation id down, contributions included.
// Coordinator only.
func (c *Client) DeleteFederation(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/federations/"+id, nil, nil)
}

// Result polls the federation result route until the joint analysis
// finishes (or ctx is done) and returns its outcome. A failed or
// cancelled analysis is returned as an error carrying the job state.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		var wrapper struct {
			Status struct {
				State string `json:"state"`
				Error string `json:"error"`
			} `json:"status"`
			Result *Result `json:"result"`
		}
		err := c.doJSON(ctx, http.MethodGet, "/v1/federations/"+id+"/result", nil, &wrapper)
		switch {
		case err == nil:
			switch wrapper.Status.State {
			case "done":
				return wrapper.Result, nil
			case "failed", "cancelled":
				return nil, fmt.Errorf("ppclient: joint analysis %s: %s", wrapper.Status.State, wrapper.Status.Error)
			}
		case IsStatus(err, http.StatusConflict):
			// Still queued or running; keep polling.
		default:
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// DownloadDataset streams one of the owner's stored datasets (e.g. its
// own protected federation contribution "fed.<id>") as CSV.
func (c *Client) DownloadDataset(ctx context.Context, name string) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/datasets/"+url.PathEscape(name)+"/rows", nil)
	if err != nil {
		return "", err
	}
	raw, err := c.do(req)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// DownloadDatasetRows fetches one of the owner's stored datasets decoded
// into column names and numeric rows. It asks for the framed binary
// format — no float↔text conversion on either side — and falls back to
// CSV transparently against a daemon that predates it (honoring Wire,
// like the upload paths).
func (c *Client) DownloadDatasetRows(ctx context.Context, name string) ([]string, [][]float64, error) {
	if c.useBinary() {
		cols, rows, err := c.downloadRowsBinary(ctx, name)
		if err == nil || !wireUnsupported(err) {
			return cols, rows, err
		}
		c.wireCSV.Store(true)
	}
	raw, err := c.DownloadDataset(ctx, name)
	if err != nil {
		return nil, nil, err
	}
	return parseCSVRows(strings.NewReader(raw))
}

func (c *Client) downloadRowsBinary(ctx context.Context, name string) ([]string, [][]float64, error) {
	req, err := c.newRequest(ctx, http.MethodGet,
		"/v1/datasets/"+url.PathEscape(name)+"/rows?format="+WireBinary, nil)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Accept", codec.ContentType)
	raw, err := c.do(req)
	if err != nil {
		return nil, nil, err
	}
	rd := codec.NewReader(bytes.NewReader(raw))
	var rows [][]float64
	for {
		row, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("ppclient: decoding binary rows: %w", err)
		}
		rows = append(rows, row)
	}
	return rd.Names(), rows, nil
}

// parseCSVRows decodes a header row of names plus numeric records.
func parseCSVRows(r io.Reader) ([]string, [][]float64, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	var names []string
	var rows [][]float64
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if names == nil {
			names = rec
			continue
		}
		row := make([]float64, len(rec))
		for j, field := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("ppclient: row %d field %d: %w", len(rows), j, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	return names, rows, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// newRequest builds an authenticated request with the owner query set,
// routed to the owner's home node when a ring table is loaded.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	req, err := http.NewRequestWithContext(ctx, method, c.routeBase(path)+path+sep+"owner="+url.QueryEscape(c.Owner), body)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if id, _ := ctx.Value(traceKeyT{}).(string); id != "" {
		req.Header.Set(TraceHeader, id)
	}
	return req, nil
}

// doJSON sends an optional JSON body and decodes a JSON response into out
// (which may be nil).
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.exec(req, out)
}

// exec runs the request (with retries), captures a freshly minted token,
// and decodes the response.
func (c *Client) exec(req *http.Request, out any) error {
	raw, err := c.do(req)
	if err != nil {
		return err
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("ppclient: decoding response: %w", err)
		}
	}
	return nil
}

// do runs the request through DoRaw to a 2xx body, mapping non-2xx
// responses to APIError and capturing a freshly minted token.
func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.DoRaw(req)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if tok := resp.Header.Get("X-Ppclust-Token"); tok != "" && c.Token == "" {
		c.Token = tok
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return raw, nil
	}
	err = apiError(resp.StatusCode, raw)
	var ae *APIError
	if errors.As(err, &ae) {
		ae.TraceID = resp.Header.Get(TraceHeader)
	}
	return nil, err
}

// DoRaw runs an arbitrary request through the client's retry machinery
// and returns the final response unread (the caller owns Body). Retries
// happen where they are safe:
//
//   - idempotent GETs on transport errors and gateway-ish statuses
//     (502/503/504) — a restarting daemon refuses connections for a
//     moment, and polls must ride that out;
//   - any method on connection-refused when the body can be rewound —
//     refused means the peer never saw the request, so resending cannot
//     double-apply it. This is what lets ring forwarding fail over to a
//     successor while a dead node's entry is still in the member list;
//   - any method on 503 when the body can be rewound (GetBody is set for
//     the in-memory bodies every JSON call uses) — a draining daemon
//     answers 503 to submissions, and the persisted queue makes the
//     retry safe after restart.
//
// Non-2xx statuses that are not retryable (or are out of retries) are
// returned as responses, not errors — ppclustd's ring proxy passes them
// through verbatim; do maps them to APIError for the typed API.
// Backoff is exponential with ±50% jitter, capped, and aborted by the
// request context.
func (c *Client) DoRaw(req *http.Request) (*http.Response, error) {
	retries := c.Retries
	switch {
	case retries == 0:
		retries = 4
	case retries < 0:
		retries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			retriableTransport := req.Method == http.MethodGet ||
				(connRefused(err) && rewind(req) == nil)
			if attempt >= retries || !retriableTransport {
				return nil, err
			}
			if req.Method == http.MethodGet {
				// GET bodies are rare but possible; best-effort rewind.
				_ = rewind(req)
			}
			if err := c.backoff(req.Context(), attempt); err != nil {
				return nil, lastErr
			}
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return resp, nil
		}
		if attempt < retries && c.retryable(req, resp.StatusCode) && rewind(req) == nil {
			// The retried response is consumed before backing off; if the
			// context dies during the wait there is nothing left to return.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err := c.backoff(req.Context(), attempt); err != nil {
				return nil, err
			}
			continue
		}
		return resp, nil
	}
}

// connRefused reports whether a transport error means the peer refused
// the connection outright — the kernel rejected the dial, so the server
// never observed the request and a resend cannot double-apply it.
func connRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// retryable reports whether a response status may be retried for req.
func (c *Client) retryable(req *http.Request, status int) bool {
	switch status {
	case http.StatusServiceUnavailable:
		return true // drain-time 503: safe for every method once rewound
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return req.Method == http.MethodGet
	default:
		return false
	}
}

// rewind resets a consumed request body for the next attempt.
func rewind(req *http.Request) error {
	if req.Body == nil || req.Body == http.NoBody {
		return nil
	}
	if req.GetBody == nil {
		return errors.New("ppclient: request body cannot be rewound")
	}
	body, err := req.GetBody()
	if err != nil {
		return err
	}
	req.Body = body
	return nil
}

// backoff sleeps for the attempt's delay (exponential, jittered, capped)
// or until ctx is done.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	base := c.RetryBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := c.RetryMaxBackoff
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	delay := base << uint(attempt)
	if delay > maxd || delay <= 0 {
		delay = maxd
	}
	// ±50% jitter keeps a fleet of clients from re-slamming a restarting
	// daemon in lockstep.
	delay = delay/2 + time.Duration(rand.Int64N(int64(delay)/2+1))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(delay):
		return nil
	}
}

// apiError decodes the shared error envelope {"error":{"code","message"}},
// falling back to the legacy flat {"error":"..."} string and then to the
// raw body.
func apiError(status int, raw []byte) error {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error.Message != "" {
		return &APIError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
	}
	var legacy struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &legacy) == nil && legacy.Error != "" {
		msg = legacy.Error
	}
	return &APIError{Status: status, Message: msg}
}

// DatasetMeta mirrors the daemon's secret-free dataset description.
type DatasetMeta struct {
	Owner     string    `json:"owner"`
	Name      string    `json:"name"`
	Rows      int       `json:"rows"`
	Cols      int       `json:"cols"`
	Attrs     []string  `json:"attrs"`
	Labeled   bool      `json:"labeled"`
	CreatedAt time.Time `json:"created_at"`
}

// UploadDataset uploads rows as the owner's named dataset. The first
// upload for an unknown owner claims the owner name; the minted token is
// captured into c.Token. Rows travel as framed binary batches unless
// Wire forces CSV (or a binary-unaware daemon already forced the
// fallback).
func (c *Client) UploadDataset(ctx context.Context, name string, columns []string, rows [][]float64) (*DatasetMeta, error) {
	if c.useBinary() {
		out, err := c.uploadDatasetBinary(ctx, name, columns, rows)
		if err == nil || !wireUnsupported(err) {
			return out, err
		}
		c.wireCSV.Store(true)
	}
	buf, err := renderCSV(columns, rows)
	if err != nil {
		return nil, err
	}
	return c.UploadDatasetCSV(ctx, name, buf, false)
}

func (c *Client) uploadDatasetBinary(ctx context.Context, name string, columns []string, rows [][]float64) (*DatasetMeta, error) {
	buf, err := renderBinary(columns, rows)
	if err != nil {
		return nil, err
	}
	path := "/v1/datasets?name=" + url.QueryEscape(name) + "&format=" + WireBinary
	req, err := c.newRequest(ctx, http.MethodPost, path, buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", codec.ContentType)
	var out DatasetMeta
	if err := c.exec(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UploadDatasetCSV uploads a dataset already rendered as CSV (header row
// of column names, then numeric rows). labeledLast marks the final column
// as ground-truth labels (the daemon's labels=last mode).
func (c *Client) UploadDatasetCSV(ctx context.Context, name string, body io.Reader, labeledLast bool) (*DatasetMeta, error) {
	// The name is caller-supplied: escape it so a crafted value cannot
	// smuggle extra query parameters (e.g. "x&owner=evil") past the
	// server's own parsing.
	path := "/v1/datasets?name=" + url.QueryEscape(name)
	if labeledLast {
		path += "&labels=last"
	}
	req, err := c.newRequest(ctx, http.MethodPost, path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	var out DatasetMeta
	if err := c.exec(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Datasets lists the owner's stored datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetMeta, error) {
	var out []DatasetMeta
	if err := c.doJSON(ctx, http.MethodGet, "/v1/datasets", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Dataset fetches one dataset's metadata.
func (c *Client) Dataset(ctx context.Context, name string) (*DatasetMeta, error) {
	var out DatasetMeta
	if err := c.doJSON(ctx, http.MethodGet, "/v1/datasets/"+url.PathEscape(name), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteDataset removes one of the owner's datasets.
func (c *Client) DeleteDataset(ctx context.Context, name string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/datasets/"+url.PathEscape(name), nil, nil)
}

// JobStage is one entry of a job's persistent per-stage timeline.
type JobStage struct {
	Stage      string  `json:"stage"`
	DurationMs float64 `json:"duration_ms"`
}

// JobStatus mirrors the daemon's job snapshot.
type JobStatus struct {
	ID         string     `json:"id"`
	Owner      string     `json:"owner"`
	Type       string     `json:"type"`
	State      string     `json:"state"`
	Progress   float64    `json:"progress"`
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// TraceID is the trace of the request that submitted the job; Timeline
	// is the per-stage duration record the job left behind (queued,
	// running, then every engine/store stage of the run).
	TraceID  string     `json:"trace_id,omitempty"`
	Timeline []JobStage `json:"timeline,omitempty"`
}

// Terminal reports whether the job has finished (done, failed or
// cancelled).
func (j *JobStatus) Terminal() bool {
	switch j.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// SubmitJob submits spec (any JSON-marshalable job spec carrying a "type"
// field) and returns the accepted job's initial status.
func (c *Client) SubmitJob(ctx context.Context, spec any) (*JobStatus, error) {
	var out JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches the status and progress of job id.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists the owner's jobs, newest first.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a finished job's result payload into out (which may
// be nil to discard it), returning the final status. A 409 means the job
// is still in flight; use WaitJob to poll to completion.
func (c *Client) JobResult(ctx context.Context, id string, out any) (*JobStatus, error) {
	var wrapper struct {
		Status JobStatus       `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &wrapper); err != nil {
		return nil, err
	}
	if out != nil && len(wrapper.Result) > 0 && string(wrapper.Result) != "null" {
		if err := json.Unmarshal(wrapper.Result, out); err != nil {
			return nil, fmt.Errorf("ppclient: decoding job result: %w", err)
		}
	}
	return &wrapper.Status, nil
}

// WaitJob polls job id until it reaches a terminal state (or ctx is
// done). onProgress, when non-nil, receives each observed status.
func (c *Client) WaitJob(ctx context.Context, id string, onProgress func(*JobStatus)) (*JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if onProgress != nil {
			onProgress(st)
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// TuneSpec parameterizes a tune job: the sweep grids, the clustering
// algorithm every candidate is scored with, and the recommendation
// constraint. Zero values defer to the daemon's defaults (all mechanisms,
// the standard rho/sigma grids, kmeans requires K).
type TuneSpec struct {
	// Algorithm and its parameters mirror the cluster job spec.
	Algorithm string  `json:"algorithm,omitempty"`
	K         int     `json:"k,omitempty"`
	Linkage   string  `json:"linkage,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	MinPts    int     `json:"min_pts,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`
	ClustSeed int64   `json:"cluster_seed,omitempty"`
	// Norm is the shared normalization ("" = zscore).
	Norm string `json:"norm,omitempty"`
	// Mechanisms, Rhos and Sigmas define the grid.
	Mechanisms []string  `json:"mechanisms,omitempty"`
	Rhos       []float64 `json:"rhos,omitempty"`
	Sigmas     []float64 `json:"sigmas,omitempty"`
	// Seed pins candidate randomness; Known sizes the simulated
	// known-sample adversary.
	Seed  int64 `json:"seed,omitempty"`
	Known int   `json:"known,omitempty"`
	// MinSec is the recommendation's security floor ("max utility such
	// that Sec >= MinSec"); Refine adds adaptive refinement rounds.
	MinSec float64 `json:"min_sec,omitempty"`
	Refine int     `json:"refine,omitempty"`
}

// TunePoint is one evaluated candidate of a tune sweep.
type TunePoint struct {
	Mechanism         string  `json:"mechanism"`
	Rho               float64 `json:"rho,omitempty"`
	Sigma             float64 `json:"sigma,omitempty"`
	Describe          string  `json:"describe,omitempty"`
	Misclassification float64 `json:"misclassification"`
	FMeasure          float64 `json:"f_measure"`
	RandIndex         float64 `json:"rand_index"`
	MinSecurity       float64 `json:"min_security"`
	ReidentRate       float64 `json:"reident_rate"`
	AttackError       string  `json:"attack_error,omitempty"`
	Err               string  `json:"error,omitempty"`
}

// TuneResult is the tune job's result payload: every evaluated point, the
// Pareto frontier, and the recommended operating point.
type TuneResult struct {
	Rows          int         `json:"rows"`
	Cols          int         `json:"cols"`
	Algorithm     string      `json:"algorithm"`
	BaselineK     int         `json:"baseline_k"`
	Evaluated     int         `json:"evaluated"`
	Failed        int         `json:"failed"`
	Pruned        int         `json:"pruned"`
	MinSec        float64     `json:"min_sec_constraint"`
	Points        []TunePoint `json:"points"`
	Frontier      []TunePoint `json:"frontier"`
	Recommended   *TunePoint  `json:"recommended,omitempty"`
	RecommendNote string      `json:"recommend_note,omitempty"`
}

// SubmitTune submits a tune job over the named stored dataset.
func (c *Client) SubmitTune(ctx context.Context, dataset string, spec TuneSpec) (*JobStatus, error) {
	body := struct {
		Type    string `json:"type"`
		Dataset string `json:"dataset"`
		TuneSpec
	}{Type: "tune", Dataset: dataset, TuneSpec: spec}
	return c.SubmitJob(ctx, body)
}

// TuneResult waits for tune job id to finish and returns its frontier. A
// failed or cancelled sweep is returned as an error carrying the state.
func (c *Client) TuneResult(ctx context.Context, id string, onProgress func(*JobStatus)) (*TuneResult, error) {
	st, err := c.WaitJob(ctx, id, onProgress)
	if err != nil {
		return nil, err
	}
	if st.State != "done" {
		return nil, fmt.Errorf("ppclient: tune job %s: %s", st.State, st.Error)
	}
	var out TuneResult
	if _, err := c.JobResult(ctx, id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the daemon's /v1/metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.doJSON(ctx, http.MethodGet, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
