// Package ppclient is the Go client SDK for ppclustd, focused on the
// federation workload: create a federation, join it, contribute a
// horizontal partition, seal, and fetch the joint clustering result. The
// same client also covers the owner-level calls a federation party needs
// around those (dataset download of its own protected contribution,
// deletion, metrics).
//
// One Client speaks for one owner. The bearer token minted when the owner
// is first claimed (by CreateFederation or JoinFederation for an owner the
// daemon has never seen) is captured into Token automatically; persist it
// — the daemon only ever reveals it once.
package ppclient

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one ppclustd instance on behalf of one owner.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// Owner is the keyring owner name this client authenticates as.
	Owner string
	// Token is the owner's bearer token. Left empty for a new owner, it
	// is filled in from the first response that mints one.
	Token string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// PollInterval is the result-polling cadence (default 50ms).
	PollInterval time.Duration
}

// New returns a client for owner against baseURL.
func New(baseURL, owner string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), Owner: owner}
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("ppclustd: %d: %s", e.Status, e.Message)
}

// IsStatus reports whether err is an APIError with the given HTTP status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// Party mirrors the daemon's federation member record.
type Party struct {
	Owner    string    `json:"owner"`
	JoinedAt time.Time `json:"joined_at"`
	Dataset  string    `json:"dataset,omitempty"`
	Rows     int       `json:"rows,omitempty"`
}

// Federation mirrors the daemon's secret-free federation view.
type Federation struct {
	ID            string    `json:"id"`
	Name          string    `json:"name"`
	Coordinator   string    `json:"coordinator"`
	State         string    `json:"state"`
	Columns       []string  `json:"columns"`
	Norm          string    `json:"norm,omitempty"`
	Rho1          float64   `json:"rho1,omitempty"`
	Rho2          float64   `json:"rho2,omitempty"`
	Parties       []Party   `json:"parties"`
	Contributions int       `json:"contributions"`
	RowsTotal     int       `json:"rows_total"`
	JobID         string    `json:"job_id,omitempty"`
	CreatedAt     time.Time `json:"created_at"`
}

// FederationConfig is the creation spec: the agreed schema and transform
// parameters of the shared key fit.
type FederationConfig struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Norm    string   `json:"norm,omitempty"`
	Rho1    float64  `json:"rho1,omitempty"`
	Rho2    float64  `json:"rho2,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
}

// Analysis selects the joint clustering a seal schedules.
type Analysis struct {
	Algorithm string  `json:"algorithm,omitempty"`
	K         int     `json:"k,omitempty"`
	Linkage   string  `json:"linkage,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	MinPts    int     `json:"min_pts,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`
	ClustSeed int64   `json:"cluster_seed,omitempty"`
}

// ResultParty locates one party's rows inside the joint assignments.
type ResultParty struct {
	Owner  string `json:"owner"`
	Rows   int    `json:"rows"`
	Offset int    `json:"offset"`
}

// Result is the joint clustering outcome.
type Result struct {
	Federation  string        `json:"federation"`
	Algorithm   string        `json:"algorithm"`
	K           int           `json:"k"`
	Parties     []ResultParty `json:"parties"`
	Assignments []int         `json:"assignments"`
	Inertia     float64       `json:"inertia,omitempty"`
	Converged   bool          `json:"converged"`
	Silhouette  *float64      `json:"silhouette,omitempty"`
}

// PartyAssignments returns the slice of the joint assignments that belongs
// to owner's rows, in contribution order.
func (r *Result) PartyAssignments(owner string) []int {
	for _, p := range r.Parties {
		if p.Owner == owner {
			return r.Assignments[p.Offset : p.Offset+p.Rows]
		}
	}
	return nil
}

// CreateFederation creates a federation coordinated by the client's owner.
func (c *Client) CreateFederation(cfg FederationConfig) (*Federation, error) {
	var out Federation
	if err := c.doJSON(http.MethodPost, "/v1/federations", cfg, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Federation fetches the member view of federation id.
func (c *Client) Federation(id string) (*Federation, error) {
	var out Federation
	if err := c.doJSON(http.MethodGet, "/v1/federations/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Federations lists the federations the owner belongs to.
func (c *Client) Federations() ([]Federation, error) {
	var out []Federation
	if err := c.doJSON(http.MethodGet, "/v1/federations", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// JoinFederation adds the owner as a member of federation id. The ID is
// the invitation: only someone the coordinator told it to can join.
func (c *Client) JoinFederation(id string) (*Federation, error) {
	var out Federation
	if err := c.doJSON(http.MethodPost, "/v1/federations/"+id+"/join", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Contribute uploads the owner's horizontal partition as CSV rows. The
// daemon protects the rows under the federation's shared transform and
// stores only the protected release; when the owner is the coordinator
// and the federation is still open, this contribution fits and freezes
// the shared key.
func (c *Client) Contribute(id string, columns []string, rows [][]float64) (*Federation, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(columns); err != nil {
		return nil, err
	}
	rec := make([]string, len(columns))
	for _, row := range rows {
		if len(row) != len(columns) {
			return nil, fmt.Errorf("ppclient: row has %d values, schema has %d columns", len(row), len(columns))
		}
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	return c.ContributeCSV(id, &buf)
}

// ContributeCSV uploads a partition already rendered as CSV (header row
// of column names, then numeric rows).
func (c *Client) ContributeCSV(id string, body io.Reader) (*Federation, error) {
	req, err := c.newRequest(http.MethodPost, "/v1/federations/"+id+"/contribute", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	var out Federation
	if err := c.exec(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WithdrawContribution removes the owner's own contribution (before seal).
func (c *Client) WithdrawContribution(id string) error {
	return c.doJSON(http.MethodDelete, "/v1/federations/"+id+"/contribute", nil, nil)
}

// Seal finalizes federation id and schedules the joint analysis.
// Coordinator only.
func (c *Client) Seal(id string, analysis Analysis) (*Federation, error) {
	var out Federation
	if err := c.doJSON(http.MethodPost, "/v1/federations/"+id+"/seal", analysis, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteFederation tears federation id down, contributions included.
// Coordinator only.
func (c *Client) DeleteFederation(id string) error {
	return c.doJSON(http.MethodDelete, "/v1/federations/"+id, nil, nil)
}

// Result polls the federation result route until the joint analysis
// finishes (or ctx is done) and returns its outcome. A failed or
// cancelled analysis is returned as an error carrying the job state.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		var wrapper struct {
			Status struct {
				State string `json:"state"`
				Error string `json:"error"`
			} `json:"status"`
			Result *Result `json:"result"`
		}
		err := c.doJSON(http.MethodGet, "/v1/federations/"+id+"/result", nil, &wrapper)
		switch {
		case err == nil:
			switch wrapper.Status.State {
			case "done":
				return wrapper.Result, nil
			case "failed", "cancelled":
				return nil, fmt.Errorf("ppclient: joint analysis %s: %s", wrapper.Status.State, wrapper.Status.Error)
			}
		case IsStatus(err, http.StatusConflict):
			// Still queued or running; keep polling.
		default:
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// DownloadDataset streams one of the owner's stored datasets (e.g. its
// own protected federation contribution "fed.<id>") as CSV.
func (c *Client) DownloadDataset(name string) (string, error) {
	req, err := c.newRequest(http.MethodGet, "/v1/datasets/"+name+"/rows", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", apiError(resp.StatusCode, raw)
	}
	return string(raw), nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// newRequest builds an authenticated request with the owner query set.
func (c *Client) newRequest(method, path string, body io.Reader) (*http.Request, error) {
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	req, err := http.NewRequest(method, c.BaseURL+path+sep+"owner="+c.Owner, body)
	if err != nil {
		return nil, err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	return req, nil
}

// doJSON sends an optional JSON body and decodes a JSON response into out
// (which may be nil).
func (c *Client) doJSON(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := c.newRequest(method, path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.exec(req, out)
}

// exec runs the request, captures a freshly minted token, and decodes the
// response.
func (c *Client) exec(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if tok := resp.Header.Get("X-Ppclust-Token"); tok != "" && c.Token == "" {
		c.Token = tok
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return apiError(resp.StatusCode, raw)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("ppclient: decoding response: %w", err)
		}
	}
	return nil
}

func apiError(status int, raw []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &APIError{Status: status, Message: msg}
}
