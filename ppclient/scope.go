package ppclient

// Observability-plane (ppscope) client surface: retained traces,
// cluster-wide metrics, SLO status. All four endpoints are ownerless
// and unauthenticated on the daemon; any node of a ring answers for the
// whole cluster.

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// Span is one node of a trace's span tree. StartUs is the offset from
// the trace start in microseconds; in a stitched cross-node tree the
// offsets of grafted subtrees are rebased onto the entry node's clock.
type Span struct {
	Name     string     `json:"name"`
	StartUs  int64      `json:"start_us"`
	DurUs    int64      `json:"dur_us"`
	Attrs    []SpanAttr `json:"attrs,omitempty"`
	Children []*Span    `json:"children,omitempty"`
}

// TraceSummary is one retained trace as listed by GET /v1/traces, and
// one per-node record inside a TraceView.
type TraceSummary struct {
	ID     string    `json:"id"`
	Node   string    `json:"node,omitempty"`
	Route  string    `json:"route"`
	Status int       `json:"status"`
	Owner  string    `json:"owner,omitempty"`
	Start  time.Time `json:"start"`
	DurMs  float64   `json:"dur_ms"`
	Error  bool      `json:"error"`
}

// TraceView is GET /v1/traces/{id}: the per-node records plus the
// single stitched span tree. PeerErrors lists ring peers that could not
// be asked for their part of the trace.
type TraceView struct {
	ID         string            `json:"id"`
	Nodes      []TraceSummary    `json:"nodes"`
	PeerErrors map[string]string `json:"peer_errors,omitempty"`
	Spans      *Span             `json:"spans"`
}

// TraceFilter narrows a Traces listing; the zero value lists everything
// (newest first, server-side default limit).
type TraceFilter struct {
	// Route keeps traces whose route label contains this substring.
	Route string
	// MinMs keeps traces at least this slow.
	MinMs float64
	// Limit caps the result count (0: server default).
	Limit int
}

// Trace fetches one retained trace by ID, stitched across the ring when
// the trace crossed nodes. A trace that was sampled out or already
// evicted returns an *APIError with Code "not_found".
func (c *Client) Trace(ctx context.Context, id string) (*TraceView, error) {
	var out TraceView
	if err := c.doJSON(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Traces lists retained traces on the answering node, newest first.
func (c *Client) Traces(ctx context.Context, f TraceFilter) ([]TraceSummary, error) {
	q := url.Values{}
	if f.Route != "" {
		q.Set("route", f.Route)
	}
	if f.MinMs > 0 {
		q.Set("min_ms", strconv.FormatFloat(f.MinMs, 'g', -1, 64))
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	path := "/v1/traces"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := c.doJSON(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// ClusterMetrics is GET /v1/cluster/metrics: counters and histograms
// summed across every reachable node, gauges labelled per node.
// ScrapeErrors names the nodes the aggregate is missing.
type ClusterMetrics struct {
	Nodes        []string          `json:"nodes"`
	ScrapeErrors map[string]string `json:"scrape_errors,omitempty"`
	Metrics      map[string]int64  `json:"metrics"`
}

// ClusterMetrics fetches the cluster-wide metrics aggregate from the
// configured node. A partial aggregate (some peers down) is a success
// with ScrapeErrors set, not an error.
func (c *Client) ClusterMetrics(ctx context.Context) (*ClusterMetrics, error) {
	var out ClusterMetrics
	if err := c.doJSON(ctx, http.MethodGet, "/v1/cluster/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SLOObjective is one objective's live evaluation inside an SLOReport.
type SLOObjective struct {
	Objective    string  `json:"objective"`
	Route        string  `json:"route,omitempty"`
	Kind         string  `json:"kind"`
	Target       string  `json:"target"`
	Requests     int64   `json:"requests"`
	Bad          int64   `json:"bad"`
	Budget       float64 `json:"budget"`
	BurnRate     float64 `json:"burn_rate"`
	ObservedMs   float64 `json:"observed_ms,omitempty"`
	ObservedRate float64 `json:"observed_rate"`
	State        string  `json:"state"`
}

// SLOReport is GET /v1/slo: per-objective states, worst first; Status
// is the worst state overall ("ok", "warning" or "breach").
type SLOReport struct {
	Enabled    bool           `json:"enabled"`
	WindowS    float64        `json:"window_s,omitempty"`
	Status     string         `json:"status"`
	Objectives []SLOObjective `json:"objectives,omitempty"`
}

// SLOStatus fetches the answering node's SLO evaluation. A daemon
// running without -slo reports Enabled false and Status "ok".
func (c *Client) SLOStatus(ctx context.Context) (*SLOReport, error) {
	var out SLOReport
	if err := c.doJSON(ctx, http.MethodGet, "/v1/slo", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TraceURL renders the ready-to-curl URL for a trace ID against this
// client's daemon — the form pploadgen prints for its slowest ops.
func (c *Client) TraceURL(id string) string {
	return fmt.Sprintf("%s/v1/traces/%s", c.BaseURL, url.PathEscape(id))
}
