package ppclient

// Stub-daemon tests for the pppulse client surface: metrics history
// (query-parameter encoding included), the alert listing, and incident
// bundle browsing/downloading.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func pulseStub(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if got := q["series"]; len(got) != 2 || got[0] != "queue" || got[1] != "latency" {
			t.Errorf("series params = %v", got)
		}
		if q.Get("since") != "5m0s" || q.Get("step") != "30s" || q.Get("agg") != "max" ||
			q.Get("max_series") != "12" || q.Get("scope") != "cluster" {
			t.Errorf("history query = %v", q)
		}
		fmt.Fprint(w, `{"interval_ms":10000,"nodes":["n1","n2"],
			"peer_errors":{"n3":"dial tcp: connection refused"},"truncated":true,
			"series":[{"name":"queue_depth{node=\"n1\"}","points":[{"t_ms":1000,"v":3},{"t_ms":11000,"v":7}]}]}`)
	})
	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("scope"); got != "cluster" {
			t.Errorf("alerts scope = %q", got)
		}
		fmt.Fprint(w, `{"enabled":true,"nodes":["n1","n2"],"alerts":[
			{"rule":"ring_replication_pending>100 for 30s","kind":"threshold",
			 "series":"ring_replication_pending","node":"n2","state":"firing",
			 "value":180,"threshold":100,"since":"2026-08-07T00:00:00Z","fired_at":"2026-08-07T00:00:30Z"}]}`)
	})
	mux.HandleFunc("GET /v1/incidents", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"enabled":true,"incidents":[
			{"id":"20260807T000030-001-ring","rule":"ring_replication_pending>100 for 30s",
			 "node":"n2","value":180,"threshold":100,"at":"2026-08-07T00:00:30Z",
			 "trace_ids":["t-9"],"files":["meta.json","goroutines.txt"]}]}`)
	})
	mux.HandleFunc("GET /v1/incidents/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "20260807T000030-001-ring" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such incident"}}`)
			return
		}
		fmt.Fprint(w, `{"id":"20260807T000030-001-ring","rule":"ring_replication_pending>100 for 30s",
			"node":"n2","value":180,"threshold":100,"at":"2026-08-07T00:00:30Z","files":["meta.json"]}`)
	})
	mux.HandleFunc("GET /v1/incidents/{id}/files/{name}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("name") != "goroutines.txt" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such file"}}`)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "goroutine 1 [running]:\nmain.main()")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, New(ts.URL, "alice")
}

func TestMetricsHistory(t *testing.T) {
	_, c := pulseStub(t)
	hist, err := c.MetricsHistory(context.Background(), HistoryFilter{
		Series:    []string{"queue", "latency"},
		Since:     5 * time.Minute,
		Step:      30 * time.Second,
		Agg:       "max",
		MaxSeries: 12,
		Cluster:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.IntervalMs != 10000 || !hist.Truncated || len(hist.Nodes) != 2 {
		t.Fatalf("history = %+v", hist)
	}
	if hist.PeerErrors["n3"] == "" {
		t.Error("peer_errors not decoded")
	}
	if len(hist.Series) != 1 || hist.Series[0].Name != `queue_depth{node="n1"}` {
		t.Fatalf("series = %+v", hist.Series)
	}
	if pts := hist.Series[0].Points; len(pts) != 2 || pts[1].TMs != 11000 || pts[1].V != 7 {
		t.Fatalf("points = %+v", hist.Series[0].Points)
	}
}

func TestAlertsListing(t *testing.T) {
	_, c := pulseStub(t)
	list, err := c.Alerts(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || len(list.Alerts) != 1 {
		t.Fatalf("alerts = %+v", list)
	}
	a := list.Alerts[0]
	if a.State != "firing" || a.Node != "n2" || a.Value != 180 || a.FiredAt.IsZero() {
		t.Fatalf("alert = %+v", a)
	}
}

func TestIncidentBrowsing(t *testing.T) {
	_, c := pulseStub(t)
	enabled, incs, err := c.Incidents(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !enabled || len(incs) != 1 || incs[0].TraceIDs[0] != "t-9" {
		t.Fatalf("incidents = %v %+v", enabled, incs)
	}

	inc, err := c.Incident(context.Background(), incs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Rule != "ring_replication_pending>100 for 30s" {
		t.Fatalf("incident = %+v", inc)
	}
	if _, err := c.Incident(context.Background(), "nope"); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("missing incident err = %v, want 404 APIError", err)
	}

	raw, err := c.IncidentFile(context.Background(), inc.ID, "goroutines.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("goroutine 1")) {
		t.Fatalf("file = %q", raw)
	}
	if _, err := c.IncidentFile(context.Background(), inc.ID, "nope.bin"); !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("missing file err = %v, want 404 APIError", err)
	}
}
