package ppclient

// Stub-daemon tests for the ppscope client surface: trace fetch (path
// escaping included), filtered listings, the cluster-metrics aggregate
// and the SLO report, plus the TraceURL rendering pploadgen prints.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func scopeStub(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "t-1" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"trace not retained"}}`)
			return
		}
		fmt.Fprint(w, `{"id":"t-1","nodes":[
			{"id":"t-1","node":"n1","route":"ring.forward","status":201,"start":"2026-08-07T00:00:00Z","dur_ms":4.2,"error":false},
			{"id":"t-1","node":"n2","route":"POST /v1/datasets","status":201,"start":"2026-08-07T00:00:00.001Z","dur_ms":3.1,"error":false}],
			"peer_errors":{"n3":"connection refused"},
			"spans":{"name":"http","start_us":0,"dur_us":4200,"children":[
				{"name":"ring.forward","start_us":100,"dur_us":3900,"attrs":[{"k":"peer","v":"n2"}]}]}}`)
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Get("route") != "protect" || q.Get("min_ms") != "10" || q.Get("limit") != "5" {
			t.Errorf("trace list query = %v", q)
		}
		fmt.Fprint(w, `{"traces":[{"id":"t-2","node":"n1","route":"POST /v1/protect","status":200,"start":"2026-08-07T00:00:00Z","dur_ms":12.5,"error":false}]}`)
	})
	mux.HandleFunc("GET /v1/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"nodes":["n1","n2"],"scrape_errors":{"n3":"dial tcp: connection refused"},"metrics":{"rows_ingested_total":120,"obs_trace_store_traces{node=\"n1\"}":7}}`)
	})
	mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"enabled":true,"window_s":60,"status":"breach","objectives":[
			{"objective":"protect:p99<250ms","route":"protect","kind":"latency","target":"p99<250ms","requests":100,"bad":5,"budget":0.01,"burn_rate":5,"observed_ms":500,"observed_rate":0.05,"state":"breach"}]}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, New(ts.URL, "alice")
}

func TestTraceFetch(t *testing.T) {
	_, c := scopeStub(t)
	view, err := c.Trace(context.Background(), "t-1")
	if err != nil {
		t.Fatal(err)
	}
	if view.ID != "t-1" || len(view.Nodes) != 2 || view.Nodes[1].Route != "POST /v1/datasets" {
		t.Fatalf("view = %+v", view)
	}
	if view.PeerErrors["n3"] == "" {
		t.Error("peer_errors not decoded")
	}
	if view.Spans == nil || len(view.Spans.Children) != 1 || view.Spans.Children[0].Name != "ring.forward" {
		t.Fatalf("spans = %+v", view.Spans)
	}
	if got := view.Spans.Children[0].Attrs[0]; got.Key != "peer" || got.Value != "n2" {
		t.Errorf("span attr = %+v", got)
	}

	_, err = c.Trace(context.Background(), "gone")
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("missing trace err = %v, want 404 APIError", err)
	}
}

func TestTracesListing(t *testing.T) {
	_, c := scopeStub(t)
	recs, err := c.Traces(context.Background(), TraceFilter{Route: "protect", MinMs: 10, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "t-2" || recs[0].DurMs != 12.5 {
		t.Fatalf("listing = %+v", recs)
	}
}

func TestClusterMetricsFetch(t *testing.T) {
	_, c := scopeStub(t)
	cm, err := c.ClusterMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Nodes) != 2 || cm.Metrics["rows_ingested_total"] != 120 {
		t.Fatalf("cluster metrics = %+v", cm)
	}
	if cm.ScrapeErrors["n3"] == "" {
		t.Error("scrape_errors not decoded")
	}
	if cm.Metrics[`obs_trace_store_traces{node="n1"}`] != 7 {
		t.Error("node-labelled gauge not decoded")
	}
}

func TestSLOStatusFetch(t *testing.T) {
	_, c := scopeStub(t)
	rep, err := c.SLOStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.Status != "breach" || rep.WindowS != 60 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].BurnRate != 5 || rep.Objectives[0].Kind != "latency" {
		t.Fatalf("objectives = %+v", rep.Objectives)
	}
}

func TestTraceURL(t *testing.T) {
	c := New("http://node:8344/", "alice")
	if got := c.TraceURL("abc-123"); got != "http://node:8344/v1/traces/abc-123" {
		t.Errorf("TraceURL = %q", got)
	}
	// IDs are path-escaped; a hostile ID cannot break out of the path.
	if got := c.TraceURL("a/b c"); got != "http://node:8344/v1/traces/a%2Fb%20c" {
		t.Errorf("escaped TraceURL = %q", got)
	}
}
