package ppclust

import (
	"fmt"

	"ppclust/internal/engine"
)

// Protector is the incremental counterpart of Protect: the normalization
// parameters and rotation key are frozen once — by fitting on a seed
// dataset (NewProtector) or by loading a stored secret
// (NewProtectorFromSecret) — and record batches are then protected or
// recovered under that fixed transform. All batches share one orthogonal
// map, so pairwise distances are preserved *across* batches, not just
// within them; any stream consumer can cluster the union of everything
// released by one Protector.
//
// Batch work runs on a parallel worker-pool engine sized to GOMAXPROCS;
// results are identical for any worker count.
type Protector struct {
	stream *engine.StreamProtector
	// names holds the fitted attribute names; batches with differing
	// names are rejected (column order is part of the transform). Empty
	// for a Protector rebuilt from a secret, which carries no names.
	names    []string
	keepIDs  bool
	released *Dataset
	reports  []PairReport
}

// NewProtector runs the full pipeline of Figure 1 on a seed dataset and
// freezes the fitted transform for subsequent batches. The seed's own
// release is available via Released.
func NewProtector(ds *Dataset, opts ProtectOptions) (*Protector, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrOptions)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	method := opts.Normalization
	if method == "" {
		method = ZScore
	}
	if method != ZScore && method != MinMax {
		return nil, fmt.Errorf("%w: unknown normalization %q", ErrOptions, method)
	}
	eng := engine.Default()
	res, err := eng.Protect(ds.Data, engine.ProtectOptions{
		Normalization: string(method),
		Pairs:         opts.Pairs,
		Thresholds:    opts.Thresholds,
		Seed:          opts.Seed,
		FixedAngles:   opts.FixedAngles,
	})
	if err != nil {
		return nil, err
	}
	stream, err := eng.NewStreamProtector(res.Secret())
	if err != nil {
		return nil, err
	}
	released, err := ds.WithData(res.Released)
	if err != nil {
		return nil, err
	}
	released.Labels = nil
	if !opts.KeepIDs {
		released = released.DropIDs()
	}
	return &Protector{
		stream:   stream,
		names:    append([]string(nil), ds.Names...),
		keepIDs:  opts.KeepIDs,
		released: released,
		reports:  res.Reports,
	}, nil
}

// NewProtectorFromSecret rebuilds a Protector from a stored OwnerSecret,
// e.g. to keep protecting a stream after a service restart, or to recover
// releases. Reports and Released are unavailable in this mode.
func NewProtectorFromSecret(secret OwnerSecret) (*Protector, error) {
	if secret.Normalization == "" {
		secret.Normalization = ZScore
	}
	if secret.Normalization != ZScore && secret.Normalization != MinMax {
		return nil, fmt.Errorf("%w: unknown normalization %q", ErrOptions, secret.Normalization)
	}
	eng := engine.Default()
	stream, err := eng.NewStreamProtector(engine.Secret{
		Key:           secret.Key,
		Normalization: string(secret.Normalization),
		ParamsA:       secret.ParamsA,
		ParamsB:       secret.ParamsB,
		Columns:       secret.Columns,
	})
	if err != nil {
		return nil, err
	}
	return &Protector{stream: stream}, nil
}

// Released returns the seed dataset's release, or nil for a Protector
// built from a secret.
func (p *Protector) Released() *Dataset { return p.released }

// Reports describes each rotated pair of the fitting run, or nil for a
// Protector built from a secret.
func (p *Protector) Reports() []PairReport { return p.reports }

// Cols returns the attribute count batches must have.
func (p *Protector) Cols() int { return p.stream.Cols() }

// Secret returns everything the data owner must retain (and keep secret)
// to invert releases made by this Protector.
func (p *Protector) Secret() OwnerSecret {
	s := p.stream.Secret()
	return OwnerSecret{
		Key:           s.Key,
		Normalization: Normalization(s.Normalization),
		ParamsA:       s.ParamsA,
		ParamsB:       s.ParamsB,
		Columns:       s.Columns,
	}
}

// ProtectBatch releases one batch of records under the frozen transform.
// Labels are stripped and IDs are suppressed unless the fitting options
// kept them, exactly as Protect does. Batches must carry the fitted
// attribute names in the fitted order — the transform is positional, so a
// reordered batch would be silently mis-protected otherwise.
func (p *Protector) ProtectBatch(ds *Dataset) (*Dataset, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrOptions)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := p.checkNames(ds); err != nil {
		return nil, err
	}
	rel, err := p.stream.ProtectBatch(ds.Data)
	if err != nil {
		return nil, err
	}
	out, err := ds.WithData(rel)
	if err != nil {
		return nil, err
	}
	out.Labels = nil
	if !p.keepIDs {
		out = out.DropIDs()
	}
	return out, nil
}

// RecoverBatch inverts a batch released by this Protector (or by Protect
// under the same secret), restoring original attribute values.
func (p *Protector) RecoverBatch(ds *Dataset) (*Dataset, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrOptions)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	raw, err := p.stream.RecoverBatch(ds.Data)
	if err != nil {
		return nil, err
	}
	return ds.WithData(raw)
}

// checkNames rejects batches whose attribute names differ from the fitted
// dataset's. A Protector rebuilt from a secret has no fitted names and
// accepts any (the secret only fixes the column count).
func (p *Protector) checkNames(ds *Dataset) error {
	if p.names == nil {
		return nil
	}
	if len(ds.Names) != len(p.names) {
		return fmt.Errorf("%w: batch has %d attributes, fitted on %d", ErrOptions, len(ds.Names), len(p.names))
	}
	for j, name := range ds.Names {
		if name != p.names[j] {
			return fmt.Errorf("%w: batch attribute %d is %q, fitted on %q", ErrOptions, j, name, p.names[j])
		}
	}
	return nil
}

// StreamResult is one protected batch of ProtectStream, or the error that
// terminated the stream.
type StreamResult struct {
	Released *Dataset
	Err      error
}

// ProtectStream protects batches from in until it is closed, emitting one
// StreamResult per batch on the returned channel, in order. On the first
// failing batch the error is emitted and no further batches are protected
// (remaining inputs are drained, so senders on in never block as long as
// the caller keeps receiving). The returned channel is unbuffered and is
// closed when the stream ends; the caller must drain it — abandoning it
// mid-stream leaks the worker goroutine and stalls senders.
func (p *Protector) ProtectStream(in <-chan *Dataset) <-chan StreamResult {
	out := make(chan StreamResult)
	go func() {
		defer close(out)
		failed := false
		for ds := range in {
			if failed {
				continue // drain
			}
			rel, err := p.ProtectBatch(ds)
			if err != nil {
				failed = true
				out <- StreamResult{Err: err}
				continue
			}
			out <- StreamResult{Released: rel}
		}
	}()
	return out
}
