package ppclust

// Integration tests exercising complete workflows across the facade and
// the internal packages together: owner → analyst → owner round trips,
// Corollary 1 through the public API, and the full adversary story.

import (
	"math/rand"
	"testing"

	"ppclust/internal/attack"
	"ppclust/internal/cluster"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/matrix"
	"ppclust/internal/norm"
	"ppclust/internal/quality"
	"ppclust/internal/stats"
)

// TestIntegrationHospitalWorkflow is the paper's first scenario end to end:
// protect patient data, cluster the release with three different algorithm
// families, verify all partitions match the original's, then recover.
func TestIntegrationHospitalWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	patients, err := dataset.SyntheticPatients(200, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Protect(patients, ProtectOptions{
		Thresholds: []PST{{Rho1: 0.35, Rho2: 0.35}},
		Seed:       41,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every report must meet its PST.
	for _, r := range protected.Reports {
		if r.VarI < r.PST.Rho1 || r.VarJ < r.PST.Rho2 {
			t.Fatalf("PST violated in release: %+v", r)
		}
	}

	z := &norm.ZScore{Denominator: stats.Sample}
	normalized, err := norm.FitTransform(z, patients.Data)
	if err != nil {
		t.Fatal(err)
	}

	algs := []func() cluster.Clusterer{
		func() cluster.Clusterer { return &cluster.KMeans{K: 3, Rand: rand.New(rand.NewSource(1))} },
		func() cluster.Clusterer { return &cluster.KMedoids{K: 3} },
		func() cluster.Clusterer { return &cluster.Hierarchical{K: 3, Linkage: cluster.WardLinkage} },
	}
	for _, mk := range algs {
		orig, err := mk().Cluster(normalized)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := mk().Cluster(protected.Released.Data)
		if err != nil {
			t.Fatal(err)
		}
		same, err := quality.SameClustering(orig.Assignments, rel.Assignments)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Fatalf("%s partitions differ between original and release", mk().Name())
		}
	}

	back, err := Recover(protected.Released, protected.Secret())
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Data, patients.Data, 1e-7) {
		t.Fatal("owner-side recovery failed")
	}
}

// TestIntegrationModelSelectionSurvivesRelease verifies that even choosing
// K by silhouette gives the same answer on the release as on the original.
func TestIntegrationModelSelectionSurvivesRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	blobs, err := dataset.WellSeparatedBlobs(120, 4, 5, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.New(blobs.Names, blobs.Data)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Protect(ds, ProtectOptions{Thresholds: []PST{{Rho1: 0.2, Rho2: 0.2}}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	z := &norm.ZScore{Denominator: stats.Sample}
	normalized, err := norm.FitTransform(z, ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	onOriginal, err := cluster.ChooseKBySilhouette(normalized, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	onRelease, err := cluster.ChooseKBySilhouette(protected.Released.Data, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if onOriginal.K != onRelease.K {
		t.Fatalf("model selection diverged: %d vs %d", onOriginal.K, onRelease.K)
	}
	// The release is isometric to the normalized original and the sweep is
	// seeded, so every candidate's silhouette must agree to float precision
	// — a stronger invariance than just the winning K.
	for k, score := range onOriginal.Scores {
		if diff := score - onRelease.Scores[k]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("silhouette at k=%d diverged: %v vs %v", k, score, onRelease.Scores[k])
		}
	}
}

// TestIntegrationAttackStory verifies the full security narrative on one
// release: renormalization fails; known records break everything.
func TestIntegrationAttackStory(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	customers, err := dataset.SyntheticCustomers(300, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Protect(customers, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	z := &norm.ZScore{Denominator: stats.Sample}
	normalized, err := norm.FitTransform(z, customers.Data)
	if err != nil {
		t.Fatal(err)
	}

	// Attack A: renormalization changes geometry, recovers nothing.
	renorm, err := attack.Renormalize(protected.Released.Data)
	if err != nil {
		t.Fatal(err)
	}
	sample := []int{0, 10, 20, 30, 40, 50}
	dOrig := dist.NewDissimMatrix(normalized.SelectRows(sample), dist.Euclidean{})
	dAtk := dist.NewDissimMatrix(renorm.SelectRows(sample), dist.Euclidean{})
	drift, err := dOrig.MaxAbsDiff(dAtk)
	if err != nil {
		t.Fatal(err)
	}
	if drift < 0.05 {
		t.Fatalf("renormalization should distort geometry, drift %v", drift)
	}

	// Attack B: five known records decrypt the whole release.
	rows := []int{7, 70, 140, 210, 280}
	q, err := attack.KnownIO(normalized.SelectRows(rows), protected.Released.Data.SelectRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := attack.RecoverWithQ(protected.Released.Data, q)
	if err != nil {
		t.Fatal(err)
	}
	met, err := attack.Measure(normalized, recovered, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if met.WithinTol < 1 {
		t.Fatalf("known-IO should fully decrypt: %.3f", met.WithinTol)
	}
}

// TestIntegrationCSVPipeline pushes a dataset through CSV serialization at
// every stage: write raw, read, protect, write release, read, recover.
func TestIntegrationCSVPipeline(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(104))
	blobs, err := dataset.WellSeparatedBlobs(60, 2, 3, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	rawPath := dir + "/raw.csv"
	if err := dataset.WriteCSVFile(rawPath, blobs); err != nil {
		t.Fatal(err)
	}
	opts := dataset.DefaultCSVOptions()
	opts.LabelColumn = 3
	loaded, err := dataset.ReadCSVFile(rawPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Protect(loaded, ProtectOptions{Thresholds: []PST{{Rho1: 0.1, Rho2: 0.1}}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	relPath := dir + "/released.csv"
	if err := dataset.WriteCSVFile(relPath, protected.Released); err != nil {
		t.Fatal(err)
	}
	released, err := dataset.ReadCSVFile(relPath, dataset.DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	secretBlob, err := protected.Secret().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	secret, err := ParseSecret(secretBlob)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Recover(released, secret)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Data, loaded.Data, 1e-7) {
		t.Fatal("CSV round-trip recovery failed")
	}
}
