// Package ppclust is the public facade of the privacy-preserving clustering
// library: an implementation of the Rotation-Based Transformation (RBT) of
// Oliveira & Zaïane, "Achieving Privacy Preservation When Sharing Data For
// Clustering" (Secure Data Management workshop at VLDB, 2004), together
// with the substrates a practitioner needs around it (normalization,
// clustering, quality and privacy metrics, baselines and attacks — see the
// internal packages and DESIGN.md).
//
// The two entry points mirror the paper's workflow (Figure 1):
//
//	protected, err := ppclust.Protect(ds, ppclust.ProtectOptions{
//	        Thresholds: []ppclust.PST{{Rho1: 0.3, Rho2: 0.3}},
//	})
//	// share protected.Released for clustering; keep protected.Secret()
//
//	original, err := ppclust.Recover(protected.Released, secret)
//
// Released data preserves all pairwise Euclidean distances, so any
// distance-based clustering algorithm produces exactly the same clusters it
// would have produced on the (normalized) original.
package ppclust

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"ppclust/internal/core"
	"ppclust/internal/dataset"
	"ppclust/internal/engine"
	"ppclust/internal/norm"
	"ppclust/internal/stats"
)

// Re-exported types; see the corresponding internal packages for details.
type (
	// Dataset is a named numeric data matrix with optional IDs and labels.
	Dataset = dataset.Dataset
	// Pair is an ordered attribute pair to rotate.
	Pair = core.Pair
	// PST is the pairwise-security threshold (ρ1, ρ2) of Definition 2.
	PST = core.PST
	// Key is the secret rotation key (pairs + angles).
	Key = core.Key
	// PairReport describes one pair's security range and achieved security.
	PairReport = core.PairReport
)

// ErrOptions is wrapped by invalid Protect/Recover configurations.
var ErrOptions = errors.New("ppclust: invalid options")

// Normalization selects Step 1 of the pipeline.
type Normalization string

const (
	// ZScore standardizes each attribute to zero mean and unit sample
	// variance (Eq. 4) — the paper's choice for the worked example.
	ZScore Normalization = "zscore"
	// MinMax rescales each attribute to [0, 1] (Eq. 3).
	MinMax Normalization = "minmax"
)

// ProtectOptions configures Protect.
type ProtectOptions struct {
	// Normalization defaults to ZScore.
	Normalization Normalization
	// Pairs defaults to round-robin grouping; see core.RoundRobinPairs.
	Pairs []Pair
	// Thresholds holds one PST per pair (or a single PST broadcast to all).
	// Required: privacy without a threshold is undefined (Definition 2).
	Thresholds []PST
	// Seed pins the angle randomness so a run can be reproduced exactly.
	// 0 (the default) draws an unpredictable seed from crypto/rand: the
	// rotation key must not be a deterministic function of the dataset,
	// or anyone holding a similar sample (the paper's known-sample
	// attacker) could rerun the pipeline, reproduce the key and invert
	// the release. Set a seed only for tests and reproduction runs.
	Seed int64
	// FixedAngles bypasses random angle selection (still PST-checked).
	FixedAngles []float64
	// KeepIDs retains object identifiers in the released dataset. The
	// default (false) suppresses them, per Step 2 of Section 5.3.
	KeepIDs bool
}

// Protected is the result of Protect.
type Protected struct {
	// Released is safe to share: normalized, rotated, IDs suppressed
	// unless KeepIDs was set. Labels are never carried over.
	Released *Dataset
	// Reports describes each rotated pair.
	Reports []PairReport

	key        Key
	normMethod Normalization
	paramsA    []float64 // means (zscore) or mins (minmax)
	paramsB    []float64 // stds (zscore) or maxs (minmax)
}

// Secret returns everything the data owner must retain (and keep secret)
// to invert the release.
func (p *Protected) Secret() OwnerSecret {
	return OwnerSecret{
		Key:           p.key,
		Normalization: p.normMethod,
		ParamsA:       append([]float64(nil), p.paramsA...),
		ParamsB:       append([]float64(nil), p.paramsB...),
		Columns:       len(p.paramsA),
	}
}

// OwnerSecret is the serializable inversion secret: the RBT key plus the
// normalization parameters. Anyone holding it can reconstruct the original
// attribute values from the released data.
type OwnerSecret struct {
	Key           Key           `json:"key"`
	Normalization Normalization `json:"normalization"`
	ParamsA       []float64     `json:"params_a"`
	ParamsB       []float64     `json:"params_b"`
	// Columns records the attribute count the secret applies to. It is 0
	// in secrets stored before the field existed; consumers then fall
	// back to inferring the count from the normalization parameters.
	Columns int `json:"columns,omitempty"`
}

// Marshal serializes the secret as JSON.
func (s OwnerSecret) Marshal() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// ParseSecret decodes a secret serialized by Marshal.
func ParseSecret(data []byte) (OwnerSecret, error) {
	var s OwnerSecret
	if err := json.Unmarshal(data, &s); err != nil {
		return OwnerSecret{}, fmt.Errorf("ppclust: parsing secret: %w", err)
	}
	if s.Normalization != ZScore && s.Normalization != MinMax {
		return OwnerSecret{}, fmt.Errorf("%w: unknown normalization %q", ErrOptions, s.Normalization)
	}
	return s, nil
}

// Protect runs the full pipeline of Figure 1 on a dataset: normalize every
// attribute, then distort attribute pairs by PST-constrained rotations.
func Protect(ds *Dataset, opts ProtectOptions) (*Protected, error) {
	if ds == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrOptions)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	method := opts.Normalization
	if method == "" {
		method = ZScore
	}
	normalizer, err := newNormalizer(method)
	if err != nil {
		return nil, err
	}
	normalized, err := norm.FitTransform(normalizer, ds.Data)
	if err != nil {
		return nil, fmt.Errorf("ppclust: normalizing: %w", err)
	}
	rng, err := newRNG(opts.Seed)
	if err != nil {
		return nil, err
	}
	res, err := core.Transform(normalized, core.Options{
		Pairs:       opts.Pairs,
		Thresholds:  opts.Thresholds,
		Rand:        rng,
		FixedAngles: opts.FixedAngles,
		Denominator: stats.Sample,
	})
	if err != nil {
		return nil, err
	}
	released, err := ds.WithData(res.DPrime)
	if err != nil {
		return nil, err
	}
	released.Labels = nil
	if !opts.KeepIDs {
		released = released.DropIDs()
	}
	p := &Protected{
		Released:   released,
		Reports:    res.Reports,
		key:        res.Key,
		normMethod: method,
	}
	switch n := normalizer.(type) {
	case *norm.ZScore:
		p.paramsA, p.paramsB = n.Params()
	case *norm.MinMax:
		p.paramsA, p.paramsB = n.Params()
	}
	return p, nil
}

// Recover inverts a release using the owner's secret: it undoes the
// rotations and then the normalization, restoring the original attribute
// values (up to float rounding).
func Recover(released *Dataset, secret OwnerSecret) (*Dataset, error) {
	if released == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrOptions)
	}
	if err := released.Validate(); err != nil {
		return nil, err
	}
	normalized, err := core.Recover(released.Data, secret.Key)
	if err != nil {
		return nil, err
	}
	normalizer, err := restoreNormalizer(secret)
	if err != nil {
		return nil, err
	}
	raw, err := normalizer.Inverse(normalized)
	if err != nil {
		return nil, fmt.Errorf("ppclust: inverting normalization: %w", err)
	}
	return released.WithData(raw)
}

// newRNG builds the angle randomness source: seeded from seed when
// nonzero (reproduction runs), from crypto/rand otherwise so keys are
// unpredictable by default.
func newRNG(seed int64) (*rand.Rand, error) {
	if seed == 0 {
		var err error
		if seed, err = engine.CryptoSeed(); err != nil {
			return nil, err
		}
	}
	return rand.New(rand.NewSource(seed)), nil
}

func newNormalizer(method Normalization) (norm.Normalizer, error) {
	switch method {
	case ZScore:
		return &norm.ZScore{Denominator: stats.Sample}, nil
	case MinMax:
		return &norm.MinMax{NewMax: 1}, nil
	default:
		return nil, fmt.Errorf("%w: unknown normalization %q", ErrOptions, method)
	}
}

func restoreNormalizer(secret OwnerSecret) (norm.Normalizer, error) {
	switch secret.Normalization {
	case ZScore:
		return norm.NewZScoreWithParams(secret.ParamsA, secret.ParamsB)
	case MinMax:
		return norm.NewMinMaxWithParams(secret.ParamsA, secret.ParamsB, 0, 1)
	default:
		return nil, fmt.Errorf("%w: unknown normalization %q", ErrOptions, secret.Normalization)
	}
}
