package ppclust

// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact (see the experiment index in DESIGN.md), plus the Theorem 1
// scaling sweeps and the extension experiments. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"math/rand"
	"testing"

	"ppclust/internal/attack"
	"ppclust/internal/baseline"
	"ppclust/internal/cluster"
	"ppclust/internal/core"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/engine"
	"ppclust/internal/matrix"
	"ppclust/internal/multiparty"
	"ppclust/internal/norm"
	"ppclust/internal/privacy"
	"ppclust/internal/rotate"
	"ppclust/internal/stats"
)

func paperOpts() ProtectOptions {
	return ProtectOptions{
		Pairs:       []Pair{{I: 0, J: 2}, {I: 1, J: 0}},
		Thresholds:  []PST{{Rho1: 0.30, Rho2: 0.55}, {Rho1: 2.30, Rho2: 2.30}},
		FixedAngles: []float64{312.47, 147.29},
	}
}

// BenchmarkTable1Load regenerates Table 1 (the embedded sample).
func BenchmarkTable1Load(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ds := dataset.CardiacSample(); ds.Rows() != 5 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkTable2Normalize regenerates Table 2 (z-score normalization).
func BenchmarkTable2Normalize(b *testing.B) {
	raw := dataset.CardiacSample().Data
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z := &norm.ZScore{Denominator: stats.Sample}
		if _, err := norm.FitTransform(z, raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2SecurityRange regenerates Figure 2's security range for
// pair (age, heart_rate) with PST (0.30, 0.55).
func BenchmarkFigure2SecurityRange(b *testing.B) {
	nd := dataset.CardiacNormalized().Data
	curve, err := core.NewVarianceCurve(nd, core.Pair{I: 0, J: 2}, stats.Sample)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := curve.SecurityRange(core.PST{Rho1: 0.30, Rho2: 0.55}, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3SecurityRange regenerates Figure 3's security range for
// pair (weight, age') with PST (2.30, 2.30).
func BenchmarkFigure3SecurityRange(b *testing.B) {
	nd := dataset.CardiacNormalized().Data.Clone()
	// Apply the first rotation so the curve sees age', as in the paper.
	if err := rotate.Pair(nd, 0, 2, 312.47); err != nil {
		b.Fatal(err)
	}
	curve, err := core.NewVarianceCurve(nd, core.Pair{I: 1, J: 0}, stats.Sample)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := curve.SecurityRange(core.PST{Rho1: 2.30, Rho2: 2.30}, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Transform regenerates Table 3 (the full RBT pipeline with
// the paper's angles) through the public facade.
func BenchmarkTable3Transform(b *testing.B) {
	ds := dataset.CardiacSample()
	opts := paperOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Protect(ds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Dissimilarity regenerates Table 4 (the dissimilarity
// matrix of the transformed sample).
func BenchmarkTable4Dissimilarity(b *testing.B) {
	released := dataset.CardiacTransformed().Data
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.NewDissimMatrix(released, dist.Euclidean{})
	}
}

// BenchmarkTable5Renormalize regenerates Table 5 (the re-normalization
// attack and its dissimilarity matrix).
func BenchmarkTable5Renormalize(b *testing.B) {
	released := dataset.CardiacTransformed().Data
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		renorm, err := attack.Renormalize(released)
		if err != nil {
			b.Fatal(err)
		}
		dist.NewDissimMatrix(renorm, dist.Euclidean{})
	}
}

// BenchmarkRBTScalingM sweeps the object count at fixed attribute count —
// the m axis of Theorem 1. ns/op should grow linearly with m.
func BenchmarkRBTScalingM(b *testing.B) {
	for _, m := range []int{1000, 4000, 16000, 64000} {
		data := matrix.RandomDense(m, 8, rand.New(rand.NewSource(1)))
		opts := core.Options{Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}}, GridStep: 0.5}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Transform(data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRBTScalingN sweeps the attribute count at fixed object count —
// the n axis of Theorem 1.
func BenchmarkRBTScalingN(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		data := matrix.RandomDense(4000, n, rand.New(rand.NewSource(2)))
		opts := core.Options{Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}}, GridStep: 0.5}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Transform(data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIsometryCheck measures the Theorem 2 verification on a
// mid-sized matrix (transform + two dissimilarity matrices + compare).
func BenchmarkIsometryCheck(b *testing.B) {
	data := matrix.RandomDense(500, 6, rand.New(rand.NewSource(3)))
	opts := core.Options{Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Transform(data, opts)
		if err != nil {
			b.Fatal(err)
		}
		before := dist.NewDissimMatrix(data, dist.Euclidean{})
		after := dist.NewDissimMatrix(res.DPrime, dist.Euclidean{})
		if !before.EqualApprox(after, 1e-9) {
			b.Fatal("isometry violated")
		}
	}
}

// BenchmarkCorollary1KMeans measures k-means on RBT-released data — the
// Corollary 1 workload.
func BenchmarkCorollary1KMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ds, err := dataset.WellSeparatedBlobs(2000, 3, 8, 12, rng)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Transform(ds.Data, core.Options{Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alg := &cluster.KMeans{K: 3, Rand: rand.New(rand.NewSource(1))}
		if _, err := alg.Cluster(res.DPrime); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVarianceReport measures the EXT1 privacy report.
func BenchmarkVarianceReport(b *testing.B) {
	nd := dataset.CardiacNormalized().Data
	released := dataset.CardiacTransformed().Data
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := privacy.Report(nd, released, nil, stats.Sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecuritySweep measures the EXT2 Sec(θ) sweep (361 curve
// evaluations).
func BenchmarkSecuritySweep(b *testing.B) {
	nd := dataset.CardiacNormalized().Data
	curve, err := core.NewVarianceCurve(nd, core.Pair{I: 0, J: 2}, stats.Sample)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		curve.Sample(361)
	}
}

// BenchmarkBaselineComparison measures one EXT3 sweep step: perturbing a
// 1000x8 matrix with each baseline method.
func BenchmarkBaselineComparison(b *testing.B) {
	data := matrix.RandomDense(1000, 8, rand.New(rand.NewSource(5)))
	perturbers := []baseline.Perturber{
		&baseline.AdditiveNoise{Sigma: 0.5},
		&baseline.Translation{Offsets: []float64{1}},
		&baseline.Scaling{Factors: []float64{2}},
		&baseline.Swapping{},
		&baseline.RandomOrthogonal{},
	}
	for _, p := range perturbers {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Perturb(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKnownIOAttack measures the EXT4 known input-output key recovery
// on a 2000x6 release.
func BenchmarkKnownIOAttack(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	data := matrix.RandomDense(2000, 6, rng)
	res, err := core.Transform(data, core.Options{Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}}})
	if err != nil {
		b.Fatal(err)
	}
	rows := []int{1, 100, 500, 900, 1500, 1999}
	knownOrig := data.SelectRows(rows)
	knownRel := res.DPrime.SelectRows(rows)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := attack.KnownIO(knownOrig, knownRel)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := attack.RecoverWithQ(res.DPrime, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPCAAttack measures the EXT4 eigen-alignment attack (covariance,
// two eigendecompositions, 2^n sign search) on a 2000x4 release.
func BenchmarkPCAAttack(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := 2000
	data := matrix.NewDense(m, 4, nil)
	for i := 0; i < m; i++ {
		a, c, d, e := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		data.SetAt(i, 0, 4*a*a)
		data.SetAt(i, 1, 2*c*c)
		data.SetAt(i, 2, d*d)
		data.SetAt(i, 3, 0.5*e*e)
	}
	res, err := core.Transform(data, core.Options{Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}}})
	if err != nil {
		b.Fatal(err)
	}
	refCov := stats.CovarianceMatrix(data, stats.Sample)
	refSkew := make([]float64, 4)
	for j := range refSkew {
		refSkew[j] = attack.Skewness(data.Col(j))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := attack.PCA(res.DPrime, refCov, refSkew); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtectRecover measures the full facade round trip on a
// realistic release size.
func BenchmarkProtectRecover(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	patients, err := dataset.SyntheticPatients(5000, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	opts := ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}, Seed: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := Protect(patients, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Recover(p.Released, p.Secret()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusteringAlgorithms measures every clustering family on a
// common 500x4 three-blob workload (the Corollary 1 substrate).
func BenchmarkClusteringAlgorithms(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ds, err := dataset.WellSeparatedBlobs(500, 3, 4, 12, rng)
	if err != nil {
		b.Fatal(err)
	}
	// Spectral's dense eigendecomposition is O(m³); it gets a smaller
	// workload so the suite stays fast.
	small := ds.Data.SelectRows(rand.New(rand.NewSource(12)).Perm(500)[:200])
	type workload struct {
		mk   func() cluster.Clusterer
		data *matrix.Dense
	}
	algs := []workload{
		{func() cluster.Clusterer { return &cluster.KMeans{K: 3, Rand: rand.New(rand.NewSource(1))} }, ds.Data},
		{func() cluster.Clusterer { return &cluster.KMedoids{K: 3} }, ds.Data},
		{func() cluster.Clusterer { return &cluster.Hierarchical{K: 3, Linkage: cluster.AverageLinkage} }, ds.Data},
		{func() cluster.Clusterer { return &cluster.Hierarchical{K: 3, Linkage: cluster.WardLinkage} }, ds.Data},
		{func() cluster.Clusterer { return &cluster.DBSCAN{Eps: 2, MinPts: 4} }, ds.Data},
		{func() cluster.Clusterer { return &cluster.Spectral{K: 3, Rand: rand.New(rand.NewSource(1))} }, small},
	}
	for _, w := range algs {
		w := w
		b.Run(w.mk().Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := w.mk().Cluster(w.data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSecurityRangeGridStep is the ABL1 ablation as a bench: scan cost
// versus grid resolution.
func BenchmarkSecurityRangeGridStep(b *testing.B) {
	nd := dataset.CardiacNormalized().Data
	curve, err := core.NewVarianceCurve(nd, core.Pair{I: 0, J: 2}, stats.Sample)
	if err != nil {
		b.Fatal(err)
	}
	for _, step := range []float64{5, 1, 0.1, 0.01} {
		step := step
		b.Run(fmt.Sprintf("step=%g", step), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := curve.SecurityRange(core.PST{Rho1: 0.30, Rho2: 0.55}, step); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultipartyJoin measures the EXT5 two-party protect-and-join
// pipeline.
func BenchmarkMultipartyJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	population, err := dataset.SyntheticCustomers(1000, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	left := &dataset.Dataset{
		Names: population.Names[:2],
		Data:  population.Data.SubMatrix(0, population.Rows(), 0, 2),
	}
	right := &dataset.Dataset{
		Names: population.Names[2:],
		Data:  population.Data.SubMatrix(0, population.Rows(), 2, 5),
	}
	pst := []core.PST{{Rho1: 0.3, Rho2: 0.3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		relA, err := (&multiparty.Party{Name: "a", Data: left, Thresholds: pst, Seed: 1}).Protect()
		if err != nil {
			b.Fatal(err)
		}
		relB, err := (&multiparty.Party{Name: "b", Data: right, Thresholds: pst, Seed: 2}).Protect()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := multiparty.Join(relA, relB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineProtectParallel measures the ppclustd serving engine on a
// 100k x 16 workload: the serial facade path first, then the worker-pool
// engine at 1/2/4/8 workers on both storage layouts — the row-major
// kernels ("rows") and the default cache-blocked columnar kernels
// ("workers=N"), which produce bit-identical releases. The arena variant
// reuses caller-owned buffers across iterations (steady-state protect,
// near-zero allocation) and the float32 variant runs the opt-in
// reduced-precision kernel.
func BenchmarkEngineProtectParallel(b *testing.B) {
	const m, n = 100_000, 16
	data := matrix.RandomDense(m, n, rand.New(rand.NewSource(40)))
	names := make([]string, n)
	for j := range names {
		names[j] = fmt.Sprintf("a%d", j)
	}
	ds, err := dataset.New(names, data)
	if err != nil {
		b.Fatal(err)
	}
	pst := []PST{{Rho1: 1e-6, Rho2: 1e-6}}

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Protect(ds, ProtectOptions{Thresholds: pst, Seed: 40}); err != nil {
				b.Fatal(err)
			}
		}
	})
	eopts := engine.ProtectOptions{Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}}, Seed: 40}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := engine.New(w, 0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Protect(data, eopts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rows/workers=%d", w), func(b *testing.B) {
			eng := engine.New(w, 0)
			opts := eopts
			opts.Layout = engine.LayoutRows
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Protect(data, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("arena/workers=8", func(b *testing.B) {
		eng := engine.New(8, 0)
		opts := eopts
		opts.Arena = &engine.Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Protect(data, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("float32/workers=8", func(b *testing.B) {
		eng := engine.New(8, 0)
		opts := eopts
		opts.Precision = engine.PrecisionFloat32
		opts.Arena = &engine.Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Protect(data, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineRecoverParallel measures the fused inverse (rotations +
// denormalization in one pass) on the same 100k x 16 workload.
func BenchmarkEngineRecoverParallel(b *testing.B) {
	data := matrix.RandomDense(100_000, 16, rand.New(rand.NewSource(41)))
	res, err := engine.Default().Protect(data, engine.ProtectOptions{
		Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}},
	})
	if err != nil {
		b.Fatal(err)
	}
	sec := res.Secret()
	for _, w := range []int{1, 4} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := engine.New(w, 0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Recover(res.Released, sec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamProtector measures incremental batch protection under a
// frozen key — the ppclustd mode=stream hot path (1024-row batches, 16
// attributes).
func BenchmarkStreamProtector(b *testing.B) {
	seed := matrix.RandomDense(8192, 16, rand.New(rand.NewSource(42)))
	res, err := engine.Default().Protect(seed, engine.ProtectOptions{
		Thresholds: []core.PST{{Rho1: 1e-6, Rho2: 1e-6}},
	})
	if err != nil {
		b.Fatal(err)
	}
	sp, err := engine.Default().NewStreamProtector(res.Secret())
	if err != nil {
		b.Fatal(err)
	}
	batch := matrix.RandomDense(1024, 16, rand.New(rand.NewSource(43)))
	b.ReportAllocs()
	b.SetBytes(int64(1024 * 16 * 8))
	for i := 0; i < b.N; i++ {
		if _, err := sp.ProtectBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
