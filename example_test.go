package ppclust_test

import (
	"fmt"

	"ppclust"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
)

// ExampleProtect reproduces the paper's worked example through the public
// API: the cardiac sample of Table 1 is protected with the exact pairs,
// thresholds and angles of Section 5.1, yielding Table 3.
func ExampleProtect() {
	ds := dataset.CardiacSample()
	protected, err := ppclust.Protect(ds, ppclust.ProtectOptions{
		Pairs:       []ppclust.Pair{{I: 0, J: 2}, {I: 1, J: 0}},
		Thresholds:  []ppclust.PST{{Rho1: 0.30, Rho2: 0.55}, {Rho1: 2.30, Rho2: 2.30}},
		FixedAngles: []float64{312.47, 147.29},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i := 0; i < protected.Released.Rows(); i++ {
		fmt.Printf("%.4f %.4f %.4f\n",
			protected.Released.Data.At(i, 0),
			protected.Released.Data.At(i, 1),
			protected.Released.Data.At(i, 2))
	}
	// Output:
	// -1.4405 0.0819 0.8577
	// -1.0063 1.0077 -0.7108
	// 1.1368 0.5347 -0.0429
	// 1.7453 -0.3078 -0.0701
	// -0.4353 -1.3165 -0.0339
}

// ExampleRecover shows the owner-side inversion: the secret restores the
// exact raw values from a release.
func ExampleRecover() {
	ds := dataset.CardiacSample()
	protected, err := ppclust.Protect(ds, ppclust.ProtectOptions{
		Thresholds: []ppclust.PST{{Rho1: 0.2, Rho2: 0.2}},
		Seed:       7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	recovered, err := ppclust.Recover(protected.Released, protected.Secret())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.0f %.0f %.0f\n", recovered.Data.At(0, 0), recovered.Data.At(0, 1), recovered.Data.At(0, 2))
	// Output:
	// 75 80 63
}

// ExampleProtect_distances shows the scheme's defining property: the
// released data has exactly the dissimilarity matrix of the normalized
// original (the paper's Table 4).
func ExampleProtect_distances() {
	protected, err := ppclust.Protect(dataset.CardiacSample(), ppclust.ProtectOptions{
		Thresholds: []ppclust.PST{{Rho1: 0.2, Rho2: 0.2}},
		Seed:       3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	dm := dist.NewDissimMatrix(protected.Released.Data, dist.Euclidean{})
	fmt.Printf("d(2,1) = %.4f\n", dm.At(1, 0))
	// Output:
	// d(2,1) = 1.8723
}
