package ppclust

import (
	"math/rand"
	"testing"

	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/matrix"
)

func protectorSeed(t *testing.T) *Dataset {
	t.Helper()
	ds, err := dataset.SyntheticPatients(800, 3, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestProtectorBatchRoundTrip(t *testing.T) {
	seed := protectorSeed(t)
	p, err := NewProtector(seed, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Released() == nil || p.Released().Rows() != seed.Rows() {
		t.Fatal("missing seed release")
	}
	if len(p.Reports()) == 0 {
		t.Fatal("missing pair reports")
	}
	batch, err := dataset.SyntheticPatients(57, 3, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := p.ProtectBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.EqualApprox(rel.Data, batch.Data, 0.5) {
		t.Fatal("released batch looks like the raw batch")
	}
	back, err := p.RecoverBatch(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Data, batch.Data, 1e-7) {
		t.Fatal("batch did not round-trip")
	}
}

func TestProtectorFromSecretMatches(t *testing.T) {
	seed := protectorSeed(t)
	p, err := NewProtector(seed, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Serialize the secret and rebuild — the service restart path.
	raw, err := p.Secret().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	secret, err := ParseSecret(raw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewProtectorFromSecret(secret)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SyntheticPatients(33, 3, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.ProtectBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.ProtectBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a.Data, b.Data) {
		t.Fatal("rebuilt protector releases differ from the original's")
	}
	// And the rebuilt protector can invert a one-shot Protect release too.
	oneShot, err := Protect(seed, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewProtectorFromSecret(oneShot.Secret())
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.RecoverBatch(oneShot.Released)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Data, seed.Data, 1e-7) {
		t.Fatal("rebuilt protector could not invert a Protect release")
	}
}

func TestProtectorCrossBatchDistances(t *testing.T) {
	seed := protectorSeed(t)
	p, err := NewProtector(seed, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Protect the seed again in two batches; stacking the batch releases
	// must reproduce the seed release exactly (same frozen transform).
	half := seed.Rows() / 2
	first := &Dataset{Names: seed.Names, Data: seed.Data.SubMatrix(0, half, 0, seed.Cols())}
	second := &Dataset{Names: seed.Names, Data: seed.Data.SubMatrix(half, seed.Rows(), 0, seed.Cols())}
	relA, err := p.ProtectBatch(first)
	if err != nil {
		t.Fatal(err)
	}
	relB, err := p.ProtectBatch(second)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := matrix.AppendRows(relA.Data, relB.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(joined, p.Released().Data, 1e-12) {
		t.Fatal("batchwise release differs from the one-shot seed release")
	}
	before := dist.NewDissimMatrix(p.Released().Data, dist.Euclidean{})
	after := dist.NewDissimMatrix(joined, dist.Euclidean{})
	if !before.EqualApprox(after, 1e-12) {
		t.Fatal("cross-batch distances drifted")
	}
}

func TestProtectStreamChannel(t *testing.T) {
	seed := protectorSeed(t)
	p, err := NewProtector(seed, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Dataset)
	out := p.ProtectStream(in)
	go func() {
		defer close(in)
		for i := 0; i < 5; i++ {
			b, err := dataset.SyntheticPatients(20, 3, rand.New(rand.NewSource(int64(40+i))))
			if err != nil {
				t.Error(err)
				return
			}
			in <- b
		}
	}()
	got := 0
	for res := range out {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Released.Rows() != 20 {
			t.Fatalf("batch %d has %d rows", got, res.Released.Rows())
		}
		got++
	}
	if got != 5 {
		t.Fatalf("received %d batches, want 5", got)
	}
}

func TestProtectStreamErrorStopsStream(t *testing.T) {
	seed := protectorSeed(t)
	p, err := NewProtector(seed, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}})
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *Dataset, 3)
	bad := &Dataset{Names: []string{"x"}, Data: matrix.NewDense(2, 1, []float64{1, 2})}
	good, err := dataset.SyntheticPatients(5, 3, rand.New(rand.NewSource(50)))
	if err != nil {
		t.Fatal(err)
	}
	in <- bad
	in <- good
	in <- good
	close(in)
	var results []StreamResult
	for res := range p.ProtectStream(in) {
		results = append(results, res)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("expected exactly one error result, got %+v", results)
	}
}

func TestProtectorValidation(t *testing.T) {
	if _, err := NewProtector(nil, ProtectOptions{Thresholds: []PST{{Rho1: 1, Rho2: 1}}}); err == nil {
		t.Fatal("expected error for nil dataset")
	}
	seed := protectorSeed(t)
	if _, err := NewProtector(seed, ProtectOptions{Normalization: "fourier", Thresholds: []PST{{Rho1: 1, Rho2: 1}}}); err == nil {
		t.Fatal("expected error for unknown normalization")
	}
	if _, err := NewProtectorFromSecret(OwnerSecret{Normalization: "fourier"}); err == nil {
		t.Fatal("expected error for bad secret normalization")
	}
	p, err := NewProtector(seed, ProtectOptions{Thresholds: []PST{{Rho1: 0.3, Rho2: 0.3}}})
	if err != nil {
		t.Fatal(err)
	}
	narrow := &Dataset{Names: []string{"a"}, Data: matrix.NewDense(2, 1, []float64{1, 2})}
	if _, err := p.ProtectBatch(narrow); err == nil {
		t.Fatal("expected error for column mismatch")
	}
	if _, err := p.ProtectBatch(nil); err == nil {
		t.Fatal("expected error for nil batch")
	}
	// Reordered attributes must be rejected: the transform is positional.
	reordered := seed.Clone()
	reordered.Names[0], reordered.Names[1] = reordered.Names[1], reordered.Names[0]
	if _, err := p.ProtectBatch(reordered); err == nil {
		t.Fatal("expected error for reordered attribute names")
	}
}
