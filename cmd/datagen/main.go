// Command datagen emits the library's synthetic datasets as CSV, for use
// with cmd/rbt, ppclustd dataset uploads and external tools.
//
// Usage:
//
//	datagen -kind patients -m 300 -k 3 -seed 7 -out patients.csv
//	datagen -kind blobs -m 500 -labels -out blobs.csv   # + ground truth
//
// Kinds: blobs, rings, moons, uniform, patients, customers.
//
// By default the output holds only attribute columns — the shape protect
// and cluster workloads ingest directly. -labels appends the generator's
// ground-truth cluster index as a trailing "label" column (every kind
// except uniform has one), which is what an evaluate job needs as its
// reference partition (upload with labels=last).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ppclust/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	kind := fs.String("kind", "blobs", "dataset kind: blobs, rings, moons, uniform, patients, customers")
	m := fs.Int("m", 200, "number of objects")
	k := fs.Int("k", 3, "number of clusters/groups (blobs, rings, patients, customers)")
	dim := fs.Int("dim", 4, "dimensionality (blobs, uniform)")
	sep := fs.Float64("sep", 10, "cluster separation (blobs)")
	noise := fs.Float64("noise", 0.05, "noise level (rings, moons)")
	seed := fs.Int64("seed", 1, "random seed")
	labels := fs.Bool("labels", false, "append the ground-truth cluster index as a trailing label column (all kinds except uniform)")
	out := fs.String("out", "", "output CSV path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var (
		ds  *dataset.Dataset
		err error
	)
	switch *kind {
	case "blobs":
		ds, err = dataset.WellSeparatedBlobs(*m, *k, *dim, *sep, rng)
	case "rings":
		ds, err = dataset.Rings(*m, *k, *noise, rng)
	case "moons":
		ds, err = dataset.TwoMoons(*m, *noise, rng)
	case "uniform":
		ds, err = dataset.UniformHypercube(*m, *dim, 0, 1, rng)
	case "patients":
		ds, err = dataset.SyntheticPatients(*m, *k, rng)
	case "customers":
		ds, err = dataset.SyntheticCustomers(*m, *k, rng)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if *labels {
		if ds.Labels == nil {
			return fmt.Errorf("kind %q has no ground-truth labels", *kind)
		}
	} else {
		ds.Labels = nil
	}
	if *out == "" {
		return dataset.WriteCSV(stdout, ds)
	}
	if err := dataset.WriteCSVFile(*out, ds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d objects x %d attributes to %s\n", ds.Rows(), ds.Cols(), *out)
	return nil
}
