package main

import (
	"path/filepath"
	"strings"
	"testing"

	"ppclust/internal/dataset"
)

func TestRunAllKindsToStdout(t *testing.T) {
	for _, kind := range []string{"blobs", "rings", "moons", "uniform", "patients", "customers"} {
		var buf strings.Builder
		err := run([]string{"-kind", kind, "-m", "20", "-k", "2", "-seed", "3"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		lines := strings.Count(buf.String(), "\n")
		if lines != 21 { // header + 20 rows
			t.Fatalf("%s: %d lines, want 21", kind, lines)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "blobs.csv")
	var buf strings.Builder
	if err := run([]string{"-kind", "blobs", "-m", "10", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.ReadCSVFile(out, dataset.DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 10 || ds.Cols() != 4 || ds.Labels != nil {
		t.Fatalf("round trip %dx%d (labels %v)", ds.Rows(), ds.Cols(), ds.Labels)
	}
}

// TestLabelsFlag: -labels appends the ground-truth column for kinds that
// have one and refuses kinds that do not.
func TestLabelsFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "blobs.csv")
	var buf strings.Builder
	if err := run([]string{"-kind", "blobs", "-m", "12", "-k", "3", "-labels", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	opts := dataset.DefaultCSVOptions()
	opts.LabelColumn = 4
	ds, err := dataset.ReadCSVFile(out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 12 || ds.Cols() != 4 || ds.Labels == nil {
		t.Fatalf("labeled round trip %dx%d (labels %v)", ds.Rows(), ds.Cols(), ds.Labels)
	}
	seen := map[int]bool{}
	for _, l := range ds.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("labels cover %d groups, want 3", len(seen))
	}
	if err := run([]string{"-kind", "uniform", "-m", "10", "-labels"}, &buf); err == nil {
		t.Fatal("-labels on a kind without ground truth should error")
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-kind", "bogus"}, &buf); err == nil {
		t.Fatal("unknown kind should error")
	}
	if err := run([]string{"-kind", "blobs", "-m", "0"}, &buf); err == nil {
		t.Fatal("m=0 should error")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag should error")
	}
	if err := run([]string{"-kind", "blobs", "-out", "/nonexistent-dir/x.csv"}, &buf); err == nil {
		t.Fatal("unwritable path should error")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-kind", "patients", "-m", "15", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "patients", "-m", "15", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed should give identical output")
	}
}
