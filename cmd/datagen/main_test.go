package main

import (
	"path/filepath"
	"strings"
	"testing"

	"ppclust/internal/dataset"
)

func TestRunAllKindsToStdout(t *testing.T) {
	for _, kind := range []string{"blobs", "rings", "moons", "uniform", "patients", "customers"} {
		var buf strings.Builder
		err := run([]string{"-kind", kind, "-m", "20", "-k", "2", "-seed", "3"}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		lines := strings.Count(buf.String(), "\n")
		if lines != 21 { // header + 20 rows
			t.Fatalf("%s: %d lines, want 21", kind, lines)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "blobs.csv")
	var buf strings.Builder
	if err := run([]string{"-kind", "blobs", "-m", "10", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	opts := dataset.DefaultCSVOptions()
	opts.LabelColumn = 4
	ds, err := dataset.ReadCSVFile(out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 10 || ds.Cols() != 4 {
		t.Fatalf("round trip %dx%d", ds.Rows(), ds.Cols())
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-kind", "bogus"}, &buf); err == nil {
		t.Fatal("unknown kind should error")
	}
	if err := run([]string{"-kind", "blobs", "-m", "0"}, &buf); err == nil {
		t.Fatal("m=0 should error")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag should error")
	}
	if err := run([]string{"-kind", "blobs", "-out", "/nonexistent-dir/x.csv"}, &buf); err == nil {
		t.Fatal("unwritable path should error")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-kind", "patients", "-m", "15", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "patients", "-m", "15", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed should give identical output")
	}
}
