// Command rbt is the command-line interface to the ppclust library: it
// normalizes and rotation-protects CSV datasets (the paper's Figure 1
// pipeline), recovers them with the owner's secret, clusters them, and
// inspects privacy properties.
//
// Usage:
//
//	rbt transform -in data.csv -out released.csv -secret secret.json [flags]
//	rbt recover   -in released.csv -secret secret.json -out recovered.csv
//	rbt cluster   -in data.csv -algo kmeans -k 3
//	rbt inspect   -in data.csv
//	rbt dissim    -in data.csv [-metric euclidean]
//
// Run any subcommand with -h for its flags.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rbt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "transform":
		return cmdTransform(args[1:])
	case "recover":
		return cmdRecover(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "inspect":
		return cmdInspect(args[1:])
	case "dissim":
		return cmdDissim(args[1:])
	case "attack":
		return cmdAttack(args[1:])
	case "keyspace":
		return cmdKeyspace(args[1:])
	case "choosek":
		return cmdChooseK(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `rbt — privacy-preserving data sharing for clustering (RBT, VLDB SDM 2004)

subcommands:
  transform   normalize + rotation-protect a CSV for release
  recover     invert a release with the owner's secret
  cluster     run a clustering algorithm over a CSV
  inspect     per-attribute statistics of a CSV
  dissim      print the dissimilarity matrix of a CSV
  attack      mount an adversary model against a released CSV
  keyspace    count RBT key structures for n attributes (Section 5.2)
  choosek     pick a cluster count by silhouette sweep`)
}
