package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ppclust"
	"ppclust/internal/dataset"
	"ppclust/internal/report"
)

// csvFlags collects the CSV parsing options shared by every subcommand.
type csvFlags struct {
	in       string
	noHeader bool
	idCol    int
	labelCol int
}

func (c *csvFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.in, "in", "", "input CSV path (required)")
	fs.BoolVar(&c.noHeader, "no-header", false, "input has no header row")
	fs.IntVar(&c.idCol, "id-col", -1, "column index holding object IDs (-1: none)")
	fs.IntVar(&c.labelCol, "label-col", -1, "column index holding integer labels (-1: none)")
}

func (c *csvFlags) load() (*dataset.Dataset, error) {
	if c.in == "" {
		return nil, fmt.Errorf("-in is required")
	}
	opts := dataset.CSVOptions{
		Comma:       ',',
		HasHeader:   !c.noHeader,
		IDColumn:    c.idCol,
		LabelColumn: c.labelCol,
	}
	return dataset.ReadCSVFile(c.in, opts)
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ContinueOnError)
	var cf csvFlags
	cf.register(fs)
	out := fs.String("out", "", "output CSV path for the released data (required)")
	secretPath := fs.String("secret", "", "output path for the owner's secret JSON (required)")
	normMethod := fs.String("norm", "zscore", "normalization: zscore or minmax")
	pairsSpec := fs.String("pairs", "", "attribute pairs, e.g. \"0:2,1:0\" (default: round-robin)")
	thresholdSpec := fs.String("thresholds", "0.2:0.2", "PSTs per pair, e.g. \"0.3:0.55,2.3:2.3\" (one entry broadcasts)")
	anglesSpec := fs.String("angles", "", "fixed angles in degrees, e.g. \"312.47,147.29\" (default: random)")
	seed := fs.Int64("seed", 0, "angle randomness seed for reproduction runs (0: unpredictable, from crypto/rand)")
	keepIDs := fs.Bool("keep-ids", false, "retain object IDs in the release")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || *secretPath == "" {
		return fmt.Errorf("transform: -out and -secret are required")
	}
	ds, err := cf.load()
	if err != nil {
		return err
	}
	pairs, err := parsePairs(*pairsSpec)
	if err != nil {
		return err
	}
	thresholds, err := parseThresholds(*thresholdSpec)
	if err != nil {
		return err
	}
	angles, err := parseFloats(*anglesSpec)
	if err != nil {
		return err
	}
	protected, err := ppclust.Protect(ds, ppclust.ProtectOptions{
		Normalization: ppclust.Normalization(*normMethod),
		Pairs:         pairs,
		Thresholds:    thresholds,
		Seed:          *seed,
		FixedAngles:   angles,
		KeepIDs:       *keepIDs,
	})
	if err != nil {
		return err
	}
	if err := dataset.WriteCSVFile(*out, protected.Released); err != nil {
		return err
	}
	blob, err := protected.Secret().Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*secretPath, blob, 0o600); err != nil {
		return err
	}
	tb := report.NewTable("pair", "PST", "security range", "θ (deg)", "Var(Ai-Ai')", "Var(Aj-Aj')")
	for _, r := range protected.Reports {
		var ranges []string
		for _, iv := range r.SecurityRange {
			ranges = append(ranges, iv.String())
		}
		tb.AddRow(
			fmt.Sprintf("(%s,%s)", ds.Names[r.Pair.I], ds.Names[r.Pair.J]),
			fmt.Sprintf("(%g,%g)", r.PST.Rho1, r.PST.Rho2),
			strings.Join(ranges, " ∪ "),
			fmt.Sprintf("%.4f", r.ThetaDeg),
			fmt.Sprintf("%.4f", r.VarI),
			fmt.Sprintf("%.4f", r.VarJ),
		)
	}
	fmt.Printf("released %d objects x %d attributes to %s\nsecret written to %s (keep it private)\n\n%s",
		ds.Rows(), ds.Cols(), *out, *secretPath, tb.String())
	return nil
}

func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ContinueOnError)
	var cf csvFlags
	cf.register(fs)
	out := fs.String("out", "", "output CSV path for recovered data (required)")
	secretPath := fs.String("secret", "", "owner's secret JSON path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || *secretPath == "" {
		return fmt.Errorf("recover: -out and -secret are required")
	}
	ds, err := cf.load()
	if err != nil {
		return err
	}
	blob, err := os.ReadFile(*secretPath)
	if err != nil {
		return err
	}
	secret, err := ppclust.ParseSecret(blob)
	if err != nil {
		return err
	}
	recovered, err := ppclust.Recover(ds, secret)
	if err != nil {
		return err
	}
	if err := dataset.WriteCSVFile(*out, recovered); err != nil {
		return err
	}
	fmt.Printf("recovered %d objects x %d attributes to %s\n", recovered.Rows(), recovered.Cols(), *out)
	return nil
}

func parsePairs(spec string) ([]ppclust.Pair, error) {
	if spec == "" {
		return nil, nil
	}
	var pairs []ppclust.Pair
	for _, part := range strings.Split(spec, ",") {
		ij := strings.Split(part, ":")
		if len(ij) != 2 {
			return nil, fmt.Errorf("bad pair %q, want i:j", part)
		}
		i, err := strconv.Atoi(strings.TrimSpace(ij[0]))
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %v", part, err)
		}
		j, err := strconv.Atoi(strings.TrimSpace(ij[1]))
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %v", part, err)
		}
		pairs = append(pairs, ppclust.Pair{I: i, J: j})
	}
	return pairs, nil
}

func parseThresholds(spec string) ([]ppclust.PST, error) {
	if spec == "" {
		return nil, fmt.Errorf("thresholds are required (Definition 2: ρ1, ρ2 > 0)")
	}
	var out []ppclust.PST
	for _, part := range strings.Split(spec, ",") {
		rhos := strings.Split(part, ":")
		if len(rhos) != 2 {
			return nil, fmt.Errorf("bad threshold %q, want rho1:rho2", part)
		}
		r1, err := strconv.ParseFloat(strings.TrimSpace(rhos[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %v", part, err)
		}
		r2, err := strconv.ParseFloat(strings.TrimSpace(rhos[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %v", part, err)
		}
		out = append(out, ppclust.PST{Rho1: r1, Rho2: r2})
	}
	return out, nil
}

func parseFloats(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
