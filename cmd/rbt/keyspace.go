package main

import (
	"flag"
	"fmt"

	"ppclust/internal/core"
)

// cmdKeyspace prints the combinatorial key-space size of Section 5.2: the
// number of distinct pair-structure keys for n attributes and its entropy
// in bits (before the continuous per-pair angle is counted).
func cmdKeyspace(args []string) error {
	fs := flag.NewFlagSet("keyspace", flag.ContinueOnError)
	n := fs.Int("n", 0, "number of attributes (required, >= 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	count, err := core.KeyStructures(*n)
	if err != nil {
		return err
	}
	bits, err := core.KeyStructureBits(*n)
	if err != nil {
		return err
	}
	fmt.Printf("attributes:       %d\n", *n)
	fmt.Printf("pair structures:  %s\n", count.String())
	fmt.Printf("structural bits:  %.1f\n", bits)
	fmt.Println("each pair additionally carries a continuous angle from its security range;")
	fmt.Println("note that known-plaintext attacks bypass this count entirely (see EXPERIMENTS.md EXT4).")
	return nil
}
