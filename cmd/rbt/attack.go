package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"ppclust/internal/attack"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
)

// cmdAttack mounts the adversary models of internal/attack against a
// released CSV, so the trade-offs in EXPERIMENTS.md §EXT4 can be
// reproduced on arbitrary files.
func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	var cf csvFlags
	cf.register(fs)
	mode := fs.String("mode", "renorm", "attack: renorm (re-normalize, Section 5.2) or knownio (known input-output records)")
	knownPath := fs.String("known", "", "knownio: CSV of known original records (same columns as the release, normalized space)")
	rowsSpec := fs.String("rows", "", "knownio: released-row indices of the known records, e.g. \"0,5,9\"")
	out := fs.String("out", "", "knownio: output CSV for the recovered data")
	if err := fs.Parse(args); err != nil {
		return err
	}
	released, err := cf.load()
	if err != nil {
		return err
	}
	switch *mode {
	case "renorm":
		renorm, err := attack.Renormalize(released.Data)
		if err != nil {
			return err
		}
		before := dist.NewDissimMatrix(released.Data, dist.Euclidean{})
		after := dist.NewDissimMatrix(renorm, dist.Euclidean{})
		d, err := before.MaxAbsDiff(after)
		if err != nil {
			return err
		}
		fmt.Printf("re-normalization changes pairwise distances by up to %.4f\n", d)
		fmt.Println("per the paper's Section 5.2, the re-normalized data no longer matches the original geometry;")
		fmt.Println("this attack recovers nothing (compare Table 5 vs Table 6).")
		return nil
	case "knownio":
		if *knownPath == "" || *rowsSpec == "" || *out == "" {
			return fmt.Errorf("attack knownio: -known, -rows and -out are required")
		}
		knownOpts := dataset.DefaultCSVOptions()
		known, err := dataset.ReadCSVFile(*knownPath, knownOpts)
		if err != nil {
			return err
		}
		var rows []int
		for _, part := range strings.Split(*rowsSpec, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("attack knownio: bad row %q: %v", part, err)
			}
			if r < 0 || r >= released.Rows() {
				return fmt.Errorf("attack knownio: row %d out of range for %d released rows", r, released.Rows())
			}
			rows = append(rows, r)
		}
		if len(rows) != known.Rows() {
			return fmt.Errorf("attack knownio: %d rows given for %d known records", len(rows), known.Rows())
		}
		q, err := attack.KnownIO(known.Data, released.Data.SelectRows(rows))
		if err != nil {
			return err
		}
		recovered, err := attack.RecoverWithQ(released.Data, q)
		if err != nil {
			return err
		}
		recoveredDS, err := released.WithData(recovered)
		if err != nil {
			return err
		}
		if err := dataset.WriteCSVFile(*out, recoveredDS); err != nil {
			return err
		}
		fmt.Printf("estimated the %dx%d rotation from %d known records and wrote the recovered data to %s\n",
			released.Cols(), released.Cols(), len(rows), *out)
		fmt.Println("values are in the normalized space; only the normalization parameters remain unknown to the attacker.")
		return nil
	default:
		return fmt.Errorf("attack: unknown mode %q", *mode)
	}
}
