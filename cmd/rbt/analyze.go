package main

import (
	"flag"
	"fmt"
	"math/rand"

	"ppclust/internal/cluster"
	"ppclust/internal/dist"
	"ppclust/internal/quality"
	"ppclust/internal/report"
	"ppclust/internal/stats"
)

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	var cf csvFlags
	cf.register(fs)
	algo := fs.String("algo", "kmeans", "algorithm: kmeans, kmedoids, single, complete, average, ward, dbscan, spectral")
	k := fs.Int("k", 2, "number of clusters (ignored by dbscan)")
	eps := fs.Float64("eps", 0.5, "dbscan neighbourhood radius")
	minPts := fs.Int("min-pts", 4, "dbscan core-point threshold")
	seed := fs.Int64("seed", 1, "seed for k-means initialization")
	restarts := fs.Int("restarts", 1, "k-means restarts (best inertia wins)")
	showAssignments := fs.Bool("assignments", false, "print one line per object")
	showDendrogram := fs.Bool("dendrogram", false, "print the merge tree (hierarchical algorithms only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := cf.load()
	if err != nil {
		return err
	}
	var alg cluster.Clusterer
	var hier *cluster.Hierarchical
	switch *algo {
	case "kmeans":
		alg = &cluster.KMeans{K: *k, Rand: rand.New(rand.NewSource(*seed)), Restarts: *restarts}
	case "kmedoids":
		alg = &cluster.KMedoids{K: *k}
	case "single":
		hier = &cluster.Hierarchical{K: *k, Linkage: cluster.SingleLinkage}
		alg = hier
	case "complete":
		hier = &cluster.Hierarchical{K: *k, Linkage: cluster.CompleteLinkage}
		alg = hier
	case "average":
		hier = &cluster.Hierarchical{K: *k, Linkage: cluster.AverageLinkage}
		alg = hier
	case "ward":
		hier = &cluster.Hierarchical{K: *k, Linkage: cluster.WardLinkage}
		alg = hier
	case "dbscan":
		alg = &cluster.DBSCAN{Eps: *eps, MinPts: *minPts}
	case "spectral":
		alg = &cluster.Spectral{K: *k, Rand: rand.New(rand.NewSource(*seed))}
	default:
		return fmt.Errorf("cluster: unknown algorithm %q", *algo)
	}
	if *showDendrogram {
		if hier == nil {
			return fmt.Errorf("cluster: -dendrogram requires a hierarchical algorithm")
		}
		dend, err := hier.Dendrogram(ds.Data)
		if err != nil {
			return err
		}
		rendered, err := dend.Render(ds.IDs, 60)
		if err != nil {
			return err
		}
		fmt.Print(rendered)
	}
	res, err := alg.Cluster(ds.Data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d clusters, %d iterations, inertia %.4f\n", alg.Name(), res.K, res.Iterations, res.Inertia)
	if res.K >= 2 {
		if sil, err := quality.Silhouette(ds.Data, res.Assignments, nil); err == nil {
			fmt.Printf("silhouette: %.4f\n", sil)
		}
	}
	if ds.Labels != nil {
		if e, err := quality.MisclassificationError(ds.Labels, res.Assignments); err == nil {
			fmt.Printf("misclassification vs ground truth: %.4f\n", e)
		}
		if ari, err := quality.AdjustedRandIndex(ds.Labels, res.Assignments); err == nil {
			fmt.Printf("adjusted rand index vs ground truth: %.4f\n", ari)
		}
	}
	counts := map[int]int{}
	for _, a := range res.Assignments {
		counts[a]++
	}
	tb := report.NewTable("cluster", "size")
	for c := 0; c < res.K; c++ {
		tb.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", counts[c]))
	}
	if counts[cluster.Noise] > 0 {
		tb.AddRow("noise", fmt.Sprintf("%d", counts[cluster.Noise]))
	}
	fmt.Print(tb.String())
	if *showAssignments {
		for i, a := range res.Assignments {
			id := fmt.Sprintf("%d", i)
			if ds.IDs != nil {
				id = ds.IDs[i]
			}
			fmt.Printf("%s\t%d\n", id, a)
		}
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	var cf csvFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := cf.load()
	if err != nil {
		return err
	}
	fmt.Printf("%d objects x %d attributes\n\n", ds.Rows(), ds.Cols())
	tb := report.NewTable("attribute", "mean", "std", "min", "median", "max")
	for j, name := range ds.Names {
		s := stats.Describe(ds.Column(j))
		tb.AddRow(name,
			fmt.Sprintf("%.4f", s.Mean), fmt.Sprintf("%.4f", s.Std),
			fmt.Sprintf("%.4f", s.Min), fmt.Sprintf("%.4f", s.Median), fmt.Sprintf("%.4f", s.Max))
	}
	fmt.Print(tb.String())
	return nil
}

func cmdDissim(args []string) error {
	fs := flag.NewFlagSet("dissim", flag.ContinueOnError)
	var cf csvFlags
	cf.register(fs)
	metricName := fs.String("metric", "euclidean", "metric: euclidean, manhattan, chebyshev, cosine")
	limit := fs.Int("limit", 20, "print at most this many objects")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := cf.load()
	if err != nil {
		return err
	}
	metric, err := dist.ByName(*metricName)
	if err != nil {
		return err
	}
	if ds.Rows() > *limit {
		return fmt.Errorf("dissim: %d objects exceeds -limit %d (the matrix would have %d entries)",
			ds.Rows(), *limit, ds.Rows()*(ds.Rows()-1)/2)
	}
	dm := dist.NewDissimMatrix(ds.Data, metric)
	fmt.Printf("dissimilarity matrix (%s):\n%s", metric.Name(), report.LowerTriangle(dm.LowerTriangle()))
	return nil
}

// cmdChooseK sweeps K by silhouette, the model-selection companion for
// analysts who receive a release without knowing the group count.
func cmdChooseK(args []string) error {
	fs := flag.NewFlagSet("choosek", flag.ContinueOnError)
	var cf csvFlags
	cf.register(fs)
	kmin := fs.Int("kmin", 2, "smallest K to try")
	kmax := fs.Int("kmax", 8, "largest K to try")
	seed := fs.Int64("seed", 1, "k-means seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := cf.load()
	if err != nil {
		return err
	}
	sel, err := cluster.ChooseKBySilhouette(ds.Data, *kmin, *kmax, *seed)
	if err != nil {
		return err
	}
	tb := report.NewTable("K", "mean silhouette")
	for k := *kmin; k <= *kmax; k++ {
		marker := ""
		if k == sel.K {
			marker = "  <= best"
		}
		tb.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.4f%s", sel.Scores[k], marker))
	}
	fmt.Print(tb.String())
	fmt.Printf("selected K = %d\n", sel.K)
	return nil
}
