package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppclust/internal/dataset"
	"ppclust/internal/matrix"
)

// writeSampleCSV writes the paper's cardiac sample (with IDs) to a temp
// file and returns its path.
func writeSampleCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cardiac.csv")
	if err := dataset.WriteCSVFile(path, dataset.CardiacSample()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunNoArgsAndUnknown(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand should error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand should error")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help should succeed: %v", err)
	}
}

func TestTransformRecoverRoundTripCLI(t *testing.T) {
	in := writeSampleCSV(t)
	dir := t.TempDir()
	released := filepath.Join(dir, "released.csv")
	secret := filepath.Join(dir, "secret.json")
	recovered := filepath.Join(dir, "recovered.csv")

	err := run([]string{"transform",
		"-in", in, "-id-col", "0",
		"-out", released, "-secret", secret,
		"-pairs", "0:2,1:0",
		"-thresholds", "0.3:0.55,2.3:2.3",
		"-angles", "312.47,147.29",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The released file must reproduce Table 3.
	rel, err := dataset.ReadCSVFile(released, dataset.DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(rel.Data, dataset.CardiacTransformed().Data, 5e-5) {
		t.Fatalf("CLI release does not match Table 3:\n%v", rel.Data)
	}
	// And the secret must invert it back to the raw sample.
	err = run([]string{"recover", "-in", released, "-out", recovered, "-secret", secret})
	if err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSVFile(recovered, dataset.DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Data, dataset.CardiacSample().Data, 1e-8) {
		t.Fatal("CLI recovery did not restore the raw sample")
	}
}

func TestTransformCLIErrors(t *testing.T) {
	in := writeSampleCSV(t)
	dir := t.TempDir()
	cases := [][]string{
		{"transform", "-in", in},                   // missing -out/-secret
		{"transform", "-out", "x", "-secret", "y"}, // missing -in
		{"transform", "-in", "/nope.csv", "-out", "x", "-secret", "y"},
		{"transform", "-in", in, "-out", filepath.Join(dir, "o.csv"), "-secret", filepath.Join(dir, "s.json"), "-pairs", "0-2"},
		{"transform", "-in", in, "-out", filepath.Join(dir, "o.csv"), "-secret", filepath.Join(dir, "s.json"), "-thresholds", "abc"},
		{"transform", "-in", in, "-out", filepath.Join(dir, "o.csv"), "-secret", filepath.Join(dir, "s.json"), "-thresholds", "0.3:0.3", "-angles", "zz"},
		{"transform", "-in", in, "-out", filepath.Join(dir, "o.csv"), "-secret", filepath.Join(dir, "s.json"), "-thresholds", ""},
		{"recover", "-in", in},
		{"recover", "-in", in, "-out", "x", "-secret", "/nope.json"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("expected error for %v", args)
		}
	}
}

func TestClusterCLI(t *testing.T) {
	dir := t.TempDir()
	// Two clear blobs with labels.
	in := filepath.Join(dir, "blobs.csv")
	blobs := mustBlobs(t)
	if err := dataset.WriteCSVFile(in, blobs); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"kmeans", "kmedoids", "single", "complete", "average", "ward"} {
		err := run([]string{"cluster", "-in", in, "-label-col", "4", "-algo", algo, "-k", "2"})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if err := run([]string{"cluster", "-in", in, "-label-col", "4", "-algo", "dbscan", "-eps", "3", "-min-pts", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"cluster", "-in", in, "-algo", "bogus"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
	if err := run([]string{"cluster", "-in", in, "-label-col", "4", "-algo", "kmeans", "-k", "2", "-assignments"}); err != nil {
		t.Fatal(err)
	}
}

func mustBlobs(t *testing.T) *dataset.Dataset {
	t.Helper()
	data := matrix.FromRows([][]float64{
		{0, 0, 0, 0}, {0.5, 0.2, 0, 0.1}, {0.1, 0.4, 0.2, 0}, {0.3, 0.1, 0.1, 0.3},
		{9, 9, 9, 9}, {9.5, 9.2, 9, 9.1}, {9.1, 9.4, 9.2, 9}, {9.3, 9.1, 9.1, 9.3},
	})
	ds := &dataset.Dataset{
		Names:  []string{"a", "b", "c", "d"},
		Data:   data,
		Labels: []int{0, 0, 0, 0, 1, 1, 1, 1},
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestInspectAndDissimCLI(t *testing.T) {
	in := writeSampleCSV(t)
	if err := run([]string{"inspect", "-in", in, "-id-col", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"dissim", "-in", in, "-id-col", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"dissim", "-in", in, "-id-col", "0", "-metric", "bogus"}); err == nil {
		t.Fatal("unknown metric should error")
	}
	if err := run([]string{"dissim", "-in", in, "-id-col", "0", "-limit", "2"}); err == nil {
		t.Fatal("limit below row count should refuse to print")
	}
}

func TestAttackCLI(t *testing.T) {
	in := writeSampleCSV(t)
	dir := t.TempDir()
	released := filepath.Join(dir, "released.csv")
	secret := filepath.Join(dir, "secret.json")
	err := run([]string{"transform", "-in", in, "-id-col", "0",
		"-out", released, "-secret", secret, "-thresholds", "0.2:0.2", "-seed", "5"})
	if err != nil {
		t.Fatal(err)
	}

	// Re-normalization attack runs and reports.
	if err := run([]string{"attack", "-in", released, "-mode", "renorm"}); err != nil {
		t.Fatal(err)
	}

	// Known-IO attack: the attacker knows rows 0,1,2 in normalized space.
	// Build the known file from the true normalization (the attacker's
	// out-of-band knowledge).
	normalizedKnown := knownRecordsCSV(t, dir)
	recovered := filepath.Join(dir, "recovered.csv")
	err = run([]string{"attack", "-in", released, "-mode", "knownio",
		"-known", normalizedKnown, "-rows", "0,1,2", "-out", recovered})
	if err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSVFile(recovered, dataset.DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Data, dataset.CardiacNormalized().Data, 1e-3) {
		t.Fatal("known-IO CLI attack should recover the normalized data")
	}

	// Error paths.
	if err := run([]string{"attack", "-in", released, "-mode", "bogus"}); err == nil {
		t.Fatal("unknown mode should error")
	}
	if err := run([]string{"attack", "-in", released, "-mode", "knownio"}); err == nil {
		t.Fatal("missing knownio flags should error")
	}
	if err := run([]string{"attack", "-in", released, "-mode", "knownio",
		"-known", normalizedKnown, "-rows", "0,1", "-out", recovered}); err == nil {
		t.Fatal("row/record count mismatch should error")
	}
	if err := run([]string{"attack", "-in", released, "-mode", "knownio",
		"-known", normalizedKnown, "-rows", "0,1,99", "-out", recovered}); err == nil {
		t.Fatal("out-of-range row should error")
	}
}

func knownRecordsCSV(t *testing.T, dir string) string {
	t.Helper()
	nd := dataset.CardiacNormalized()
	known := &dataset.Dataset{
		Names: nd.Names,
		Data:  nd.Data.SelectRows([]int{0, 1, 2}),
	}
	path := filepath.Join(dir, "known.csv")
	if err := dataset.WriteCSVFile(path, known); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMainExitPath(t *testing.T) {
	// main() calls os.Exit on error, so only the success path is exercised
	// directly: run help through the real entry arguments.
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"rbt", "help"}
	main()
}

func TestUsageMentionsAllSubcommands(t *testing.T) {
	// usage writes to stderr; capture via pipe.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	usage()
	os.Stderr = oldStderr
	w.Close()
	buf := make([]byte, 4096)
	n, _ := r.Read(buf)
	out := string(buf[:n])
	for _, cmd := range []string{"transform", "recover", "cluster", "inspect", "dissim", "attack", "keyspace", "choosek"} {
		if !strings.Contains(out, cmd) {
			t.Fatalf("usage missing %q:\n%s", cmd, out)
		}
	}
}

func TestKeyspaceCLI(t *testing.T) {
	if err := run([]string{"keyspace", "-n", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"keyspace", "-n", "1"}); err == nil {
		t.Fatal("n < 2 should error")
	}
	if err := run([]string{"keyspace"}); err == nil {
		t.Fatal("missing -n should error")
	}
}

func TestChooseKCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "blobs.csv")
	if err := dataset.WriteCSVFile(in, mustBlobs(t)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"choosek", "-in", in, "-label-col", "4", "-kmin", "2", "-kmax", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"choosek", "-in", in, "-label-col", "4", "-kmin", "1", "-kmax", "3"}); err == nil {
		t.Fatal("kmin=1 should error")
	}
}

func TestClusterDendrogramAndSpectralCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "blobs.csv")
	if err := dataset.WriteCSVFile(in, mustBlobs(t)); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"cluster", "-in", in, "-label-col", "4", "-algo", "average", "-k", "2", "-dendrogram"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"cluster", "-in", in, "-label-col", "4", "-algo", "kmeans", "-k", "2", "-dendrogram"}); err == nil {
		t.Fatal("dendrogram with kmeans should error")
	}
	if err := run([]string{"cluster", "-in", in, "-label-col", "4", "-algo", "spectral", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"cluster", "-in", in, "-label-col", "4", "-algo", "kmeans", "-k", "2", "-restarts", "4"}); err != nil {
		t.Fatal(err)
	}
}
