package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf strings.Builder
	failed, err := run([]string{"-id", "T3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("T3 failed %d checks:\n%s", failed, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"[T3]", "Table 3", "[ok]", "all checks passed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf strings.Builder
	if _, err := run([]string{"-id", "ZZZ"}, &buf); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf strings.Builder
	if _, err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunQuickFigureExperiments(t *testing.T) {
	// The figure experiments render ASCII plots; they must pass and
	// include the plot legend.
	for _, id := range []string{"F2", "F3"} {
		var buf strings.Builder
		failed, err := run([]string{"-id", id}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if failed != 0 {
			t.Fatalf("%s failed:\n%s", id, buf.String())
		}
		if !strings.Contains(buf.String(), "legend:") || !strings.Contains(buf.String(), "security range:") {
			t.Fatalf("%s output missing plot artifacts:\n%s", id, buf.String())
		}
	}
}

func TestRunQuickTheorem1(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep skipped in -short mode")
	}
	var buf strings.Builder
	failed, err := run([]string{"-quick", "-id", "TH1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("TH1 -quick failed:\n%s", buf.String())
	}
}
