// Command ppcbench regenerates every table and figure of the paper plus the
// extended experiments, printing paper-expected versus measured values for
// each (the source of EXPERIMENTS.md). It exits non-zero if any check
// fails.
//
// Usage:
//
//	ppcbench            # run everything
//	ppcbench -id T3     # run a single experiment
//	ppcbench -quick     # smaller Theorem-1 timing sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ppclust/internal/experiments"
	"ppclust/internal/report"
)

func main() {
	failed, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppcbench:", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ppcbench: %d check(s) FAILED\n", failed)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (failed int, err error) {
	fs := flag.NewFlagSet("ppcbench", flag.ContinueOnError)
	id := fs.String("id", "", "run only the experiment with this ID (T1..T6, F2, F3, TH1, TH2, C1, EXT1..EXT4, ABL1..ABL3)")
	quick := fs.Bool("quick", false, "shrink the Theorem 1 timing sweep")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}

	var toRun []experiments.Experiment
	if *id != "" {
		e, err := experiments.ByID(*id)
		if err != nil {
			return 0, err
		}
		toRun = []experiments.Experiment{e}
	} else {
		toRun = experiments.All()
	}

	for _, e := range toRun {
		if *quick && e.ID() == "TH1" {
			e = experiments.Theorem1{Ms: []int{4000, 8000, 16000, 32000}, Ns: []int{8, 16, 32, 64}, Repeats: 2}
		}
		fmt.Fprint(w, report.Section(fmt.Sprintf("[%s] %s", e.ID(), e.Title())))
		out, err := e.Run()
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			failed++
			continue
		}
		fmt.Fprintln(w, out.Text)
		for _, c := range out.Checks {
			fmt.Fprintln(w, " ", c)
			if !c.Pass() {
				failed++
			}
		}
	}
	fmt.Fprintln(w)
	if failed == 0 {
		fmt.Fprintln(w, "ppcbench: all checks passed")
	}
	return failed, nil
}
