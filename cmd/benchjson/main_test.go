package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ppclust/cmd/ppclustd
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkJobEndToEnd 	       3	  84932407 ns/op
BenchmarkEngineProtectParallel/workers=4-8         	       1	  52341000 ns/op	 1024 B/op	       3 allocs/op
PASS
ok  	ppclust/cmd/ppclustd	0.364s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkJobEndToEnd" || b0.Iterations != 3 || b0.NsPerOp != 84932407 {
		t.Fatalf("b0 = %+v", b0)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "BenchmarkEngineProtectParallel/workers=4" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b1.Name)
	}
	if b1.NsPerOp != 52341000 || b1.Extra["B/op"] != 1024 || b1.Extra["allocs/op"] != 3 {
		t.Fatalf("b1 = %+v", b1)
	}
}

func TestParseEmptyAndJunk(t *testing.T) {
	doc, err := parse(strings.NewReader("no benchmarks here\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
	// A non-numeric iteration field just fails the line match and is
	// skipped; a malformed metric tail on a matched line is an error.
	doc, err = parse(strings.NewReader("BenchmarkBad 	 notanumber	 12 ns/op\n"))
	if err != nil || len(doc.Benchmarks) != 0 {
		t.Fatalf("unmatched line: %+v, %v", doc.Benchmarks, err)
	}
	if _, err := parse(strings.NewReader("BenchmarkBad 	 5	 12 ns/op trailing\n")); err == nil {
		t.Fatal("odd metric tail should error")
	}
}

func TestFilter(t *testing.T) {
	doc, err := parse(strings.NewReader(sample +
		"BenchmarkFederationEndToEnd/parties=3/rows=500 	       1	 116526507 ns/op	 1500 rows/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	doc.filter(regexp.MustCompile("Federation"))
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "BenchmarkFederationEndToEnd/parties=3/rows=500" {
		t.Fatalf("filtered = %+v", doc.Benchmarks)
	}
	if doc.Benchmarks[0].Extra["rows/op"] != 1500 {
		t.Fatalf("extra = %+v", doc.Benchmarks[0].Extra)
	}
	// Filtering everything away leaves an empty (not nil-confusing) list.
	doc.filter(regexp.MustCompile("NothingMatchesThis"))
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("expected empty after second filter, got %+v", doc.Benchmarks)
	}
}
