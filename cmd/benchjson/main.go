// Command benchjson converts `go test -bench` text output into a JSON
// artifact, so CI can archive per-commit benchmark numbers
// (BENCH_ppclustd.json, BENCH_ppfed.json) and the performance trajectory
// of the engine, the job subsystem and the federation workload stays
// machine-comparable across builds.
//
// Usage:
//
//	go test -run NONE -bench . -benchtime 1x ./... | benchjson -out BENCH.json
//	benchjson -match 'Federation' -out BENCH_ppfed.json < bench.txt
//
// -match keeps only benchmarks whose name matches the regexp, which lets
// one bench run be split into several per-subsystem artifacts.
// Non-benchmark lines (pkg headers, PASS/ok) are skipped; metadata lines
// (goos, goarch, cpu) are captured into the document header.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark (and sub-benchmark) name with the -N
	// GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline number.
	NsPerOp float64 `json:"ns_per_op"`
	// Extra holds any additional unit → value pairs (B/op, allocs/op,
	// custom ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the emitted artifact.
type Doc struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g. `BenchmarkFoo/sub-8   	 100	  1234 ns/op	 56 B/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := ""
	var match *regexp.Regexp
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-out":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -out needs a path")
				os.Exit(2)
			}
			i++
			out = args[i]
		case "-match":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -match needs a regexp")
				os.Exit(2)
			}
			i++
			var err error
			if match, err = regexp.Compile(args[i]); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad -match: %v\n", err)
				os.Exit(2)
			}
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown argument %q\n", args[i])
			os.Exit(2)
		}
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if match != nil {
		doc.filter(match)
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// filter keeps only the benchmarks whose name matches re.
func (d *Doc) filter(re *regexp.Regexp) {
	kept := d.Benchmarks[:0]
	for _, b := range d.Benchmarks {
		if re.MatchString(b.Name) {
			kept = append(kept, b)
		}
	}
	d.Benchmarks = kept
}

// parse reads `go test -bench` output into a Doc.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		res := Result{Name: m[1], Iterations: iters}
		// The tail alternates value/unit: `1234 ns/op 56 B/op 2 allocs/op`.
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("line %q: odd metric fields", line)
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			if fields[i+1] == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}
