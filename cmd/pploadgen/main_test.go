package main

// Unit tests for the load harness: mix parsing, the nearest-rank
// percentile, and a closed-loop smoke run against a stub daemon that
// verifies the report's counts, mix proportions and error accounting.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestParseMix(t *testing.T) {
	got, err := parseMix("upload=2,cluster=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []opKind{opUpload, opUpload, opCluster}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseMix = %v, want %v", got, want)
	}
	// Bare names default to weight 1.
	if got, err = parseMix("protect"); err != nil || len(got) != 1 || got[0] != opProtect {
		t.Fatalf("bare name: %v %v", got, err)
	}
	for _, bad := range []string{"", "upload=x", "delete=1", "upload=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
	// Weight 0 drops the operation.
	if got, _ := parseMix("upload=0,protect=1"); len(got) != 1 || got[0] != opProtect {
		t.Fatalf("zero weight: %v", got)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {10, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("p%g = %g, want %g", c.q, got, c.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Error("empty sample must yield 0")
	}
	if got := percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single sample p99 = %g", got)
	}
}

// stubDaemon implements just enough of the ppclustd surface for a load
// run: uploads mint a token, stream-protect echoes, jobs are done the
// moment they are polled. Protect can be made to fail to exercise the
// error-rate accounting.
func stubDaemon(failProtect *atomic.Bool) http.Handler {
	var jobs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Ppclust-Token", "tok-"+r.URL.Query().Get("owner"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"owner":%q,"name":%q,"rows":8}`, r.URL.Query().Get("owner"), r.URL.Query().Get("name"))
	})
	mux.HandleFunc("POST /v1/protect", func(w http.ResponseWriter, r *http.Request) {
		if failProtect != nil && failProtect.Load() && r.URL.Query().Get("mode") == "stream" {
			http.Error(w, `{"error":{"code":"internal","message":"boom"}}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprint(w, "a,b\n1,2\n")
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"j%d","state":"queued"}`, jobs.Add(1))
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"id":%q,"state":"done"}`, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":{"id":%q,"state":"done"},"result":{"k":3}}`, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"enabled":true,"alerts":[
			{"rule":"queue_depth>10 for 5s","kind":"threshold","series":"queue_depth","node":"n1",
			 "state":"firing","value":12,"threshold":10,
			 "since":"2026-08-07T00:00:00Z","fired_at":"2026-08-07T00:00:05Z"}]}`)
	})
	return mux
}

func TestLoadgenSmoke(t *testing.T) {
	ts := httptest.NewServer(stubDaemon(nil))
	t.Cleanup(ts.Close)

	var out bytes.Buffer
	err := run([]string{
		"-addrs", ts.URL, "-owners", "2", "-concurrency", "3",
		"-requests", "30", "-rows", "8", "-mix", "upload=1,protect=1,cluster=1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	total := 0
	for op, st := range rep.Ops {
		if st.Errors != 0 {
			t.Errorf("%s: %d errors", op, st.Errors)
		}
		if st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
			t.Errorf("%s: implausible percentiles %+v", op, st)
		}
		total += st.Count
	}
	if total != 30 {
		t.Fatalf("report covers %d ops, want 30", total)
	}
	// An even three-way mix over 30 requests is 10 of each.
	for _, op := range []string{"upload", "protect", "cluster"} {
		if rep.Ops[op].Count != 10 {
			t.Errorf("%s count = %d, want 10", op, rep.Ops[op].Count)
		}
	}
	if rep.ErrorRate != 0 || rep.Throughput <= 0 {
		t.Fatalf("error_rate=%g throughput=%g", rep.ErrorRate, rep.Throughput)
	}
}

func TestLoadgenCountsErrors(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	ts := httptest.NewServer(stubDaemon(&fail))
	t.Cleanup(ts.Close)

	var out bytes.Buffer
	err := run([]string{
		"-addrs", ts.URL, "-owners", "1", "-concurrency", "2",
		"-requests", "10", "-rows", "8", "-mix", "protect=1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ops["protect"].Errors != 10 || rep.ErrorRate != 1 {
		t.Fatalf("errors=%d rate=%g, want all failed", rep.Ops["protect"].Errors, rep.ErrorRate)
	}
}

// TestLoadgenSLOGate: a healthy run against a satisfiable objective
// exits clean; an unsatisfiable latency objective makes run() return
// errSLOBreach (so main exits non-zero), with the per-objective
// evaluation in the report either way.
func TestLoadgenSLOGate(t *testing.T) {
	ts := httptest.NewServer(stubDaemon(nil))
	t.Cleanup(ts.Close)

	base := []string{
		"-addrs", ts.URL, "-owners", "2", "-concurrency", "2",
		"-requests", "20", "-rows", "8", "-mix", "upload=1,protect=1",
	}

	var out bytes.Buffer
	if err := run(append(base, "-slo", "p50<60s,err<99%"), &out); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	var rep loadReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SLOStatus != "ok" || len(rep.SLO) != 2 {
		t.Fatalf("healthy report slo = %q %+v", rep.SLOStatus, rep.SLO)
	}

	// p50<0 is unsatisfiable: every sample is bad, the run must fail.
	out.Reset()
	err := run(append(base, "-slo", "protect:p50<0"), &out)
	if !errors.Is(err, errSLOBreach) {
		t.Fatalf("breach run err = %v, want errSLOBreach", err)
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("breach run still must print its report: %v\n%s", err, out.String())
	}
	if rep.SLOStatus != "breach" || len(rep.SLO) != 1 || rep.SLO[0].State != "breach" {
		t.Fatalf("breach report slo = %q %+v", rep.SLOStatus, rep.SLO)
	}
	if rep.SLO[0].Requests != int64(rep.Ops["protect"].Count) {
		t.Errorf("objective evaluated %d requests, protect ran %d", rep.SLO[0].Requests, rep.Ops["protect"].Count)
	}

	if _, ok := rep.Ops["upload"]; !ok {
		t.Fatal("no upload stats")
	}
	// Satellite: slowest samples carry ready-to-curl trace URLs.
	for _, op := range rep.Ops {
		for _, s := range op.Slowest {
			if s.TraceURL != ts.URL+"/v1/traces/"+s.TraceID {
				t.Fatalf("trace_url = %q for id %q", s.TraceURL, s.TraceID)
			}
		}
	}

	if err := run(append(base, "-slo", "nonsense"), &out); err == nil {
		t.Error("malformed -slo accepted")
	}
}

// TestLoadgenOutFileAndAlertWatch: -out mirrors the stdout report to a
// file byte-for-byte, and -watch-alerts records the firing alerts the
// stub daemon reports.
func TestLoadgenOutFileAndAlertWatch(t *testing.T) {
	ts := httptest.NewServer(stubDaemon(nil))
	t.Cleanup(ts.Close)

	outPath := filepath.Join(t.TempDir(), "report.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-addrs", ts.URL, "-owners", "1", "-concurrency", "2",
		"-requests", "6", "-rows", "8", "-mix", "protect=1",
		"-out", outPath, "-watch-alerts",
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, stdout.Bytes()) {
		t.Error("-out file differs from the stdout report")
	}
	var rep loadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.AlertsSeen) != 1 {
		t.Fatalf("alerts_seen = %+v, want the stub's one firing alert", rep.AlertsSeen)
	}
	if a := rep.AlertsSeen[0]; a.Rule != "queue_depth>10 for 5s" || a.Node != "n1" || a.FiredAt.IsZero() {
		t.Fatalf("watched alert = %+v", a)
	}

	// An unwritable -out path is a run error, not a silent drop.
	if err := run([]string{
		"-addrs", ts.URL, "-owners", "1", "-concurrency", "1",
		"-requests", "1", "-rows", "8", "-mix", "protect=1",
		"-out", filepath.Join(t.TempDir(), "missing", "report.json"),
	}, &stdout); err == nil {
		t.Error("unwritable -out accepted")
	}
}

// TestLoadgenWireFormats: -wire switches the body the measured ops carry
// (content type + format query), the report names the wire and accounts
// bytes per op in both directions, and the binary payload is the densest
// of the three for the same rows.
func TestLoadgenWireFormats(t *testing.T) {
	type seen struct {
		ct     string
		format string
		body   int64
	}
	var last atomic.Pointer[seen]
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		n, _ := io.Copy(io.Discard, r.Body)
		// Setup seeds via ppclient CSV; only format-tagged measured
		// uploads are recorded.
		if f := r.URL.Query().Get("format"); f != "" {
			last.Store(&seen{ct: r.Header.Get("Content-Type"), format: f, body: n})
		}
		w.Header().Set("X-Ppclust-Token", "tok")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"owner":"o","name":"d","rows":8}`)
	})
	mux.HandleFunc("POST /v1/protect", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "ok......")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	bytesOut := map[string]float64{}
	for wire, wantCT := range map[string]string{
		"csv": "text/csv", "json": "application/x-ndjson", "binary": "application/x-ppclust-rows",
	} {
		var out bytes.Buffer
		err := run([]string{
			"-addrs", ts.URL, "-owners", "1", "-concurrency", "1",
			"-requests", "4", "-rows", "8", "-mix", "upload=1,protect=1",
			"-wire", wire,
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", wire, err)
		}
		var rep loadReport
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Wire != wire {
			t.Errorf("%s: report wire = %q", wire, rep.Wire)
		}
		s := last.Load()
		if s == nil || s.ct != wantCT {
			t.Fatalf("%s: server saw %+v, want content type %q", wire, s, wantCT)
		}
		up := rep.Ops["upload"]
		if up.BytesOutPerOp != float64(s.body) || up.BytesOutPerOp <= 0 {
			t.Errorf("%s: bytes_out_per_op = %g, server read %d", wire, up.BytesOutPerOp, s.body)
		}
		if rep.Ops["protect"].BytesInPerOp != 8 {
			t.Errorf("%s: protect bytes_in_per_op = %g, want 8", wire, rep.Ops["protect"].BytesInPerOp)
		}
		bytesOut[wire] = up.BytesOutPerOp
	}
	if bytesOut["binary"] >= bytesOut["csv"] || bytesOut["binary"] >= bytesOut["json"] {
		t.Errorf("binary body not densest: %v", bytesOut)
	}

	var out bytes.Buffer
	if err := run([]string{"-addrs", ts.URL, "-wire", "xml"}, &out); err == nil {
		t.Error("unknown -wire accepted")
	}
}
