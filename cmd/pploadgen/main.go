// Command pploadgen is a closed-loop load harness for ppclustd: a fixed
// pool of workers drives a weighted mix of upload, protect and cluster
// operations against one or more nodes and reports per-operation latency
// percentiles (p50/p95/p99) and error rate as JSON on stdout.
//
// Closed-loop means each worker issues its next request only after the
// previous one completed, so concurrency — not offered rate — is the
// controlled variable, and the measured throughput is what the cluster
// actually sustained. That makes single-node versus 3-node comparisons
// measurements instead of assertions:
//
//	pploadgen -addrs http://n1:8080 -requests 500 > single.json
//	pploadgen -addrs http://n1:8080,http://n2:8080,http://n3:8080 \
//	          -requests 500 > ring.json
//
// Each owner is pinned round-robin to one entry node; with a ring behind
// the addresses the daemons forward to the owners' home nodes
// themselves, so the harness needs no placement knowledge.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppclust/internal/codec"
	"ppclust/internal/dataset"
	"ppclust/internal/obs"
	"ppclust/ppclient"
)

type opKind string

const (
	opUpload  opKind = "upload"
	opProtect opKind = "protect"
	opCluster opKind = "cluster"
)

// parseMix expands a weighted "upload=2,protect=1,cluster=1" spec into
// the deterministic cycle the workers step through, so any two runs
// with the same flags issue the same operation sequence.
func parseMix(s string) ([]opKind, error) {
	var cycle []opKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		w := 1
		if ok {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		kind := opKind(strings.TrimSpace(name))
		switch kind {
		case opUpload, opProtect, opCluster:
		default:
			return nil, fmt.Errorf("unknown mix operation %q (want upload, protect or cluster)", name)
		}
		for i := 0; i < w; i++ {
			cycle = append(cycle, kind)
		}
	}
	if len(cycle) == 0 {
		return nil, fmt.Errorf("mix %q selects no operations", s)
	}
	return cycle, nil
}

// percentile returns the nearest-rank q-th percentile (0 < q <= 100) of
// an ascending-sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

type opStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// BytesOutPerOp/BytesInPerOp are the mean request and response body
	// bytes per operation — what -wire=binary vs -wire=csv actually
	// changes on the wire. Counted on the raw-HTTP ops (upload, protect);
	// zero for the JSON job flow.
	BytesOutPerOp float64 `json:"bytes_out_per_op,omitempty"`
	BytesInPerOp  float64 `json:"bytes_in_per_op,omitempty"`
	// Slowest quotes the trace IDs of the operation's slowest requests:
	// the handle that joins a latency tail seen here to the span trees in
	// the daemons' logs (run them with -slow-ms to capture those).
	Slowest []slowSample `json:"slowest,omitempty"`
}

// slowSample is one tail-latency request, identified by its trace ID.
// TraceURL is ready to curl: the entry node's GET /v1/traces/{id},
// which returns the retained span tree stitched across the ring.
type slowSample struct {
	TraceID  string  `json:"trace_id"`
	Ms       float64 `json:"ms"`
	TraceURL string  `json:"trace_url,omitempty"`
}

// slowestCount is how many tail samples each op quotes in the report.
const slowestCount = 5

// sloResult is one objective evaluated over the run's exact samples —
// the same burn model the daemon's rolling window uses, but with no
// sampling error because the harness holds every observation.
type sloResult struct {
	Objective string  `json:"objective"`
	Requests  int64   `json:"requests"`
	Bad       int64   `json:"bad"`
	Budget    float64 `json:"budget"`
	BurnRate  float64 `json:"burn_rate"`
	State     string  `json:"state"`
}

type loadReport struct {
	Nodes       []string           `json:"nodes"`
	Owners      int                `json:"owners"`
	Concurrency int                `json:"concurrency"`
	Requests    int                `json:"requests"`
	Rows        int                `json:"rows"`
	Mix         string             `json:"mix"`
	Wire        string             `json:"wire,omitempty"`
	ElapsedS    float64            `json:"elapsed_s"`
	Throughput  float64            `json:"throughput_rps"`
	ErrorRate   float64            `json:"error_rate"`
	Ops         map[string]opStats `json:"ops"`
	SLOStatus   string             `json:"slo_status,omitempty"`
	SLO         []sloResult        `json:"slo,omitempty"`
	// AlertsSeen lists the alerts the -watch-alerts poller saw firing on
	// the cluster while the run was in flight.
	AlertsSeen []watchedAlert `json:"alerts_seen,omitempty"`
}

// watchedAlert is one alert observed in the firing state during a
// -watch-alerts run, deduplicated by rule, node and series.
type watchedAlert struct {
	Rule    string    `json:"rule"`
	Node    string    `json:"node,omitempty"`
	Series  string    `json:"series,omitempty"`
	FiredAt time.Time `json:"fired_at,omitzero"`
}

type sample struct {
	op    opKind
	ms    float64
	err   bool
	trace string
	node  string
	out   int64 // request body bytes on the wire
	in    int64 // response body bytes on the wire
}

// owner is one load identity: a ppclient pinned to its entry node plus
// the bearer token minted during setup, reused by the raw protect path.
type owner struct {
	name   string
	base   string
	client *ppclient.Client
	http   *http.Client
}

type harness struct {
	owners []owner
	csv    string
	mix    []opKind
	next   atomic.Int64

	// wire is the row format the measured upload/protect ops speak
	// ("csv", "json" i.e. NDJSON, or "binary"); body is the shared
	// request payload pre-rendered in that format, bodyCT its
	// Content-Type and formatQ the explicit format query value.
	wire    string
	body    []byte
	bodyCT  string
	formatQ string

	mu      sync.Mutex
	samples []sample
}

func (h *harness) record(op opKind, trace, node string, start time.Time, out, in int64, err error) {
	s := sample{op: op, ms: float64(time.Since(start).Microseconds()) / 1000, err: err != nil,
		trace: trace, node: node, out: out, in: in}
	h.mu.Lock()
	h.samples = append(h.samples, s)
	h.mu.Unlock()
}

func (h *harness) worker(ctx context.Context, requests int) {
	for {
		i := h.next.Add(1)
		if i > int64(requests) || ctx.Err() != nil {
			return
		}
		o := &h.owners[int(i)%len(h.owners)]
		op := h.mix[int(i)%len(h.mix)]
		// Each operation mints its trace ID client-side and pins it on the
		// context, so the daemon adopts it and the report can quote the IDs
		// of the slowest requests without parsing responses.
		trace := obs.NewTraceID()
		opCtx := ppclient.WithTraceID(ctx, trace)
		start := time.Now()
		var err error
		var out, in int64
		switch op {
		case opUpload:
			out, in, err = o.uploadRaw(opCtx, trace, fmt.Sprintf("lg%d", i), h)
		case opProtect:
			out, in, err = o.protectStream(opCtx, trace, h)
		case opCluster:
			err = o.clusterJob(opCtx)
		}
		h.record(op, trace, o.client.BaseURL, start, out, in, err)
	}
}

// rawPost issues one measured request in the harness's wire format and
// returns the body bytes that crossed the wire in each direction — the
// raw-HTTP twin of the ppclient calls, kept raw exactly so those counts
// are the request's, not an SDK's.
func (o *owner) rawPost(ctx context.Context, trace, u string, h *harness) (out, in int64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(h.body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", h.bodyCT)
	req.Header.Set(ppclient.TraceHeader, trace)
	if o.client.Token != "" {
		req.Header.Set("Authorization", "Bearer "+o.client.Token)
	}
	resp, err := o.http.Do(req)
	if err != nil {
		return int64(len(h.body)), 0, err
	}
	defer resp.Body.Close()
	in, err = io.Copy(io.Discard, resp.Body)
	out = int64(len(h.body))
	if err != nil {
		return out, in, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return out, in, fmt.Errorf("status %d", resp.StatusCode)
	}
	return out, in, nil
}

// uploadRaw stores the shared payload as a fresh dataset under name.
func (o *owner) uploadRaw(ctx context.Context, trace, name string, h *harness) (out, in int64, err error) {
	u := strings.TrimRight(o.client.BaseURL, "/") + "/v1/datasets?name=" + name +
		"&owner=" + o.name + "&format=" + h.formatQ
	out, in, err = o.rawPost(ctx, trace, u, h)
	if err != nil {
		return out, in, fmt.Errorf("upload: %w", err)
	}
	return out, in, nil
}

// protectStream pushes the payload through the owner's frozen key — the
// steady-state protect path, which neither rotates keys nor grows the
// keyring under load. The response streams back in the same format.
func (o *owner) protectStream(ctx context.Context, trace string, h *harness) (out, in int64, err error) {
	u := strings.TrimRight(o.client.BaseURL, "/") + "/v1/protect?mode=stream&owner=" + o.name +
		"&format=" + h.formatQ
	out, in, err = o.rawPost(ctx, trace, u, h)
	if err != nil {
		return out, in, fmt.Errorf("protect: %w", err)
	}
	return out, in, nil
}

// clusterJob runs one full cluster job — submit, poll, fetch result —
// as a single closed-loop operation.
func (o *owner) clusterJob(ctx context.Context) error {
	st, err := o.client.SubmitJob(ctx, map[string]any{"type": "cluster", "dataset": o.base, "k": 3})
	if err != nil {
		return err
	}
	done, err := o.client.WaitJob(ctx, st.ID, nil)
	if err != nil {
		return err
	}
	if done.State != "done" {
		return fmt.Errorf("job %s ended %s: %s", st.ID, done.State, done.Error)
	}
	if _, err := o.client.JobResult(ctx, st.ID, nil); err != nil {
		return err
	}
	return nil
}

// setup claims every owner (base dataset upload mints the token) and
// fits its protect key once, so the measured loop never pays one-time
// costs.
func (h *harness) setup(ctx context.Context) error {
	for i := range h.owners {
		o := &h.owners[i]
		if _, err := o.client.UploadDatasetCSV(ctx, o.base, strings.NewReader(h.csv), false); err != nil {
			return fmt.Errorf("seeding %s: %w", o.name, err)
		}
		u := strings.TrimRight(o.client.BaseURL, "/") + "/v1/protect?owner=" + o.name + "&seed=1"
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(h.csv))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/csv")
		req.Header.Set("Authorization", "Bearer "+o.client.Token)
		resp, err := o.http.Do(req)
		if err != nil {
			return fmt.Errorf("fitting %s: %w", o.name, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fitting %s: status %d", o.name, resp.StatusCode)
		}
	}
	return nil
}

// slowest returns the trace IDs of the op's slowest requests, slowest
// first — the handles an operator greps for in the daemons' slow logs.
func slowest(samples []sample) []slowSample {
	sorted := append([]sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ms > sorted[j].ms })
	if len(sorted) > slowestCount {
		sorted = sorted[:slowestCount]
	}
	out := make([]slowSample, 0, len(sorted))
	for _, s := range sorted {
		ss := slowSample{TraceID: s.trace, Ms: s.ms}
		if s.node != "" {
			ss.TraceURL = s.node + "/v1/traces/" + s.trace
		}
		out = append(out, ss)
	}
	return out
}

// evalSLO evaluates the parsed objectives over the run's samples.
// Objectives match operations by substring the same way the daemon
// matches routes, so 'protect:p99<250ms' gates the protect op here and
// the protect route there.
func (h *harness) evalSLO(objectives []obs.Objective) (results []sloResult, worst string) {
	worst = obs.SLOStateOK
	for _, o := range objectives {
		var total, bad int64
		for _, s := range h.samples {
			if !o.Matches(string(s.op)) {
				continue
			}
			total++
			if o.Bad(s.ms, s.err) {
				bad++
			}
		}
		burn, state := obs.EvalBudget(total, bad, o.Budget())
		results = append(results, sloResult{
			Objective: o.Name(),
			Requests:  total,
			Bad:       bad,
			Budget:    o.Budget(),
			BurnRate:  burn,
			State:     state,
		})
		worst = obs.WorseSLOState(worst, state)
	}
	return results, worst
}

func (h *harness) report(nodes []string, concurrency, requests, rows int, mixSpec string, elapsed time.Duration) loadReport {
	byOp := map[opKind][]float64{}
	bySample := map[opKind][]sample{}
	errs := map[opKind]int{}
	for _, s := range h.samples {
		byOp[s.op] = append(byOp[s.op], s.ms)
		bySample[s.op] = append(bySample[s.op], s)
		if s.err {
			errs[s.op]++
		}
	}
	rep := loadReport{
		Nodes:       nodes,
		Owners:      len(h.owners),
		Concurrency: concurrency,
		Requests:    requests,
		Rows:        rows,
		Mix:         mixSpec,
		Wire:        h.wire,
		ElapsedS:    elapsed.Seconds(),
		Ops:         map[string]opStats{},
	}
	totalErrs := 0
	for op, ms := range byOp {
		sort.Float64s(ms)
		mean := 0.0
		for _, v := range ms {
			mean += v
		}
		mean /= float64(len(ms))
		var out, in int64
		for _, s := range bySample[op] {
			out += s.out
			in += s.in
		}
		n := float64(len(ms))
		rep.Ops[string(op)] = opStats{
			Count:         len(ms),
			Errors:        errs[op],
			MeanMs:        mean,
			P50Ms:         percentile(ms, 50),
			P95Ms:         percentile(ms, 95),
			P99Ms:         percentile(ms, 99),
			BytesOutPerOp: float64(out) / n,
			BytesInPerOp:  float64(in) / n,
			Slowest:       slowest(bySample[op]),
		}
		totalErrs += errs[op]
	}
	if n := len(h.samples); n > 0 {
		rep.Throughput = float64(n) / elapsed.Seconds()
		rep.ErrorRate = float64(totalErrs) / float64(n)
	}
	return rep
}

// renderWire renders the synthetic dataset once in the requested wire
// format; every measured upload/protect request reuses the bytes, so the
// report's bytes-on-wire columns compare formats over identical data.
func renderWire(ds *dataset.Dataset, wire string) (body []byte, contentType, formatQ string, err error) {
	var buf bytes.Buffer
	switch wire {
	case "csv":
		if err := dataset.WriteCSV(&buf, ds); err != nil {
			return nil, "", "", err
		}
		return buf.Bytes(), "text/csv", "csv", nil
	case "json", "ndjson":
		for i := 0; i < ds.Data.Rows(); i++ {
			raw, err := json.Marshal(ds.Data.RawRow(i))
			if err != nil {
				return nil, "", "", err
			}
			buf.Write(raw)
			buf.WriteByte('\n')
		}
		return buf.Bytes(), "application/x-ndjson", "ndjson", nil
	case "binary":
		w := codec.NewWriter(&buf)
		if err := w.WriteHeader(ds.Names, false); err != nil {
			return nil, "", "", err
		}
		if err := w.WriteBatch(ds.Data, nil); err != nil {
			return nil, "", "", err
		}
		if err := w.Close(); err != nil {
			return nil, "", "", err
		}
		return buf.Bytes(), codec.ContentType, codec.FormatName, nil
	}
	return nil, "", "", fmt.Errorf("unknown wire format %q (want csv, json or binary)", wire)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pploadgen", flag.ContinueOnError)
	addrs := fs.String("addrs", "http://localhost:8080", "comma-separated ppclustd base URLs; owners are pinned round-robin")
	nOwners := fs.Int("owners", 4, "distinct data owners generating load")
	concurrency := fs.Int("concurrency", 8, "closed-loop workers")
	requests := fs.Int("requests", 100, "total operations to issue")
	rows := fs.Int("rows", 256, "rows per generated dataset")
	seed := fs.Int64("seed", 1, "synthetic data seed")
	mixSpec := fs.String("mix", "upload=1,protect=1,cluster=1", "weighted operation mix")
	wire := fs.String("wire", "csv", "row wire format for upload/protect bodies: csv, json (NDJSON) or binary")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline")
	sloSpec := fs.String("slo", "", "objective the run must meet, e.g. 'protect:p99<250ms,err<0.5%'; a breach makes the run exit non-zero")
	outFile := fs.String("out", "", "also write the JSON report to this file")
	watch := fs.Bool("watch-alerts", false, "poll the cluster's /v1/alerts during the run and list alerts that fired in the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	objectives, err := obs.ParseSLO(*sloSpec)
	if err != nil {
		return err
	}
	if *nOwners < 1 || *concurrency < 1 || *requests < 1 {
		return fmt.Errorf("owners, concurrency and requests must be positive")
	}

	ds, err := dataset.SyntheticPatients(*rows, 3, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	ds = ds.DropIDs()
	ds.Labels = nil
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		return err
	}
	body, bodyCT, formatQ, err := renderWire(ds, *wire)
	if err != nil {
		return err
	}

	nodes := strings.Split(*addrs, ",")
	for i := range nodes {
		nodes[i] = strings.TrimRight(strings.TrimSpace(nodes[i]), "/")
	}
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4 * *concurrency,
		MaxIdleConnsPerHost: 2 * *concurrency,
	}}
	h := &harness{csv: buf.String(), mix: mix, wire: *wire, body: body, bodyCT: bodyCT, formatQ: formatQ}
	for i := 0; i < *nOwners; i++ {
		cl := ppclient.New(nodes[i%len(nodes)], fmt.Sprintf("loadgen-%d", i))
		cl.HTTPClient = httpc
		h.owners = append(h.owners, owner{
			name:   cl.Owner,
			base:   "base",
			client: cl,
			http:   httpc,
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := h.setup(ctx); err != nil {
		return err
	}

	var watcher *alertWatcher
	if *watch {
		watcher = watchAlerts(ctx, h.owners[0].client, time.Second)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.worker(ctx, *requests)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "pploadgen: deadline hit after %d/%d operations\n", len(h.samples), *requests)
	}

	rep := h.report(nodes, *concurrency, *requests, *rows, *mixSpec, elapsed)
	if len(objectives) > 0 {
		rep.SLO, rep.SLOStatus = h.evalSLO(objectives)
	}
	if watcher != nil {
		rep.AlertsSeen = watcher.stop(ctx, h.owners[0].client)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if _, err := stdout.Write(raw); err != nil {
		return err
	}
	if *outFile != "" {
		if err := os.WriteFile(*outFile, raw, 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
	}
	// The CI gate: the full report is already on stdout, the breach
	// summary goes to stderr with the non-zero exit.
	if rep.SLOStatus == obs.SLOStateBreach {
		var breached []string
		for _, r := range rep.SLO {
			if r.State == obs.SLOStateBreach {
				breached = append(breached, fmt.Sprintf("%s (burn %.2f)", r.Objective, r.BurnRate))
			}
		}
		return fmt.Errorf("%w: %s", errSLOBreach, strings.Join(breached, ", "))
	}
	return nil
}

// alertWatcher polls the entry node's cluster-wide alert listing while
// the workers run, so a load run doubles as an alerting smoke test: the
// report shows which rules the load it generated actually tripped. Poll
// errors are ignored — a daemon without alerting configured simply
// contributes nothing.
type alertWatcher struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu   sync.Mutex
	seen map[string]watchedAlert
}

func watchAlerts(parent context.Context, cl *ppclient.Client, every time.Duration) *alertWatcher {
	ctx, cancel := context.WithCancel(parent)
	w := &alertWatcher{cancel: cancel, done: make(chan struct{}), seen: map[string]watchedAlert{}}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			w.poll(ctx, cl)
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

func (w *alertWatcher) poll(ctx context.Context, cl *ppclient.Client) {
	list, err := cl.Alerts(ctx, true)
	if err != nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, a := range list.Alerts {
		if a.State != "firing" {
			continue
		}
		k := a.Rule + "|" + a.Node + "|" + a.Series
		if _, ok := w.seen[k]; !ok {
			w.seen[k] = watchedAlert{Rule: a.Rule, Node: a.Node, Series: a.Series, FiredAt: a.FiredAt}
		}
	}
}

// stop takes one last look (alerts often cross into firing on the tail
// of the run), shuts the poller down and returns what it saw, ordered
// by rule then node.
func (w *alertWatcher) stop(ctx context.Context, cl *ppclient.Client) []watchedAlert {
	w.poll(ctx, cl)
	w.cancel()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]watchedAlert, 0, len(w.seen))
	for _, a := range w.seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// errSLOBreach marks a run that finished but failed its -slo gate; main
// distinguishes it from setup failures only in the message, both exit
// non-zero.
var errSLOBreach = errors.New("slo breached")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pploadgen:", err)
		os.Exit(1)
	}
}
