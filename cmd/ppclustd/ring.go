package main

// Multi-node ring runtime: consistent-hash placement, request
// forwarding, membership, and asynchronous replication on top of the
// single-node daemon.
//
// Placement is internal/ring's consistent hash: every owner (and every
// federation) has one home node that serves all of its requests, plus
// -replicas successor nodes that mirror its keyring state and datasets.
// Any node accepts any /v1/* request; a request landing on a non-owner
// is proxied to the home node (one extra hop, transparent to the
// client), failing over to successor replicas when the home node is
// unreachable.
//
// Membership is gossip-free: a full member list stamped with a
// monotonically increasing epoch, exchanged over POST /v1/ring/sync and
// adopted last-writer-wins (see internal/ring). Nodes boot either from
// a static -peers list (every node gets the same list, epoch 1) or by
// joining an existing node with -join, which bumps the epoch and
// broadcasts the new list.
//
// Internal routes (everything under /v1/ring except the public GET
// /v1/ring status) optionally require the shared -cluster-key header so
// a stray client cannot inject membership or replica state.
//
// Known single-ring limitations, accepted by design: jobs live and die
// with the node that accepted them (only their input datasets are
// replicated); the federation *record* lives on the federation's home
// node and is not replicated; GET /v1/datasets lists only datasets
// resident on the owner's home node.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppclust/internal/codec"
	"ppclust/internal/datastore"
	"ppclust/internal/federation"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
	"ppclust/internal/metrics"
	"ppclust/internal/obs"
	"ppclust/internal/ring"
	"ppclust/internal/service"
	"ppclust/ppclient"
)

// Ring headers. Hop counts forwarded requests so a stale membership
// view can never loop one forever; Replica tells the receiving node to
// serve from its local replica instead of forwarding again; Fed-Id
// carries the pre-generated federation ID a create was routed by;
// Cluster-Key authenticates internal ring traffic.
const (
	hdrHop        = "X-Ppclust-Ring-Hop"
	hdrReplica    = "X-Ppclust-Ring-Replica"
	hdrFedID      = "X-Ppclust-Fed-Id"
	hdrClusterKey = "X-Ppclust-Cluster-Key"
	// hdrCreatedAt carries a binary dataset export's ingest timestamp —
	// the one piece of metadata the framed row stream doesn't encode.
	hdrCreatedAt = "X-Ppclust-Created-At"
)

// maxHops bounds the forwarding chain: client → wrong node → home node
// is the normal worst case; a second forward means the two nodes
// disagree about placement, and a third would be a loop.
const maxHops = 2

// replLagBoundsUs buckets the replication queue lag (enqueue → ship):
// sub-millisecond when the worker keeps up, seconds when it is drowning.
var replLagBoundsUs = []float64{
	100, 1_000, 10_000, 100_000, 500_000,
	1_000_000, 5_000_000, 10_000_000, 30_000_000,
}

// ringConfig is the flag-derived ring identity of this node.
type ringConfig struct {
	NodeID     string
	Advertise  string
	ClusterKey string
	Replicas   int
	Vnodes     int
}

// ringRuntime implements service.RingHook and owns everything
// cluster-shaped in the daemon: the membership ring, the forwarding
// middleware, the internal transfer routes, and the replication worker.
type ringRuntime struct {
	self       ring.Node
	ring       *ring.Ring
	replicas   int
	clusterKey string
	maxBody    int64

	keys  keyring.Store
	store datastore.Store
	// traces is the node's retained-trace store, served to peers over
	// GET /v1/ring/trace for cross-node stitching (nil until the server
	// wires it in handler()).
	traces *obs.TraceStore

	mu      sync.Mutex
	clients map[string]*ppclient.Client // addr → retrying client

	repl      chan service.ReplicationEvent
	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	started   bool
	startedMu sync.Mutex

	// logger carries the node ID on every record; main swaps in the
	// daemon-wide logger, the default keeps standalone construction
	// (tests) working.
	logger *slog.Logger
	// catchUpUs is the duration of the last bootstrap catch-up pull in
	// microseconds — exposed as the ring_catchup_duration_us gauge so an
	// operator can see how long a node rejoin blocks readiness.
	catchUpUs atomic.Int64

	reg         *metrics.Registry
	forwards    *metrics.Counter
	replShipped *metrics.Counter
	replDropped *metrics.Counter
	replErrors  *metrics.Counter
	replLag     *metrics.Histogram
}

func newRingRuntime(cfg ringConfig, keys keyring.Store, store datastore.Store, svc *service.Services) *ringRuntime {
	reg := svc.Registry()
	rt := &ringRuntime{
		self:       ring.Node{ID: cfg.NodeID, Addr: strings.TrimRight(cfg.Advertise, "/")},
		ring:       ring.New(cfg.Vnodes),
		replicas:   max(cfg.Replicas, 0),
		clusterKey: cfg.ClusterKey,
		maxBody:    1 << 30,
		keys:       keys,
		store:      store,
		clients:    map[string]*ppclient.Client{},
		repl:       make(chan service.ReplicationEvent, 1024),
		stop:       make(chan struct{}),
		logger:     obs.NewLogger(os.Stderr, slog.LevelInfo, slog.String("node", cfg.NodeID)),

		reg:         reg,
		forwards:    reg.Counter("ring_forwards_total"),
		replShipped: reg.Counter("ring_replication_shipped_total"),
		replDropped: reg.Counter("ring_replication_dropped_total"),
		replErrors:  reg.Counter("ring_replication_errors_total"),
		replLag:     reg.Histogram("ring_replication_lag_us", replLagBoundsUs),
	}
	svc.SetRing(rt)
	return rt
}

// bootstrap seeds the membership (static -peers list, or a -join
// handshake against a running node), pulls any state this node should
// now hold, and starts the replication worker. It must run after the
// HTTP listener is serving: a joined peer may sync back immediately.
func (rt *ringRuntime) bootstrap(ctx context.Context, peers, joinAddr string) error {
	switch {
	case peers != "":
		nodes, err := parsePeers(peers)
		if err != nil {
			return err
		}
		found := false
		for _, n := range nodes {
			if n.ID == rt.self.ID {
				found = true
				break
			}
		}
		if !found {
			nodes = append(nodes, rt.self)
		}
		rt.ring.Seed(1, nodes)
		rt.catchUp(ctx)
	case joinAddr != "":
		var out ringSyncMsg
		if _, err := rt.roundTrip(ctx, strings.TrimRight(joinAddr, "/"), http.MethodPost, "/v1/ring/join", rt.self, &out); err != nil {
			return fmt.Errorf("joining ring via %s: %w", joinAddr, err)
		}
		rt.ring.Seed(out.Epoch, out.Nodes)
		rt.catchUp(ctx)
	default:
		rt.ring.Seed(1, []ring.Node{rt.self})
	}
	rt.startedMu.Lock()
	if !rt.started {
		rt.started = true
		rt.wg.Add(1)
		go rt.worker()
	}
	rt.startedMu.Unlock()
	return nil
}

// Close stops the replication worker after draining queued events.
func (rt *ringRuntime) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.startedMu.Lock()
	started := rt.started
	rt.startedMu.Unlock()
	if started {
		rt.wg.Wait()
	}
}

// parsePeers parses a static "-peers id=addr,id=addr" membership list.
func parsePeers(s string) ([]ring.Node, error) {
	var nodes []ring.Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("ppclustd: bad -peers entry %q (want id=addr)", part)
		}
		nodes = append(nodes, ring.Node{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ppclustd: -peers is empty")
	}
	return nodes, nil
}

// client returns the retrying ppclient for a peer address. DoRaw's
// connection-refused retry is what rides out a peer restart; beyond
// that, forwarding fails over to the next replica.
func (rt *ringRuntime) client(addr string) *ppclient.Client {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	cl, ok := rt.clients[addr]
	if !ok {
		cl = ppclient.New(addr, "")
		cl.Retries = 2
		cl.RetryBackoff = 25 * time.Millisecond
		rt.clients[addr] = cl
	}
	return cl
}

// roundTrip runs one internal JSON call against a peer, decoding a 2xx
// body into out (which may be nil) and returning the status. Non-2xx
// responses come back as an error carrying the envelope message, with
// the status still returned so callers can branch on 404/409.
func (rt *ringRuntime) roundTrip(ctx context.Context, addr, method, path string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return 0, err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, addr+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if rt.clusterKey != "" {
		req.Header.Set(hdrClusterKey, rt.clusterKey)
	}
	resp, err := rt.client(addr).DoRaw(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var env errEnvelope
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &env) == nil && env.Error.Message != "" {
			msg = env.Error.Message
		}
		return resp.StatusCode, fmt.Errorf("%s %s%s: %d: %s", method, addr, path, resp.StatusCode, msg)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s%s: decoding response: %w", method, addr, path, err)
		}
	}
	return resp.StatusCode, nil
}

// placement returns the nodes holding key, primary first.
func (rt *ringRuntime) placement(key string) []ring.Node {
	return rt.ring.Place(key, rt.replicas)
}

// inPlacement reports whether this node holds (a replica of) key.
func (rt *ringRuntime) inPlacement(key string) bool {
	for _, n := range rt.placement(key) {
		if n.ID == rt.self.ID {
			return true
		}
	}
	return false
}

// datasetKey is the placement key for a stored dataset: federation
// contributions ("fed.<id>") co-locate with their federation; every
// other dataset lives with its owner.
func datasetKey(owner, name string) string {
	if id, ok := strings.CutPrefix(name, "fed."); ok {
		return ring.FedKey(id)
	}
	return ring.OwnerKey(owner)
}

// ---------------------------------------------------------------------
// service.RingHook

// Owns reports whether this node is the primary for key. An empty ring
// (mid-bootstrap) fails open: single-node behavior.
func (rt *ringRuntime) Owns(key string) bool {
	nodes := rt.ring.Place(key, 0)
	return len(nodes) == 0 || nodes[0].ID == rt.self.ID
}

// credTransfer carries a credential hash between nodes — only ever the
// hash; plaintext tokens never cross the internal routes.
type credTransfer struct {
	Owner     string `json:"owner"`
	TokenHash []byte `json:"token_hash"`
}

// LookupCred fetches owner's credential hash from the owner's placement
// nodes. Every node in the placement is consulted (a freshly restarted
// home node may be behind its replicas); the first hit wins.
func (rt *ringRuntime) LookupCred(owner string) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var lastErr error
	tried := 0
	for _, n := range rt.placement(ring.OwnerKey(owner)) {
		if n.ID == rt.self.ID {
			continue // the local keyring was already consulted
		}
		tried++
		var out credTransfer
		status, err := rt.roundTrip(ctx, n.Addr, http.MethodGet, "/v1/ring/cred?owner="+url.QueryEscape(owner), nil, &out)
		switch {
		case err == nil && len(out.TokenHash) > 0:
			return out.TokenHash, true, nil
		case status == http.StatusNotFound:
			// Authoritative "no credential" from this node; keep looking.
		case err != nil:
			lastErr = err
		}
	}
	if tried > 0 && lastErr != nil {
		return nil, false, service.Internal(fmt.Errorf("ring credential lookup for %q: %w", owner, lastErr))
	}
	return nil, false, nil
}

// InstallCred registers a new owner's credential hash at the owner's
// home node — the cluster-wide claim arbitration point. When this node
// is the home node the local keyring's atomic ClaimToken (performed by
// the caller) is the arbitration, so this is a no-op.
func (rt *ringRuntime) InstallCred(owner string, hash []byte) error {
	nodes := rt.placement(ring.OwnerKey(owner))
	if len(nodes) == 0 || nodes[0].ID == rt.self.ID {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	status, err := rt.roundTrip(ctx, nodes[0].Addr, http.MethodPost, "/v1/ring/cred", credTransfer{Owner: owner, TokenHash: hash}, nil)
	if status == http.StatusConflict {
		return service.Conflict(err)
	}
	if err != nil {
		return service.Internal(fmt.Errorf("ring claim for %q: %w", owner, err))
	}
	return nil
}

// Replicate queues a write event for asynchronous mirroring. Never
// blocks: a full queue drops the event (counted) rather than stalling
// the write path — the join/restart catch-up pull repairs any gap.
func (rt *ringRuntime) Replicate(ev service.ReplicationEvent) {
	select {
	case rt.repl <- ev:
	default:
		rt.replDropped.Inc()
	}
}

// ---------------------------------------------------------------------
// Replication worker

func (rt *ringRuntime) worker() {
	defer rt.wg.Done()
	for {
		select {
		case ev := <-rt.repl:
			rt.ship(ev)
		case <-rt.stop:
			for {
				select {
				case ev := <-rt.repl:
					rt.ship(ev)
				default:
					return
				}
			}
		}
	}
}

// ship mirrors one write event to the successor replicas of its key.
// Events carry names, not payloads: the current state is read at ship
// time, so a burst of writes to one owner collapses into whatever is
// current, and the receiver's last-writer-wins import settles ordering.
func (rt *ringRuntime) ship(ev service.ReplicationEvent) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var key string
	switch ev.Kind {
	case service.ReplicateOwner:
		key = ring.OwnerKey(ev.Owner)
	default:
		key = datasetKey(ev.Owner, ev.Dataset)
	}
	if !ev.EnqueuedAt.IsZero() {
		rt.replLag.Observe(float64(time.Since(ev.EnqueuedAt).Microseconds()))
	}
	for _, n := range rt.placement(key) {
		if n.ID == rt.self.ID {
			continue
		}
		if err := rt.shipTo(ctx, n, ev); err != nil {
			rt.replErrors.Inc()
			rt.logger.Warn("replication ship failed", "kind", string(ev.Kind),
				"owner", ev.Owner, "dataset", ev.Dataset, "peer", n.ID, "err", err.Error())
		} else {
			rt.replShipped.Inc()
		}
	}
}

func (rt *ringRuntime) shipTo(ctx context.Context, n ring.Node, ev service.ReplicationEvent) error {
	switch ev.Kind {
	case service.ReplicateOwner:
		exp, err := rt.keys.Export(ev.Owner)
		if err != nil {
			return err
		}
		_, err = rt.roundTrip(ctx, n.Addr, http.MethodPost, "/v1/ring/replicate/owner", exp, nil)
		return err
	case service.ReplicateDataset:
		ds, err := rt.store.Get(ev.Owner, ev.Dataset)
		if errors.Is(err, datastore.ErrNotFound) {
			return nil // deleted since the event was queued
		}
		if err != nil {
			return err
		}
		return rt.sendDataset(ctx, n.Addr, ds)
	case service.ReplicateDatasetDelete:
		_, err := rt.roundTrip(ctx, n.Addr, http.MethodPost, "/v1/ring/replicate/dataset-delete",
			map[string]string{"owner": ev.Owner, "name": ev.Dataset}, nil)
		return err
	default:
		return fmt.Errorf("unknown replication kind %q", ev.Kind)
	}
}

// sendDataset replicates one dataset to a peer, streaming the blocks as
// framed binary batches (the same application/x-ppclust-rows format the
// public API speaks, labels riding in the labeled frames) with the
// dataset identity in query parameters. A peer that rejects the binary
// body with a 4xx — an older build mid-upgrade — gets the legacy JSON
// transfer instead, so mixed-version rings keep replicating.
func (rt *ringRuntime) sendDataset(ctx context.Context, addr string, ds *datastore.Dataset) error {
	var buf bytes.Buffer
	if err := encodeDatasetFrames(&buf, ds); err != nil {
		return err
	}
	path := "/v1/ring/replicate/dataset?owner=" + url.QueryEscape(ds.Owner) +
		"&name=" + url.QueryEscape(ds.Name) +
		"&created_at=" + url.QueryEscape(ds.CreatedAt.Format(time.RFC3339Nano))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", codec.ContentType)
	if rt.clusterKey != "" {
		req.Header.Set(hdrClusterKey, rt.clusterKey)
	}
	resp, err := rt.client(addr).DoRaw(req)
	if err != nil {
		return err
	}
	raw, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return rerr
	}
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		// Legacy peer: fall back to the JSON transfer.
		tr, err := exportDataset(ds)
		if err != nil {
			return err
		}
		_, err = rt.roundTrip(ctx, addr, http.MethodPost, "/v1/ring/replicate/dataset", tr, nil)
		return err
	}
	return fmt.Errorf("POST %s%s: %d: %s", addr, path, resp.StatusCode, strings.TrimSpace(string(raw)))
}

// encodeDatasetFrames writes a dataset as a framed binary row stream,
// block-by-block from the datastore's cache without row slicing.
func encodeDatasetFrames(w io.Writer, ds *datastore.Dataset) error {
	bw := codec.NewWriter(w)
	if err := bw.WriteHeader(ds.Attrs, ds.Labeled); err != nil {
		return err
	}
	labels := ds.Labels()
	off := 0
	err := ds.Blocks(func(b *matrix.Dense) error {
		var bl []int
		if ds.Labeled {
			bl = labels[off : off+b.Rows()]
		}
		off += b.Rows()
		return bw.WriteBatch(b, bl)
	})
	if err != nil {
		return err
	}
	return bw.Close()
}

// importDatasetStream is importDataset for the framed binary transfer:
// last-writer-wins by ingest time, rebuilding through the Builder so
// NaN/Inf screening matches every other ingest path.
func (rt *ringRuntime) importDatasetStream(owner, name string, createdAt time.Time, rd *codec.Reader) error {
	if cur, err := rt.store.Get(owner, name); err == nil {
		if !cur.CreatedAt.Before(createdAt) {
			return nil
		}
		if err := rt.store.Delete(owner, name); err != nil && !errors.Is(err, datastore.ErrNotFound) {
			return err
		}
	}
	attrs := rd.Names()
	if attrs == nil {
		if _, _, err := rd.ReadLabeled(); err != nil {
			return fmt.Errorf("ring: transfer for %s/%s: %w", owner, name, err)
		}
	}
	b, err := datastore.NewBuilder(owner, name, attrs)
	if err != nil {
		return err
	}
	for {
		row, label, err := rd.ReadLabeled()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("ring: transfer for %s/%s: %w", owner, name, err)
		}
		if rd.Labeled() {
			err = b.AppendLabeled(row, label)
		} else {
			err = b.Append(row)
		}
		if err != nil {
			return err
		}
	}
	ds, err := b.Finish(createdAt)
	if err != nil {
		return err
	}
	if err := rt.store.Put(ds); err != nil && !errors.Is(err, datastore.ErrExists) {
		return err
	}
	return nil
}

// fetchDataset pulls one dataset from a peer during catch-up, asking for
// the framed binary export and branching on the response content type —
// an older peer ignores the format parameter and answers with the legacy
// JSON transfer, which still imports.
func (rt *ringRuntime) fetchDataset(ctx context.Context, from ring.Node, owner, name string) error {
	path := "/v1/ring/export/dataset?owner=" + url.QueryEscape(owner) +
		"&name=" + url.QueryEscape(name) + "&format=" + formatBinary
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, from.Addr+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", codec.ContentType)
	if rt.clusterKey != "" {
		req.Header.Set(hdrClusterKey, rt.clusterKey)
	}
	resp, err := rt.client(from.Addr).DoRaw(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s%s: %d: %s", from.Addr, path, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), codec.ContentType) {
		createdAt, err := time.Parse(time.RFC3339Nano, resp.Header.Get(hdrCreatedAt))
		if err != nil {
			return fmt.Errorf("parsing %s: %w", hdrCreatedAt, err)
		}
		return rt.importDatasetStream(owner, name, createdAt, codec.NewReader(resp.Body))
	}
	var tr datasetTransfer
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("decoding dataset transfer: %w", err)
	}
	return rt.importDataset(tr)
}

// datasetTransfer is the legacy JSON wire form of one replicated dataset,
// kept for mixed-version rings (older peers neither send nor accept the
// framed binary transfer).
type datasetTransfer struct {
	Owner     string      `json:"owner"`
	Name      string      `json:"name"`
	Attrs     []string    `json:"attrs"`
	Labeled   bool        `json:"labeled"`
	CreatedAt time.Time   `json:"created_at"`
	Rows      [][]float64 `json:"rows"`
	Labels    []int       `json:"labels,omitempty"`
}

func exportDataset(ds *datastore.Dataset) (datasetTransfer, error) {
	tr := datasetTransfer{
		Owner:     ds.Owner,
		Name:      ds.Name,
		Attrs:     ds.Attrs,
		Labeled:   ds.Labeled,
		CreatedAt: ds.CreatedAt,
		Labels:    ds.Labels(),
		Rows:      make([][]float64, 0, ds.Rows),
	}
	err := ds.Blocks(func(b *matrix.Dense) error {
		for i := 0; i < b.Rows(); i++ {
			tr.Rows = append(tr.Rows, append([]float64(nil), b.RawRow(i)...))
		}
		return nil
	})
	return tr, err
}

// importDataset installs a transferred dataset last-writer-wins by
// ingest time: an older (or equal) incoming copy never replaces a newer
// local one, so replays and races converge on the newest write.
func (rt *ringRuntime) importDataset(in datasetTransfer) error {
	if cur, err := rt.store.Get(in.Owner, in.Name); err == nil {
		if !cur.CreatedAt.Before(in.CreatedAt) {
			return nil
		}
		if err := rt.store.Delete(in.Owner, in.Name); err != nil && !errors.Is(err, datastore.ErrNotFound) {
			return err
		}
	}
	b, err := datastore.NewBuilder(in.Owner, in.Name, in.Attrs)
	if err != nil {
		return err
	}
	for i, row := range in.Rows {
		if in.Labeled {
			if i >= len(in.Labels) {
				return fmt.Errorf("ring: transfer for %s/%s labeled but carries %d labels for %d rows", in.Owner, in.Name, len(in.Labels), len(in.Rows))
			}
			err = b.AppendLabeled(row, in.Labels[i])
		} else {
			err = b.Append(row)
		}
		if err != nil {
			return err
		}
	}
	ds, err := b.Finish(in.CreatedAt)
	if err != nil {
		return err
	}
	if err := rt.store.Put(ds); err != nil && !errors.Is(err, datastore.ErrExists) {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------
// Catch-up and planned leave

// catchUp pulls the state this node should hold from every peer: the
// join/restart path. Best-effort — an unreachable peer is logged and
// skipped; replication of future writes and the next restart repair
// the rest.
func (rt *ringRuntime) catchUp(ctx context.Context) {
	start := time.Now()
	defer func() { rt.catchUpUs.Store(time.Since(start).Microseconds()) }()
	_, members := rt.ring.Snapshot()
	for _, m := range members {
		if m.ID == rt.self.ID {
			continue
		}
		var owners []string
		if _, err := rt.roundTrip(ctx, m.Addr, http.MethodGet, "/v1/ring/owners", nil, &owners); err != nil {
			rt.logger.Warn("catch-up owner list", "peer", m.ID, "err", err.Error())
			continue
		}
		for _, owner := range owners {
			rt.pullOwner(ctx, m, owner)
		}
	}
}

// ownerBundle is the catch-up inventory for one owner on one node.
type ownerBundle struct {
	Keyring  *keyring.OwnerExport `json:"keyring,omitempty"`
	Datasets []datastore.Meta     `json:"datasets"`
}

func (rt *ringRuntime) pullOwner(ctx context.Context, from ring.Node, owner string) {
	var b ownerBundle
	if _, err := rt.roundTrip(ctx, from.Addr, http.MethodGet, "/v1/ring/export/owner?owner="+url.QueryEscape(owner), nil, &b); err != nil {
		rt.logger.Warn("catch-up owner export", "owner", owner, "peer", from.ID, "err", err.Error())
		return
	}
	if b.Keyring != nil && rt.inPlacement(ring.OwnerKey(owner)) {
		if err := rt.keys.ImportOwner(*b.Keyring); err != nil {
			rt.logger.Warn("catch-up keyring import", "owner", owner, "err", err.Error())
		}
	}
	for _, meta := range b.Datasets {
		if !rt.inPlacement(datasetKey(meta.Owner, meta.Name)) {
			continue
		}
		if cur, err := rt.store.Get(meta.Owner, meta.Name); err == nil && !cur.CreatedAt.Before(meta.CreatedAt) {
			continue
		}
		if err := rt.fetchDataset(ctx, from, meta.Owner, meta.Name); err != nil {
			rt.logger.Warn("catch-up dataset pull", "owner", meta.Owner, "dataset", meta.Name, "peer", from.ID, "err", err.Error())
		}
	}
}

// drainPush moves every locally held owner's keyring state and datasets
// to their placement nodes — the planned-leave path, run after this
// node removed itself from the membership so the placement already
// reflects the post-leave ring.
func (rt *ringRuntime) drainPush(ctx context.Context) {
	owners, err := rt.keys.Owners()
	if err != nil {
		rt.logger.Warn("leave drain: listing owners", "err", err.Error())
		return
	}
	for _, owner := range owners {
		exp, err := rt.keys.Export(owner)
		if err != nil {
			rt.logger.Warn("leave drain: keyring export", "owner", owner, "err", err.Error())
			continue
		}
		for _, n := range rt.placement(ring.OwnerKey(owner)) {
			if n.ID == rt.self.ID {
				continue
			}
			if _, err := rt.roundTrip(ctx, n.Addr, http.MethodPost, "/v1/ring/replicate/owner", exp, nil); err != nil {
				rt.logger.Warn("leave drain: keyring push", "owner", owner, "peer", n.ID, "err", err.Error())
			}
		}
		metas, err := rt.store.List(owner)
		if err != nil {
			rt.logger.Warn("leave drain: dataset list", "owner", owner, "err", err.Error())
			continue
		}
		for _, meta := range metas {
			ds, err := rt.store.Get(meta.Owner, meta.Name)
			if err != nil {
				continue
			}
			for _, n := range rt.placement(datasetKey(meta.Owner, meta.Name)) {
				if n.ID == rt.self.ID {
					continue
				}
				if err := rt.sendDataset(ctx, n.Addr, ds); err != nil {
					rt.logger.Warn("leave drain: dataset push", "owner", meta.Owner, "dataset", meta.Name, "peer", n.ID, "err", err.Error())
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// HTTP: membership, status, internal transfer routes

// ringSyncMsg is the full-membership exchange: epoch plus member list.
type ringSyncMsg struct {
	Epoch int64       `json:"epoch"`
	Nodes []ring.Node `json:"nodes"`
}

// ringStatusMsg mirrors ppclient.RingStatus.
type ringStatusMsg struct {
	Enabled  bool        `json:"enabled"`
	Self     string      `json:"self"`
	Epoch    int64       `json:"epoch"`
	Vnodes   int         `json:"vnodes"`
	Replicas int         `json:"replicas"`
	Nodes    []ring.Node `json:"nodes"`
}

// registerRoutes installs the ring routes on the daemon mux. GET
// /v1/ring (status) is public like /healthz; everything else is
// internal and guarded by the cluster key when one is configured.
func (rt *ringRuntime) registerRoutes(mux *http.ServeMux) {
	guard := rt.requireClusterKey
	mux.HandleFunc("GET /v1/ring", rt.handleStatus)
	mux.HandleFunc("POST /v1/ring/join", guard(rt.handleJoin))
	mux.HandleFunc("POST /v1/ring/leave", guard(rt.handleLeave))
	mux.HandleFunc("POST /v1/ring/sync", guard(rt.handleSync))
	mux.HandleFunc("GET /v1/ring/cred", guard(rt.handleCredGet))
	mux.HandleFunc("POST /v1/ring/cred", guard(rt.handleCredClaim))
	mux.HandleFunc("POST /v1/ring/replicate/owner", guard(rt.handleReplicateOwner))
	mux.HandleFunc("POST /v1/ring/replicate/dataset", guard(rt.handleReplicateDataset))
	mux.HandleFunc("POST /v1/ring/replicate/dataset-delete", guard(rt.handleReplicateDatasetDelete))
	mux.HandleFunc("GET /v1/ring/owners", guard(rt.handleOwners))
	mux.HandleFunc("GET /v1/ring/export/owner", guard(rt.handleExportOwner))
	mux.HandleFunc("GET /v1/ring/export/dataset", guard(rt.handleExportDataset))
	mux.HandleFunc("GET /v1/ring/trace", guard(rt.handleRingTrace))
}

// handleRingTrace serves this node's retained record for one trace ID —
// the peer-to-peer leg of cross-node stitching. 404 means "not retained
// here", which is an ordinary answer, not a failure.
func (rt *ringRuntime) handleRingTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if rt.traces == nil {
		writeErr(w, service.NotFoundErr(fmt.Errorf("trace store not enabled")))
		return
	}
	rec, ok := rt.traces.Get(id)
	if !ok {
		writeErr(w, service.NotFoundErr(fmt.Errorf("trace %q is not retained on this node", id)))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// scopeFanoutTimeout bounds each per-peer call of the observability
// fan-outs (trace collection, metrics scraping): slow enough for a
// loaded peer, fast enough that one dead peer cannot stall the
// cluster-wide answer.
const scopeFanoutTimeout = 3 * time.Second

// collectTraces asks every ring peer for its record of the trace,
// concurrently. A peer without the record (404) contributes nothing;
// an unreachable or erroring peer lands in the returned error map so
// the caller can degrade the view instead of failing it.
func (rt *ringRuntime) collectTraces(ctx context.Context, id string) ([]obs.TraceRecord, map[string]string) {
	_, members := rt.ring.Snapshot()
	type result struct {
		node string
		rec  obs.TraceRecord
		ok   bool
		err  error
	}
	results := make(chan result, len(members))
	fanned := 0
	for _, m := range members {
		if m.ID == rt.self.ID {
			continue
		}
		fanned++
		go func(m ring.Node) {
			cctx, cancel := context.WithTimeout(ctx, scopeFanoutTimeout)
			defer cancel()
			var rec obs.TraceRecord
			status, err := rt.roundTrip(cctx, m.Addr, http.MethodGet, "/v1/ring/trace?id="+url.QueryEscape(id), nil, &rec)
			switch {
			case err == nil:
				results <- result{node: m.ID, rec: rec, ok: true}
			case status == http.StatusNotFound:
				results <- result{node: m.ID}
			default:
				results <- result{node: m.ID, err: err}
			}
		}(m)
	}
	var recs []obs.TraceRecord
	errs := map[string]string{}
	for i := 0; i < fanned; i++ {
		res := <-results
		switch {
		case res.ok:
			recs = append(recs, res.rec)
		case res.err != nil:
			errs[res.node] = res.err.Error()
		}
	}
	if len(errs) == 0 {
		errs = nil
	}
	return recs, errs
}

// scrapePeers fetches every peer's /v1/metrics snapshot concurrently,
// returning per-node flat maps plus an error map for the peers that
// could not be scraped.
func (rt *ringRuntime) scrapePeers(ctx context.Context) (map[string]map[string]int64, map[string]string) {
	_, members := rt.ring.Snapshot()
	type result struct {
		node string
		snap map[string]int64
		err  error
	}
	results := make(chan result, len(members))
	fanned := 0
	for _, m := range members {
		if m.ID == rt.self.ID {
			continue
		}
		fanned++
		go func(m ring.Node) {
			cctx, cancel := context.WithTimeout(ctx, scopeFanoutTimeout)
			defer cancel()
			var snap map[string]int64
			_, err := rt.roundTrip(cctx, m.Addr, http.MethodGet, "/v1/metrics", nil, &snap)
			results <- result{node: m.ID, snap: snap, err: err}
		}(m)
	}
	perNode := make(map[string]map[string]int64, fanned)
	errs := map[string]string{}
	for i := 0; i < fanned; i++ {
		res := <-results
		if res.err != nil {
			errs[res.node] = res.err.Error()
			continue
		}
		perNode[res.node] = res.snap
	}
	if len(errs) == 0 {
		errs = nil
	}
	return perNode, errs
}

func (rt *ringRuntime) requireClusterKey(next http.HandlerFunc) http.HandlerFunc {
	if rt.clusterKey == "" {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(hdrClusterKey) != rt.clusterKey {
			writeErr(w, service.Wrap(service.ErrForbidden))
			return
		}
		next(w, r)
	}
}

func (rt *ringRuntime) handleStatus(w http.ResponseWriter, _ *http.Request) {
	epoch, nodes := rt.ring.Snapshot()
	writeJSON(w, http.StatusOK, ringStatusMsg{
		Enabled:  true,
		Self:     rt.self.ID,
		Epoch:    epoch,
		Vnodes:   rt.ring.Vnodes(),
		Replicas: rt.replicas,
		Nodes:    nodes,
	})
}

func (rt *ringRuntime) handleJoin(w http.ResponseWriter, r *http.Request) {
	var n ring.Node
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&n); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing join request: %w", err)))
		return
	}
	n.Addr = strings.TrimRight(n.Addr, "/")
	epoch, rejoined, err := rt.ring.Join(n)
	if errors.Is(err, ring.ErrDuplicateID) {
		writeErr(w, service.Conflict(err))
		return
	}
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	_, nodes := rt.ring.Snapshot()
	if !rejoined {
		rt.logger.Info("ring node joined", "peer", n.ID, "addr", n.Addr,
			"epoch", epoch, "members", len(nodes))
		go rt.broadcastSync(n.ID)
	}
	writeJSON(w, http.StatusOK, ringSyncMsg{Epoch: epoch, Nodes: nodes})
}

// handleLeave removes a node from the membership. Addressed at the
// departing node itself ({"id": self}) it first pushes everything it
// holds to the post-leave placement — the planned-leave drain; aimed at
// any other node it just drops the (presumed dead) member.
func (rt *ringRuntime) handleLeave(w http.ResponseWriter, r *http.Request) {
	var in struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&in); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing leave request: %w", err)))
		return
	}
	epoch, removed := rt.ring.Remove(in.ID)
	if !removed {
		writeErr(w, service.NotFoundErr(fmt.Errorf("node %q is not a member", in.ID)))
		return
	}
	rt.logger.Info("ring node left", "peer", in.ID, "epoch", epoch)
	rt.broadcastSync(in.ID)
	if in.ID == rt.self.ID {
		ctx, cancel := context.WithTimeout(r.Context(), 60*time.Second)
		defer cancel()
		rt.drainPush(ctx)
	}
	_, nodes := rt.ring.Snapshot()
	writeJSON(w, http.StatusOK, ringSyncMsg{Epoch: epoch, Nodes: nodes})
}

func (rt *ringRuntime) handleSync(w http.ResponseWriter, r *http.Request) {
	var in ringSyncMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&in); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing sync: %w", err)))
		return
	}
	rt.ring.Adopt(in.Epoch, in.Nodes)
	epoch, nodes := rt.ring.Snapshot()
	writeJSON(w, http.StatusOK, ringSyncMsg{Epoch: epoch, Nodes: nodes})
}

// broadcastSync pushes the current membership to every other member
// (minus excluded IDs), so a join or leave propagates without waiting
// for organic traffic.
func (rt *ringRuntime) broadcastSync(exclude ...string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	epoch, nodes := rt.ring.Snapshot()
	msg := ringSyncMsg{Epoch: epoch, Nodes: nodes}
	for _, m := range nodes {
		if m.ID == rt.self.ID {
			continue
		}
		skip := false
		for _, ex := range exclude {
			if m.ID == ex {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if _, err := rt.roundTrip(ctx, m.Addr, http.MethodPost, "/v1/ring/sync", msg, nil); err != nil {
			rt.logger.Warn("membership sync", "peer", m.ID, "err", err.Error())
		}
	}
}

func (rt *ringRuntime) handleCredGet(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	hash, err := rt.keys.TokenHash(owner)
	if err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	writeJSON(w, http.StatusOK, credTransfer{Owner: owner, TokenHash: hash})
}

func (rt *ringRuntime) handleCredClaim(w http.ResponseWriter, r *http.Request) {
	var in credTransfer
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&in); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing credential claim: %w", err)))
		return
	}
	if len(in.TokenHash) == 0 {
		writeErr(w, service.Invalid(fmt.Errorf("credential claim for %q carries no hash", in.Owner)))
		return
	}
	if err := rt.keys.ClaimToken(in.Owner, in.TokenHash); err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"claimed": in.Owner})
}

func (rt *ringRuntime) handleReplicateOwner(w http.ResponseWriter, r *http.Request) {
	var exp keyring.OwnerExport
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.maxBody)).Decode(&exp); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing owner export: %w", err)))
		return
	}
	if err := rt.keys.ImportOwner(exp); err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"imported": exp.Owner})
}

func (rt *ringRuntime) handleReplicateDataset(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, rt.maxBody)
	if strings.HasPrefix(r.Header.Get("Content-Type"), codec.ContentType) {
		owner, name := r.URL.Query().Get("owner"), r.URL.Query().Get("name")
		createdAt, err := time.Parse(time.RFC3339Nano, r.URL.Query().Get("created_at"))
		if err != nil {
			writeErr(w, service.Invalid(fmt.Errorf("parsing created_at: %w", err)))
			return
		}
		if err := rt.importDatasetStream(owner, name, createdAt, codec.NewReader(body)); err != nil {
			writeErr(w, service.Wrap(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"imported": owner + "/" + name})
		return
	}
	var in datasetTransfer
	if err := json.NewDecoder(body).Decode(&in); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing dataset transfer: %w", err)))
		return
	}
	if err := rt.importDataset(in); err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"imported": in.Owner + "/" + in.Name})
}

func (rt *ringRuntime) handleReplicateDatasetDelete(w http.ResponseWriter, r *http.Request) {
	var in struct {
		Owner string `json:"owner"`
		Name  string `json:"name"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&in); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing dataset delete: %w", err)))
		return
	}
	if err := rt.store.Delete(in.Owner, in.Name); err != nil && !errors.Is(err, datastore.ErrNotFound) {
		writeErr(w, service.Wrap(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": in.Owner + "/" + in.Name})
}

func (rt *ringRuntime) handleOwners(w http.ResponseWriter, _ *http.Request) {
	owners, err := rt.keys.Owners()
	if err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	if owners == nil {
		owners = []string{}
	}
	writeJSON(w, http.StatusOK, owners)
}

func (rt *ringRuntime) handleExportOwner(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	var b ownerBundle
	if exp, err := rt.keys.Export(owner); err == nil {
		b.Keyring = &exp
	} else if !errors.Is(err, keyring.ErrNotFound) {
		writeErr(w, service.Wrap(err))
		return
	}
	metas, err := rt.store.List(owner)
	if err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	b.Datasets = metas
	if b.Datasets == nil {
		b.Datasets = []datastore.Meta{}
	}
	writeJSON(w, http.StatusOK, b)
}

func (rt *ringRuntime) handleExportDataset(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ds, err := rt.store.Get(q.Get("owner"), q.Get("name"))
	if err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	// Catch-up peers ask for the framed binary export; older peers send
	// no format parameter and keep getting the legacy JSON transfer.
	if q.Get("format") == formatBinary {
		w.Header().Set("Content-Type", codec.ContentType)
		w.Header().Set(hdrCreatedAt, ds.CreatedAt.Format(time.RFC3339Nano))
		if err := encodeDatasetFrames(w, ds); err != nil {
			rt.logger.Warn("ring export dataset abort", "owner", ds.Owner, "dataset", ds.Name, "err", err.Error())
			panic(http.ErrAbortHandler)
		}
		return
	}
	tr, err := exportDataset(ds)
	if err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// ---------------------------------------------------------------------
// Forwarding middleware

// middleware routes every keyed /v1/* request to the node owning its
// placement key, proxying with failover across the key's replicas. A
// request this node owns (or one that carries no placement key) falls
// through to next untouched.
func (rt *ringRuntime) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := rt.routeKey(r)
		if key == "" || r.Header.Get(hdrReplica) != "" {
			next.ServeHTTP(w, r)
			return
		}
		nodes := rt.placement(key)
		if len(nodes) == 0 || nodes[0].ID == rt.self.ID {
			next.ServeHTTP(w, r)
			return
		}
		hop := 0
		if h := r.Header.Get(hdrHop); h != "" {
			hop, _ = strconv.Atoi(h)
		}
		if hop >= maxHops {
			writeJSON(w, http.StatusLoopDetected, errEnvelope{Error: errBody{
				Code:    service.CodeInternal,
				Message: fmt.Sprintf("ring forwarding loop for key %q after %d hops; membership views disagree", key, hop),
			}})
			return
		}
		// The body is buffered so the same request can be replayed against
		// a successor when the home node is down.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
		if err != nil {
			writeErr(w, service.Invalid(fmt.Errorf("reading request body for forwarding: %w", err)))
			return
		}
		// The mux never runs for a proxied request, so the instrumentation
		// edge would label it "unmatched"; name the hop instead so entry
		// nodes show their proxy traffic as its own route.
		r.Pattern = "ring.forward"
		var lastErr error
		for i, n := range nodes {
			if n.ID == rt.self.ID {
				// This node is a replica of the key and every node ahead of
				// it is unreachable: serve from the local replica.
				r2 := r.Clone(r.Context())
				r2.Body = io.NopCloser(bytes.NewReader(body))
				r2.Header.Set(hdrReplica, "1")
				next.ServeHTTP(w, r2)
				// Reflect the matched route back onto the original request:
				// the instrumentation defer reads r, not the clone the mux
				// stamped.
				r.Pattern = r2.Pattern
				return
			}
			if err := rt.forward(w, r, n, body, hop, i > 0); err != nil {
				lastErr = err
				rt.logger.Warn("forward failed", "method", r.Method, "path", r.URL.Path,
					"peer", n.ID, "trace", obs.TraceID(r.Context()), "err", err.Error())
				continue
			}
			return
		}
		writeJSON(w, http.StatusBadGateway, errEnvelope{Error: errBody{
			Code:    service.CodeInternal,
			Message: fmt.Sprintf("no reachable node for key %q: %v", key, lastErr),
		}})
	})
}

// forward proxies the request to node n and relays the response —
// status, headers and body — verbatim. replica marks the target as a
// non-primary holder of the key, telling it to serve locally rather
// than forward again. Only transport failures return an error (the
// caller fails over); any HTTP response, error statuses included, is
// authoritative and relayed.
func (rt *ringRuntime) forward(w http.ResponseWriter, r *http.Request, n ring.Node, body []byte, hop int, replica bool) error {
	// The span and per-peer histogram cover the whole proxied exchange:
	// the hop is the ring's latency tax, and a slow or flapping peer shows
	// up as one histogram series keyed by its node ID.
	ctx, sp := obs.Start(r.Context(), "ring.forward")
	sp.Set("peer", n.ID)
	defer sp.End()
	start := time.Now()
	target := strings.TrimRight(n.Addr, "/") + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(ctx, r.Method, target, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hdr := r.Header.Clone()
	hdr.Set(hdrHop, strconv.Itoa(hop+1))
	if replica {
		hdr.Set(hdrReplica, "1")
	}
	hdr.Del("Connection")
	req.Header = hdr
	// NewRequest with a bytes.Reader sets GetBody, so ppclient's
	// connection-refused retry can rewind and resend.
	resp, err := rt.client(n.Addr).DoRaw(req)
	rt.reg.Histogram(fmt.Sprintf(`ring_forward_duration_us{peer=%q}`, n.ID), latencyBoundsUs).
		Observe(float64(time.Since(start).Microseconds()))
	if err != nil {
		sp.Set("err", err.Error())
		return err
	}
	defer resp.Body.Close()
	rt.forwards.Inc()
	sp.Set("status", resp.StatusCode)
	out := w.Header()
	for k, vs := range resp.Header {
		if k == "Connection" || k == "Transfer-Encoding" {
			continue
		}
		for _, v := range vs {
			out.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return nil
}

// routeKey derives the placement key for a request, or "" for requests
// served wherever they land (health, metrics, ring-internal routes,
// ownerless requests). POST /v1/federations is special: the federation
// ID does not exist yet, so one is pre-generated here, pinned into the
// Fed-Id header (forwarded nodes reuse it instead of minting another),
// and the create handler passes it to the service.
func (rt *ringRuntime) routeKey(r *http.Request) string {
	p := r.URL.Path
	if !strings.HasPrefix(p, "/v1/") {
		return ""
	}
	switch {
	case p == "/v1/ring" || strings.HasPrefix(p, "/v1/ring/"),
		p == "/v1/metrics", p == "/v1/keys",
		// The observability plane answers from whichever node is asked:
		// traces fan out to peers themselves, cluster metrics aggregate
		// everywhere, SLO status is per-node by design.
		p == "/v1/traces" || strings.HasPrefix(p, "/v1/traces/"),
		p == "/v1/slo",
		p == "/v1/metrics/history", p == "/v1/alerts",
		p == "/v1/incidents" || strings.HasPrefix(p, "/v1/incidents/"),
		strings.HasPrefix(p, "/v1/cluster/"):
		return ""
	}
	if p == "/v1/federations" {
		if r.Method != http.MethodPost {
			return "" // the list route aggregates locally
		}
		id := r.Header.Get(hdrFedID)
		if id == "" {
			var err error
			if id, err = federation.NewID(); err != nil {
				return ""
			}
			r.Header.Set(hdrFedID, id)
		}
		return ring.FedKey(id)
	}
	if rest, ok := strings.CutPrefix(p, "/v1/federations/"); ok {
		raw, _, _ := strings.Cut(rest, "/")
		if id, err := url.PathUnescape(raw); err == nil {
			return ring.FedKey(id)
		}
		return ""
	}
	if rest, ok := strings.CutPrefix(p, "/v1/datasets/"); ok {
		raw, _, _ := strings.Cut(rest, "/")
		if name, err := url.PathUnescape(raw); err == nil {
			if id, isFed := strings.CutPrefix(name, "fed."); isFed {
				return ring.FedKey(id)
			}
		}
	}
	if owner := r.URL.Query().Get("owner"); owner != "" {
		return ring.OwnerKey(owner)
	}
	return ""
}

// addGauges merges the ring's live gauges into a metrics snapshot.
func (rt *ringRuntime) addGauges(snap map[string]int64) {
	epoch, nodes := rt.ring.Snapshot()
	snap["ring_nodes"] = int64(len(nodes))
	snap["ring_epoch"] = epoch
	snap["ring_replication_pending"] = int64(len(rt.repl))
	snap["ring_catchup_duration_us"] = rt.catchUpUs.Load()
	owned := int64(0)
	if owners, err := rt.keys.Owners(); err == nil {
		for _, o := range owners {
			if ns := rt.ring.Place(ring.OwnerKey(o), 0); len(ns) > 0 && ns[0].ID == rt.self.ID {
				owned++
			}
		}
	}
	snap["ring_owned_owners"] = owned
}
