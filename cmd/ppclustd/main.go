// Command ppclustd is the streaming protection service: an HTTP daemon
// around the parallel RBT engine and a versioned keyring, letting many data
// owners protect, stream-protect and recover datasets over the wire.
//
// Quickstart:
//
//	ppclustd -keyring /var/lib/ppclust/keys.json
//
//	# protect a CSV (fits a fresh key for owner "alice", streams release).
//	# The response's X-Ppclust-Token header carries alice's bearer token —
//	# shown exactly once, save it: it is required for every later request
//	# against this owner.
//	curl -si --data-binary @patients.csv \
//	    'localhost:8344/v1/protect?owner=alice&rho1=0.3&rho2=0.3'
//
//	# protect more records later under the same frozen key, batch by batch
//	curl -s -H "Authorization: Bearer $TOKEN" --data-binary @more.csv \
//	    'localhost:8344/v1/protect?owner=alice&mode=stream'
//
//	# invert a release (the owner's privilege — hence the token)
//	curl -s -H "Authorization: Bearer $TOKEN" --data-binary @released.csv \
//	    'localhost:8344/v1/recover?owner=alice'
//
//	curl -s localhost:8344/v1/keys
//	curl -s localhost:8344/healthz
//
// Threat model: the daemon binds to loopback by default and speaks plain
// HTTP, so bearer tokens cross the wire unencrypted. To serve non-local
// clients, put a TLS-terminating proxy in front and bind -addr
// accordingly; -insecure-no-auth disables token checks entirely and is
// only safe when that proxy (or a private network) already authenticates
// callers. GET /v1/keys and GET /healthz expose metadata only (owner
// names, versions, worker count) — never key material.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppclust/internal/engine"
	"ppclust/internal/keyring"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8344", "listen address (loopback by default; front with a TLS proxy before exposing)")
		keyringPath = flag.String("keyring", "", "path to the JSON keyring file (empty: in-memory, keys lost on exit)")
		workers     = flag.Int("workers", 0, "engine worker count (0: GOMAXPROCS)")
		blockRows   = flag.Int("block-rows", 0, "rows per engine block (0: default)")
		batchRows   = flag.Int("batch-rows", 4096, "rows per streaming batch")
		maxBody     = flag.Int64("max-body", 1<<30, "maximum request body bytes")
		noAuth      = flag.Bool("insecure-no-auth", false, "disable per-owner bearer-token auth (only behind an authenticating proxy on a trusted network)")
	)
	flag.Parse()
	if err := run(*addr, *keyringPath, *workers, *blockRows, *batchRows, *maxBody, *noAuth); err != nil {
		log.Fatal(err)
	}
}

func run(addr, keyringPath string, workers, blockRows, batchRows int, maxBody int64, noAuth bool) error {
	var keys keyring.Store
	if keyringPath == "" {
		log.Printf("keyring: in-memory (keys are lost on exit; use -keyring for persistence)")
		keys = keyring.NewMemory()
	} else {
		fileStore, err := keyring.OpenFile(keyringPath)
		if err != nil {
			return err
		}
		log.Printf("keyring: %s", keyringPath)
		keys = fileStore
	}

	eng := engine.New(workers, blockRows)
	s := newServer(eng, keys)
	if batchRows > 0 {
		s.batchRows = batchRows
	}
	if maxBody > 0 {
		s.maxBody = maxBody
	}
	if noAuth {
		log.Printf("auth: DISABLED (-insecure-no-auth); every client can protect and recover for every owner")
		s.authDisabled = true
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("ppclustd listening on %s (%d workers)", addr, eng.Workers())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("ppclustd: %w", err)
	case <-ctx.Done():
	}
	log.Printf("ppclustd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("ppclustd: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("ppclustd: %w", err)
	}
	return nil
}
