// Command ppclustd is the streaming protection service: an HTTP daemon
// around the parallel RBT engine and a versioned keyring, letting many data
// owners protect, stream-protect and recover datasets over the wire.
//
// Quickstart:
//
//	ppclustd -keyring /var/lib/ppclust/keys.json
//
//	# protect a CSV (fits a fresh key for owner "alice", streams release).
//	# The response's X-Ppclust-Token header carries alice's bearer token —
//	# shown exactly once, save it: it is required for every later request
//	# against this owner.
//	curl -si --data-binary @patients.csv \
//	    'localhost:8344/v1/protect?owner=alice&rho1=0.3&rho2=0.3'
//
//	# protect more records later under the same frozen key, batch by batch
//	curl -s -H "Authorization: Bearer $TOKEN" --data-binary @more.csv \
//	    'localhost:8344/v1/protect?owner=alice&mode=stream'
//
//	# invert a release (the owner's privilege — hence the token)
//	curl -s -H "Authorization: Bearer $TOKEN" --data-binary @released.csv \
//	    'localhost:8344/v1/recover?owner=alice'
//
//	curl -s localhost:8344/v1/keys
//	curl -s localhost:8344/healthz
//
// Threat model: the daemon binds to loopback by default and speaks plain
// HTTP, so bearer tokens cross the wire unencrypted. To serve non-local
// clients, put a TLS-terminating proxy in front and bind -addr
// accordingly; -insecure-no-auth disables token checks entirely and is
// only safe when that proxy (or a private network) already authenticates
// callers. GET /v1/keys and GET /healthz expose metadata only (owner
// names, versions, worker count) — never key material.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/obs"
	"ppclust/internal/service"
)

// options bundles the daemon's flag-configurable knobs.
type options struct {
	addr         string
	keyringPath  string
	dataDir      string
	jobsState    string
	workers      int
	blockRows    int
	batchRows    int
	maxBody      int64
	jobWorkers   int
	jobRetention int
	storeShards  int
	cacheBytes   int64
	noAuth       bool

	// Ring mode (see ring.go). nodeID enables it.
	nodeID     string
	advertise  string
	peers      string
	join       string
	replicas   int
	vnodes     int
	clusterKey string

	// Per-owner admission control. rateLimit enables it.
	rateLimit float64
	rateBurst int
	rateQueue int

	// Observability.
	slowMs    int
	logLevel  string
	pprofAddr string

	// ppscope: trace retention and SLO evaluation (scope.go).
	traceSample     float64
	traceStoreBytes int64
	sloSpecs        []string
	sloWindow       time.Duration

	// pppulse: metrics history, alerting and the flight recorder
	// (pulse.go). Alert rules are parsed (and rejected) at flag time.
	pulseInterval  time.Duration
	pulseRetention time.Duration
	pulseBytes     int64
	alertRules     []obs.AlertRule
	alertWebhook   string
	alertDebounce  time.Duration
	alertSLOFor    time.Duration
	incidentDir    string
	incidentKeep   int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8344", "listen address (loopback by default; front with a TLS proxy before exposing)")
	flag.StringVar(&o.keyringPath, "keyring", "", "path to the JSON keyring file (empty: in-memory, keys lost on exit)")
	flag.StringVar(&o.dataDir, "data-dir", "", "directory for uploaded datasets (empty: in-memory, lost on exit)")
	flag.StringVar(&o.jobsState, "jobs-state", "", "path for queued-job state persisted across restarts (empty: <data-dir>/queued-jobs.json when -data-dir is set, else none)")
	flag.IntVar(&o.workers, "workers", 0, "engine worker count (0: GOMAXPROCS)")
	flag.IntVar(&o.blockRows, "block-rows", 0, "rows per engine block (0: default)")
	flag.IntVar(&o.batchRows, "batch-rows", 4096, "rows per streaming batch")
	flag.Int64Var(&o.maxBody, "max-body", 1<<30, "maximum request body bytes")
	flag.IntVar(&o.jobWorkers, "job-workers", 0, "async job worker pool size (0: max(2, GOMAXPROCS))")
	flag.IntVar(&o.jobRetention, "job-retention", 0, "finished jobs kept per owner (0: default)")
	flag.IntVar(&o.storeShards, "store-shards", 0, "datastore index shards; concurrent multi-owner ingest scales with this (0: default)")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", 0, "datastore block-cache budget in bytes (0: default 256MiB)")
	flag.BoolVar(&o.noAuth, "insecure-no-auth", false, "disable per-owner bearer-token auth (only behind an authenticating proxy on a trusted network)")
	flag.StringVar(&o.nodeID, "node-id", "", "stable ring identity of this node; setting it enables multi-node ring mode")
	flag.StringVar(&o.advertise, "advertise", "", "base URL peers reach this node at (default http://<addr>)")
	flag.StringVar(&o.peers, "peers", "", "static ring membership as id=addr,id=addr (every node must get the same list)")
	flag.StringVar(&o.join, "join", "", "base URL of a running ring node to join")
	flag.IntVar(&o.replicas, "replicas", 1, "successor nodes mirroring each owner's keyring state and datasets")
	flag.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per member on the placement ring (0: default)")
	flag.StringVar(&o.clusterKey, "cluster-key", "", "shared secret required on internal /v1/ring traffic (empty: unguarded)")
	flag.Float64Var(&o.rateLimit, "rate-limit", 0, "per-owner admission budget in requests/second (0: disabled)")
	flag.IntVar(&o.rateBurst, "rate-burst", 0, "per-owner admission burst (0: max(1, rate-limit))")
	flag.IntVar(&o.rateQueue, "rate-queue", 0, "per-owner queued requests before shedding with 429 (0: default 16)")
	flag.IntVar(&o.slowMs, "slow-ms", 0, "log the full span tree of any request slower than this many milliseconds (0: disabled)")
	flag.Float64Var(&o.traceSample, "trace-sample", 0.1, "fraction of ordinary traces retained for GET /v1/traces (slow and error traces are always kept)")
	flag.Int64Var(&o.traceStoreBytes, "trace-store-bytes", 0, "trace store memory budget in bytes (0: 16MiB)")
	flag.Func("slo", "service-level objective, e.g. 'protect:p99<250ms,err<0.5%' (repeatable; conditions ','-separated, objectives ';'-separated)", func(v string) error {
		if _, err := obs.ParseSLO(v); err != nil {
			return err
		}
		o.sloSpecs = append(o.sloSpecs, v)
		return nil
	})
	flag.DurationVar(&o.sloWindow, "slo-window", 0, "rolling window SLOs are evaluated over (0: 1m)")
	flag.DurationVar(&o.pulseInterval, "pulse-interval", obs.DefaultPulseInterval, "metrics-history sampling cadence")
	flag.DurationVar(&o.pulseRetention, "pulse-retention", obs.DefaultPulseRetention, "metrics-history window served at GET /v1/metrics/history")
	flag.Int64Var(&o.pulseBytes, "pulse-bytes", 0, "metrics-history memory budget in bytes (0: 4MiB)")
	flag.Func("alert", "alert rule over any history series, e.g. 'ring_replication_pending>100 for 30s' (repeatable; rules ';'-separated)", func(v string) error {
		rules, err := obs.ParseAlertRules(v)
		if err != nil {
			return err
		}
		o.alertRules = append(o.alertRules, rules...)
		return nil
	})
	flag.StringVar(&o.alertWebhook, "alert-webhook", "", "URL POSTed each alert firing/resolution as JSON (http or https)")
	flag.DurationVar(&o.alertDebounce, "alert-debounce", obs.DefaultAlertDebounce, "minimum spacing between notifications per rule (negative: none)")
	flag.DurationVar(&o.alertSLOFor, "alert-slo-for", 30*time.Second, "how long an SLO must stay in breach before its alert fires")
	flag.StringVar(&o.incidentDir, "incident-dir", "", "directory for incident bundles captured on alert firings (empty: <data-dir>/_incidents when -data-dir is set, else disabled)")
	flag.IntVar(&o.incidentKeep, "incident-retention", 0, "incident bundles kept before the oldest are deleted (0: 16)")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty: disabled; keep it loopback or firewalled)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseLogLevel maps the -log-level flag onto a slog level, defaulting to
// info on unknown input rather than refusing to start.
func parseLogLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

func run(o options) error {
	// One logger for the whole daemon: JSON on stderr, node ID attached in
	// ring mode so a merged multi-node log still attributes every record.
	var logAttrs []slog.Attr
	if o.nodeID != "" {
		logAttrs = append(logAttrs, slog.String("node", o.nodeID))
	}
	logger := obs.NewLogger(os.Stderr, parseLogLevel(o.logLevel), logAttrs...)

	var keys keyring.Store
	if o.keyringPath == "" {
		logger.Info("keyring: in-memory (keys are lost on exit; use -keyring for persistence)")
		keys = keyring.NewMemory()
	} else {
		fileStore, err := keyring.OpenFile(o.keyringPath)
		if err != nil {
			return err
		}
		logger.Info("keyring open", "path", o.keyringPath)
		keys = fileStore
	}
	var store datastore.Store
	if o.dataDir == "" {
		logger.Info("datastore: in-memory (datasets are lost on exit; use -data-dir for persistence)")
		store = datastore.NewMemory()
	} else if o.keyringPath == "" {
		// Datasets outliving credentials would let anyone re-claim an
		// owner name after a restart and download that owner's persisted
		// originals — refuse the combination outright.
		return fmt.Errorf("ppclustd: -data-dir requires -keyring: persistent datasets need persistent owner credentials")
	} else {
		dirStore, err := datastore.OpenDirOptions(o.dataDir, datastore.DirOptions{
			Shards:     o.storeShards,
			CacheBytes: o.cacheBytes,
		})
		if err != nil {
			return err
		}
		logger.Info("datastore open", "path", o.dataDir,
			"shards", dirStore.Shards(), "cache_mib", dirStore.Cache().Stats().MaxBytes>>20)
		store = dirStore
		if o.jobsState == "" {
			o.jobsState = o.dataDir + "/queued-jobs.json"
		}
	}

	// Federation records persist alongside the datasets: an unsealed
	// federation must survive a drain/restart with the same ID, members
	// and contribution references, and its record embeds the shared
	// secret, so it gets the same private-directory treatment.
	var feds *federation.Manager
	if o.dataDir == "" {
		feds = federation.NewMemory()
	} else {
		var err error
		if feds, err = federation.Open(filepath.Join(o.dataDir, "_federations")); err != nil {
			return err
		}
		logger.Info("federations open", "path", filepath.Join(o.dataDir, "_federations"))
	}

	jobWorkers := o.jobWorkers
	if jobWorkers <= 0 {
		jobWorkers = max(2, runtime.GOMAXPROCS(0))
	}
	mgr := jobs.New(jobs.Config{Workers: jobWorkers, Retention: o.jobRetention})

	eng := engine.New(o.workers, o.blockRows)
	adm := service.AdmissionConfig{Rate: o.rateLimit, Burst: o.rateBurst, MaxQueue: o.rateQueue}
	s := newServerAdm(eng, keys, store, mgr, feds, adm)
	s.logger = logger
	s.slowLog = time.Duration(o.slowMs) * time.Millisecond
	s.nodeID = o.nodeID
	// The always-keep threshold for traces follows -slow-ms when set, so
	// "slow" means the same thing to the log dump and the trace store.
	if err := s.setupScope(scopeConfig{
		TraceSample:     o.traceSample,
		TraceStoreBytes: o.traceStoreBytes,
		SlowMs:          float64(o.slowMs),
		SLOSpecs:        o.sloSpecs,
		SLOWindow:       o.sloWindow,
	}); err != nil {
		mgr.Close()
		return err
	}
	if len(o.sloSpecs) > 0 {
		logger.Info("slo engine enabled", "objectives", len(s.slo.Objectives()),
			"window", s.slo.Window().String())
	}
	if o.batchRows > 0 {
		s.batchRows = o.batchRows
	}
	if o.maxBody > 0 {
		s.maxBody = o.maxBody
	}
	if o.noAuth {
		logger.Warn("auth DISABLED (-insecure-no-auth); every client can protect and recover for every owner")
		s.authDisabled = true
	}
	if s.svc.AdmissionEnabled() {
		logger.Info("admission enabled", "rate_per_owner", o.rateLimit)
	}
	var rt *ringRuntime
	if o.nodeID != "" {
		advertise := o.advertise
		if advertise == "" {
			advertise = "http://" + o.addr
		}
		rt = newRingRuntime(ringConfig{
			NodeID:     o.nodeID,
			Advertise:  advertise,
			ClusterKey: o.clusterKey,
			Replicas:   o.replicas,
			Vnodes:     o.vnodes,
		}, keys, store, s.svc)
		rt.maxBody = s.maxBody
		rt.logger = logger
		s.ring = rt
		// A ring node is not routable until catch-up completes: readyz
		// answers 503 "starting" until bootstrap below flips it.
		s.ready.Store(false)
	} else if o.peers != "" || o.join != "" {
		mgr.Close()
		return fmt.Errorf("ppclustd: -peers/-join require -node-id")
	}
	// pppulse: history sampling, alerting and the flight recorder. Runs
	// after ring wiring (the sampler snapshots ring gauges) and before
	// the listener serves. The webhook URL is validated here so a typo
	// dies at startup, not at the first firing.
	if o.alertWebhook != "" {
		u, err := url.Parse(o.alertWebhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			mgr.Close()
			return fmt.Errorf("ppclustd: bad -alert-webhook %q: want an absolute http(s) URL", o.alertWebhook)
		}
	}
	if o.incidentDir == "" && o.dataDir != "" {
		o.incidentDir = filepath.Join(o.dataDir, "_incidents")
	}
	if err := s.setupPulse(pulseConfig{
		Interval:          o.pulseInterval,
		Retention:         o.pulseRetention,
		MaxBytes:          o.pulseBytes,
		AlertRules:        o.alertRules,
		AlertDebounce:     o.alertDebounce,
		SLOFor:            o.alertSLOFor,
		WebhookURL:        o.alertWebhook,
		IncidentDir:       o.incidentDir,
		IncidentRetention: o.incidentKeep,
	}); err != nil {
		mgr.Close()
		return err
	}
	defer s.closePulse()
	logger.Info("pulse sampler enabled", "interval", o.pulseInterval.String(),
		"retention", o.pulseRetention.String())
	if s.alerts != nil {
		logger.Info("alert engine enabled", "rules", len(o.alertRules),
			"slo_objectives", len(s.slo.Objectives()),
			"webhook", o.alertWebhook != "", "incident_dir", o.incidentDir)
	}
	// The listener is claimed synchronously before the queued-job state
	// file is consumed: if the port is taken (or any other startup
	// failure), the persisted jobs must survive for the next attempt.
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		mgr.Close()
		return fmt.Errorf("ppclustd: %w", err)
	}
	if o.jobsState != "" {
		if n, err := restoreQueuedJobs(mgr, o.jobsState); err != nil {
			ln.Close()
			return err
		} else if n > 0 {
			logger.Info("jobs resubmitted from state file", "count", n, "path", o.jobsState)
		}
	}

	// The profiling surface is a separate listener so it can stay bound to
	// loopback (or be firewalled) independently of -addr, and so heavy
	// profile downloads never contend with data-plane accept queues.
	if o.pprofAddr != "" {
		pln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			ln.Close()
			mgr.Close()
			return fmt.Errorf("ppclustd: pprof listen: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		defer psrv.Close()
		go func() {
			logger.Info("pprof listening", "addr", o.pprofAddr)
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof server exited", "err", err.Error())
			}
		}()
	}

	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("ppclustd listening", "addr", o.addr,
			"engine_workers", eng.Workers(), "job_workers", mgr.Workers())
		errc <- srv.Serve(ln)
	}()

	// Ring bootstrap runs after the listener serves: a joined peer syncs
	// the new membership back immediately, and catch-up pulls need both
	// sides answering.
	if rt != nil {
		bctx, bcancel := context.WithTimeout(ctx, 30*time.Second)
		err := rt.bootstrap(bctx, o.peers, o.join)
		bcancel()
		if err != nil {
			rt.Close()
			drainJobs(logger, mgr, o.jobsState)
			srv.Close()
			<-errc
			return fmt.Errorf("ppclustd: ring bootstrap: %w", err)
		}
		epoch, nodes := rt.ring.Snapshot()
		logger.Info("ring node up", "addr", rt.self.Addr,
			"epoch", epoch, "members", len(nodes), "replicas", o.replicas)
	}
	// Startup (including ring catch-up) is complete: start answering
	// readyz with 200 so load balancers route here.
	s.ready.Store(true)

	select {
	case err := <-errc:
		// The server died on its own: drain and persist the queue just
		// like a signalled shutdown so restored jobs are not lost.
		s.draining.Store(true)
		if rt != nil {
			rt.Close()
		}
		drainJobs(logger, mgr, o.jobsState)
		return fmt.Errorf("ppclustd: %w", err)
	case <-ctx.Done():
	}
	// Graceful drain, in dependency order: first the job subsystem stops
	// accepting work, cancels running jobs via their contexts and hands
	// back the queued tail; then that tail is persisted; only then does
	// the HTTP server finish in-flight requests and stop. A job submitted
	// in the gap gets 503 from the draining manager rather than being
	// silently dropped.
	logger.Info("ppclustd shutting down")
	// Readiness goes first: from this instant readyz answers 503
	// "draining" while healthz keeps answering 200 — the window in which
	// a rolling deploy shifts traffic away before in-flight work finishes.
	s.draining.Store(true)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if rt != nil {
		// Flush queued replication before the HTTP server stops taking
		// the peers' traffic. Membership is kept: an unplanned exit is
		// what the successor replicas exist for; a planned departure goes
		// through POST /v1/ring/leave first.
		rt.Close()
	}
	drainJobs(logger, mgr, o.jobsState)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("ppclustd: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("ppclustd: %w", err)
	}
	return nil
}

// drainJobs stops the job subsystem and persists its queued tail (when a
// state path is configured).
func drainJobs(logger *slog.Logger, mgr *jobs.Manager, statePath string) {
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	queued, derr := mgr.Drain(drainCtx)
	if derr != nil {
		logger.Warn("job drain", "err", derr.Error())
	}
	if statePath != "" {
		if err := persistQueuedJobs(statePath, queued); err != nil {
			logger.Error("persisting queued jobs", "err", err.Error())
		} else if len(queued) > 0 {
			logger.Info("persisted queued jobs", "count", len(queued), "path", statePath)
		}
	} else if len(queued) > 0 {
		logger.Warn("dropping queued jobs (no -jobs-state path)", "count", len(queued))
	}
}

// persistQueuedJobs writes the drained queue atomically with 0600
// permissions (job specs name owners and datasets).
func persistQueuedJobs(path string, queued []jobs.QueuedJob) error {
	if len(queued) == 0 {
		// Nothing pending: remove stale state so a restart does not
		// resurrect jobs from an older shutdown.
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return nil
	}
	raw, err := json.MarshalIndent(queued, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// restoreQueuedJobs resubmits jobs persisted by a previous drain and
// consumes the state file.
func restoreQueuedJobs(mgr *jobs.Manager, path string) (int, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("ppclustd: reading %s: %w", path, err)
	}
	var queued []jobs.QueuedJob
	if err := json.Unmarshal(raw, &queued); err != nil {
		return 0, fmt.Errorf("ppclustd: parsing %s: %w", path, err)
	}
	for _, q := range queued {
		if _, err := mgr.Resubmit(q); err != nil {
			return 0, fmt.Errorf("ppclustd: resubmitting job %s: %w", q.ID, err)
		}
	}
	if err := os.Remove(path); err != nil {
		return 0, fmt.Errorf("ppclustd: consuming %s: %w", path, err)
	}
	return len(queued), nil
}
