package main

// The tune job type: privacy–utility frontier search as a service. A tune
// job sweeps a grid (plus optional adaptive refinement) of protection
// mechanisms — the paper's RBT at several PST levels, the additive and
// multiplicative noise baselines, and the RBT+noise hybrid — over one
// stored dataset, scores every candidate on utility (misclassification /
// F-measure / Rand index against the normalized original's clustering),
// privacy (minimum per-attribute Sec) and attack resistance (known-sample
// re-identification rate), and returns the Pareto frontier plus the
// recommended operating point under the submitted constraint.
//
// Spec: {"type":"tune","dataset":D,"algorithm":"kmeans","k":K,
// "mechanisms":["rbt","additive","multiplicative","hybrid"],
// "rhos":[...],"sigmas":[...],"min_sec":0.3,"refine":1,"known":N,
// "seed":S,"norm":"zscore"}. Every field after dataset/algorithm/k is
// optional; the defaults sweep all four mechanisms over the package's
// standard grids. Candidate counts are visible at GET /v1/metrics as
// tune_candidates_evaluated_total / tune_candidates_pruned_total /
// tune_candidates_failed_total.

import (
	"context"
	"encoding/json"
	"fmt"

	"ppclust/internal/cluster"
	"ppclust/internal/datastore"
	"ppclust/internal/jobs"
	"ppclust/internal/tuning"
)

const jobTune = "tune"

// validateTuneSpec front-loads the sweep-spec failures a worker would
// otherwise hit, including the full tuning-package validation against the
// dataset's shape.
func (s *server) validateTuneSpec(spec *jobSpec, ds *datastore.Dataset) error {
	if _, err := normKind(spec.Norm); err != nil {
		return err
	}
	if spec.KMin != 0 || spec.KMax != 0 {
		return fmt.Errorf("%w: tune sweeps one fixed algorithm; k-selection is a cluster job", errBadJob)
	}
	if _, err := buildClusterer(spec); err != nil {
		return err
	}
	tspec := s.tuningSpec(spec)
	if err := tspec.Validate(ds.Rows, ds.Cols); err != nil {
		return err
	}
	return nil
}

// tuningSpec maps the wire spec onto the tuning package's.
func (s *server) tuningSpec(spec *jobSpec) tuning.Spec {
	norm, _ := normKind(spec.Norm)
	return tuning.Spec{
		Norm:       norm,
		Mechanisms: spec.Mechanisms,
		Rhos:       spec.Rhos,
		Sigmas:     spec.Sigmas,
		Seed:       spec.Seed,
		Known:      spec.Known,
		MinSec:     spec.MinSec,
		Refine:     spec.Refine,
		NewClusterer: func() (cluster.Clusterer, error) {
			return buildClusterer(spec)
		},
	}
}

// runTuneJob executes the sweep described above over the job's worker
// slot, fanning candidates out over the tuning package's own bounded pool.
func (s *server) runTuneJob(ctx context.Context, t *jobs.Task) (any, error) {
	var spec jobSpec
	if err := json.Unmarshal(t.Spec, &spec); err != nil {
		return nil, err
	}
	ds, err := s.store.Get(t.Owner, spec.Dataset)
	if err != nil {
		return nil, err
	}
	t.SetProgress(0.02)
	res, err := tuning.Run(ctx, ds.Matrix(), s.tuningSpec(&spec), tuning.Config{Engine: s.eng},
		func(done, total int) {
			if total > 0 {
				t.SetProgress(0.02 + 0.96*float64(done)/float64(total))
			}
		})
	if err != nil {
		return nil, err
	}
	s.tuneEvaluated.Add(int64(res.Evaluated))
	s.tunePruned.Add(int64(res.Pruned))
	s.tuneFailed.Add(int64(res.Failed))
	return res, nil
}
