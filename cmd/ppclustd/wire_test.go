package main

// HTTP-level coverage for the framed binary wire path: ingest parity
// with the text formats (same stored bytes, same rejections), the
// protect stream in binary end to end, forwarding binary bodies across
// the ring, and the mixed-version replication fallback to the legacy
// JSON transfer.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ppclust/internal/codec"
	"ppclust/internal/matrix"
)

// renderBinaryRows frames names+rows as one complete binary stream.
func renderBinaryRows(t *testing.T, names []string, m *matrix.Dense) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := codec.NewWriter(&buf)
	if err := w.WriteHeader(names, false); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(m, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postBinary posts a framed binary body and returns the response with
// its body read.
func postBinary(t *testing.T, url, token string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", codec.ContentType)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// decodeBinaryRows decodes a complete binary stream into a matrix.
func decodeBinaryRows(t *testing.T, raw []byte) ([]string, *matrix.Dense) {
	t.Helper()
	rd := codec.NewReader(bytes.NewReader(raw))
	var rows [][]float64
	for {
		row, err := rd.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("decoding binary rows: %v", err)
		}
		rows = append(rows, row)
	}
	return rd.Names(), matrix.FromRows(rows)
}

func bitIdentical(a, b *matrix.Dense) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	ar, br := a.Raw(), b.Raw()
	for i := range ar {
		if math.Float64bits(ar[i]) != math.Float64bits(br[i]) {
			return false
		}
	}
	return true
}

// TestBinaryIngestMatchesCSV: the same matrix uploaded as CSV and as
// framed binary stores identically — downloads in either format agree
// byte for byte (text) and bit for bit (binary), across multiple
// datastore blocks.
func TestBinaryIngestMatchesCSV(t *testing.T) {
	ts, _ := newTestServer(t) // batchRows=64 → several blocks for 300 rows
	csvBody, orig := testCSV(t, 300, 1)

	_, tokCSV := uploadDataset(t, ts, "wirecsv", "d", "", "", csvBody)
	names := []string{"age", "weight", "glucose", "systolic", "cholesterol"}[:orig.Cols()]
	resp, _ := postBinary(t, ts.URL+"/v1/datasets?owner=wirebin&name=d", "", renderBinaryRows(t, names, orig))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("binary upload: %d", resp.StatusCode)
	}
	tokBin := resp.Header.Get("X-Ppclust-Token")

	// CSV downloads of both datasets agree byte for byte.
	respA, bodyA := getJSON(t, ts.URL+"/v1/datasets/d/rows?owner=wirecsv", tokCSV, nil)
	respB, bodyB := getJSON(t, ts.URL+"/v1/datasets/d/rows?owner=wirebin", tokBin, nil)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("rows: %d / %d", respA.StatusCode, respB.StatusCode)
	}
	// The header rows differ only if names differ; compare data rows.
	rowsA := bodyA[strings.IndexByte(bodyA, '\n'):]
	rowsB := bodyB[strings.IndexByte(bodyB, '\n'):]
	if rowsA != rowsB {
		t.Fatal("CSV download of binary-ingested dataset differs from CSV-ingested one")
	}

	// Binary download of the CSV-ingested dataset is bit-identical to
	// the original values (CSV's 'g' rendering round-trips exactly).
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/d/rows?owner=wirecsv&format=binary", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+tokCSV)
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("binary download: %d %v", hresp.StatusCode, err)
	}
	if ct := hresp.Header.Get("Content-Type"); ct != codec.ContentType {
		t.Fatalf("binary download content type = %q", ct)
	}
	gotNames, got := decodeBinaryRows(t, raw)
	if len(gotNames) != orig.Cols() {
		t.Fatalf("names = %v", gotNames)
	}
	if !bitIdentical(got, orig) {
		t.Fatal("binary download is not bit-identical to the uploaded values")
	}
}

// TestBinaryIngestRejectionParity: the screens that protect the store —
// non-finite values, malformed streams — answer the same way regardless
// of wire format, and a binary body without its end frame is rejected as
// truncated rather than stored short.
func TestBinaryIngestRejectionParity(t *testing.T) {
	ts, _ := newTestServer(t)

	respCSV, _ := postAuth(t, ts.URL+"/v1/datasets?owner=nancsv&name=d", "", "a,b\n1,NaN\n")
	nan := matrix.NewDense(1, 2, []float64{1, math.NaN()})
	respBin, bodyBin := postBinary(t, ts.URL+"/v1/datasets?owner=nanbin&name=d", "", renderBinaryRows(t, []string{"a", "b"}, nan))
	if respCSV.StatusCode != respBin.StatusCode || respBin.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN rejection: csv %d, binary %d (want both 400): %s",
			respCSV.StatusCode, respBin.StatusCode, bodyBin)
	}

	inf := matrix.NewDense(1, 2, []float64{math.Inf(1), 2})
	respInf, _ := postBinary(t, ts.URL+"/v1/datasets?owner=infbin&name=d", "", renderBinaryRows(t, []string{"a", "b"}, inf))
	if respInf.StatusCode != http.StatusBadRequest {
		t.Fatalf("Inf over binary: %d, want 400", respInf.StatusCode)
	}

	// Cut the stream before its end frame: the missing frame is the
	// abort signal, so the upload must fail, not store a prefix.
	full := renderBinaryRows(t, []string{"a", "b"}, matrix.NewDense(2, 2, []float64{1, 2, 3, 4}))
	respTrunc, bodyTrunc := postBinary(t, ts.URL+"/v1/datasets?owner=truncbin&name=d", "", full[:len(full)-9])
	if respTrunc.StatusCode != http.StatusBadRequest || !strings.Contains(string(bodyTrunc), "truncated") {
		t.Fatalf("truncated binary upload: %d %s, want 400 mentioning truncation", respTrunc.StatusCode, bodyTrunc)
	}
}

// TestBinaryProtectStreamMatchesCSV: steady-state stream-protect over
// the binary wire produces bit-identically the release the CSV wire
// does — the no-conversion path changes representation, never values.
func TestBinaryProtectStreamMatchesCSV(t *testing.T) {
	ts, _ := newTestServer(t)
	csvBody, orig := testCSV(t, 200, 3)

	resp, _ := post(t, ts.URL+"/v1/protect?owner=wp&seed=5", csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: %d", resp.StatusCode)
	}
	tok := token(t, resp)

	respCSV, relCSV := postAuth(t, ts.URL+"/v1/protect?owner=wp&mode=stream", tok, csvBody)
	if respCSV.StatusCode != http.StatusOK {
		t.Fatalf("csv stream: %d %s", respCSV.StatusCode, relCSV)
	}
	names := make([]string, orig.Cols())
	respBin, relBin := postBinary(t, ts.URL+"/v1/protect?owner=wp&mode=stream&format=binary", tok,
		renderBinaryRows(t, names, orig))
	if respBin.StatusCode != http.StatusOK {
		t.Fatalf("binary stream: %d", respBin.StatusCode)
	}
	if ct := respBin.Header.Get("Content-Type"); ct != codec.ContentType {
		t.Fatalf("binary stream response content type = %q", ct)
	}
	_, gotBin := decodeBinaryRows(t, relBin)
	gotCSV := parseCSVBody(t, relCSV)
	if !bitIdentical(gotBin, gotCSV) {
		t.Fatal("binary stream release differs from CSV stream release")
	}
}

// TestRingForwardsBinaryBodies: a binary upload entering at a non-home
// node is proxied verbatim to the owner's home node, and the stored
// rows read back identical through a third node in CSV — the
// mixed-format path a binary client takes through a text-speaking
// consumer.
func TestRingForwardsBinaryBodies(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	owner := ownerHomedOn(t, nodes, "n2", 0)
	entry := entryAvoiding(t, nodes, owner)
	other := nodes[(indexOf(nodes, entry)+1)%len(nodes)]

	_, orig := testCSV(t, 120, 9)
	names := make([]string, orig.Cols())
	resp, _ := postBinary(t, entry.srv.URL+"/v1/datasets?owner="+owner+"&name=d&format=binary", "",
		renderBinaryRows(t, names, orig))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("forwarded binary upload: %d", resp.StatusCode)
	}
	tok := resp.Header.Get("X-Ppclust-Token")
	if tok == "" {
		t.Fatal("forwarded binary upload minted no token")
	}

	respRows, rows := getJSON(t, other.srv.URL+"/v1/datasets/d/rows?owner="+owner, tok, nil)
	if respRows.StatusCode != http.StatusOK {
		t.Fatalf("cross-node rows: %d %s", respRows.StatusCode, rows)
	}
	if got := parseCSVBody(t, rows); !bitIdentical(got, orig) {
		t.Fatal("rows read back through the ring differ from the binary upload")
	}
}

// TestReplicationFallsBackToJSONPeer: a peer that rejects the binary
// replication body with a 4xx — an older build mid-upgrade — gets the
// legacy JSON transfer on the same call, so mixed-version rings keep
// replicating.
func TestReplicationFallsBackToJSONPeer(t *testing.T) {
	nodes := startRing(t, 1, 0, "")
	nd := nodes[0]

	csvBody, orig := testCSV(t, 50, 4)
	uploadDataset(t, nd.srv, "fbowner", "d", "", "", csvBody)
	ds, err := nd.store.Get("fbowner", "d")
	if err != nil {
		t.Fatal(err)
	}

	var sawBinary, sawJSON bool
	var imported datasetTransfer
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/ring/replicate/dataset" {
			t.Errorf("unexpected call %s %s", r.Method, r.URL.Path)
			http.NotFound(w, r)
			return
		}
		if strings.HasPrefix(r.Header.Get("Content-Type"), codec.ContentType) {
			sawBinary = true
			http.Error(w, `{"error":{"code":"invalid","message":"unknown content type"}}`, http.StatusBadRequest)
			return
		}
		sawJSON = true
		if err := json.NewDecoder(r.Body).Decode(&imported); err != nil {
			t.Error(err)
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(legacy.Close)

	if err := nd.rt.sendDataset(context.Background(), legacy.URL, ds); err != nil {
		t.Fatalf("sendDataset against legacy peer: %v", err)
	}
	if !sawBinary || !sawJSON {
		t.Fatalf("binary tried = %v, json fallback = %v; want both", sawBinary, sawJSON)
	}
	if imported.Owner != "fbowner" || imported.Name != "d" || len(imported.Rows) != orig.Rows() {
		t.Fatalf("legacy transfer = owner %q name %q rows %d", imported.Owner, imported.Name, len(imported.Rows))
	}
}
