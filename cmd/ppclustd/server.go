package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"

	"ppclust"
	"ppclust/internal/core"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
	"ppclust/internal/mech"
	"ppclust/internal/metrics"
	"ppclust/internal/multiparty"
	"ppclust/internal/tuning"
)

// server wires the parallel RBT engine, the keyring, the dataset store and
// the async job subsystem behind the HTTP API:
//
//	POST /v1/protect?owner=NAME   protect a dataset, storing the secret
//	POST /v1/recover?owner=NAME   invert a release using the stored secret
//	GET  /v1/keys                 list owners (no secret material)
//	GET  /v1/metrics              expvar-style counters (metrics.go)
//	GET  /healthz                 liveness probe
//	/v1/datasets...               named owner-scoped uploads (datasets.go)
//	/v1/jobs...                   async analytics jobs (jobs.go)
//	/v1/federations...            multi-party federation (federations.go)
//
// Protect has two modes. mode=fit (the default) reads the whole body, fits
// normalization and a fresh PST-checked rotation key, stores the secret as
// a new key version for the owner, and streams the release back row by
// row. mode=stream reuses the owner's stored key to protect the body
// incrementally in fixed-size batches — constant memory, suitable for
// unbounded inputs. Recover always streams.
//
// A fit-protect or dataset upload that creates an owner mints that owner's
// bearer token (see auth.go); every request against an existing owner must
// present it unless authDisabled is set.
type server struct {
	eng          *engine.Engine
	keys         keyring.Store
	store        datastore.Store
	mgr          *jobs.Manager
	feds         *federation.Manager
	maxBody      int64
	batchRows    int
	authDisabled bool
	// fedResched serializes rescheduling of lost federation jobs
	// (federations.go) so concurrent result fetches submit one job.
	fedResched sync.Mutex

	reg                                        *metrics.Registry
	rowsProtected, rowsRecovered, rowsIngested *metrics.Counter
	tuneEvaluated, tunePruned, tuneFailed      *metrics.Counter
}

func newServer(eng *engine.Engine, keys keyring.Store, store datastore.Store, mgr *jobs.Manager, feds *federation.Manager) *server {
	s := &server{
		eng:       eng,
		keys:      keys,
		store:     store,
		mgr:       mgr,
		feds:      feds,
		maxBody:   1 << 30,
		batchRows: 4096,
	}
	s.initMetrics()
	s.registerJobRunners()
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/keys", s.handleKeys)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/protect", s.handleProtect)
	mux.HandleFunc("POST /v1/recover", s.handleRecover)
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	mux.HandleFunc("GET /v1/datasets/{name}/rows", s.handleDatasetRows)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDatasetDelete)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("POST /v1/federations", s.handleFederationCreate)
	mux.HandleFunc("GET /v1/federations", s.handleFederationList)
	mux.HandleFunc("GET /v1/federations/{id}", s.handleFederationGet)
	mux.HandleFunc("DELETE /v1/federations/{id}", s.handleFederationDelete)
	mux.HandleFunc("POST /v1/federations/{id}/join", s.handleFederationJoin)
	mux.HandleFunc("POST /v1/federations/{id}/contribute", s.handleFederationContribute)
	mux.HandleFunc("DELETE /v1/federations/{id}/contribute", s.handleFederationWithdraw)
	mux.HandleFunc("POST /v1/federations/{id}/seal", s.handleFederationSeal)
	mux.HandleFunc("GET /v1/federations/{id}/result", s.handleFederationResult)
	return s.instrument(mux)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.eng.Workers(),
	})
}

func (s *server) handleKeys(w http.ResponseWriter, _ *http.Request) {
	infos, err := s.keys.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *server) handleProtect(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	owner := q.Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	format, err := resolveFormat(q.Get("format"), r.Header)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Fit mode may create the owner; any touch of an existing owner's key
	// material (rotation included) requires that owner's token, and an
	// owner that exists only as a dataset-upload credential claim (no key
	// yet) must authenticate before its first key is fitted. The
	// existence check races with concurrent creations, but never into an
	// unauthenticated rotation: creation is an atomic claim
	// (CreateWithToken / ClaimToken) and the loser of a race gets
	// ErrExists.
	exists := false
	if _, err := s.keys.Get(owner); err == nil {
		exists = true
	} else if !errors.Is(err, keyring.ErrNotFound) {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	hasCred := false
	if _, err := s.keys.TokenHash(owner); err == nil {
		hasCred = true
	} else if !errors.Is(err, keyring.ErrNotFound) {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if exists || hasCred {
		if aerr := s.authorize(r, owner); aerr != nil {
			writeAuthErr(w, aerr)
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	rr := newRowReader(format, body)

	switch mode := q.Get("mode"); mode {
	case "", "fit":
		s.protectFit(w, q, format, rr, owner, exists, hasCred)
	case "stream":
		s.protectStream(w, r, q, format, rr, owner)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q (want fit or stream)", mode))
	}
}

// protectFit buffers the body, fits a fresh transform, stores the secret
// as a new key version, and streams the release. A fit that creates the
// owner atomically claims the name together with a freshly minted bearer
// token; a fit for an existing (authorized) owner rotates the key and
// keeps the credential, and a fit for an owner that so far only holds a
// dataset-upload credential stores its first key version under that
// credential.
func (s *server) protectFit(w http.ResponseWriter, q urlValues, format string, rr rowReader, owner string, exists, hasCred bool) {
	opts := engine.ProtectOptions{Normalization: engine.NormZScore}
	switch norm := q.Get("norm"); norm {
	case "", "zscore":
	case "minmax":
		opts.Normalization = engine.NormMinMax
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown norm %q (want zscore or minmax)", norm))
		return
	}
	rho1, err := parseFloat(q.Get("rho1"), 0.3)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rho2, err := parseFloat(q.Get("rho2"), 0.3)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts.Thresholds = []core.PST{{Rho1: rho1, Rho2: rho2}}
	if seedStr := q.Get("seed"); seedStr != "" {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad seed: %w", err))
			return
		}
		opts.Seed = seed
	}

	data, err := readAll(rr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.Protect(data, opts)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	var entry keyring.Entry
	token := ""
	secret := fromEngineSecret(res.Secret())
	if exists {
		// Rotation: the request was authorized against the existing
		// credential, which stays valid across key versions. When the
		// owner has no credential yet (created under -insecure-no-auth,
		// or a keyring predating token auth, reachable only with auth
		// disabled), mint one now so enabling auth later does not lock
		// the owner out.
		if entry, err = s.keys.Rotate(owner, secret); err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		if _, terr := s.keys.TokenHash(owner); errors.Is(terr, keyring.ErrNotFound) {
			tok, hash, err := newToken()
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			if err := s.keys.SetToken(owner, hash); err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			token = tok
		}
	} else if hasCred {
		// First key for a credential-only owner (created by a dataset
		// upload): the request was authorized against that credential,
		// which stays; Create never replaces a stored token.
		if entry, err = s.keys.Create(owner, secret); err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
	} else {
		// Creation: claim the owner name, key and credential in one
		// atomic store operation — a failure leaves no half-created
		// owner behind, and a concurrent claim of the same name loses
		// cleanly with ErrExists instead of rotating a key it never
		// authenticated for. The plaintext token crosses the wire
		// exactly once, in this response; only its hash is stored.
		tok, hash, err := newToken()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if entry, err = s.keys.CreateWithToken(owner, secret, hash); err != nil {
			if errors.Is(err, keyring.ErrExists) {
				err = fmt.Errorf("owner %q was created concurrently; retry with its bearer token: %w", owner, err)
			}
			writeErr(w, statusFor(err), err)
			return
		}
		token = tok
	}

	w.Header().Set("Content-Type", contentType(format))
	w.Header().Set("X-Ppclust-Owner", owner)
	w.Header().Set("X-Ppclust-Key-Version", strconv.Itoa(entry.Version))
	if token != "" {
		w.Header().Set("X-Ppclust-Token", token)
	}
	rw := newRowWriter(format, w)
	if err := rw.WriteNames(rr.Names()); err != nil {
		log.Printf("protect %s: writing header: %v", owner, err)
		return
	}
	for i := 0; i < res.Released.Rows(); i++ {
		if err := rw.WriteRow(res.Released.RawRow(i)); err != nil {
			log.Printf("protect %s: writing row %d: %v", owner, i, err)
			return
		}
		if (i+1)%s.batchRows == 0 {
			flush(rw, w)
		}
	}
	flush(rw, w)
	s.rowsProtected.Add(int64(res.Released.Rows()))
}

// protectStream protects the body incrementally under the owner's stored
// key: constant memory, unbounded input.
func (s *server) protectStream(w http.ResponseWriter, r *http.Request, q urlValues, format string, rr rowReader, owner string) {
	// The transform is frozen in stream mode; silently dropping fit-only
	// parameters would mislead callers about the privacy level applied.
	for _, p := range []string{"norm", "rho1", "rho2", "seed"} {
		if q.Get(p) != "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("parameter %q only applies to mode=fit; the stored key's transform is frozen", p))
			return
		}
	}
	entry, err := s.lookup(owner, q.Get("version"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Re-check the credential against the entry the lookup actually found:
	// handleProtect's existence snapshot can race a concurrent first fit,
	// and streaming chosen rows under someone else's freshly created key
	// would hand an attacker a chosen-plaintext oracle for it.
	if err := s.authorize(r, owner); err != nil {
		writeAuthErr(w, err)
		return
	}
	sp, err := s.eng.NewStreamProtector(toEngineSecret(entry.Secret))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	s.pump(w, format, rr, owner, entry.Version, sp.ProtectBatch, s.rowsProtected)
}

func (s *server) handleRecover(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	owner := q.Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	format, err := resolveFormat(q.Get("format"), r.Header)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	entry, err := s.lookup(owner, q.Get("version"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Inversion is the owner's privilege: require the owner's token.
	if err := s.authorize(r, owner); err != nil {
		writeAuthErr(w, err)
		return
	}
	sp, err := s.eng.NewStreamProtector(toEngineSecret(entry.Secret))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	s.pump(w, format, newRowReader(format, body), owner, entry.Version, sp.RecoverBatch, s.rowsRecovered)
}

// pump streams the request body through fn in batches of batchRows,
// writing transformed rows as they are produced and counting them into
// rows.
func (s *server) pump(w http.ResponseWriter, format string, rr rowReader, owner string, version int, fn func(*matrix.Dense) (*matrix.Dense, error), rows *metrics.Counter) {
	// Interleaving request-body reads with response writes needs explicit
	// full-duplex mode on HTTP/1.x; without it the server closes the body
	// at the first write.
	_ = http.NewResponseController(w).EnableFullDuplex()
	started := false
	start := func() {
		w.Header().Set("Content-Type", contentType(format))
		w.Header().Set("X-Ppclust-Owner", owner)
		w.Header().Set("X-Ppclust-Key-Version", strconv.Itoa(version))
		started = true
	}
	rw := newRowWriter(format, w)
	// abort kills the connection once the response has started: the
	// client must see a transport error, never a clean EOF on a
	// truncated dataset.
	abort := func(reason string, err error) {
		log.Printf("stream %s: %s: %v", owner, reason, err)
		panic(http.ErrAbortHandler)
	}
	for {
		batch, err := readBatch(rr, s.batchRows)
		if err != nil && !errors.Is(err, io.EOF) {
			if !started {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			abort("reading", err)
		}
		done := errors.Is(err, io.EOF)
		if batch != nil {
			out, err := fn(batch)
			if err != nil {
				if !started {
					writeErr(w, statusFor(err), err)
					return
				}
				abort("transforming", err)
			}
			if !started {
				start()
				if err := rw.WriteNames(rr.Names()); err != nil {
					abort("writing header", err)
				}
			}
			for i := 0; i < out.Rows(); i++ {
				if err := rw.WriteRow(out.RawRow(i)); err != nil {
					abort("writing", err)
				}
			}
			rows.Add(int64(out.Rows()))
			flush(rw, w)
		}
		if done {
			if !started {
				// Empty body: still answer with headers and no rows.
				start()
			}
			flush(rw, w)
			return
		}
	}
}

// lookup fetches the owner's current or explicitly versioned entry.
func (s *server) lookup(owner, versionStr string) (keyring.Entry, error) {
	if versionStr == "" {
		return s.keys.Get(owner)
	}
	version, err := strconv.Atoi(versionStr)
	if err != nil {
		return keyring.Entry{}, fmt.Errorf("%w: bad version %q", keyring.ErrBadName, versionStr)
	}
	return s.keys.GetVersion(owner, version)
}

// readAll drains a rowReader into a dense matrix, accumulating directly
// into the flat backing slice so the largest fit requests are held in
// memory once, not twice.
func readAll(rr rowReader) (*matrix.Dense, error) {
	var flat []float64
	var cols, rows int
	for {
		row, err := rr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if rows == 0 {
			cols = len(row)
		}
		flat = append(flat, row...)
		rows++
	}
	if rows == 0 {
		return nil, fmt.Errorf("empty dataset")
	}
	return matrix.NewDense(rows, cols, flat), nil
}

// readBatch reads up to limit rows. It returns (nil, io.EOF) on a clean
// end of stream and (batch, io.EOF) when the final batch is short.
func readBatch(rr rowReader, limit int) (*matrix.Dense, error) {
	var rows [][]float64
	for len(rows) < limit {
		row, err := rr.Read()
		if errors.Is(err, io.EOF) {
			if len(rows) == 0 {
				return nil, io.EOF
			}
			return matrix.FromRows(rows), io.EOF
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return matrix.FromRows(rows), nil
}

// urlValues is the subset of url.Values the handlers consume.
type urlValues interface{ Get(string) string }

func parseFloat(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", s, err)
	}
	return v, nil
}

func flush(rw rowWriter, w http.ResponseWriter) {
	if err := rw.Flush(); err != nil {
		return
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// statusFor maps domain errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, keyring.ErrNotFound),
		errors.Is(err, datastore.ErrNotFound),
		errors.Is(err, jobs.ErrNotFound),
		errors.Is(err, federation.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, keyring.ErrExists),
		errors.Is(err, datastore.ErrExists),
		errors.Is(err, jobs.ErrNotTerminal),
		errors.Is(err, jobs.ErrTerminal),
		errors.Is(err, federation.ErrExists),
		errors.Is(err, federation.ErrState):
		return http.StatusConflict
	case errors.Is(err, federation.ErrNotCoordinator):
		return http.StatusForbidden
	case errors.Is(err, jobs.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, keyring.ErrBadName),
		errors.Is(err, datastore.ErrBadName),
		errors.Is(err, datastore.ErrBadData),
		errors.Is(err, errBadJob),
		errors.Is(err, jobs.ErrUnknownType),
		errors.Is(err, federation.ErrBadConfig),
		errors.Is(err, multiparty.ErrParty),
		errors.Is(err, tuning.ErrSpec),
		errors.Is(err, mech.ErrConfig),
		errors.Is(err, core.ErrBadInput),
		errors.Is(err, core.ErrBadPair),
		errors.Is(err, core.ErrBadThreshold),
		errors.Is(err, core.ErrEmptySecurityRange):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func toEngineSecret(s ppclust.OwnerSecret) engine.Secret {
	return engine.Secret{
		Key:           s.Key,
		Normalization: string(s.Normalization),
		ParamsA:       s.ParamsA,
		ParamsB:       s.ParamsB,
		Columns:       s.Columns,
	}
}

func fromEngineSecret(s engine.Secret) ppclust.OwnerSecret {
	return ppclust.OwnerSecret{
		Key:           s.Key,
		Normalization: ppclust.Normalization(s.Normalization),
		ParamsA:       s.ParamsA,
		ParamsB:       s.ParamsB,
		Columns:       s.Columns,
	}
}
