package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ppclust/internal/core"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/obs"
	"ppclust/internal/service"
)

// server is the HTTP transport over the internal/service layer:
//
//	POST /v1/protect?owner=NAME   protect a dataset, storing the secret
//	POST /v1/recover?owner=NAME   invert a release using the stored secret
//	GET  /v1/keys                 list owners (no secret material)
//	GET  /v1/metrics              expvar-style counters (metrics.go)
//	GET  /healthz                 liveness probe
//	/v1/datasets...               named owner-scoped uploads (datasets.go)
//	/v1/jobs...                   async analytics jobs (jobs.go)
//	/v1/federations...            multi-party federation (federations.go)
//
// Handlers own exactly three things: query/body decoding, bearer-token
// authorization, and the JSON envelope. All business logic — key
// management, dataset ingest, job validation and execution, federation
// lifecycle, tuning — lives in internal/service, and every error crosses
// one mapper (writeErr) into one envelope shape:
//
//	{"error": {"code": "...", "message": "..."}}
//
// Protect has two modes. mode=fit (the default) reads the whole body, fits
// normalization and a fresh PST-checked rotation key, stores the secret as
// a new key version for the owner, and streams the release back row by
// row. mode=stream reuses the owner's stored key to protect the body
// incrementally in fixed-size batches — constant memory, suitable for
// unbounded inputs. Recover always streams.
//
// A fit-protect or dataset upload that creates an owner mints that owner's
// bearer token (see auth.go); every request against an existing owner must
// present it unless authDisabled is set.
type server struct {
	svc          *service.Services
	maxBody      int64
	batchRows    int
	authDisabled bool
	// ring is non-nil when the daemon runs as one node of a multi-node
	// ring (see ring.go): it adds the /v1/ring routes and the forwarding
	// middleware in front of the mux.
	ring *ringRuntime
	// logger is the daemon's structured log sink (JSON on stderr by
	// default; main attaches the node ID in ring mode).
	logger *slog.Logger
	// slowLog, when positive, is the -slow-ms threshold above which a
	// request's full span tree is dumped to the log.
	slowLog time.Duration
	// nodeID is the ring identity stamped on trace records and cluster
	// metrics ("" single-node; see nodeName).
	nodeID string
	// traces retains finished span trees for the /v1/traces query API
	// (scope.go). Always non-nil after construction; setupScope replaces
	// it with the flag-configured store.
	traces *obs.TraceStore
	// slo evaluates per-route objectives over a rolling window (nil when
	// no -slo is configured; all its methods are nil-safe).
	slo *obs.SLOEngine
	// pulse samples the metrics surface into the /v1/metrics/history
	// store; alerts evaluates -alert rules and SLO breaches against each
	// sample; recorder captures incident bundles on firings; webhook
	// pushes firing/resolved events out. All nil until setupPulse runs
	// (pulse.go) and nil-safe throughout.
	pulse    *obs.Pulse
	alerts   *obs.AlertEngine
	recorder *obs.Recorder
	webhook  *obs.WebhookSink
	// ready and draining drive GET /readyz: ready flips true once
	// startup (including ring catch-up) completes; draining flips true
	// the moment shutdown begins, so load balancers stop routing to a
	// dying node while /healthz still answers 200 for liveness.
	ready    atomic.Bool
	draining atomic.Bool
}

func newServer(eng *engine.Engine, keys keyring.Store, store datastore.Store, mgr *jobs.Manager, feds *federation.Manager) *server {
	return newServerAdm(eng, keys, store, mgr, feds, service.AdmissionConfig{})
}

// newServerAdm is newServer with per-owner admission control configured
// (the zero config disables it).
func newServerAdm(eng *engine.Engine, keys keyring.Store, store datastore.Store, mgr *jobs.Manager, feds *federation.Manager, adm service.AdmissionConfig) *server {
	s := &server{
		svc: service.New(service.Config{
			Engine:      eng,
			Keys:        keys,
			Store:       store,
			Jobs:        mgr,
			Federations: feds,
			Admission:   adm,
		}),
		maxBody:   1 << 30,
		batchRows: 4096,
		logger:    obs.NewLogger(os.Stderr, slog.LevelInfo),
	}
	// Default trace store keeps every trace (deterministic for embedded
	// and test use); the daemon's -trace-sample default applies via
	// setupScope in main.
	s.traces = obs.NewTraceStore(obs.TraceStoreConfig{Sample: 1}, s.svc.Registry())
	// The closure reads the fields live so setupScope swaps apply; both
	// are settled before the listener serves.
	s.svc.AddGaugeSource(func() map[string]int64 {
		g := s.traces.Gauges()
		for k, v := range s.slo.Gauges() {
			g[k] = v
		}
		for k, v := range s.pulse.Gauges() {
			g[k] = v
		}
		for k, v := range s.alerts.Gauges() {
			g[k] = v
		}
		return g
	})
	s.ready.Store(true)
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/keys", s.handleKeys)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/metrics/history", s.handleMetricsHistory)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("GET /v1/incidents", s.handleIncidentList)
	mux.HandleFunc("GET /v1/incidents/{id}", s.handleIncidentGet)
	mux.HandleFunc("GET /v1/incidents/{id}/files/{name}", s.handleIncidentFile)
	mux.HandleFunc("POST /v1/protect", s.handleProtect)
	mux.HandleFunc("POST /v1/recover", s.handleRecover)
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleDatasetGet)
	mux.HandleFunc("GET /v1/datasets/{name}/rows", s.handleDatasetRows)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDatasetDelete)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("POST /v1/federations", s.handleFederationCreate)
	mux.HandleFunc("GET /v1/federations", s.handleFederationList)
	mux.HandleFunc("GET /v1/federations/{id}", s.handleFederationGet)
	mux.HandleFunc("DELETE /v1/federations/{id}", s.handleFederationDelete)
	mux.HandleFunc("POST /v1/federations/{id}/join", s.handleFederationJoin)
	mux.HandleFunc("POST /v1/federations/{id}/contribute", s.handleFederationContribute)
	mux.HandleFunc("DELETE /v1/federations/{id}/contribute", s.handleFederationWithdraw)
	mux.HandleFunc("POST /v1/federations/{id}/seal", s.handleFederationSeal)
	mux.HandleFunc("GET /v1/federations/{id}/result", s.handleFederationResult)
	// Middleware order, outside in: instrumentation sees every request;
	// ring forwarding runs before admission so the rate limit is charged
	// on the node that serves the request, not the one that happened to
	// receive it; admission guards the mux.
	var h http.Handler = s.admit(mux)
	if s.ring != nil {
		s.ring.traces = s.traces
		s.ring.registerRoutes(mux)
		// The pulse peer routes live here rather than in registerRoutes:
		// their handlers read server state (pulse store, alert engine).
		guard := s.ring.requireClusterKey
		mux.HandleFunc("GET /v1/ring/history", guard(s.handleRingHistory))
		mux.HandleFunc("GET /v1/ring/alerts", guard(s.handleRingAlerts))
		h = s.ring.middleware(h)
	}
	return s.instrument(h)
}

// admit applies per-owner admission control in front of the mux: every
// owner-keyed /v1 request waits for (or is shed by) the owner's token
// bucket. Ring-internal routes are exempt — replication and membership
// traffic must not compete with client budgets. A no-op handler when
// admission is disabled.
func (s *server) admit(next http.Handler) http.Handler {
	if !s.svc.AdmissionEnabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		if strings.HasPrefix(p, "/v1/") && !strings.HasPrefix(p, "/v1/ring") {
			if err := s.svc.Admit(r.Context(), r.URL.Query().Get("owner")); err != nil {
				writeErr(w, err)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.svc.Engine().Workers(),
	})
}

// handleReadyz is the routing probe: 503 while the node is draining or
// has not finished startup (ring catch-up included), 200 otherwise.
// /healthz stays pure liveness — it answers 200 throughout a graceful
// drain, which is exactly when a load balancer must stop sending new
// work here.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

func (s *server) handleKeys(w http.ResponseWriter, _ *http.Request) {
	infos, err := s.svc.Keys.List()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *server) handleProtect(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	owner := q.Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	format, err := resolveFormat(q.Get("format"), r.Header)
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	// Fit mode may create the owner; any touch of an existing owner's key
	// material (rotation included) requires that owner's token, and an
	// owner that exists only as a dataset-upload credential claim (no key
	// yet) must authenticate before its first key is fitted. The
	// existence check races with concurrent creations, but never into an
	// unauthenticated rotation: this exact snapshot is passed to
	// FitProtect, so an unknown-owner fit routes to the atomic
	// claim-with-token creation and a race loser gets a conflict.
	st, err := s.svc.Keys.State(owner)
	if err != nil {
		writeErr(w, err)
		return
	}
	if st.HasKey || st.HasCred {
		if aerr := s.authorize(r, owner); aerr != nil {
			writeErr(w, aerr)
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	rr := newRowReader(format, body)

	switch mode := q.Get("mode"); mode {
	case "", "fit":
		s.protectFit(w, r, q, format, rr, owner, st)
	case "stream":
		s.protectStream(w, r, q, format, rr, owner)
	default:
		writeErr(w, service.Invalid(fmt.Errorf("unknown mode %q (want fit or stream)", mode)))
	}
}

// protectFit buffers the body and hands it to the key service, which
// fits, stores the key version (claiming the owner when new) and returns
// the release to stream back.
func (s *server) protectFit(w http.ResponseWriter, r *http.Request, q urlValues, format string, rr rowReader, owner string, st service.OwnerState) {
	opts, err := parseProtectOptions(q)
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	data, err := service.ReadAll(rr)
	if err != nil {
		writeErr(w, err)
		return
	}
	res, err := s.svc.Keys.FitProtect(r.Context(), owner, st, data, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", contentType(format))
	w.Header().Set("X-Ppclust-Owner", owner)
	w.Header().Set("X-Ppclust-Key-Version", strconv.Itoa(res.KeyVersion))
	if res.MintedToken != "" {
		w.Header().Set("X-Ppclust-Token", res.MintedToken)
	}
	rw := newRowWriter(format, w)
	if err := rw.WriteNames(rr.Names()); err != nil {
		s.logger.Warn("protect write header", "owner", owner, "trace", obs.TraceID(r.Context()), "err", err.Error())
		return
	}
	for i := 0; i < res.Released.Rows(); i++ {
		if err := rw.WriteRow(res.Released.RawRow(i)); err != nil {
			s.logger.Warn("protect write row", "owner", owner, "row", i, "trace", obs.TraceID(r.Context()), "err", err.Error())
			return
		}
		if (i+1)%s.batchRows == 0 {
			flush(rw, w)
		}
	}
	if err := rw.Close(); err != nil {
		s.logger.Warn("protect close stream", "owner", owner, "trace", obs.TraceID(r.Context()), "err", err.Error())
		return
	}
	flush(rw, w)
}

// parseProtectOptions assembles engine options from fit-protect query
// parameters.
func parseProtectOptions(q urlValues) (engine.ProtectOptions, error) {
	opts := engine.ProtectOptions{Normalization: engine.NormZScore}
	switch norm := q.Get("norm"); norm {
	case "", "zscore":
	case "minmax":
		opts.Normalization = engine.NormMinMax
	default:
		return opts, fmt.Errorf("unknown norm %q (want zscore or minmax)", norm)
	}
	rho1, err := parseFloat(q.Get("rho1"), 0.3)
	if err != nil {
		return opts, err
	}
	rho2, err := parseFloat(q.Get("rho2"), 0.3)
	if err != nil {
		return opts, err
	}
	opts.Thresholds = []core.PST{{Rho1: rho1, Rho2: rho2}}
	if seedStr := q.Get("seed"); seedStr != "" {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return opts, fmt.Errorf("bad seed: %w", err)
		}
		opts.Seed = seed
	}
	return opts, nil
}

// protectStream protects the body incrementally under the owner's stored
// key: constant memory, unbounded input.
func (s *server) protectStream(w http.ResponseWriter, r *http.Request, q urlValues, format string, rr rowReader, owner string) {
	// The transform is frozen in stream mode; silently dropping fit-only
	// parameters would mislead callers about the privacy level applied.
	for _, p := range []string{"norm", "rho1", "rho2", "seed"} {
		if q.Get(p) != "" {
			writeErr(w, service.Invalid(fmt.Errorf("parameter %q only applies to mode=fit; the stored key's transform is frozen", p)))
			return
		}
	}
	tr, err := s.svc.Keys.StreamProtector(owner, q.Get("version"))
	if err != nil {
		writeErr(w, err)
		return
	}
	// Re-check the credential against the key the lookup actually found:
	// handleProtect's existence snapshot can race a concurrent first fit,
	// and streaming chosen rows under someone else's freshly created key
	// would hand an attacker a chosen-plaintext oracle for it.
	if err := s.authorize(r, owner); err != nil {
		writeErr(w, err)
		return
	}
	s.pump(r.Context(), w, format, rr, tr)
}

func (s *server) handleRecover(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	owner := q.Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	format, err := resolveFormat(q.Get("format"), r.Header)
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	tr, err := s.svc.Keys.Recoverer(owner, q.Get("version"))
	if err != nil {
		writeErr(w, err)
		return
	}
	// Inversion is the owner's privilege: require the owner's token.
	if err := s.authorize(r, owner); err != nil {
		writeErr(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	s.pump(r.Context(), w, format, newRowReader(format, body), tr)
}

// pump streams the request body through tr in batches of batchRows,
// writing transformed rows as they are produced.
func (s *server) pump(ctx context.Context, w http.ResponseWriter, format string, rr rowReader, tr *service.BatchTransformer) {
	// Interleaving request-body reads with response writes needs explicit
	// full-duplex mode on HTTP/1.x; without it the server closes the body
	// at the first write.
	_ = http.NewResponseController(w).EnableFullDuplex()
	started, wroteNames := false, false
	start := func() {
		w.Header().Set("Content-Type", contentType(format))
		w.Header().Set("X-Ppclust-Owner", tr.Owner)
		w.Header().Set("X-Ppclust-Key-Version", strconv.Itoa(tr.KeyVersion))
		started = true
	}
	rw := newRowWriter(format, w)
	// abort kills the connection once the response has started: the
	// client must see a transport error, never a clean EOF on a
	// truncated dataset.
	abort := func(reason string, err error) {
		s.logger.Warn("stream abort", "owner", tr.Owner, "stage", reason,
			"trace", obs.TraceID(ctx), "err", err.Error())
		panic(http.ErrAbortHandler)
	}
	for {
		batch, err := service.ReadBatch(rr, s.batchRows)
		if err != nil && !errors.Is(err, io.EOF) {
			if !started {
				writeErr(w, err)
				return
			}
			abort("reading", err)
		}
		done := errors.Is(err, io.EOF)
		if batch != nil {
			out, err := tr.Transform(batch)
			if err != nil {
				if !started {
					writeErr(w, err)
					return
				}
				abort("transforming", err)
			}
			if !started {
				start()
				if err := rw.WriteNames(rr.Names()); err != nil {
					abort("writing header", err)
				}
				wroteNames = true
			}
			for i := 0; i < out.Rows(); i++ {
				if err := rw.WriteRow(out.RawRow(i)); err != nil {
					abort("writing", err)
				}
			}
			flush(rw, w)
		}
		if done {
			if !started {
				// Empty body: still answer with headers and no rows.
				start()
			}
			if wroteNames {
				// Mark the stream complete (the binary end frame); a
				// response that aborted earlier never reaches this and
				// stays detectably truncated.
				if err := rw.Close(); err != nil {
					abort("closing", err)
				}
			}
			flush(rw, w)
			return
		}
	}
}

// urlValues is the subset of url.Values the handlers consume.
type urlValues interface{ Get(string) string }

func parseFloat(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", s, err)
	}
	return v, nil
}

func flush(rw rowWriter, w http.ResponseWriter) {
	if err := rw.Flush(); err != nil {
		return
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// errEnvelope is the one error shape every route returns.
type errEnvelope struct {
	Error errBody `json:"error"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeErr maps a service-classified error onto the HTTP status and the
// shared error envelope — the single exit for every failure response.
func writeErr(w http.ResponseWriter, err error) {
	code := service.Code(err)
	if code == service.CodeUnauthenticated {
		w.Header().Set("WWW-Authenticate", `Bearer realm="ppclust"`)
	}
	writeJSON(w, httpStatus(code), errEnvelope{Error: errBody{Code: code, Message: err.Error()}})
}

// writeErrWith writes the shared envelope plus extra top-level siblings
// (e.g. a job status alongside a not-ready conflict).
func writeErrWith(w http.ResponseWriter, err error, extra map[string]any) {
	code := service.Code(err)
	body := map[string]any{"error": errBody{Code: code, Message: err.Error()}}
	for k, v := range extra {
		body[k] = v
	}
	writeJSON(w, httpStatus(code), body)
}

// httpStatus maps envelope codes onto HTTP statuses.
func httpStatus(code string) int {
	switch code {
	case service.CodeNotFound:
		return http.StatusNotFound
	case service.CodeConflict:
		return http.StatusConflict
	case service.CodeForbidden:
		return http.StatusForbidden
	case service.CodeUnauthenticated:
		return http.StatusUnauthorized
	case service.CodeInvalid:
		return http.StatusBadRequest
	case service.CodeDraining:
		return http.StatusServiceUnavailable
	case service.CodeRateLimited:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}
