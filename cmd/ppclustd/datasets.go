package main

// Dataset routes — thin adapters over service.DatasetService:
//
//	POST   /v1/datasets?owner=O&name=D[&labels=last]  ingest CSV/NDJSON
//	GET    /v1/datasets?owner=O                       list owner's datasets
//	GET    /v1/datasets/{name}?owner=O                one dataset's metadata
//	GET    /v1/datasets/{name}/rows?owner=O           stream the rows out
//	DELETE /v1/datasets/{name}?owner=O                remove a dataset
//
// The first upload for an unknown owner claims the owner name and mints
// its bearer token (returned once via X-Ppclust-Token, exactly like a
// fit-protect that creates an owner); every other dataset request must
// present the owner's token. Datasets are owner-isolated: names only
// resolve inside the authenticated owner's namespace.

import (
	"fmt"
	"net/http"

	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
	"ppclust/internal/obs"
	"ppclust/internal/service"
)

func (s *server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := service.UploadRequest{
		Owner: q.Get("owner"),
		Name:  q.Get("name"),
	}
	if err := keyring.ValidName(req.Owner); err != nil {
		writeErr(w, service.Wrap(err))
		return
	}
	switch q.Get("labels") {
	case "":
	case "last":
		req.LabeledLast = true
	default:
		writeErr(w, service.Invalid(fmt.Errorf("unknown labels %q (want last)", q.Get("labels"))))
		return
	}
	format, err := resolveFormat(q.Get("format"), r.Header)
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	// A known owner (credential or key on file) is authorized before the
	// body is read; an entirely unknown owner is claimed by the service
	// only after a successful ingest.
	known, aerr := s.svc.OwnerKnown(req.Owner)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	if known {
		if aerr := s.authorize(r, req.Owner); aerr != nil {
			writeErr(w, aerr)
			return
		}
	}
	// The claim decision rides on the same snapshot the authorization
	// decision did; the service's atomic claim settles any race.
	req.Claim = !known

	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	res, err := s.svc.Datasets.Upload(r.Context(), req, newRowReader(format, body))
	// The claim (and hence the token the client is about to learn) stands
	// even if the ingest failed after it — so the credential header is set
	// before the outcome is known.
	w.Header().Set("X-Ppclust-Owner", req.Owner)
	if res.MintedToken != "" {
		w.Header().Set("X-Ppclust-Token", res.MintedToken)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, res.Meta)
}

func (s *server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	metas, err := s.svc.Datasets.List(owner)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, metas)
}

func (s *server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	meta, err := s.svc.Datasets.Get(owner, r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleDatasetRows streams a stored dataset back out as CSV, NDJSON or
// framed binary batches — how the released dataset a protect job produced
// leaves the service for the third-party analyst, block by block. The
// binary path writes each cached block's backing storage straight to the
// socket (the datastore persists little-endian float64 segments, the same
// representation the wire frames carry), so no per-value conversion or
// row slicing happens anywhere between segment file and client.
func (s *server) handleDatasetRows(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	format, err := resolveFormat(r.URL.Query().Get("format"), r.Header)
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	ds, err := s.svc.Datasets.Open(owner, r.PathValue("name"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", contentType(format))
	w.Header().Set("X-Ppclust-Owner", owner)
	rw := newRowWriter(format, w)
	if err := rw.WriteNames(ds.Attrs); err != nil {
		s.logger.Warn("dataset rows write header", "owner", owner, "dataset", ds.Name,
			"trace", obs.TraceID(r.Context()), "err", err.Error())
		return
	}
	bw, _ := rw.(*binaryWriter)
	werr := ds.Blocks(func(b *matrix.Dense) error {
		if bw != nil {
			if err := bw.bw.WriteBatch(b, nil); err != nil {
				return err
			}
		} else {
			for i := 0; i < b.Rows(); i++ {
				if err := rw.WriteRow(b.RawRow(i)); err != nil {
					return err
				}
			}
		}
		flush(rw, w)
		return nil
	})
	if werr == nil {
		werr = rw.Close()
	}
	if werr != nil {
		// The header is out: kill the connection so a truncated dataset
		// can never read as a complete one (for the binary format the
		// missing end frame is the explicit truncation signal).
		s.logger.Warn("dataset rows abort", "owner", owner, "dataset", ds.Name,
			"trace", obs.TraceID(r.Context()), "err", werr.Error())
		panic(http.ErrAbortHandler)
	}
}

func (s *server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if err := s.svc.Datasets.Delete(owner, name); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// ownerAuth validates the owner parameter and its credential for every
// owner-scoped read/delete route (datasets, jobs, federations). An owner
// the keyring has never heard of is a 404 — not a confusing credential
// error.
func (s *server) ownerAuth(w http.ResponseWriter, r *http.Request) (string, bool) {
	owner := r.URL.Query().Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, service.Wrap(err))
		return "", false
	}
	known, err := s.svc.OwnerKnown(owner)
	if err != nil {
		writeErr(w, err)
		return "", false
	}
	if !known {
		writeErr(w, service.Wrap(fmt.Errorf("%w: owner %q", keyring.ErrNotFound, owner)))
		return "", false
	}
	if err := s.authorize(r, owner); err != nil {
		writeErr(w, err)
		return "", false
	}
	return owner, true
}
