package main

// Dataset routes: named, owner-scoped uploads that the async job
// subsystem operates on.
//
//	POST   /v1/datasets?owner=O&name=D[&labels=last]  ingest CSV/NDJSON
//	GET    /v1/datasets?owner=O                       list owner's datasets
//	GET    /v1/datasets/{name}?owner=O                one dataset's metadata
//	DELETE /v1/datasets/{name}?owner=O                remove a dataset
//
// The first upload for an unknown owner claims the owner name and mints
// its bearer token (returned once via X-Ppclust-Token, exactly like a
// fit-protect that creates an owner); every other dataset request must
// present the owner's token. Datasets are owner-isolated: names only
// resolve inside the authenticated owner's namespace.

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"time"

	"ppclust/internal/datastore"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
)

func (s *server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	owner := q.Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := q.Get("name")
	if err := datastore.ValidName(name); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if isFederationDataset(name) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("%w: %q — the fed. prefix is reserved for federation contributions", datastore.ErrBadName, name))
		return
	}
	labeled := false
	switch q.Get("labels") {
	case "":
	case "last":
		labeled = true
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown labels %q (want last)", q.Get("labels")))
		return
	}
	format, err := resolveFormat(q.Get("format"), r.Header)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// A known owner (credential or key on file) is authorized before the
	// body is read. An entirely unknown owner claims the name only after
	// a successful ingest — a rejected upload must not burn the name with
	// a token nobody ever received.
	known, aerr := s.ownerKnown(owner)
	if aerr != nil {
		writeErr(w, http.StatusInternalServerError, aerr)
		return
	}
	if known {
		if aerr := s.authorize(r, owner); aerr != nil {
			writeAuthErr(w, aerr)
			return
		}
	}

	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	rr := newRowReader(format, body)
	var b *datastore.Builder
	for {
		row, err := rr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if b == nil {
			attrs := rr.Names()
			if labeled {
				if len(attrs) < 2 {
					writeErr(w, http.StatusBadRequest, fmt.Errorf("labels=last needs at least 2 columns"))
					return
				}
				attrs = attrs[:len(attrs)-1]
			}
			if b, err = datastore.NewBuilder(owner, name, attrs); err != nil {
				writeErr(w, statusFor(err), err)
				return
			}
		}
		if labeled {
			label, lerr := intLabel(row[len(row)-1])
			if lerr != nil {
				writeErr(w, http.StatusBadRequest, lerr)
				return
			}
			err = b.AppendLabeled(row[:len(row)-1], label)
		} else {
			err = b.Append(row)
		}
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
	}
	if b == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty dataset"))
		return
	}
	ds, err := b.Finish(time.Now())
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	token := ""
	if !known {
		tok, hash, err := newToken()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if err := s.keys.ClaimToken(owner, hash); err != nil {
			if errors.Is(err, keyring.ErrExists) {
				err = fmt.Errorf("owner %q was created concurrently; retry with its bearer token: %w", owner, err)
			}
			writeErr(w, statusFor(err), err)
			return
		}
		token = tok
	}
	// The claim (and hence the token the client is about to learn) stands
	// even if the store rejects the dataset below — so the credential
	// header is set before the outcome is known.
	w.Header().Set("X-Ppclust-Owner", owner)
	if token != "" {
		w.Header().Set("X-Ppclust-Token", token)
	}
	if err := s.store.Put(ds); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	s.rowsIngested.Add(int64(ds.Rows))
	writeJSON(w, http.StatusCreated, ds.Meta)
}

func (s *server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.datasetAuth(w, r)
	if !ok {
		return
	}
	metas, err := s.store.List(owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, metas)
}

func (s *server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.datasetAuth(w, r)
	if !ok {
		return
	}
	ds, err := s.store.Get(owner, r.PathValue("name"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ds.Meta)
}

// handleDatasetRows streams a stored dataset back out as CSV or NDJSON —
// how the released dataset a protect job produced leaves the service for
// the third-party analyst, block by block.
func (s *server) handleDatasetRows(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.datasetAuth(w, r)
	if !ok {
		return
	}
	format, err := resolveFormat(r.URL.Query().Get("format"), r.Header)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ds, err := s.store.Get(owner, r.PathValue("name"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", contentType(format))
	w.Header().Set("X-Ppclust-Owner", owner)
	rw := newRowWriter(format, w)
	if err := rw.WriteNames(ds.Attrs); err != nil {
		log.Printf("dataset rows %s/%s: writing header: %v", owner, ds.Name, err)
		return
	}
	werr := ds.Blocks(func(b *matrix.Dense) error {
		for i := 0; i < b.Rows(); i++ {
			if err := rw.WriteRow(b.RawRow(i)); err != nil {
				return err
			}
		}
		flush(rw, w)
		return nil
	})
	if werr != nil {
		// The header is out: kill the connection so a truncated dataset
		// can never read as a complete one.
		log.Printf("dataset rows %s/%s: %v", owner, ds.Name, werr)
		panic(http.ErrAbortHandler)
	}
}

func (s *server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.datasetAuth(w, r)
	if !ok {
		return
	}
	if name := r.PathValue("name"); isFederationDataset(name) {
		// Deleting a contribution out from under its federation would
		// dangle the contribution reference; withdrawal goes through the
		// federation route, which keeps the record consistent.
		writeErr(w, http.StatusConflict, fmt.Errorf("%q is a federation contribution; withdraw it via DELETE /v1/federations/{id}/contribute", name))
		return
	}
	if err := s.store.Delete(owner, r.PathValue("name")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
}

// datasetAuth validates the owner parameter and its credential for the
// read/delete dataset routes. Like the job routes, an owner the keyring
// has never heard of is a 404 — not a confusing credential error.
func (s *server) datasetAuth(w http.ResponseWriter, r *http.Request) (string, bool) {
	owner := r.URL.Query().Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return "", false
	}
	known, err := s.ownerKnown(owner)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return "", false
	}
	if !known {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: owner %q", keyring.ErrNotFound, owner))
		return "", false
	}
	if err := s.authorize(r, owner); err != nil {
		writeAuthErr(w, err)
		return "", false
	}
	return owner, true
}

// ownerKnown reports whether owner exists in the keyring in any form —
// credential, key material, or both.
func (s *server) ownerKnown(owner string) (bool, error) {
	if _, err := s.keys.TokenHash(owner); err == nil {
		return true, nil
	} else if !errors.Is(err, keyring.ErrNotFound) {
		return false, err
	}
	if _, err := s.keys.Get(owner); err == nil {
		return true, nil
	} else if !errors.Is(err, keyring.ErrNotFound) {
		return false, err
	}
	return false, nil
}

// intLabel parses a ground-truth label carried in a numeric column.
func intLabel(v float64) (int, error) {
	if v != math.Trunc(v) || math.Abs(v) > 1e9 {
		return 0, fmt.Errorf("label %g is not an integer", v)
	}
	return int(v), nil
}
