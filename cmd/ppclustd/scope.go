package main

// ppscope: the cluster-wide observability plane.
//
//	GET /v1/traces/{id}           one trace, stitched across the ring
//	GET /v1/traces?route=&min_ms=&limit=   retained-trace listing
//	GET /v1/cluster/metrics       all-node aggregate (JSON; ?format=prometheus)
//	GET /v1/slo                   per-objective ok/warning/breach report
//
// The trace store retains finished span trees per node (sampled, always
// keeping slow and error traces); a trace that crossed the ring is
// reassembled on demand by fanning the ID out to every peer over the
// cluster-key-guarded /v1/ring machinery and grafting each node's tree
// under the forward span that produced it. Cluster metrics are scraped
// from every peer concurrently with a per-peer timeout; a dead peer
// degrades the response to a partial aggregate annotated with
// scrape_errors rather than an error. All four routes expose aggregate
// operational metadata only — span names, routes, durations, counters —
// never dataset rows or key material, so like /v1/metrics they are
// unauthenticated and exempt from ring forwarding (each node answers
// for the cluster from wherever the request lands).

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ppclust/internal/metrics"
	"ppclust/internal/obs"
	"ppclust/internal/service"
)

// scopeConfig carries the flag-derived observability-plane settings
// from main into the server.
type scopeConfig struct {
	// TraceSample is the kept fraction of ordinary traces (slow and
	// error traces are always kept).
	TraceSample float64
	// TraceStoreBytes caps the per-node trace store (0: 16 MiB).
	TraceStoreBytes int64
	// SlowMs is the always-keep latency threshold (0: 250ms).
	SlowMs float64
	// SLOSpecs are -slo flag values, parsed by obs.ParseSLO.
	SLOSpecs []string
	// SLOWindow is the rolling evaluation window (0: 1m).
	SLOWindow time.Duration
}

// setupScope replaces the construction-time trace store with the
// flag-configured one and builds the SLO engine. Must run before the
// listener serves (the instrumentation edge reads both fields).
func (s *server) setupScope(cfg scopeConfig) error {
	s.traces = obs.NewTraceStore(obs.TraceStoreConfig{
		MaxBytes: cfg.TraceStoreBytes,
		Sample:   cfg.TraceSample,
		SlowMs:   cfg.SlowMs,
	}, s.svc.Registry())
	if len(cfg.SLOSpecs) > 0 {
		var objectives []obs.Objective
		for _, spec := range cfg.SLOSpecs {
			objs, err := obs.ParseSLO(spec)
			if err != nil {
				return fmt.Errorf("ppclustd: %w", err)
			}
			objectives = append(objectives, objs...)
		}
		s.slo = obs.NewSLOEngine(objectives, cfg.SLOWindow)
	}
	return nil
}

// nodeName is this node's label on trace records and cluster metrics:
// the ring node ID, or "self" when running single-node.
func (s *server) nodeName() string {
	if s.nodeID != "" {
		return s.nodeID
	}
	return "self"
}

// handleTraceList serves GET /v1/traces: retained-trace summaries from
// this node's store, newest first, without span payloads.
func (s *server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	minMs, err := parseFloat(q.Get("min_ms"), 0)
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 {
			writeErr(w, service.Invalid(fmt.Errorf("bad limit %q", v)))
			return
		}
	}
	recs := s.traces.Query(obs.TraceQuery{Route: q.Get("route"), MinMs: minMs, Limit: limit})
	for i := range recs {
		recs[i].Spans = nil // listings are summaries; the span tree is per-ID
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": recs})
}

// traceView is the GET /v1/traces/{id} body: the per-node records
// (spans stripped) plus the single stitched cross-node span tree.
type traceView struct {
	ID         string            `json:"id"`
	Nodes      []obs.TraceRecord `json:"nodes"`
	PeerErrors map[string]string `json:"peer_errors,omitempty"`
	Spans      *obs.SpanNode     `json:"spans"`
}

// handleTraceGet serves GET /v1/traces/{id}: the local record plus a
// fan-out to every ring peer, stitched into one span tree. Peers that
// fail to answer degrade the view (peer_errors) instead of failing it,
// as long as at least one record was found.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.ValidTraceID(id) {
		writeErr(w, service.Invalid(fmt.Errorf("bad trace id %q", id)))
		return
	}
	var recs []obs.TraceRecord
	if rec, ok := s.traces.Get(id); ok {
		recs = append(recs, rec)
	}
	var peerErrs map[string]string
	if s.ring != nil {
		more, errs := s.ring.collectTraces(r.Context(), id)
		recs = append(recs, more...)
		peerErrs = errs
	}
	if len(recs) == 0 {
		writeErr(w, service.NotFoundErr(fmt.Errorf("trace %q is not retained on any reachable node", id)))
		return
	}
	view := traceView{ID: id, PeerErrors: peerErrs, Spans: obs.Stitch(recs)}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	for _, rec := range recs {
		rec.Spans = nil
		view.Nodes = append(view.Nodes, rec)
	}
	writeJSON(w, http.StatusOK, view)
}

// clusterMetricsView is the GET /v1/cluster/metrics JSON body.
type clusterMetricsView struct {
	Nodes        []string          `json:"nodes"`
	ScrapeErrors map[string]string `json:"scrape_errors,omitempty"`
	Metrics      map[string]int64  `json:"metrics"`
}

// localSnapshot is this node's full flat snapshot (service counters,
// derived gauges, ring gauges) — the same body /v1/metrics serves.
func (s *server) localSnapshot() map[string]int64 {
	snap := s.svc.MetricsSnapshot()
	if s.ring != nil {
		s.ring.addGauges(snap)
	}
	return snap
}

// handleClusterMetrics serves the all-node aggregate: this node's
// snapshot in-process plus every peer's /v1/metrics scraped
// concurrently, merged by metrics.MergeSnapshots (counters and
// histograms summed, gauges node-labelled). Unreachable peers appear
// under scrape_errors; the aggregate over the reachable nodes is still
// served.
func (s *server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	perNode := map[string]map[string]int64{s.nodeName(): s.localSnapshot()}
	var scrapeErrs map[string]string
	if s.ring != nil {
		peers, errs := s.ring.scrapePeers(r.Context())
		for node, snap := range peers {
			perNode[node] = snap
		}
		scrapeErrs = errs
	}
	merged := metrics.MergeSnapshots(perNode)
	nodes := make([]string, 0, len(perNode))
	for node := range perNode {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)

	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, clusterMetricsView{
			Nodes:        nodes,
			ScrapeErrors: scrapeErrs,
			Metrics:      merged,
		})
	case "prometheus", "prom":
		// The scrape annotations become gauges so the text form carries
		// the same degradation signal as the JSON form.
		merged["cluster_nodes_scraped"] = int64(len(nodes))
		for node := range scrapeErrs {
			merged[metrics.WithNodeLabel("cluster_scrape_error", node)] = 1
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		if err := obs.WritePromFlat(w, merged); err != nil {
			s.logger.Warn("cluster metrics exposition", "err", err.Error())
		}
	default:
		writeErr(w, service.Invalid(fmt.Errorf("unknown format %q (want json or prometheus)", format)))
	}
}

// sloReport is the GET /v1/slo body.
type sloReport struct {
	Enabled    bool            `json:"enabled"`
	WindowS    float64         `json:"window_s,omitempty"`
	Status     string          `json:"status"`
	Objectives []obs.SLOStatus `json:"objectives,omitempty"`
}

// handleSLO serves the per-objective evaluation, worst objectives
// first; Status is the worst state across all of them. With no -slo
// configured the report is {"enabled": false, "status": "ok"}.
func (s *server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	if s.slo == nil {
		writeJSON(w, http.StatusOK, sloReport{Enabled: false, Status: obs.SLOStateOK})
		return
	}
	sts := s.slo.Statuses()
	obs.SortStatuses(sts)
	status := obs.SLOStateOK
	for _, st := range sts {
		status = obs.WorseSLOState(status, st.State)
	}
	writeJSON(w, http.StatusOK, sloReport{
		Enabled:    true,
		WindowS:    s.slo.Window().Seconds(),
		Status:     status,
		Objectives: sts,
	})
}
