package main

// pppulse: the daemon's self-monitoring plane (see internal/obs).
//
//	GET /v1/metrics/history?series=&since=&step=   sampled time series
//	GET /v1/alerts                                  live alert instances
//	GET /v1/incidents                               captured incident bundles
//	GET /v1/incidents/{id}                          one bundle's manifest
//	GET /v1/incidents/{id}/files/{name}             one bundle file, raw
//
// A sampler snapshots the full metrics surface every -pulse-interval
// into a bounded in-memory store; the alert engine evaluates -alert
// threshold rules and the configured SLOs against every sample, pushing
// firing/resolved transitions to the -alert-webhook sink and to the
// flight recorder, which captures an on-disk incident bundle (profiles,
// goroutine dump, worst traces, history excerpt) per firing.
//
// History and alerts answer for the whole ring with ?scope=cluster:
// peers are asked over the cluster-key-guarded /v1/ring/history and
// /v1/ring/alerts with a per-peer timeout, and an unreachable peer
// degrades the response (peer_errors) rather than failing it. Like the
// rest of the observability plane these routes expose operational
// metadata only — series names, rates, percentiles, rule states — never
// dataset rows or key material, so they are unauthenticated and exempt
// from ring forwarding.

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"

	"ppclust/internal/metrics"
	"ppclust/internal/obs"
	"ppclust/internal/ring"
	"ppclust/internal/service"
)

// pulseConfig carries the flag-derived pppulse settings from main into
// the server.
type pulseConfig struct {
	// Interval is the sampling cadence (0: obs.DefaultPulseInterval).
	Interval time.Duration
	// Retention is the history window (0: obs.DefaultPulseRetention).
	Retention time.Duration
	// MaxBytes caps the history store (0: 4 MiB).
	MaxBytes int64
	// AlertRules are the parsed -alert threshold rules.
	AlertRules []obs.AlertRule
	// AlertDebounce spaces firing notifications per rule (0:
	// obs.DefaultAlertDebounce; negative: none).
	AlertDebounce time.Duration
	// SLOFor is how long an SLO objective must stay in breach before its
	// implicit alert fires.
	SLOFor time.Duration
	// WebhookURL, when set, receives firing/resolved events as JSON POSTs.
	WebhookURL string
	// IncidentDir, when set, enables the flight recorder there.
	IncidentDir string
	// IncidentRetention caps retained bundles (0: 16).
	IncidentRetention int
	// CPUProfileDur is the per-incident CPU capture (0: 1s; negative:
	// disabled — used by tests that capture concurrently).
	CPUProfileDur time.Duration
}

// setupPulse builds the sampler, the alert engine, the webhook sink and
// the flight recorder, then starts sampling. Must run after setupScope
// and ring wiring (the sampler snapshots both) and before the listener
// serves. closePulse undoes it.
func (s *server) setupPulse(cfg pulseConfig) error {
	reg := s.svc.Registry()
	if cfg.WebhookURL != "" {
		s.webhook = obs.NewWebhookSink(obs.WebhookConfig{URL: cfg.WebhookURL}, reg)
	}
	if cfg.IncidentDir != "" {
		rec, err := obs.NewRecorder(obs.RecorderConfig{
			Dir:          cfg.IncidentDir,
			Node:         s.nodeName(),
			MaxIncidents: cfg.IncidentRetention,
			CPUProfile:   cfg.CPUProfileDur,
		}, s.traces, nil, reg)
		if err != nil {
			return fmt.Errorf("ppclustd: %w", err)
		}
		s.recorder = rec
	}
	if len(cfg.AlertRules) > 0 || s.slo != nil {
		s.alerts = obs.NewAlertEngine(obs.AlertEngineConfig{
			Rules:    cfg.AlertRules,
			SLO:      s.slo,
			SLOFor:   cfg.SLOFor,
			Debounce: cfg.AlertDebounce,
			Node:     s.nodeName(),
			Notify: func(ev obs.AlertEvent) {
				s.webhook.Notify(ev)
				s.recorder.OnEvent(ev)
			},
		}, reg)
	}
	s.pulse = obs.NewPulse(obs.PulseConfig{
		Interval:  cfg.Interval,
		Retention: cfg.Retention,
		MaxBytes:  cfg.MaxBytes,
		OnSample: func(t time.Time, values map[string]float64) {
			s.alerts.Eval(t, values)
		},
	}, s.localSnapshot, reg)
	if s.recorder != nil {
		// The recorder's history excerpt reads the same store the alert
		// fired from; the pulse pointer is settled before sampling starts.
		s.recorder.SetPulse(s.pulse)
	}
	s.pulse.Start()
	return nil
}

// closePulse stops sampling and drains the notification sinks: pending
// webhook deliveries go out, in-flight incident captures finish.
func (s *server) closePulse() {
	if s.pulse != nil {
		s.pulse.Close()
	}
	s.recorder.Wait()
	if s.webhook != nil {
		s.webhook.Close()
	}
}

// historyView is the GET /v1/metrics/history body.
type historyView struct {
	IntervalMs int64               `json:"interval_ms"`
	Nodes      []string            `json:"nodes,omitempty"`
	PeerErrors map[string]string   `json:"peer_errors,omitempty"`
	Truncated  bool                `json:"truncated,omitempty"`
	Series     []obs.HistorySeries `json:"series"`
}

// parseHistoryQuery decodes the shared query-parameter grammar of
// /v1/metrics/history and /v1/ring/history: series= is a comma-separated
// (and repeatable) substring filter, since= a look-back duration ("5m")
// or RFC 3339 instant, step= a downsampling bucket with agg= folding.
func parseHistoryQuery(q url.Values) (obs.HistoryQuery, error) {
	var hq obs.HistoryQuery
	for _, v := range q["series"] {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				hq.Series = append(hq.Series, part)
			}
		}
	}
	if v := q.Get("since"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			hq.Since = time.Now().Add(-d)
		} else if t, err := time.Parse(time.RFC3339, v); err == nil {
			hq.Since = t
		} else {
			return hq, fmt.Errorf("bad since %q (want a look-back duration like 5m or an RFC 3339 time)", v)
		}
	}
	if v := q.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return hq, fmt.Errorf("bad step %q", v)
		}
		hq.Step = d
	}
	switch agg := q.Get("agg"); agg {
	case "", "avg", "max", "min", "last":
		hq.Agg = agg
	default:
		return hq, fmt.Errorf("bad agg %q (want avg, max, min or last)", agg)
	}
	if v := q.Get("max_series"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return hq, fmt.Errorf("bad max_series %q", v)
		}
		hq.MaxSeries = n
	}
	return hq, nil
}

// handleMetricsHistory serves the sampled time series: this node's by
// default, every reachable node's with ?scope=cluster (series names
// node-labelled, dead peers degrading to peer_errors).
func (s *server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	hq, err := parseHistoryQuery(r.URL.Query())
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	local, truncated := s.pulse.Query(hq)
	view := historyView{IntervalMs: int64(s.pulse.Interval() / time.Millisecond), Truncated: truncated, Series: local}
	switch scope := r.URL.Query().Get("scope"); scope {
	case "", "local":
		writeJSON(w, http.StatusOK, view)
	case "cluster":
		for i := range view.Series {
			view.Series[i].Name = metrics.WithNodeLabel(view.Series[i].Name, s.nodeName())
		}
		view.Nodes = []string{s.nodeName()}
		if s.ring != nil {
			peers, errs := s.ring.collectHistory(r.Context(), r.URL.Query())
			for node, pv := range peers {
				view.Nodes = append(view.Nodes, node)
				view.Truncated = view.Truncated || pv.Truncated
				for _, hs := range pv.Series {
					hs.Name = metrics.WithNodeLabel(hs.Name, node)
					view.Series = append(view.Series, hs)
				}
			}
			view.PeerErrors = errs
		}
		sort.Strings(view.Nodes)
		sort.Slice(view.Series, func(i, j int) bool { return view.Series[i].Name < view.Series[j].Name })
		writeJSON(w, http.StatusOK, view)
	default:
		writeErr(w, service.Invalid(fmt.Errorf("unknown scope %q (want local or cluster)", scope)))
	}
}

// alertsView is the GET /v1/alerts body.
type alertsView struct {
	Enabled    bool              `json:"enabled"`
	Nodes      []string          `json:"nodes,omitempty"`
	PeerErrors map[string]string `json:"peer_errors,omitempty"`
	Alerts     []obs.Alert       `json:"alerts"`
}

// handleAlerts serves the live alert instances: this node's by default,
// every reachable node's with ?scope=cluster. Each alert already
// carries the node that evaluated it.
func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	view := alertsView{Enabled: s.alerts != nil, Alerts: s.alerts.Alerts()}
	if view.Alerts == nil {
		view.Alerts = []obs.Alert{}
	}
	switch scope := r.URL.Query().Get("scope"); scope {
	case "", "local":
		writeJSON(w, http.StatusOK, view)
	case "cluster":
		view.Nodes = []string{s.nodeName()}
		if s.ring != nil {
			peers, errs := s.ring.collectAlerts(r.Context())
			for node, pv := range peers {
				view.Nodes = append(view.Nodes, node)
				view.Enabled = view.Enabled || pv.Enabled
				view.Alerts = append(view.Alerts, pv.Alerts...)
			}
			view.PeerErrors = errs
		}
		sort.Strings(view.Nodes)
		sort.Slice(view.Alerts, func(i, j int) bool {
			a, b := view.Alerts[i], view.Alerts[j]
			if a.Rule != b.Rule {
				return a.Rule < b.Rule
			}
			if a.Node != b.Node {
				return a.Node < b.Node
			}
			return a.Series < b.Series
		})
		writeJSON(w, http.StatusOK, view)
	default:
		writeErr(w, service.Invalid(fmt.Errorf("unknown scope %q (want local or cluster)", scope)))
	}
}

// handleRingHistory serves this node's history to ring peers — the
// peer-to-peer leg of the cluster-scope fan-out.
func (s *server) handleRingHistory(w http.ResponseWriter, r *http.Request) {
	hq, err := parseHistoryQuery(r.URL.Query())
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	series, truncated := s.pulse.Query(hq)
	writeJSON(w, http.StatusOK, historyView{
		IntervalMs: int64(s.pulse.Interval() / time.Millisecond),
		Truncated:  truncated,
		Series:     series,
	})
}

// handleRingAlerts serves this node's alert instances to ring peers.
func (s *server) handleRingAlerts(w http.ResponseWriter, _ *http.Request) {
	view := alertsView{Enabled: s.alerts != nil, Alerts: s.alerts.Alerts()}
	if view.Alerts == nil {
		view.Alerts = []obs.Alert{}
	}
	writeJSON(w, http.StatusOK, view)
}

// handleIncidentList serves the captured incident bundles, newest first.
func (s *server) handleIncidentList(w http.ResponseWriter, _ *http.Request) {
	list := s.recorder.List()
	if list == nil {
		list = []obs.IncidentMeta{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":   s.recorder != nil,
		"incidents": list,
	})
}

// handleIncidentGet serves one bundle's manifest.
func (s *server) handleIncidentGet(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeErr(w, service.NotFoundErr(fmt.Errorf("incident recorder not enabled (set -incident-dir)")))
		return
	}
	meta, err := s.recorder.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, service.NotFoundErr(fmt.Errorf("incident %q not found", r.PathValue("id"))))
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleIncidentFile streams one bundle file (profile, dump, excerpt)
// for download.
func (s *server) handleIncidentFile(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeErr(w, service.NotFoundErr(fmt.Errorf("incident recorder not enabled (set -incident-dir)")))
		return
	}
	id, name := r.PathValue("id"), r.PathValue("name")
	raw, err := s.recorder.ReadFile(id, name)
	if err != nil {
		writeErr(w, service.NotFoundErr(fmt.Errorf("incident file %s/%s not found", id, name)))
		return
	}
	switch path.Ext(name) {
	case ".json":
		w.Header().Set("Content-Type", "application/json")
	case ".txt":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	_, _ = w.Write(raw)
}

// collectHistory asks every ring peer for its history over the
// cluster-key-guarded ring route, concurrently, forwarding the client's
// filter parameters. Unreachable peers land in the error map.
func (rt *ringRuntime) collectHistory(ctx context.Context, q url.Values) (map[string]historyView, map[string]string) {
	fq := url.Values{}
	for _, k := range []string{"series", "since", "step", "agg", "max_series"} {
		if vs, ok := q[k]; ok {
			fq[k] = vs
		}
	}
	p := "/v1/ring/history"
	if enc := fq.Encode(); enc != "" {
		p += "?" + enc
	}
	return fanOutJSON[historyView](rt, ctx, p)
}

// collectAlerts asks every ring peer for its live alert instances.
func (rt *ringRuntime) collectAlerts(ctx context.Context) (map[string]alertsView, map[string]string) {
	return fanOutJSON[alertsView](rt, ctx, "/v1/ring/alerts")
}

// fanOutJSON GETs one ring path from every peer concurrently with the
// shared per-peer timeout, returning per-node bodies plus an error map
// for the peers that could not answer — the same degrade-to-partial
// contract as scrapePeers and collectTraces.
func fanOutJSON[T any](rt *ringRuntime, ctx context.Context, path string) (map[string]T, map[string]string) {
	_, members := rt.ring.Snapshot()
	type result struct {
		node string
		body T
		err  error
	}
	results := make(chan result, len(members))
	fanned := 0
	for _, m := range members {
		if m.ID == rt.self.ID {
			continue
		}
		fanned++
		go func(m ring.Node) {
			cctx, cancel := context.WithTimeout(ctx, scopeFanoutTimeout)
			defer cancel()
			var body T
			_, err := rt.roundTrip(cctx, m.Addr, http.MethodGet, path, nil, &body)
			results <- result{node: m.ID, body: body, err: err}
		}(m)
	}
	perNode := make(map[string]T, fanned)
	errs := map[string]string{}
	for i := 0; i < fanned; i++ {
		res := <-results
		if res.err != nil {
			errs[res.node] = res.err.Error()
			continue
		}
		perNode[res.node] = res.body
	}
	if len(errs) == 0 {
		errs = nil
	}
	return perNode, errs
}
