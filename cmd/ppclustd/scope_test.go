package main

// ppscope acceptance: the trace query API on a single node, the 3-node
// stitched cross-ring trace (queryable from any node, including a
// bystander), cluster-wide metrics aggregation with a dead-peer partial
// response, and the SLO endpoint plus its gauges.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ppclust/internal/obs"
	"ppclust/ppclient"
)

func scopeGet(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

// pinnedRequest issues req-style POST with a client-chosen trace ID.
func pinnedRequest(t *testing.T, url, trace, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set(ppclient.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestTraceQueryAPI exercises the single-node trace store surface:
// every finished request is retained (test servers sample at 1.0),
// listable with filters and fetchable by ID with its span tree.
func TestTraceQueryAPI(t *testing.T) {
	ts, _ := newTestServer(t)
	csv, _ := testCSV(t, 40, 7)

	const trace = "scope-api-0001"
	if resp := pinnedRequest(t, ts.URL+"/v1/datasets?owner=alice&name=d1", trace, csv); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}

	// The record lands in a deferred wrapper after the response; poll.
	var view traceView
	waitUntil(t, 3*time.Second, "trace retained", func() bool {
		return scopeGet(t, ts.URL+"/v1/traces/"+trace, &view) == http.StatusOK
	})
	if view.ID != trace || len(view.Nodes) != 1 || view.Nodes[0].Route != "POST /v1/datasets" {
		t.Fatalf("trace view = %+v", view)
	}
	if view.Spans == nil || view.Spans.Name != "http" {
		t.Fatalf("trace view has no span tree: %+v", view.Spans)
	}
	if view.Nodes[0].Spans != nil {
		t.Error("per-node records must not duplicate the span payload")
	}

	var listing struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if scopeGet(t, ts.URL+"/v1/traces", &listing) != http.StatusOK || len(listing.Traces) == 0 {
		t.Fatalf("listing = %+v", listing)
	}
	for _, rec := range listing.Traces {
		if rec.Spans != nil {
			t.Fatal("listing must strip span payloads")
		}
	}
	// Filters: a route substring that matches nothing, and a min_ms above
	// any realistic in-process upload.
	if scopeGet(t, ts.URL+"/v1/traces?route=federations", &listing) != http.StatusOK || len(listing.Traces) != 0 {
		t.Errorf("route filter leaked: %+v", listing.Traces)
	}
	if scopeGet(t, ts.URL+"/v1/traces?route=datasets&limit=1", &listing) != http.StatusOK || len(listing.Traces) != 1 {
		t.Errorf("limit filter: %+v", listing.Traces)
	}
	if scopeGet(t, ts.URL+"/v1/traces?min_ms=60000", &listing) != http.StatusOK || len(listing.Traces) != 0 {
		t.Errorf("min_ms filter leaked: %+v", listing.Traces)
	}

	if got := scopeGet(t, ts.URL+"/v1/traces/no-such-trace-id", nil); got != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", got)
	}
	if got := scopeGet(t, ts.URL+"/v1/traces/bad%20id%21", nil); got != http.StatusBadRequest {
		t.Errorf("invalid trace id: status %d, want 400", got)
	}
	if got := scopeGet(t, ts.URL+"/v1/traces?limit=-3", nil); got != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", got)
	}
}

// findSpanNode walks a span tree depth-first for a span name.
func findSpanNode(n *obs.SpanNode, name string) *obs.SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if got := findSpanNode(c, name); got != nil {
			return got
		}
	}
	return nil
}

func spanAttr(n *obs.SpanNode, key string) string {
	for _, a := range n.Attrs {
		if a.Key == key {
			if s, ok := a.Value.(string); ok {
				return s
			}
		}
	}
	return ""
}

// TestRingTraceStitchedQuery is the tentpole acceptance: a pinned trace
// ID on a forwarded request is queryable from ANY node of a 3-node ring
// and returns a single stitched span tree — the entry node's
// ring.forward span with the home node's handler spans grafted under it.
func TestRingTraceStitchedQuery(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	owner := ownerHomedOn(t, nodes, "n1", 0)
	entry := entryAvoiding(t, nodes, owner)
	home := nodeByID(t, nodes, "n1")
	const trace = "stitch-e2e-0001"

	csv, _ := testCSV(t, 40, 7)
	if resp := pinnedRequest(t, entry.addr+"/v1/datasets?owner="+owner+"&name=d1", trace, csv); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload via %s: %d", entry.id, resp.StatusCode)
	}

	// Every node must answer for the whole ring, including the bystander
	// that neither received nor served the request. Records land in
	// deferred wrappers on two different nodes; poll until both appear.
	for _, nd := range nodes {
		var view traceView
		waitUntil(t, 5*time.Second, "stitched trace on "+nd.id, func() bool {
			return scopeGet(t, nd.addr+"/v1/traces/"+trace, &view) == http.StatusOK && len(view.Nodes) == 2
		})
		if len(view.PeerErrors) != 0 {
			t.Fatalf("query via %s: peer errors %v", nd.id, view.PeerErrors)
		}
		seen := map[string]string{}
		for _, rec := range view.Nodes {
			seen[rec.Node] = rec.Route
		}
		if seen[entry.id] != "ring.forward" {
			t.Fatalf("query via %s: entry record = %+v", nd.id, seen)
		}
		if seen[home.id] != "POST /v1/datasets" {
			t.Fatalf("query via %s: home record = %+v", nd.id, seen)
		}

		// One tree: the entry node's root, its ring.forward span, and the
		// home node's ingest spans grafted beneath it.
		fwd := findSpanNode(view.Spans, "ring.forward")
		if fwd == nil {
			t.Fatalf("query via %s: no ring.forward span:\n%+v", nd.id, view.Spans)
		}
		if findSpanNode(fwd, "ingest") == nil {
			t.Fatalf("query via %s: home node's ingest span not under ring.forward", nd.id)
		}
		var grafted *obs.SpanNode
		for _, c := range fwd.Children {
			if spanAttr(c, "node") == home.id {
				grafted = c
			}
		}
		if grafted == nil {
			t.Fatalf("query via %s: grafted subtree missing node=%s annotation", nd.id, home.id)
		}
		if spanAttr(view.Spans, "node") != entry.id {
			t.Fatalf("query via %s: root not annotated with entry node", nd.id)
		}
	}
}

// TestClusterMetricsAggregation checks the all-node aggregate: summed
// counters equal the per-node registry sums, gauges come back
// node-labelled, the Prometheus rendering works, and killing a node
// degrades the response to a partial aggregate with scrape_errors.
func TestClusterMetricsAggregation(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	csv, _ := testCSV(t, 40, 7)

	// Spread uploads across owners homed on each node so every registry
	// has non-zero ingest counts.
	from := 0
	for _, nd := range nodes {
		owner := ownerHomedOn(t, nodes, nd.id, from)
		from += 2500
		resp, body := post(t, nodes[0].addr+"/v1/datasets?owner="+owner+"&name=d", csv)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload for %s: %d %s", nd.id, resp.StatusCode, body)
		}
	}
	var wantRows int64
	for _, nd := range nodes {
		wantRows += nd.s.localSnapshot()["rows_ingested_total"]
	}
	if wantRows == 0 {
		t.Fatal("no rows ingested anywhere")
	}

	var view clusterMetricsView
	if got := scopeGet(t, nodes[1].addr+"/v1/cluster/metrics", &view); got != http.StatusOK {
		t.Fatalf("cluster metrics: status %d", got)
	}
	if strings.Join(view.Nodes, ",") != "n1,n2,n3" {
		t.Fatalf("nodes = %v", view.Nodes)
	}
	if len(view.ScrapeErrors) != 0 {
		t.Fatalf("scrape errors on a healthy ring: %v", view.ScrapeErrors)
	}
	if got := view.Metrics["rows_ingested_total"]; got != wantRows {
		t.Errorf("aggregated rows_ingested_total = %d, want %d", got, wantRows)
	}
	// Gauges are per-node, never summed.
	if _, ok := view.Metrics[`obs_trace_store_traces{node="n2"}`]; !ok {
		t.Errorf("no node-labelled trace-store gauge in %d series", len(view.Metrics))
	}
	if _, ok := view.Metrics["obs_trace_store_traces"]; ok {
		t.Error("bare gauge leaked into the aggregate")
	}

	// Prometheus rendering of the same aggregate.
	resp, err := http.Get(nodes[1].addr + "/v1/cluster/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	promText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(promText), "# TYPE rows_ingested_total counter") {
		t.Fatalf("prometheus format: %d\n%.400s", resp.StatusCode, promText)
	}
	if !strings.Contains(string(promText), "cluster_nodes_scraped 3") {
		t.Error("prometheus aggregate must carry cluster_nodes_scraped")
	}
	if got := scopeGet(t, nodes[1].addr+"/v1/cluster/metrics?format=xml", nil); got != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", got)
	}

	// Kill n3: the aggregate over the survivors is still served, with the
	// dead peer named in scrape_errors.
	stopRingNode(nodes[2])
	var partial clusterMetricsView
	if got := scopeGet(t, nodes[0].addr+"/v1/cluster/metrics", &partial); got != http.StatusOK {
		t.Fatalf("partial cluster metrics: status %d", got)
	}
	if strings.Join(partial.Nodes, ",") != "n1,n2" {
		t.Fatalf("partial nodes = %v", partial.Nodes)
	}
	if _, ok := partial.ScrapeErrors["n3"]; !ok {
		t.Fatalf("dead peer not reported: %v", partial.ScrapeErrors)
	}
	if partial.Metrics["rows_ingested_total"] >= wantRows && wantRows > nodes[0].s.localSnapshot()["rows_ingested_total"]+nodes[1].s.localSnapshot()["rows_ingested_total"] {
		t.Error("partial aggregate still counts the dead node")
	}
}

// TestSLOEndpoint drives a configured engine to a deliberate breach
// (p50<0 is unsatisfiable) next to a healthy error objective, and
// checks both the /v1/slo report and the slo_* gauges on /v1/metrics.
func TestSLOEndpoint(t *testing.T) {
	ts, s := newTestServer(t)
	if err := s.setupScope(scopeConfig{
		TraceSample: 1,
		SLOSpecs:    []string{"datasets:p50<0", "err<99%"},
	}); err != nil {
		t.Fatal(err)
	}

	csv, _ := testCSV(t, 40, 7)
	for i := 0; i < 3; i++ {
		// Distinct owners: a second upload under one owner needs its token.
		resp, body := post(t, ts.URL+"/v1/datasets?owner=alice"+string(rune('a'+i))+"&name=d", csv)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %d: %d %s", i, resp.StatusCode, body)
		}
	}

	var report sloReport
	waitUntil(t, 3*time.Second, "slo observations", func() bool {
		return scopeGet(t, ts.URL+"/v1/slo", &report) == http.StatusOK &&
			len(report.Objectives) == 2 && report.Objectives[0].Requests >= 3
	})
	if !report.Enabled || report.Status != obs.SLOStateBreach {
		t.Fatalf("report = %+v", report)
	}
	// Worst first: the unsatisfiable latency objective leads.
	if report.Objectives[0].Objective != "datasets:p50<0" || report.Objectives[0].State != obs.SLOStateBreach {
		t.Fatalf("first objective = %+v", report.Objectives[0])
	}
	if report.Objectives[1].Kind != "error" || report.Objectives[1].State != obs.SLOStateOK {
		t.Fatalf("second objective = %+v", report.Objectives[1])
	}

	var snap map[string]int64
	if scopeGet(t, ts.URL+"/v1/metrics", &snap) != http.StatusOK {
		t.Fatal("metrics endpoint failed")
	}
	if snap[`slo_state{objective="datasets:p50<0"}`] != 2 {
		t.Errorf("slo_state gauge = %d, want 2", snap[`slo_state{objective="datasets:p50<0"}`])
	}
	if snap["slo_breaching"] != 1 {
		t.Errorf("slo_breaching = %d, want 1", snap["slo_breaching"])
	}
}

// TestSLOEndpointDisabled: without -slo the report is a benign
// enabled:false, not an error.
func TestSLOEndpointDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	var report sloReport
	if scopeGet(t, ts.URL+"/v1/slo", &report) != http.StatusOK {
		t.Fatal("slo endpoint failed")
	}
	if report.Enabled || report.Status != obs.SLOStateOK || len(report.Objectives) != 0 {
		t.Fatalf("disabled report = %+v", report)
	}
}
