package main

// Integration tests for the multi-node ring: three real daemons over
// real HTTP sockets, every workload entered through a non-owner node,
// results byte-identical to a single-node server, replica failover when
// a node dies, membership edges (double join, hop loop, cluster key),
// a node joining while a job runs, and replication catch-up after a
// restart.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/ring"
	"ppclust/internal/service"
	"ppclust/ppclient"
)

// testVnodes keeps ring tests fast while still spreading owners; every
// node (and every scratch ring a test builds to predict placement) must
// use the same value.
const testVnodes = 32

// ringTestNode is one daemon of an in-process test ring. Its stores
// survive stop/start so restart tests can exercise catch-up against
// state the node kept (or lost, by resetting them).
type ringTestNode struct {
	id    string
	host  string // 127.0.0.1:port, reserved up front
	addr  string // http://host
	peers string // the static -peers list shared by the ring

	keys  keyring.Store
	store datastore.Store

	s   *server
	rt  *ringRuntime
	srv *httptest.Server
}

// ringNodeSetup, when set, runs against each freshly built server
// before its handler is constructed — the pulse tests' hook for
// configuring sampling, alerting and the flight recorder per node.
var ringNodeSetup func(tb testing.TB, nd *ringTestNode, s *server)

// startRing boots n nodes on pre-reserved ports with a shared static
// -peers list, each with `replicas` successor replicas per key.
func startRing(tb testing.TB, n, replicas int, clusterKey string) []*ringTestNode {
	tb.Helper()
	nodes := make([]*ringTestNode, n)
	lns := make([]net.Listener, n)
	var peers []string
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		host := ln.Addr().String()
		nodes[i] = &ringTestNode{id: fmt.Sprintf("n%d", i+1), host: host, addr: "http://" + host}
		lns[i] = ln
		peers = append(peers, nodes[i].id+"="+nodes[i].addr)
	}
	// Serve every node before bootstrapping any: catch-up pulls from
	// peers over HTTP, so a node bootstrapping against a reserved but
	// not-yet-serving listener would stall until its context expired.
	peerList := strings.Join(peers, ",")
	for i, nd := range nodes {
		nd.peers = peerList
		buildRingNode(tb, nd, lns[i], replicas, clusterKey)
	}
	for _, nd := range nodes {
		bootRingNode(tb, nd, nd.peers, "")
	}
	return nodes
}

// startRingNode builds, serves and bootstraps one node against an
// already-running ring — the join and restart paths.
func startRingNode(tb testing.TB, nd *ringTestNode, ln net.Listener, peers, join string, replicas int, clusterKey string) {
	tb.Helper()
	buildRingNode(tb, nd, ln, replicas, clusterKey)
	bootRingNode(tb, nd, peers, join)
}

// buildRingNode builds a fresh server+runtime around the node's stores
// (created on first start, kept across restarts) and serves it on the
// node's reserved address. ln may be nil on restart: the port is then
// rebound.
func buildRingNode(tb testing.TB, nd *ringTestNode, ln net.Listener, replicas int, clusterKey string) {
	tb.Helper()
	if nd.keys == nil {
		nd.keys = keyring.NewMemory()
	}
	if nd.store == nil {
		nd.store = datastore.NewMemory()
	}
	if ln == nil {
		var err error
		deadline := time.Now().Add(3 * time.Second)
		for {
			ln, err = net.Listen("tcp", nd.host)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		if err != nil {
			tb.Fatalf("rebinding %s: %v", nd.host, err)
		}
	}
	mgr := jobs.New(jobs.Config{Workers: 2})
	tb.Cleanup(mgr.Close)
	s := newServer(engine.New(4, 1024), nd.keys, nd.store, mgr, federation.NewMemory())
	s.nodeID = nd.id
	rt := newRingRuntime(ringConfig{
		NodeID:     nd.id,
		Advertise:  nd.addr,
		ClusterKey: clusterKey,
		Replicas:   replicas,
		Vnodes:     testVnodes,
	}, nd.keys, nd.store, s.svc)
	s.ring = rt
	// The pulse tests enable sampling/alerting on every node; the hook
	// must run before handler() because routes are wired there. Tests in
	// this package are serial, so a package variable is safe.
	if ringNodeSetup != nil {
		ringNodeSetup(tb, nd, s)
	}
	srv := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s.handler()}}
	srv.Start()
	nd.s, nd.rt, nd.srv = s, rt, srv
	tb.Cleanup(func() { stopRingNode(nd) })
}

func bootRingNode(tb testing.TB, nd *ringTestNode, peers, join string) {
	tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := nd.rt.bootstrap(ctx, peers, join); err != nil {
		tb.Fatalf("bootstrap %s: %v", nd.id, err)
	}
}

// stopRingNode kills a node: replication worker first (it may still be
// shipping), then the listener. Idempotent, so deliberate mid-test
// kills coexist with the registered cleanups.
func stopRingNode(nd *ringTestNode) {
	if nd.rt != nil {
		nd.rt.Close()
	}
	if nd.srv != nil {
		nd.srv.Close()
	}
	nd.s, nd.rt, nd.srv = nil, nil, nil
}

func nodeByID(tb testing.TB, nodes []*ringTestNode, id string) *ringTestNode {
	tb.Helper()
	for _, nd := range nodes {
		if nd.id == id {
			return nd
		}
	}
	tb.Fatalf("no node %q", id)
	return nil
}

// ownerHomedOn scans generated owner names (starting at index from, so
// callers can demand distinct owners for the same target) until one's
// primary is the wanted node.
func ownerHomedOn(tb testing.TB, nodes []*ringTestNode, id string, from int) string {
	tb.Helper()
	for i := from; i < from+10000; i++ {
		owner := fmt.Sprintf("owner%d", i)
		if ns := nodes[0].rt.placement(ring.OwnerKey(owner)); len(ns) > 0 && ns[0].ID == id {
			return owner
		}
	}
	tb.Fatalf("no owner name hashes to %s", id)
	return ""
}

// entryAvoiding returns a node that is not owner's primary — the entry
// point that forces the forwarding path.
func entryAvoiding(tb testing.TB, nodes []*ringTestNode, owner string) *ringTestNode {
	tb.Helper()
	home := nodes[0].rt.placement(ring.OwnerKey(owner))[0].ID
	for _, nd := range nodes {
		if nd.id != home {
			return nd
		}
	}
	tb.Fatalf("all nodes own %q", owner)
	return nil
}

func waitUntil(tb testing.TB, timeout time.Duration, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

// TestRingWorkloadsAnyNode is the tentpole acceptance: on a 3-node ring
// every workload — upload, list, rows, protect, recover, cluster job —
// succeeds when entered through a node that does not own the data, and
// the protect release is byte-identical to a single-node daemon fed the
// same input and seed.
func TestRingWorkloadsAnyNode(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	ref, _ := newTestServer(t) // single-node reference

	for i, homeID := range []string{"n1", "n2", "n3"} {
		owner := ownerHomedOn(t, nodes, homeID, i*1000)
		entry := entryAvoiding(t, nodes, owner)
		other := nodes[(indexOf(nodes, entry)+1)%len(nodes)]
		csvBody, orig := testCSV(t, 300, i+1)

		// Upload through a non-owner node; the minted token must come
		// back through the proxy.
		_, tok := uploadDataset(t, entry.srv, owner, "d", "", "", csvBody)
		if tok == "" {
			t.Fatalf("forwarded upload for %s minted no token", owner)
		}

		// List and read back through a different node.
		var metas []datastore.Meta
		resp, body := getJSON(t, other.srv.URL+"/v1/datasets?owner="+owner, tok, &metas)
		if resp.StatusCode != http.StatusOK || len(metas) != 1 || metas[0].Name != "d" {
			t.Fatalf("cross-node list: %d %s (%+v)", resp.StatusCode, body, metas)
		}
		resp, rows := getJSON(t, other.srv.URL+"/v1/datasets/d/rows?owner="+owner, tok, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cross-node rows: %d %s", resp.StatusCode, rows)
		}
		got := parseCSVBody(t, rows)
		if got.Rows() != orig.Rows() || got.Cols() != orig.Cols() {
			t.Fatalf("rows via ring = %dx%d, want %dx%d", got.Rows(), got.Cols(), orig.Rows(), orig.Cols())
		}

		// Protect through the ring must match the single-node daemon
		// byte for byte.
		q := fmt.Sprintf("/v1/protect?owner=%s&rho1=0.3&rho2=0.3&seed=7", owner)
		resp, rel := postAuth(t, entry.srv.URL+q, tok, csvBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ring protect: %d %s", resp.StatusCode, rel)
		}
		refResp, refRel := post(t, ref.URL+q, csvBody)
		if refResp.StatusCode != http.StatusOK {
			t.Fatalf("reference protect: %d %s", refResp.StatusCode, refRel)
		}
		if rel != refRel {
			t.Fatalf("ring release differs from single-node release (%d vs %d bytes)", len(rel), len(refRel))
		}

		// Recover through yet another path inverts the release.
		resp, rec := postAuth(t, other.srv.URL+"/v1/recover?owner="+owner, tok, rel)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ring recover: %d %s", resp.StatusCode, rec)
		}
		recovered := parseCSVBody(t, rec)
		for r := 0; r < 3; r++ {
			for c := 0; c < orig.Cols(); c++ {
				if math.Abs(recovered.At(r, c)-orig.At(r, c)) > 1e-6 {
					t.Fatalf("recovered[%d,%d] = %v, want %v", r, c, recovered.At(r, c), orig.At(r, c))
				}
			}
		}

		// A cluster job: submitted, polled and resolved each through a
		// different node.
		st := submitJob(t, entry.srv, owner, tok, map[string]any{"type": "cluster", "dataset": "d", "k": 3})
		done := waitJob(t, other.srv, owner, tok, st.ID)
		if done.State != jobs.StateDone {
			t.Fatalf("ring job ended %s: %s", done.State, done.Error)
		}
		var res struct {
			K           int   `json:"k"`
			Assignments []int `json:"assignments"`
		}
		jobResult(t, entry.srv, owner, tok, st.ID, &res)
		if res.K != 3 || len(res.Assignments) != orig.Rows() {
			t.Fatalf("ring job result: k=%d assignments=%d", res.K, len(res.Assignments))
		}
	}

	// The entry nodes really proxied: the forward counter moved.
	var snap map[string]int64
	if resp, body := getJSON(t, nodes[0].srv.URL+"/v1/metrics", "", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	if snap["ring_nodes"] != 3 {
		t.Fatalf("ring_nodes = %d, want 3", snap["ring_nodes"])
	}
	total := int64(0)
	for _, nd := range nodes {
		var s map[string]int64
		getJSON(t, nd.srv.URL+"/v1/metrics", "", &s)
		total += s["ring_forwards_total"]
	}
	if total == 0 {
		t.Fatal("no request was ever forwarded — the ring never routed")
	}
}

func indexOf(nodes []*ringTestNode, nd *ringTestNode) int {
	for i := range nodes {
		if nodes[i] == nd {
			return i
		}
	}
	return -1
}

// TestRingFederationAcrossNodes runs the full federation lifecycle with
// each party talking to a different node: the federation record lands
// on the node its ID hashes to, joins and contributions are forwarded
// there, and every node serves the same joint result.
func TestRingFederationAcrossNodes(t *testing.T) {
	ctx := context.Background()
	nodes := startRing(t, 3, 1, "")
	parts, _, _, names := fedTestData(t, 240, 3, 3, 11)

	coord := ppclient.New(nodes[0].srv.URL, "fed-a")
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{
		Name: "ring-study", Columns: names, Rho1: 0.3, Rho2: 0.3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	partyB := ppclient.New(nodes[1].srv.URL, "fed-b")
	partyC := ppclient.New(nodes[2].srv.URL, "fed-c")
	if _, err := partyB.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := partyC.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Contribute(ctx, fed.ID, names, parts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := partyB.Contribute(ctx, fed.ID, names, parts[1]); err != nil {
		t.Fatal(err)
	}
	fv, err := partyC.Contribute(ctx, fed.ID, names, parts[2])
	if err != nil {
		t.Fatal(err)
	}
	if fv.Contributions != 3 || fv.RowsTotal != 240 {
		t.Fatalf("after contributions: %+v", fv)
	}
	if _, err := coord.Seal(ctx, fed.ID, ppclient.Analysis{K: 3}); err != nil {
		t.Fatal(err)
	}

	// Each party polls its own node; all three must converge on the
	// identical joint result.
	results := make([][]byte, 3)
	for i, cl := range []*ppclient.Client{coord, partyB, partyC} {
		var res *ppclient.Result
		waitUntil(t, 30*time.Second, "federation result via "+nodes[i].id, func() bool {
			r, err := cl.Result(ctx, fed.ID)
			if err != nil {
				return false
			}
			res = r
			return true
		})
		if len(res.Assignments) != 240 || len(res.Parties) != 3 {
			t.Fatalf("result via %s: %d assignments, %d parties", nodes[i].id, len(res.Assignments), len(res.Parties))
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = raw
	}
	if !bytes.Equal(results[0], results[1]) || !bytes.Equal(results[0], results[2]) {
		t.Fatal("federation result differs between nodes")
	}
}

// TestRingFailoverReplica kills an owner's home node after replication
// settles and verifies the remaining nodes keep serving that owner —
// reads from the successor's replica, and new writes (a protect fit)
// authenticated against the replicated credential.
func TestRingFailoverReplica(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	victim := nodes[2]
	owner := ownerHomedOn(t, nodes, victim.id, 0)
	csvBody, orig := testCSV(t, 200, 5)

	_, tok := uploadDataset(t, nodes[0].srv, owner, "d", "", "", csvBody)
	if tok == "" {
		t.Fatal("upload minted no token")
	}

	// Wait for the async replication to land on the successor.
	succID := nodes[0].rt.placement(ring.OwnerKey(owner))[1].ID
	succ := nodeByID(t, nodes, succID)
	waitUntil(t, 10*time.Second, "replication to "+succID, func() bool {
		if _, err := succ.store.Get(owner, "d"); err != nil {
			return false
		}
		_, err := succ.keys.TokenHash(owner)
		return err == nil
	})

	stopRingNode(victim)

	for _, nd := range nodes[:2] {
		var meta datastore.Meta
		resp, body := getJSON(t, nd.srv.URL+"/v1/datasets/d?owner="+owner, tok, &meta)
		if resp.StatusCode != http.StatusOK || meta.Rows != orig.Rows() {
			t.Fatalf("read via %s after home death: %d %s", nd.id, resp.StatusCode, body)
		}
	}

	// A new write against the dead owner's key: the replica serves it.
	resp, rel := postAuth(t, nodes[0].srv.URL+"/v1/protect?owner="+owner+"&seed=9", tok, csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect after home death: %d %s", resp.StatusCode, rel)
	}
	if parseCSVBody(t, rel).Rows() != orig.Rows() {
		t.Fatal("failover protect returned wrong row count")
	}
}

// TestRingDoubleJoinConflict: the same node ID announcing a different
// address is a conflict (409); the same ID re-announcing its own
// address is an idempotent rejoin.
func TestRingDoubleJoinConflict(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	epochBefore, _ := nodes[0].rt.ring.Snapshot()

	resp, body := post(t, nodes[0].srv.URL+"/v1/ring/join", `{"id":"n2","addr":"http://127.0.0.1:1"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting join: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, nodes[0].srv.URL+"/v1/ring/join", fmt.Sprintf(`{"id":"n2","addr":%q}`, nodes[1].addr))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent rejoin: %d %s", resp.StatusCode, body)
	}
	if epochAfter, _ := nodes[0].rt.ring.Snapshot(); epochAfter != epochBefore {
		t.Fatalf("rejoin bumped the epoch %d → %d", epochBefore, epochAfter)
	}
}

// TestRingHopLoopGuard: a forwarded request that has already travelled
// maxHops is refused with 508 instead of bouncing again.
func TestRingHopLoopGuard(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	owner := ownerHomedOn(t, nodes, "n2", 0)

	req, err := http.NewRequest(http.MethodGet, nodes[0].srv.URL+"/v1/datasets?owner="+owner, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(hdrHop, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("looped request: %d, want 508", resp.StatusCode)
	}
	// One hop below the bound still forwards normally.
	req.Header.Set(hdrHop, "1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusLoopDetected {
		t.Fatal("hop 1 must still forward")
	}
}

// TestRingClusterKeyGuard: with a shared cluster key configured, the
// internal ring routes reject callers without it while the public
// status route stays open.
func TestRingClusterKeyGuard(t *testing.T) {
	nodes := startRing(t, 1, 0, "s3cr3t")
	base := nodes[0].srv.URL

	resp, body := post(t, base+"/v1/ring/sync", `{"epoch":1,"nodes":[]}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("keyless sync: %d %s", resp.StatusCode, body)
	}
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/ring/sync", strings.NewReader(`{"epoch":0,"nodes":[]}`))
	req.Header.Set(hdrClusterKey, "s3cr3t")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("keyed sync: %d", resp2.StatusCode)
	}
	var st ppclient.RingStatus
	if resp, body := getJSON(t, base+"/v1/ring", "", &st); resp.StatusCode != http.StatusOK || !st.Enabled {
		t.Fatalf("public status: %d %s", resp.StatusCode, body)
	}
}

// TestRingJoinDuringJob grows the ring from 3 to 4 nodes while a job is
// in flight: the job on an owner whose placement does not move must
// finish undisturbed, and an owner that remaps to the new node has its
// dataset (and credential) pulled over by the join catch-up.
func TestRingJoinDuringJob(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	ln4, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n4 := &ringTestNode{id: "n4", host: ln4.Addr().String(), addr: "http://" + ln4.Addr().String()}

	// Predict post-join placement with a scratch ring so the test can
	// pick one owner that stays put and one that moves to n4.
	scratch := ring.New(testVnodes)
	scratch.Seed(1, []ring.Node{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}, {ID: "n4"}})
	var stay, move string
	for i := 0; (stay == "" || move == "") && i < 10000; i++ {
		owner := fmt.Sprintf("owner%d", i)
		before := nodes[0].rt.placement(ring.OwnerKey(owner))[0].ID
		after := scratch.Place(ring.OwnerKey(owner), 0)[0].ID
		switch {
		case move == "" && after == "n4":
			move = owner
		case stay == "" && after == before:
			stay = owner
		}
	}
	if stay == "" || move == "" {
		t.Fatalf("could not find stay/move owners (stay=%q move=%q)", stay, move)
	}

	csvBody, _ := testCSV(t, 400, 3)
	_, tokStay := uploadDataset(t, nodes[0].srv, stay, "d", "", "", csvBody)
	_, tokMove := uploadDataset(t, nodes[1].srv, move, "dm", "", "", csvBody)

	st := submitJob(t, nodes[0].srv, stay, tokStay, map[string]any{"type": "cluster", "dataset": "d", "kmin": 2, "kmax": 8})

	startRingNode(t, n4, ln4, "", nodes[0].addr, 1, "")
	for _, nd := range nodes {
		nd := nd
		waitUntil(t, 10*time.Second, nd.id+" sees 4 members", func() bool {
			_, members := nd.rt.ring.Snapshot()
			return len(members) == 4
		})
	}

	done := waitJob(t, nodes[1].srv, stay, tokStay, st.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job across the join ended %s: %s", done.State, done.Error)
	}

	// The moved owner is now served by n4 — locally and via any entry.
	for _, entry := range []*ringTestNode{n4, nodes[0]} {
		var meta datastore.Meta
		resp, body := getJSON(t, entry.srv.URL+"/v1/datasets/dm?owner="+move, tokMove, &meta)
		if resp.StatusCode != http.StatusOK || meta.Name != "dm" {
			t.Fatalf("moved owner via %s: %d %s", entry.id, resp.StatusCode, body)
		}
	}
	if _, err := n4.store.Get(move, "dm"); err != nil {
		t.Fatalf("join catch-up never pulled %s/dm to n4: %v", move, err)
	}
}

// TestRingRestartCatchUp: a node dies, writes for its owners keep
// landing on the surviving replica, and when the node comes back (same
// identity and stores) its bootstrap catch-up pulls the writes it
// missed.
func TestRingRestartCatchUp(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	victim := nodes[2]
	owner := ownerHomedOn(t, nodes, victim.id, 0)
	csvBody, orig := testCSV(t, 150, 8)

	_, tok := uploadDataset(t, nodes[0].srv, owner, "d1", "", "", csvBody)
	succID := nodes[0].rt.placement(ring.OwnerKey(owner))[1].ID
	succ := nodeByID(t, nodes, succID)
	waitUntil(t, 10*time.Second, "replication to "+succID, func() bool {
		_, errD := succ.store.Get(owner, "d1")
		_, errK := succ.keys.TokenHash(owner)
		return errD == nil && errK == nil
	})

	stopRingNode(victim)

	// A write while the home node is down lands on the replica.
	_, tok2 := uploadDataset(t, nodes[0].srv, owner, "d2", tok, "", csvBody)
	if tok2 != "" {
		t.Fatal("existing owner must not be re-minted a token")
	}

	// Restart with the stores it kept: catch-up must fetch d2.
	startRingNode(t, victim, nil, victim.peers, "", 1, "")
	if _, err := victim.store.Get(owner, "d2"); err != nil {
		t.Fatalf("restart catch-up missed %s/d2: %v", owner, err)
	}
	var meta datastore.Meta
	resp, body := getJSON(t, victim.srv.URL+"/v1/datasets/d2?owner="+owner, tok, &meta)
	if resp.StatusCode != http.StatusOK || meta.Rows != orig.Rows() {
		t.Fatalf("restarted home serving d2: %d %s", resp.StatusCode, body)
	}
}

// TestAdmissionHTTP429: a server with per-owner admission control sheds
// excess load with the 429 envelope once the burst and queue are
// exhausted, and /v1/ring traffic is exempt.
func TestAdmissionHTTP429(t *testing.T) {
	mgr := jobs.New(jobs.Config{Workers: 1})
	t.Cleanup(mgr.Close)
	s := newServerAdm(engine.New(2, 1024), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory(),
		// A bucket that effectively never refills: the second request
		// queues for a refill that will not come within its deadline.
		service.AdmissionConfig{Rate: 0.0001, Burst: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	csvBody, _ := testCSV(t, 20, 1)
	resp, body := post(t, ts.URL+"/v1/datasets?owner=adm&name=a", csvBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first request: %d %s", resp.StatusCode, body)
	}

	// Park a second admission in the one-deep reservation queue, where
	// it will wait (far beyond the test) for a refill that never comes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		_ = s.svc.Admit(ctx, "adm")
	}()
	waitUntil(t, 10*time.Second, "second request to queue", func() bool {
		return s.svc.MetricsSnapshot()["admission_throttled_total"] >= 1
	})

	// With the burst spent and the queue full, the third request is shed
	// immediately with the typed envelope.
	resp, body = post(t, ts.URL+"/v1/datasets?owner=adm&name=c", csvBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: %d %s, want 429", resp.StatusCode, body)
	}
	var env errEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.Error.Code != "rate_limited" {
		t.Fatalf("429 body is not the rate_limited envelope: %s", body)
	}
	cancel()
	<-parked
}
