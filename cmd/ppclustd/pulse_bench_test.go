package main

// pppulse benchmarks, archived by CI as BENCH_pppulse.json:
//
//   - BenchmarkPulseSampler: the served stream-protect path with the
//     sampler off vs sampling every 100ms — the pair that proves
//     background sampling costs <5% on the hot path (the sampler runs
//     concurrently with the measured requests, which is exactly how it
//     taxes a live daemon);
//   - history-query and alert-eval microbenches live in internal/obs
//     (BenchmarkPulseHistoryQuery, BenchmarkAlertEval) and ride along in
//     the same artifact.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
)

func benchmarkPulsePath(b *testing.B, pulseOn bool) {
	mgr := jobs.New(jobs.Config{Workers: 2})
	defer mgr.Close()
	s := newServer(engine.New(0, 0), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory())
	if pulseOn {
		// 100ms is 100× the production default cadence, so the measured
		// overhead bounds the real one from far above.
		if err := s.setupPulse(pulseConfig{Interval: 100 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
		defer s.closePulse()
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	fitCSV := benchCSV(b, 300)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/protect?owner=bench", bytes.NewReader([]byte(fitCSV)))
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("fit: %d", resp.StatusCode)
	}
	tok := resp.Header.Get("X-Ppclust-Token")

	body := []byte(benchCSV(b, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/protect?owner=bench&mode=stream", bytes.NewReader(body))
		req.Header.Set("Content-Type", "text/csv")
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("stream protect: %d", resp.StatusCode)
		}
	}
}

func BenchmarkPulseSampler(b *testing.B) {
	b.Run("pulse=off", func(b *testing.B) { benchmarkPulsePath(b, false) })
	b.Run("pulse=on", func(b *testing.B) { benchmarkPulsePath(b, true) })
}
