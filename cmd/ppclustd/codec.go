// Row codecs for ppclustd: incremental readers and writers for the three
// wire formats the service speaks — CSV (with a header row), NDJSON (one
// JSON array of numbers per line) and the framed binary row-batch format
// from internal/codec. All sides are streaming — the server never needs a
// whole dataset in memory to recover or stream-protect.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"ppclust/internal/codec"
)

const (
	formatCSV    = "csv"
	formatNDJSON = "ndjson"
	formatBinary = codec.FormatName
)

// resolveFormat picks the wire format from an explicit query value, the
// request Content-Type, or (for body-less requests like GET rows) the
// Accept header, defaulting to CSV.
func resolveFormat(query string, header http.Header) (string, error) {
	switch query {
	case formatCSV, formatNDJSON, formatBinary:
		return query, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want csv, ndjson or binary)", query)
	}
	ct := header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case "application/x-ndjson", "application/ndjson", "application/jsonl":
		return formatNDJSON, nil
	case codec.ContentType:
		return formatBinary, nil
	}
	if strings.Contains(header.Get("Accept"), codec.ContentType) {
		return formatBinary, nil
	}
	return formatCSV, nil
}

func contentType(format string) string {
	switch format {
	case formatNDJSON:
		return "application/x-ndjson"
	case formatBinary:
		return codec.ContentType
	}
	return "text/csv; charset=utf-8"
}

// rowReader yields numeric rows one at a time; Read returns io.EOF at the
// end of the stream.
type rowReader interface {
	// Names returns the attribute names, available after the first Read
	// (CSV yields them from the header; NDJSON synthesizes them).
	Names() []string
	Read() ([]float64, error)
}

// rowWriter emits numeric rows one at a time. Close marks the stream
// complete (the binary format writes its end frame there — a response
// aborted before Close reads as truncated on the client, never as a
// short-but-valid dataset); for the text formats it is a flush.
type rowWriter interface {
	WriteNames(names []string) error
	WriteRow(row []float64) error
	Flush() error
	Close() error
}

func newRowReader(format string, r io.Reader) rowReader {
	switch format {
	case formatNDJSON:
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		return &ndjsonReader{sc: sc}
	case formatBinary:
		return codec.NewReader(r)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.ReuseRecord = true
	return &csvReader{cr: cr}
}

func newRowWriter(format string, w io.Writer) rowWriter {
	switch format {
	case formatNDJSON:
		return &ndjsonWriter{w: bufio.NewWriter(w)}
	case formatBinary:
		return &binaryWriter{bw: codec.NewWriter(w)}
	}
	return &csvWriter{cw: csv.NewWriter(w)}
}

// binaryWriter adapts codec.Writer to the rowWriter contract.
type binaryWriter struct {
	bw *codec.Writer
}

func (b *binaryWriter) WriteNames(names []string) error { return b.bw.WriteHeader(names, false) }
func (b *binaryWriter) WriteRow(row []float64) error    { return b.bw.WriteRow(row) }
func (b *binaryWriter) Flush() error                    { return b.bw.Flush() }
func (b *binaryWriter) Close() error                    { return b.bw.Close() }

// csvReader parses a header row of names followed by numeric records.
type csvReader struct {
	cr    *csv.Reader
	names []string
}

func (c *csvReader) Names() []string { return c.names }

func (c *csvReader) Read() ([]float64, error) {
	for {
		rec, err := c.cr.Read()
		if err != nil {
			return nil, err
		}
		if c.names == nil {
			c.names = append([]string(nil), rec...)
			continue
		}
		if len(rec) != len(c.names) {
			return nil, fmt.Errorf("row has %d fields, header has %d", len(rec), len(c.names))
		}
		row := make([]float64, len(rec))
		for j, field := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("field %d: %w", j, err)
			}
			row[j] = v
		}
		return row, nil
	}
}

// ndjsonReader parses one JSON array of numbers per line, skipping blank
// lines, and synthesizes c0..c{n-1} names from the first row.
type ndjsonReader struct {
	sc    *bufio.Scanner
	names []string
}

func (n *ndjsonReader) Names() []string { return n.names }

func (n *ndjsonReader) Read() ([]float64, error) {
	for n.sc.Scan() {
		line := strings.TrimSpace(n.sc.Text())
		if line == "" {
			continue
		}
		var row []float64
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return nil, fmt.Errorf("parsing ndjson row: %w", err)
		}
		if n.names == nil {
			n.names = make([]string, len(row))
			for j := range n.names {
				n.names[j] = "c" + strconv.Itoa(j)
			}
		}
		if len(row) != len(n.names) {
			return nil, fmt.Errorf("row has %d values, stream has %d columns", len(row), len(n.names))
		}
		return row, nil
	}
	if err := n.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

type csvWriter struct {
	cw      *csv.Writer
	scratch []string
}

func (c *csvWriter) WriteNames(names []string) error { return c.cw.Write(names) }

func (c *csvWriter) WriteRow(row []float64) error {
	if cap(c.scratch) < len(row) {
		c.scratch = make([]string, len(row))
	}
	rec := c.scratch[:len(row)]
	for j, v := range row {
		rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return c.cw.Write(rec)
}

func (c *csvWriter) Flush() error {
	c.cw.Flush()
	return c.cw.Error()
}

// Close is a flush: CSV has no stream terminator.
func (c *csvWriter) Close() error { return c.Flush() }

type ndjsonWriter struct {
	w *bufio.Writer
}

// WriteNames is a no-op for NDJSON: the format carries bare rows.
func (n *ndjsonWriter) WriteNames([]string) error { return nil }

func (n *ndjsonWriter) WriteRow(row []float64) error {
	raw, err := json.Marshal(row)
	if err != nil {
		return err
	}
	if _, err := n.w.Write(raw); err != nil {
		return err
	}
	return n.w.WriteByte('\n')
}

func (n *ndjsonWriter) Flush() error { return n.w.Flush() }

// Close is a flush: NDJSON has no stream terminator.
func (n *ndjsonWriter) Close() error { return n.Flush() }
