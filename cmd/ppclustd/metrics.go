package main

// GET /v1/metrics: expvar-style counters for load observability — requests
// by route and status, rows flowing through protect/recover/ingest, and
// the job subsystem's queue and pool numbers. Like /healthz and /v1/keys
// it exposes aggregate metadata only, never data or key material, so it is
// unauthenticated.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"time"

	"ppclust/internal/metrics"
)

// fedMetricLabel derives the public metrics label for a federation ID: a
// 12-hex-digit SHA-256 prefix, unique enough per live federation and
// useless as a join capability.
func fedMetricLabel(id string) string {
	h := sha256.Sum256([]byte(id))
	return hex.EncodeToString(h[:6])
}

// latencyBoundsUs are the fixed per-route latency buckets, in
// microseconds: fine enough to separate a metadata GET from a streamed
// protect, bounded so the metric stays O(routes × 12) gauges forever.
var latencyBoundsUs = []float64{
	500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 5_000_000,
}

// instrument wraps the mux so every request increments a
// route+status-labelled counter and records its latency into a bounded
// per-route histogram. The pattern is the mux's match (e.g.
// "POST /v1/jobs"), which keeps cardinality bounded by the route table
// rather than by client-chosen URLs.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		// Deferred so that requests a handler kills mid-stream with
		// panic(http.ErrAbortHandler) — exactly the failures an operator
		// watches error rates for — are still counted; the panic keeps
		// unwinding to net/http afterwards.
		defer func() {
			route := r.Pattern
			if route == "" {
				route = "unmatched"
			}
			s.reg.Counter(fmt.Sprintf(`http_requests_total{route=%q,status="%d"}`, route, rec.status)).Inc()
			s.reg.Histogram(fmt.Sprintf(`http_request_duration_us{route=%q}`, route), latencyBoundsUs).
				Observe(float64(time.Since(start).Microseconds()))
		}()
		next.ServeHTTP(rec, r)
	})
}

// statusRecorder captures the response status. Unwrap keeps
// http.ResponseController features (full-duplex streaming, flush) working
// through the wrapper; Flush covers handlers that type-assert
// http.Flusher directly.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(p)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.reg.Snapshot()
	// Live gauges from the subsystems that own them, composed at scrape
	// time rather than double-booked as counters.
	stats := s.mgr.Stats()
	snap["jobs_submitted_total"] = stats.Submitted
	snap["jobs_completed_total"] = stats.Completed
	snap["jobs_failed_total"] = stats.Failed
	snap["jobs_cancelled_total"] = stats.Cancelled
	snap["jobs_queued"] = int64(stats.QueueDepth)
	snap["jobs_running"] = int64(stats.RunningNow)
	snap["job_workers"] = int64(stats.Workers)
	snap["engine_workers"] = int64(s.eng.Workers())
	// Federation gauges: state totals plus per-federation membership and
	// contributed-row sizes. Cardinality is bounded by the number of live
	// federations. The label is a hash prefix, not the federation ID —
	// the ID doubles as the join capability and /v1/metrics is
	// unauthenticated, so the raw ID must not appear here. Members can
	// recompute the prefix from the ID they hold to find their gauge.
	fstats := s.feds.Stats()
	snap["federations_total"] = int64(len(fstats.Federations))
	snap["federations_open"] = int64(fstats.Open)
	snap["federations_frozen"] = int64(fstats.Frozen)
	snap["federations_sealed"] = int64(fstats.Sealed)
	var fedParties, fedRows int64
	for _, f := range fstats.Federations {
		fedParties += int64(f.Parties)
		fedRows += int64(f.Rows)
		label := fedMetricLabel(f.ID)
		snap[fmt.Sprintf(`federation_parties{fed=%q}`, label)] = int64(f.Parties)
		snap[fmt.Sprintf(`federation_rows{fed=%q}`, label)] = int64(f.Rows)
	}
	snap["federation_parties_total"] = fedParties
	snap["federation_rows_total"] = fedRows
	writeJSON(w, http.StatusOK, snap)
}

// newMetricCounters resolves the hot-path counters once at startup.
func (s *server) initMetrics() {
	s.reg = metrics.NewRegistry()
	s.rowsProtected = s.reg.Counter("rows_protected_total")
	s.rowsRecovered = s.reg.Counter("rows_recovered_total")
	s.rowsIngested = s.reg.Counter("rows_ingested_total")
	s.tuneEvaluated = s.reg.Counter("tune_candidates_evaluated_total")
	s.tunePruned = s.reg.Counter("tune_candidates_pruned_total")
	s.tuneFailed = s.reg.Counter("tune_candidates_failed_total")
}
