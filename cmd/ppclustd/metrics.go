package main

// GET /v1/metrics: expvar-style counters for load observability — requests
// by route and status, rows flowing through protect/recover/ingest, job,
// federation and datastore-cache gauges. Like /healthz and /v1/keys it
// exposes aggregate metadata only, never data or key material, so it is
// unauthenticated. The snapshot body is composed by the service layer;
// this file owns only the HTTP instrumentation wrapper.

import (
	"fmt"
	"net/http"
	"time"
)

// latencyBoundsUs are the fixed per-route latency buckets, in
// microseconds: fine enough to separate a metadata GET from a streamed
// protect, bounded so the metric stays O(routes × 12) gauges forever.
var latencyBoundsUs = []float64{
	500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 5_000_000,
}

// instrument wraps the mux so every request increments a
// route+status-labelled counter and records its latency into a bounded
// per-route histogram. The pattern is the mux's match (e.g.
// "POST /v1/jobs"), which keeps cardinality bounded by the route table
// rather than by client-chosen URLs.
func (s *server) instrument(next http.Handler) http.Handler {
	reg := s.svc.Registry()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		// Deferred so that requests a handler kills mid-stream with
		// panic(http.ErrAbortHandler) — exactly the failures an operator
		// watches error rates for — are still counted; the panic keeps
		// unwinding to net/http afterwards.
		defer func() {
			route := r.Pattern
			if route == "" {
				route = "unmatched"
			}
			reg.Counter(fmt.Sprintf(`http_requests_total{route=%q,status="%d"}`, route, rec.status)).Inc()
			reg.Histogram(fmt.Sprintf(`http_request_duration_us{route=%q}`, route), latencyBoundsUs).
				Observe(float64(time.Since(start).Microseconds()))
		}()
		next.ServeHTTP(rec, r)
	})
}

// statusRecorder captures the response status. Unwrap keeps
// http.ResponseController features (full-duplex streaming, flush) working
// through the wrapper; Flush covers handlers that type-assert
// http.Flusher directly.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(p)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.svc.MetricsSnapshot()
	if s.ring != nil {
		s.ring.addGauges(snap)
	}
	writeJSON(w, http.StatusOK, snap)
}
