package main

// Metrics exposition and per-request instrumentation.
//
//	GET /v1/metrics  flat JSON snapshot (counters, gauges, spliced
//	                 histogram series) — the embedded/SDK surface
//	GET /metrics     Prometheus text format (proper # TYPE lines,
//	                 numeric bucket order, +Inf last) — the scrape surface
//
// Like /healthz and /v1/keys both expose aggregate metadata only, never
// data or key material, so they are unauthenticated. The snapshot body
// is composed by the service layer; this file owns the HTTP
// instrumentation wrapper: the trace edge (mint/adopt X-Ppclust-Trace),
// the route+status counters and latency histograms, the slog access
// log, and the slow-request span dump.

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"ppclust/internal/obs"
)

// latencyBoundsUs are the fixed per-route latency buckets, in
// microseconds: fine enough to separate a metadata GET from a streamed
// protect, bounded so the metric stays O(routes × 12) gauges forever.
var latencyBoundsUs = []float64{
	500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 5_000_000,
}

// instrument is the trace edge and the instrumentation wrapper, the
// outermost layer of the handler stack. For every request it:
//
//   - adopts the X-Ppclust-Trace header (or mints a fresh ID), starts
//     the request's span tree on the context, reflects the ID into both
//     the response (so clients can quote it) and the request headers (so
//     a ring forward carries it to the owning node);
//   - increments a route+status-labelled counter and records latency
//     into a bounded per-route histogram;
//   - writes one structured access-log record carrying trace ID, owner,
//     route, status and duration;
//   - when the request exceeded the -slow-ms threshold, logs the full
//     span tree so the slow stage is identifiable without a re-run.
func (s *server) instrument(next http.Handler) http.Handler {
	reg := s.svc.Registry()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, root := obs.StartTrace(r.Context(), r.Header.Get(obs.TraceHeader), "http")
		id := obs.TraceID(ctx)
		r = r.WithContext(ctx)
		r.Header.Set(obs.TraceHeader, id)
		w.Header().Set(obs.TraceHeader, id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		// Deferred so that requests a handler kills mid-stream with
		// panic(http.ErrAbortHandler) — exactly the failures an operator
		// watches error rates for — are still counted; the panic keeps
		// unwinding to net/http afterwards.
		defer func() {
			root.End()
			route := r.Pattern
			if route == "" {
				route = "unmatched"
			}
			elapsed := time.Since(start)
			durMs := float64(elapsed.Microseconds()) / 1000
			owner := r.URL.Query().Get("owner")
			reg.Counter(fmt.Sprintf(`http_requests_total{route=%q,status="%d"}`, route, rec.status)).Inc()
			reg.Histogram(fmt.Sprintf(`http_request_duration_us{route=%q}`, route), latencyBoundsUs).
				Observe(float64(elapsed.Microseconds()))
			// SLO accounting counts 5xx as errors: a 4xx is the client's
			// fault and spending the error budget on it would let bad input
			// mask a real availability regression.
			s.slo.Observe(route, durMs, rec.status >= 500)
			// ShouldKeep gates before Tree(): dropped traces never pay the
			// span-tree export. Errors and slow requests always pass; the
			// rest hash the trace ID so every ring node keeps the same set.
			if s.traces != nil && s.traces.ShouldKeep(id, rec.status, durMs) {
				s.traces.Put(obs.TraceRecord{
					ID:     id,
					Node:   s.nodeName(),
					Route:  route,
					Status: rec.status,
					Owner:  owner,
					Start:  start,
					DurMs:  durMs,
					Error:  rec.status >= 500,
					Spans:  obs.FromContext(ctx).Tree(),
				})
			}
			attrs := []slog.Attr{
				slog.String("trace", id),
				slog.String("route", route),
				slog.Int("status", rec.status),
				slog.Float64("dur_ms", durMs),
			}
			if owner != "" {
				attrs = append(attrs, slog.String("owner", owner))
			}
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
			if s.slowLog > 0 && elapsed >= s.slowLog {
				s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
					append(attrs, slog.Any("spans", obs.FromContext(ctx).Tree()))...)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}

// statusRecorder captures the response status. Unwrap keeps
// http.ResponseController features (full-duplex streaming, flush) working
// through the wrapper; Flush covers handlers that type-assert
// http.Flusher directly.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.status = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(p)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }

// gauges collects the derived gauges (service + ring) shared by both
// exposition formats.
func (s *server) gauges() map[string]int64 {
	g := s.svc.Gauges()
	if s.ring != nil {
		s.ring.addGauges(g)
	}
	return g
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.localSnapshot())
}

// handlePromMetrics serves the Prometheus text exposition format:
// counters and histograms straight from the registry with proper # TYPE
// lines and numerically ordered buckets, plus the live derived gauges.
func (s *server) handlePromMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	if err := obs.WritePromText(w, s.svc.Registry(), s.gauges()); err != nil {
		s.logger.Warn("metrics exposition", "err", err.Error())
	}
}
