package main

// BenchmarkWireIngestProtect measures the served ingest-to-protect path
// end to end — HTTP body in, parsed rows through the streaming protector,
// protected release out — once per wire format over identical 20k x 8
// data. The columnar engine is the same in both; what the sub-benches
// compare is the wire: CSV pays float↔text conversion in both directions,
// the framed binary format moves the same values as raw little-endian
// float64 batches. CI archives this as part of BENCH_ppspeed.json.

import (
	"bytes"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"ppclust/internal/codec"
	"ppclust/internal/dataset"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
	"ppclust/internal/obs"
)

func BenchmarkWireIngestProtect(b *testing.B) {
	const rows, cols = 20_000, 8
	ds, err := dataset.SyntheticPatients(rows, 3, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	ds = ds.DropIDs()
	ds.Labels = nil
	// SyntheticPatients yields a fixed schema; widen to the benchmark
	// shape by tiling columns.
	base := ds.Data
	wide := matrix.NewDense(rows, cols, nil)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			wide.SetAt(r, c, base.At(r, c%base.Cols())+float64(c))
		}
	}
	names := make([]string, cols)
	for j := range names {
		names[j] = "a" + string(rune('0'+j))
	}

	var csvBuf bytes.Buffer
	wds, err := dataset.New(names, wide)
	if err != nil {
		b.Fatal(err)
	}
	if err := dataset.WriteCSV(&csvBuf, wds); err != nil {
		b.Fatal(err)
	}
	var binBuf bytes.Buffer
	bw := codec.NewWriter(&binBuf)
	if err := bw.WriteHeader(names, false); err != nil {
		b.Fatal(err)
	}
	if err := bw.WriteBatch(wide, nil); err != nil {
		b.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		b.Fatal(err)
	}

	mgr := jobs.New(jobs.Config{Workers: 2})
	b.Cleanup(mgr.Close)
	s := newServer(engine.New(0, 0), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory())
	// Request logs would interleave with the benchmark lines on CI and
	// break benchjson's line parsing.
	s.logger = obs.NewLogger(io.Discard, slog.LevelError)
	ts := httptest.NewServer(s.handler())
	b.Cleanup(ts.Close)
	// Fit once so every measured iteration is the steady-state stream.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/protect?owner=wire&seed=1", bytes.NewReader(csvBuf.Bytes()))
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("fit: %d", resp.StatusCode)
	}
	tok := resp.Header.Get("X-Ppclust-Token")

	run := func(b *testing.B, body []byte, contentType string) {
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/protect?owner=wire&mode=stream", bytes.NewReader(body))
			req.Header.Set("Content-Type", contentType)
			req.Header.Set("Authorization", "Bearer "+tok)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK || n == 0 {
				b.Fatalf("stream: %d, %d bytes, %v", resp.StatusCode, n, err)
			}
		}
	}
	b.Run("csv", func(b *testing.B) { run(b, csvBuf.Bytes(), "text/csv") })
	b.Run("binary", func(b *testing.B) { run(b, binBuf.Bytes(), codec.ContentType) })
}
