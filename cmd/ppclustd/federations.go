package main

// Federation routes: the networked multi-party workload. Several data
// holders, each an authenticated owner, collaboratively protect horizontal
// partitions of a common schema under one shared rotation key so a joint
// clustering can run over the union without any party seeing another's
// raw rows.
//
//	POST   /v1/federations?owner=C                 create (C coordinates)
//	GET    /v1/federations?owner=O                 list O's federations
//	GET    /v1/federations/{id}?owner=O            member view
//	DELETE /v1/federations/{id}?owner=C            coordinator tears down
//	POST   /v1/federations/{id}/join?owner=O       become a member
//	POST   /v1/federations/{id}/contribute?owner=O ingest a partition
//	DELETE /v1/federations/{id}/contribute?owner=O withdraw own partition
//	POST   /v1/federations/{id}/seal?owner=C       finalize + schedule job
//	GET    /v1/federations/{id}/result?owner=O     joint analysis result
//
// The key agreement is the coordinator's first contribution: while the
// federation is open, only the coordinator may contribute, and that
// contribution *fits* the shared normalization parameters and rotation
// key (exactly like a fit-protect). Every later contribution streams
// through the frozen transform, so all contributions are images of one
// isometry and the joint clustering equals the plaintext union's.
//
// Contributions are stored as ordinary owner-scoped datasets named
// "fed.<id>" in each party's own namespace — the existing dataset auth
// makes them owner-isolated: another party's contribution answers 403 to
// a foreign token and 404 inside one's own namespace. Raw rows transit
// the daemon during contribute (the daemon is the trusted protection
// point, as in /v1/protect) but only protected rows are stored. The
// shared secret lives inside the federation record and never crosses the
// API in either direction.
//
// Like job IDs, federation IDs are unguessable and double as the
// invitation capability: joining requires knowing the ID. Create and join
// mint a bearer token for owners the keyring has never seen, mirroring
// dataset uploads.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ppclust/internal/core"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
	"ppclust/internal/multiparty"
	"ppclust/internal/quality"
)

// jobFederatedCluster is the joint-analysis job type a seal schedules
// under the coordinator owner. It is not submittable via POST /v1/jobs
// (validateSpec rejects it), only via seal — and via the drain/restore
// path, which replays seals that never got to run.
const jobFederatedCluster = "federated-cluster"

// contributionDataset names a federation contribution inside a party's
// dataset namespace.
func contributionDataset(fedID string) string { return "fed." + fedID }

// isFederationDataset reports whether name sits in the reserved
// federation-contribution namespace. The ordinary dataset routes refuse
// to create or delete such names: a party deleting or re-uploading its
// fed.<id> dataset out of band would dangle the federation's contribution
// reference — or worse, substitute unprotected rows into the sealed joint
// analysis. Withdrawal goes through DELETE
// /v1/federations/{id}/contribute, which keeps the record consistent.
func isFederationDataset(name string) bool { return strings.HasPrefix(name, "fed.") }

// createFederationSpec is the POST /v1/federations body.
type createFederationSpec struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Norm    string   `json:"norm,omitempty"`
	Rho1    float64  `json:"rho1,omitempty"`
	Rho2    float64  `json:"rho2,omitempty"`
	Seed    int64    `json:"seed,omitempty"`
}

// fedAnalysisSpec is the POST seal body: which algorithm the joint
// clustering runs. The fields mirror the cluster job's.
type fedAnalysisSpec struct {
	Algorithm string  `json:"algorithm,omitempty"`
	K         int     `json:"k,omitempty"`
	Linkage   string  `json:"linkage,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	MinPts    int     `json:"min_pts,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`
	ClustSeed int64   `json:"cluster_seed,omitempty"`
}

// clusterSpec converts the analysis parameters into the shape
// buildClusterer consumes.
func (a *fedAnalysisSpec) clusterSpec() *jobSpec {
	return &jobSpec{
		Algorithm: a.Algorithm,
		K:         a.K,
		Linkage:   a.Linkage,
		Eps:       a.Eps,
		MinPts:    a.MinPts,
		Sigma:     a.Sigma,
		ClustSeed: a.ClustSeed,
	}
}

// fedJobSpec is the persisted spec of a federated-cluster job.
type fedJobSpec struct {
	Federation string          `json:"federation"`
	Analysis   fedAnalysisSpec `json:"analysis"`
}

// fedAuth authenticates the owner parameter for federation routes that
// require an existing owner (everything except create and join, which may
// claim new owners). The policy is exactly the dataset routes' one.
func (s *server) fedAuth(w http.ResponseWriter, r *http.Request) (string, bool) {
	return s.datasetAuth(w, r)
}

// fedClaimOrAuth authenticates an owner that may not exist yet: a known
// owner must present its token; an unknown one is claimed with a freshly
// minted credential whose plaintext is returned (to be set as the
// X-Ppclust-Token response header, its single appearance on the wire).
func (s *server) fedClaimOrAuth(w http.ResponseWriter, r *http.Request) (owner, mintedToken string, ok bool) {
	owner = r.URL.Query().Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return "", "", false
	}
	known, err := s.ownerKnown(owner)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return "", "", false
	}
	if known {
		if err := s.authorize(r, owner); err != nil {
			writeAuthErr(w, err)
			return "", "", false
		}
		return owner, "", true
	}
	tok, hash, err := newToken()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return "", "", false
	}
	if err := s.keys.ClaimToken(owner, hash); err != nil {
		if errors.Is(err, keyring.ErrExists) {
			err = fmt.Errorf("owner %q was created concurrently; retry with its bearer token: %w", owner, err)
		}
		writeErr(w, statusFor(err), err)
		return "", "", false
	}
	return owner, tok, true
}

func (s *server) handleFederationCreate(w http.ResponseWriter, r *http.Request) {
	owner, token, ok := s.fedClaimOrAuth(w, r)
	if !ok {
		return
	}
	// The claim (and hence the token the client is about to learn) stands
	// even if the creation fails below, so the credential header is set
	// before the outcome is known — losing it would burn the owner name.
	w.Header().Set("X-Ppclust-Owner", owner)
	if token != "" {
		w.Header().Set("X-Ppclust-Token", token)
	}
	var spec createFederationSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing federation spec: %w", err))
		return
	}
	v, err := s.feds.Create(owner, spec.Name, federation.Config{
		Columns: spec.Columns,
		Norm:    spec.Norm,
		Rho1:    spec.Rho1,
		Rho2:    spec.Rho2,
		Seed:    spec.Seed,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/federations/"+v.ID)
	writeJSON(w, http.StatusCreated, v)
}

func (s *server) handleFederationList(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.fedAuth(w, r)
	if !ok {
		return
	}
	views := s.feds.ListFor(owner)
	if views == nil {
		views = []federation.View{}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *server) handleFederationGet(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.fedAuth(w, r)
	if !ok {
		return
	}
	v, err := s.feds.Get(r.PathValue("id"), owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *server) handleFederationDelete(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.fedAuth(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	contributed, err := s.feds.Delete(id, owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Contributions were created by the federation; tear them down with
	// it. A failure here is logged into the response but does not undo
	// the delete — the datasets remain individually deletable.
	var leftovers []string
	for _, p := range contributed {
		if derr := s.store.Delete(p.Owner, p.Dataset); derr != nil && !errors.Is(derr, datastore.ErrNotFound) {
			leftovers = append(leftovers, p.Owner+"/"+p.Dataset)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "leftover_contributions": leftovers})
}

func (s *server) handleFederationJoin(w http.ResponseWriter, r *http.Request) {
	owner, token, ok := s.fedClaimOrAuth(w, r)
	if !ok {
		return
	}
	// As in create: a failed join must not swallow a just-minted token.
	w.Header().Set("X-Ppclust-Owner", owner)
	if token != "" {
		w.Header().Set("X-Ppclust-Token", token)
	}
	v, err := s.feds.Join(r.PathValue("id"), owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleFederationContribute ingests a member's horizontal partition.
// While the federation is open the coordinator's contribution fits and
// freezes the shared transform; afterwards any member's contribution is
// stream-protected under the frozen key. Either way only protected rows
// are stored, as the member's owner-scoped "fed.<id>" dataset.
func (s *server) handleFederationContribute(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.fedAuth(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	v, err := s.feds.Get(id, owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	format, err := resolveFormat(r.URL.Query().Get("format"), r.Header)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	rr := newRowReader(format, body)

	switch {
	case v.State == federation.StateOpen && owner == v.Coordinator:
		s.contributeFit(w, rr, id, owner, v)
	case v.State == federation.StateOpen:
		writeErr(w, http.StatusConflict, fmt.Errorf("%w: federation %q has no frozen key yet; coordinator %q contributes first",
			federation.ErrState, id, v.Coordinator))
	case v.State == federation.StateFrozen:
		s.contributeStream(w, rr, id, owner, v)
	default:
		writeErr(w, http.StatusConflict, fmt.Errorf("%w: federation %q is sealed", federation.ErrState, id))
	}
}

// contributeFit is the key agreement: the coordinator's partition fits
// the shared normalization and rotation key, its release becomes the
// first contribution, and the federation freezes.
func (s *server) contributeFit(w http.ResponseWriter, rr rowReader, id, owner string, v federation.View) {
	data, err := readAll(rr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if data.Cols() != len(v.Columns) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("contribution has %d columns, federation schema has %d", data.Cols(), len(v.Columns)))
		return
	}
	cfg, err := s.feds.FitConfig(id)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	norm := cfg.Norm
	if norm == "" {
		norm = engine.NormZScore
	}
	rho1, rho2 := cfg.Rho1, cfg.Rho2
	if rho1 == 0 {
		rho1 = 0.3
	}
	if rho2 == 0 {
		rho2 = 0.3
	}
	res, err := s.eng.Protect(data, engine.ProtectOptions{
		Normalization: norm,
		Thresholds:    []core.PST{{Rho1: rho1, Rho2: rho2}},
		Seed:          cfg.Seed,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	name := contributionDataset(id)
	if err := s.storeContribution(owner, name, v.Columns, res.Released); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	fv, err := s.feds.Freeze(id, owner, res.Secret(), name, res.Released.Rows())
	if err != nil {
		// A concurrent freeze won; drop the just-stored duplicate rows.
		_ = s.store.Delete(owner, name)
		writeErr(w, statusFor(err), err)
		return
	}
	s.rowsProtected.Add(int64(res.Released.Rows()))
	writeJSON(w, http.StatusCreated, fv)
}

// contributeStream protects a member's partition incrementally under the
// frozen shared key and stores the release block by block.
func (s *server) contributeStream(w http.ResponseWriter, rr rowReader, id, owner string, v federation.View) {
	if p := partyOf(v, owner); p != nil && p.Contributed() {
		writeErr(w, http.StatusConflict, fmt.Errorf("%w: %q already contributed %d rows", federation.ErrExists, owner, p.Rows))
		return
	}
	secret, err := s.feds.Secret(id)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	sp, err := s.eng.NewStreamProtector(secret)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	name := contributionDataset(id)
	b, err := datastore.NewBuilder(owner, name, v.Columns)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	for {
		batch, err := readBatch(rr, s.batchRows)
		if err != nil && !errors.Is(err, io.EOF) {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		done := errors.Is(err, io.EOF)
		if batch != nil {
			if batch.Cols() != len(v.Columns) {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("contribution has %d columns, federation schema has %d", batch.Cols(), len(v.Columns)))
				return
			}
			out, err := sp.ProtectBatch(batch)
			if err != nil {
				writeErr(w, statusFor(err), err)
				return
			}
			for i := 0; i < out.Rows(); i++ {
				if err := b.Append(out.RawRow(i)); err != nil {
					writeErr(w, statusFor(err), err)
					return
				}
			}
		}
		if done {
			break
		}
	}
	ds, err := b.Finish(time.Now())
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if err := s.store.Put(ds); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	fv, err := s.feds.Contribute(id, owner, name, ds.Rows)
	if err != nil {
		_ = s.store.Delete(owner, name)
		writeErr(w, statusFor(err), err)
		return
	}
	s.rowsProtected.Add(int64(ds.Rows))
	writeJSON(w, http.StatusCreated, fv)
}

func partyOf(v federation.View, owner string) *federation.Party {
	for i := range v.Parties {
		if v.Parties[i].Owner == owner {
			return &v.Parties[i]
		}
	}
	return nil
}

func (s *server) handleFederationWithdraw(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.fedAuth(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	name, err := s.feds.Withdraw(id, owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if err := s.store.Delete(owner, name); err != nil && !errors.Is(err, datastore.ErrNotFound) {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"withdrawn": name})
}

// handleFederationSeal finalizes the federation and schedules the joint
// analysis as a federated-cluster job under the coordinator owner.
func (s *server) handleFederationSeal(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.fedAuth(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	var analysis fedAnalysisSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&analysis); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing analysis spec: %w", err))
		return
	}
	if _, err := buildClusterer(analysis.clusterSpec()); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Cheap pre-check before submitting the job; the authoritative check
	// is the Seal transition below, which a concurrent seal can still
	// lose — then the freshly submitted duplicate job is cancelled.
	v, err := s.feds.Get(id, owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if owner != v.Coordinator {
		writeErr(w, http.StatusForbidden, fmt.Errorf("%w: only %q can seal", federation.ErrNotCoordinator, v.Coordinator))
		return
	}
	raw, err := json.Marshal(fedJobSpec{Federation: id, Analysis: analysis})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	st, err := s.mgr.Submit(v.Coordinator, jobFederatedCluster, raw)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	fv, err := s.feds.Seal(id, owner, st.ID, raw)
	if err != nil {
		_, _ = s.mgr.Cancel(v.Coordinator, st.ID)
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/federations/"+id+"/result")
	writeJSON(w, http.StatusAccepted, fv)
}

// handleFederationResult returns the joint analysis outcome to any
// member. While the job is still running it answers 409 with the job
// status, mirroring /v1/jobs/{id}/result semantics.
func (s *server) handleFederationResult(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.fedAuth(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	v, err := s.feds.Get(id, owner)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	if v.JobID == "" {
		writeErr(w, http.StatusConflict, fmt.Errorf("%w: federation %q is not sealed", federation.ErrState, id))
		return
	}
	res, st, err := s.mgr.Result(v.Coordinator, v.JobID)
	switch {
	case errors.Is(err, jobs.ErrNotTerminal):
		writeJSON(w, http.StatusConflict, map[string]any{"status": st, "error": err.Error()})
		return
	case errors.Is(err, jobs.ErrNotFound),
		err == nil && st.State == jobs.StateCancelled:
		// The joint job did not survive: it was cancelled by a drain, or
		// restarted away, or evicted from finished-job retention before
		// anyone fetched the result. The sealed federation still holds
		// everything needed, so reschedule instead of stranding it.
		st2, rerr := s.rescheduleFederationJob(id, v.Coordinator)
		if rerr != nil {
			writeErr(w, statusFor(rerr), rerr)
			return
		}
		writeJSON(w, http.StatusConflict, map[string]any{
			"status": st2,
			"error":  "joint analysis was rescheduled; poll again",
		})
		return
	case err != nil:
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": st, "result": res})
}

// rescheduleFederationJob resubmits a sealed federation's stored analysis
// and repoints the record at the fresh job. Serialized so concurrent
// result fetches cannot fan one lost job out into several.
func (s *server) rescheduleFederationJob(id, coordinator string) (jobs.Status, error) {
	s.fedResched.Lock()
	defer s.fedResched.Unlock()
	// Another fetch may have rescheduled while this one waited: if the
	// current job exists again, just report its status.
	if v, err := s.feds.Get(id, coordinator); err == nil && v.JobID != "" {
		if st, err := s.mgr.Get(coordinator, v.JobID); err == nil && st.State != jobs.StateCancelled {
			return st, nil
		}
	}
	raw, err := s.feds.SealedAnalysis(id)
	if err != nil {
		return jobs.Status{}, err
	}
	st, err := s.mgr.Submit(coordinator, jobFederatedCluster, raw)
	if err != nil {
		return jobs.Status{}, err
	}
	if _, err := s.feds.Reschedule(id, st.ID); err != nil {
		_, _ = s.mgr.Cancel(coordinator, st.ID)
		return jobs.Status{}, err
	}
	return st, nil
}

// fedResultParty locates one party's rows inside the joint assignment
// vector.
type fedResultParty struct {
	Owner  string `json:"owner"`
	Rows   int    `json:"rows"`
	Offset int    `json:"offset"`
}

// fedOutcome is the federated-cluster job result.
type fedOutcome struct {
	Federation  string           `json:"federation"`
	Algorithm   string           `json:"algorithm"`
	K           int              `json:"k"`
	Parties     []fedResultParty `json:"parties"`
	Assignments []int            `json:"assignments"`
	Inertia     float64          `json:"inertia,omitempty"`
	Iterations  int              `json:"iterations,omitempty"`
	Converged   bool             `json:"converged"`
	Silhouette  *float64         `json:"silhouette,omitempty"`
}

// runFederatedClusterJob merges the sealed federation's protected
// contributions in join order and clusters the union — the central
// miner's workload, executed without any raw data ever reaching it.
func (s *server) runFederatedClusterJob(ctx context.Context, t *jobs.Task) (any, error) {
	var spec fedJobSpec
	if err := json.Unmarshal(t.Spec, &spec); err != nil {
		return nil, err
	}
	parties, err := s.feds.Contributions(spec.Federation)
	if err != nil {
		return nil, err
	}
	if coord, err := s.feds.Coordinator(spec.Federation); err != nil {
		return nil, err
	} else if coord != t.Owner {
		return nil, fmt.Errorf("%w: job owner %q is not the coordinator", federation.ErrNotCoordinator, t.Owner)
	}
	blocks := make([]*matrix.Dense, 0, len(parties))
	outParties := make([]fedResultParty, 0, len(parties))
	offset := 0
	for _, p := range parties {
		ds, err := s.store.Get(p.Owner, p.Dataset)
		if err != nil {
			return nil, fmt.Errorf("contribution %s/%s: %w", p.Owner, p.Dataset, err)
		}
		blocks = append(blocks, ds.Matrix())
		outParties = append(outParties, fedResultParty{Owner: p.Owner, Rows: ds.Rows, Offset: offset})
		offset += ds.Rows
	}
	t.SetProgress(0.1)
	joint, err := multiparty.JoinHorizontal(blocks...)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.SetProgress(0.2)
	c, err := buildClusterer(spec.Analysis.clusterSpec())
	if err != nil {
		return nil, err
	}
	res, err := c.Cluster(joint)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.SetProgress(0.9)
	out := &fedOutcome{
		Federation:  spec.Federation,
		Algorithm:   c.Name(),
		K:           res.K,
		Parties:     outParties,
		Assignments: res.Assignments,
		Inertia:     res.Inertia,
		Iterations:  res.Iterations,
		Converged:   res.Converged,
	}
	if sil, err := quality.Silhouette(joint, res.Assignments, nil); err == nil {
		out.Silhouette = &sil
	}
	return out, nil
}

// storeContribution writes a protected matrix into the datastore as
// owner's named dataset.
func (s *server) storeContribution(owner, name string, attrs []string, released *matrix.Dense) error {
	b, err := datastore.NewBuilder(owner, name, attrs)
	if err != nil {
		return err
	}
	for i := 0; i < released.Rows(); i++ {
		if err := b.Append(released.RawRow(i)); err != nil {
			return err
		}
	}
	ds, err := b.Finish(time.Now())
	if err != nil {
		return err
	}
	return s.store.Put(ds)
}
