package main

// Federation routes — thin adapters over service.FederationService:
//
//	POST   /v1/federations?owner=C                 create (C coordinates)
//	GET    /v1/federations?owner=O                 list O's federations
//	GET    /v1/federations/{id}?owner=O            member view
//	DELETE /v1/federations/{id}?owner=C            coordinator tears down
//	POST   /v1/federations/{id}/join?owner=O       become a member
//	POST   /v1/federations/{id}/contribute?owner=O ingest a partition
//	DELETE /v1/federations/{id}/contribute?owner=O withdraw own partition
//	POST   /v1/federations/{id}/seal?owner=C       finalize + schedule job
//	GET    /v1/federations/{id}/result?owner=O     joint analysis result
//
// The lifecycle, key agreement and joint analysis live in the service
// layer; these handlers only decode, authorize and encode. Create and
// join mint a bearer token for owners the keyring has never seen,
// mirroring dataset uploads.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"ppclust/internal/federation"
	"ppclust/internal/keyring"
	"ppclust/internal/service"
)

// fedClaimOrAuth authenticates an owner that may not exist yet: a known
// owner must present its token; an unknown one is claimed with a freshly
// minted credential whose plaintext is returned (to be set as the
// X-Ppclust-Token response header, its single appearance on the wire).
func (s *server) fedClaimOrAuth(w http.ResponseWriter, r *http.Request) (owner, mintedToken string, ok bool) {
	owner = r.URL.Query().Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, service.Wrap(err))
		return "", "", false
	}
	known, err := s.svc.OwnerKnown(owner)
	if err != nil {
		writeErr(w, err)
		return "", "", false
	}
	if known {
		if err := s.authorize(r, owner); err != nil {
			writeErr(w, err)
			return "", "", false
		}
		return owner, "", true
	}
	tok, err := s.svc.ClaimOwner(owner)
	if err != nil {
		writeErr(w, err)
		return "", "", false
	}
	return owner, tok, true
}

func (s *server) handleFederationCreate(w http.ResponseWriter, r *http.Request) {
	owner, token, ok := s.fedClaimOrAuth(w, r)
	if !ok {
		return
	}
	// The claim (and hence the token the client is about to learn) stands
	// even if the creation fails below, so the credential header is set
	// before the outcome is known — losing it would burn the owner name.
	w.Header().Set("X-Ppclust-Owner", owner)
	if token != "" {
		w.Header().Set("X-Ppclust-Token", token)
	}
	var spec service.CreateFederationSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing federation spec: %w", err)))
		return
	}
	// In ring mode the forwarding layer pre-generates the federation ID
	// (the placement key) and pins it in the Fed-Id header; creating under
	// that ID keeps the record on the node the ID hashes to.
	id := r.Header.Get("X-Ppclust-Fed-Id")
	if id != "" && !federation.ValidID(id) {
		writeErr(w, service.Invalid(fmt.Errorf("malformed federation id %q", id)))
		return
	}
	v, err := s.svc.Federations.CreateWithID(id, owner, spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/federations/"+v.ID)
	writeJSON(w, http.StatusCreated, v)
}

func (s *server) handleFederationList(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Federations.List(owner))
}

func (s *server) handleFederationGet(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	v, err := s.svc.Federations.Get(r.PathValue("id"), owner)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *server) handleFederationDelete(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	leftovers, err := s.svc.Federations.Delete(id, owner)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "leftover_contributions": leftovers})
}

func (s *server) handleFederationJoin(w http.ResponseWriter, r *http.Request) {
	owner, token, ok := s.fedClaimOrAuth(w, r)
	if !ok {
		return
	}
	// As in create: a failed join must not swallow a just-minted token.
	w.Header().Set("X-Ppclust-Owner", owner)
	if token != "" {
		w.Header().Set("X-Ppclust-Token", token)
	}
	v, err := s.svc.Federations.Join(r.PathValue("id"), owner)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleFederationContribute ingests a member's horizontal partition: the
// service fits (coordinator, open federation) or stream-protects (frozen)
// and stores only protected rows.
func (s *server) handleFederationContribute(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	format, err := resolveFormat(r.URL.Query().Get("format"), r.Header)
	if err != nil {
		writeErr(w, service.Invalid(err))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	v, err := s.svc.Federations.Contribute(r.PathValue("id"), owner, newRowReader(format, body))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, v)
}

func (s *server) handleFederationWithdraw(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	name, err := s.svc.Federations.Withdraw(r.PathValue("id"), owner)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"withdrawn": name})
}

// handleFederationSeal finalizes the federation and schedules the joint
// analysis as a federated-cluster job under the coordinator owner.
func (s *server) handleFederationSeal(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	var analysis service.FedAnalysisSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&analysis); err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, service.Invalid(fmt.Errorf("parsing analysis spec: %w", err)))
		return
	}
	v, err := s.svc.Federations.Seal(r.Context(), id, owner, analysis)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/federations/"+id+"/result")
	writeJSON(w, http.StatusAccepted, v)
}

// handleFederationResult returns the joint analysis outcome to any
// member. While the job is still running (or was just rescheduled after a
// drain) it answers 409 carrying the live job status next to the error
// envelope, mirroring /v1/jobs/{id}/result semantics.
func (s *server) handleFederationResult(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	res, st, err := s.svc.Federations.Result(r.PathValue("id"), owner)
	if err != nil {
		if st.ID != "" {
			writeErrWith(w, err, map[string]any{"status": st})
			return
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": st, "result": res})
}
