package main

// Observability acceptance: trace propagation across a 3-node ring,
// Prometheus text-format conformance of GET /metrics, trace-carrying job
// status over the client SDK, readiness semantics, and trace-ID
// sanitization at the edge.

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ppclust/internal/obs"
	"ppclust/ppclient"
)

// syncBuf is a concurrency-safe log sink for test servers.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRingTracePropagation pins a client-chosen trace ID on a request
// that enters the ring through a non-owner node, and asserts the same ID
// is (a) reflected in the response header, (b) access-logged on both the
// entry node and the owning node, and (c) attached to span trees on both
// sides of the forward hop — the entry node recording the ring.forward
// span, the owner recording the ingest.
func TestRingTracePropagation(t *testing.T) {
	nodes := startRing(t, 3, 1, "")
	logs := map[string]*syncBuf{}
	for _, nd := range nodes {
		buf := &syncBuf{}
		logs[nd.id] = buf
		nd.s.logger = obs.NewLogger(buf, slog.LevelInfo, slog.String("node", nd.id))
		nd.s.slowLog = time.Nanosecond // every request dumps its span tree
		nd.rt.logger = nd.s.logger
	}

	owner := ownerHomedOn(t, nodes, "n1", 0)
	entry := entryAvoiding(t, nodes, owner)
	home := nodeByID(t, nodes, "n1")
	const trace = "trace-e2e-0001"

	csv, _ := testCSV(t, 40, 7)
	req, err := http.NewRequest(http.MethodPost,
		entry.addr+"/v1/datasets?owner="+owner+"&name=d1", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set(ppclient.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload via %s: status %d", entry.id, resp.StatusCode)
	}
	if got := resp.Header.Get(ppclient.TraceHeader); got != trace {
		t.Fatalf("response trace header = %q, want %q", got, trace)
	}

	// The access log is written in a deferred wrapper that may complete
	// after the client sees the response; poll.
	waitUntil(t, 3*time.Second, "trace in both nodes' logs", func() bool {
		return strings.Contains(logs[entry.id].String(), trace) &&
			strings.Contains(logs[home.id].String(), trace)
	})
	if got := logs[entry.id].String(); !strings.Contains(got, "ring.forward") {
		t.Fatalf("entry node %s span dump has no ring.forward span:\n%s", entry.id, got)
	}
	if got := logs[home.id].String(); !strings.Contains(got, "ingest") {
		t.Fatalf("home node span dump has no ingest span:\n%s", got)
	}
	// Both nodes adopted the one ID: stitching the cross-node request is
	// a grep, which is the contract.
	for id, buf := range logs {
		if id != entry.id && id != home.id && strings.Contains(buf.String(), trace) {
			t.Fatalf("bystander node %s saw trace %s:\n%s", id, trace, buf.String())
		}
	}
}

// TestJobTraceAndTimeline pins a trace ID on a job submission and checks
// the finished job's status carries that ID plus a per-stage timeline.
func TestJobTraceAndTimeline(t *testing.T) {
	ts, _ := newTestServer(t)
	cl := ppclient.New(ts.URL, "tracejobs")
	csv, _ := testCSV(t, 60, 3)
	ctx := ppclient.WithTraceID(context.Background(), "trace-job-0001")
	if _, err := cl.UploadDatasetCSV(ctx, "d", strings.NewReader(csv), false); err != nil {
		t.Fatal(err)
	}
	st, err := cl.SubmitJob(ctx, map[string]any{"type": "cluster", "dataset": "d", "k": 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != "trace-job-0001" {
		t.Fatalf("submitted job trace = %q, want trace-job-0001", st.TraceID)
	}
	done, err := cl.WaitJob(context.Background(), st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.TraceID != "trace-job-0001" {
		t.Fatalf("finished job trace = %q, want trace-job-0001", done.TraceID)
	}
	if len(done.Timeline) == 0 {
		t.Fatal("finished job has no timeline")
	}
	if done.Timeline[0].Stage != "queued" || done.Timeline[1].Stage != "running" {
		t.Fatalf("timeline starts %q,%q, want queued,running", done.Timeline[0].Stage, done.Timeline[1].Stage)
	}
}

// promLine matches "name{labels} value" and "name value" sample lines.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

// TestPromMetricsEndpoint checks the scrape surface end to end: content
// type, a # TYPE line preceding every family, parseable sample lines,
// and histogram buckets in ascending numeric order with +Inf last and
// _sum/_count present.
func TestPromMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// Generate some traffic so route counters and latency histograms exist.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.PromContentType)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	typed := map[string]string{} // family → kind
	buckets := map[string][]float64{}
	sawInfLast := map[string]bool{}
	sums := map[string]bool{}
	counts := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparseable sample %q", ln+1, line)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, line)
		}
		if typed[base] == "histogram" {
			series := base + m[2] // one bucket ordering per label set
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le := leBound(t, m[2])
				if sawInfLast[series] {
					t.Fatalf("line %d: bucket after +Inf in %q", ln+1, line)
				}
				if prev := buckets[base]; len(prev) > 0 && le <= prev[len(prev)-1] {
					t.Fatalf("line %d: bucket bound %g not ascending in %s", ln+1, le, base)
				}
				buckets[base] = append(buckets[base], le)
				if le == infBound {
					sawInfLast[series] = true
					buckets[base] = nil // next label set starts over
				}
			case strings.HasSuffix(name, "_sum"):
				sums[base] = true
			case strings.HasSuffix(name, "_count"):
				counts[base] = true
			}
		}
	}
	if typed["http_requests_total"] != "counter" {
		t.Fatalf("http_requests_total typed %q, want counter", typed["http_requests_total"])
	}
	if typed["http_request_duration_us"] != "histogram" {
		t.Fatalf("http_request_duration_us typed %q, want histogram", typed["http_request_duration_us"])
	}
	if !sums["http_request_duration_us"] || !counts["http_request_duration_us"] {
		t.Fatal("histogram family missing _sum or _count series")
	}
	if !strings.Contains(text, `route="GET /healthz"`) {
		t.Fatalf("no healthz route series in exposition:\n%s", text)
	}
}

var infBound = math.Inf(1)

func leBound(t *testing.T, labels string) float64 {
	t.Helper()
	i := strings.LastIndex(labels, `le="`)
	if i < 0 {
		t.Fatalf("bucket labels %q carry no le", labels)
	}
	rest := labels[i+4:]
	j := strings.IndexByte(rest, '"')
	if rest[:j] == "+Inf" {
		return infBound
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		t.Fatalf("bucket bound %q: %v", rest[:j], err)
	}
	return v
}

// TestReadyz pins the readiness semantics: 200 when up, 503 "draining"
// the moment shutdown starts, 503 "starting" before startup completes —
// while /healthz stays 200 throughout (liveness is not routability).
func TestReadyz(t *testing.T) {
	ts, s := newTestServer(t)
	check := func(wantStatus int, wantBody string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus || !strings.Contains(body.String(), wantBody) {
			t.Fatalf("readyz = %d %q, want %d containing %q", resp.StatusCode, body.String(), wantStatus, wantBody)
		}
		live, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		live.Body.Close()
		if live.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d during readiness transition, want 200", live.StatusCode)
		}
	}
	check(http.StatusOK, "ready")
	s.ready.Store(false)
	check(http.StatusServiceUnavailable, "starting")
	s.ready.Store(true)
	s.draining.Store(true)
	check(http.StatusServiceUnavailable, "draining")
}

// TestTraceIDSanitized: a hostile or malformed inbound trace ID is
// replaced with a minted one, never echoed back (it would land verbatim
// in logs and headers otherwise).
func TestTraceIDSanitized(t *testing.T) {
	ts, _ := newTestServer(t)
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, bad := range []string{`x`, `evil"} {injected`, strings.Repeat("a", 65), "with space"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ppclient.TraceHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(ppclient.TraceHeader)
		if got == bad || !hexID.MatchString(got) {
			t.Fatalf("trace %q came back as %q, want a fresh 16-hex ID", bad, got)
		}
	}
	// A well-formed ID is adopted verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set(ppclient.TraceHeader, "deadbeefcafef00d")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(ppclient.TraceHeader); got != "deadbeefcafef00d" {
		t.Fatalf("valid trace ID not adopted: got %q", got)
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions above change
