package main

// ppscope benchmarks, archived by CI as BENCH_ppscope.json:
//
//   - BenchmarkTraceStore: the served stream-protect path with the trace
//     store disabled vs enabled at the default 10% sampling — the pair
//     that proves retention costs <5% on the hot path;
//   - BenchmarkClusterScrape: GET /v1/cluster/metrics on a live 3-node
//     ring (concurrent peer scrapes + merge).

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
)

func benchmarkProtectPath(b *testing.B, storeOn bool) {
	mgr := jobs.New(jobs.Config{Workers: 2})
	defer mgr.Close()
	s := newServer(engine.New(0, 0), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory())
	if storeOn {
		if err := s.setupScope(scopeConfig{TraceSample: 0.1}); err != nil {
			b.Fatal(err)
		}
	} else {
		s.traces = nil
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	fitCSV := benchCSV(b, 300)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/protect?owner=bench", bytes.NewReader([]byte(fitCSV)))
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("fit: %d", resp.StatusCode)
	}
	tok := resp.Header.Get("X-Ppclust-Token")

	body := []byte(benchCSV(b, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/protect?owner=bench&mode=stream", bytes.NewReader(body))
		req.Header.Set("Content-Type", "text/csv")
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("stream protect: %d", resp.StatusCode)
		}
	}
}

func BenchmarkTraceStore(b *testing.B) {
	b.Run("store=off", func(b *testing.B) { benchmarkProtectPath(b, false) })
	b.Run("store=on", func(b *testing.B) { benchmarkProtectPath(b, true) })
}

func BenchmarkClusterScrape(b *testing.B) {
	nodes := startRing(b, 3, 1, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(nodes[i%len(nodes)].addr + "/v1/cluster/metrics")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("cluster metrics: %d", resp.StatusCode)
		}
	}
}
