package main

// Integration tests for the tune job type: the PR's acceptance criteria
// driven over real HTTP through the ppclient SDK — frontier
// non-domination, the paper's pure-RBT bound, the security-floor
// recommendation, prompt cancellation of a running sweep, and the tune
// metrics counters.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"ppclust/internal/dataset"
	"ppclust/internal/jobs"
	"ppclust/ppclient"
)

// gaussianCSV renders an unlabeled Gaussian-mixture dataset.
func gaussianCSV(t *testing.T, m, k int, seed int64) string {
	t.Helper()
	ds, err := dataset.WellSeparatedBlobs(m, k, 4, 10, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	ds.Labels = nil
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// tuneDominates mirrors the tuning package's dominance relation on the
// SDK's wire type, so the acceptance check is independent of the server's
// own frontier code.
func tuneDominates(p, q ppclient.TunePoint) bool {
	if p.Misclassification > q.Misclassification ||
		p.MinSecurity < q.MinSecurity ||
		p.ReidentRate > q.ReidentRate {
		return false
	}
	return p.Misclassification < q.Misclassification ||
		p.MinSecurity > q.MinSecurity ||
		p.ReidentRate < q.ReidentRate
}

// TestTuneJobAcceptance: a tune job over a Gaussian-mixture dataset
// returns a non-empty Pareto frontier with no dominated point; the
// recommended point satisfies the submitted Sec constraint; and the
// pure-RBT candidate reproduces the paper's bound (misclassification 0
// against the plaintext clustering) while scoring higher Sec than the
// weakest noise candidate.
func TestTuneJobAcceptance(t *testing.T) {
	ts, srv := newJobsServer(t)
	ctx := context.Background()

	cl := ppclient.New(ts.URL, "tuner")
	cl.PollInterval = 5 * time.Millisecond
	if _, err := cl.UploadDatasetCSV(ctx, "mixture", bytes.NewReader([]byte(gaussianCSV(t, 300, 3, 11))), false); err != nil {
		t.Fatal(err)
	}
	if cl.Token == "" {
		t.Fatal("upload minted no token")
	}

	const minSec = 0.3
	st, err := cl.SubmitTune(ctx, "mixture", ppclient.TuneSpec{
		Algorithm:  "kmeans",
		K:          3,
		Mechanisms: []string{"rbt", "additive", "multiplicative", "hybrid"},
		Rhos:       []float64{0.2, 0.4},
		Sigmas:     []float64{0.05, 0.3},
		Seed:       7,
		MinSec:     minSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.TuneResult(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}

	// 2 rbt + 2 additive + 2 multiplicative + 4 hybrid candidates.
	if res.Evaluated != 10 {
		t.Fatalf("evaluated %d candidates, want 10", res.Evaluated)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i, p := range res.Frontier {
		if p.Err != "" {
			t.Fatalf("failed point on frontier: %+v", p)
		}
		for j, q := range res.Frontier {
			if i != j && tuneDominates(q, p) {
				t.Fatalf("frontier point %s is dominated by %s", p.Describe, q.Describe)
			}
		}
	}

	if res.Recommended == nil {
		t.Fatalf("no recommended point: %s", res.RecommendNote)
	}
	if res.Recommended.MinSecurity < minSec {
		t.Fatalf("recommended %s has Sec %g < constraint %g",
			res.Recommended.Describe, res.Recommended.MinSecurity, minSec)
	}

	rbtSeen, noiseSeen := false, false
	var rbtWeakestSec, noiseWeakestSec float64
	for _, p := range res.Points {
		if p.Err != "" {
			continue
		}
		switch p.Mechanism {
		case "rbt":
			if p.Misclassification != 0 || p.FMeasure != 1 {
				t.Fatalf("pure RBT %s: misclassification %g, f-measure %g — Corollary 1 wants 0 and 1",
					p.Describe, p.Misclassification, p.FMeasure)
			}
			if !rbtSeen || p.MinSecurity < rbtWeakestSec {
				rbtWeakestSec = p.MinSecurity
			}
			rbtSeen = true
		case "additive", "multiplicative":
			if !noiseSeen || p.MinSecurity < noiseWeakestSec {
				noiseWeakestSec = p.MinSecurity
			}
			noiseSeen = true
		}
	}
	if !rbtSeen || !noiseSeen {
		t.Fatalf("sweep missing mechanism families: rbt=%v noise=%v", rbtSeen, noiseSeen)
	}
	if rbtWeakestSec <= noiseWeakestSec {
		t.Fatalf("rbt Sec %g should beat the weakest noise candidate's %g", rbtWeakestSec, noiseWeakestSec)
	}

	// The tune counters surfaced at /v1/metrics.
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if metrics["tune_candidates_evaluated_total"] != 10 {
		t.Fatalf("tune_candidates_evaluated_total = %d, want 10", metrics["tune_candidates_evaluated_total"])
	}
	if _, ok := metrics[`http_request_duration_us_count{route="POST /v1/jobs"}`]; !ok {
		t.Fatalf("no request-latency histogram in metrics: %v", metrics)
	}
	_ = srv
}

// TestTuneJobCancellation: deleting a running tune job stops candidate
// evaluation promptly and the job lands in state cancelled.
func TestTuneJobCancellation(t *testing.T) {
	ts, _ := newJobsServer(t)
	ctx := context.Background()

	cl := ppclient.New(ts.URL, "canceller")
	cl.PollInterval = 2 * time.Millisecond
	if _, err := cl.UploadDatasetCSV(ctx, "big", bytes.NewReader([]byte(gaussianCSV(t, 2500, 3, 5))), false); err != nil {
		t.Fatal(err)
	}
	// A deliberately wide hybrid grid: far more work than a test should
	// ever wait out, so finishing before the cancel would itself fail the
	// deadline below.
	st, err := cl.SubmitTune(ctx, "big", ppclient.TuneSpec{
		Algorithm: "kmeans",
		K:         3,
		Rhos:      []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45},
		Sigmas:    []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4},
		Refine:    2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the sweep is actually running, then cancel it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		js, err := cl.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.State == string(jobs.StateRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", js.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelled := time.Now()
	if _, err := cl.CancelJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitJob(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != string(jobs.StateCancelled) {
		t.Fatalf("final state = %s (%s), want cancelled", final.State, final.Error)
	}
	if waited := time.Since(cancelled); waited > 15*time.Second {
		t.Fatalf("cancellation took %v", waited)
	}
	// A cancelled job has no result; the route says 200 with the status
	// carrying the story.
	if _, err := cl.JobResult(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTuneSpecValidation: sweep-spec failures surface synchronously as
// 400s at submission, not inside a worker.
func TestTuneSpecValidation(t *testing.T) {
	ts, _ := newJobsServer(t)
	csvBody := gaussianCSV(t, 60, 3, 2)
	_, tok := uploadDataset(t, ts, "val", "d", "", "", csvBody)

	bad := []map[string]any{
		{"type": "tune", "dataset": "d"},                                                           // kmeans needs k
		{"type": "tune", "dataset": "d", "k": 3, "mechanisms": []string{"swapping"}},               // unknown mechanism
		{"type": "tune", "dataset": "d", "k": 3, "rhos": []float64{2}},                             // rho out of range
		{"type": "tune", "dataset": "d", "k": 3, "sigmas": []float64{-0.5}},                        // bad sigma
		{"type": "tune", "dataset": "d", "k": 3, "known": 2},                                       // under column count
		{"type": "tune", "dataset": "d", "k": 3, "known": 1000},                                    // over row count
		{"type": "tune", "dataset": "d", "k": 3, "refine": 99},                                     // refine cap
		{"type": "tune", "dataset": "d", "k": 3, "min_sec": -1},                                    // negative floor
		{"type": "tune", "dataset": "d", "k": 3, "kmin": 2, "kmax": 5},                             // k-selection is a cluster job
		{"type": "tune", "dataset": "d", "k": 3, "norm": "median"},                                 // unknown norm
		{"type": "tune", "dataset": "missing", "k": 3},                                             // no such dataset (404)
		{"type": "tune", "dataset": "d", "k": 3, "algorithm": "dbscan"},                            // dbscan needs eps/min_pts
		{"type": "tune", "dataset": "d", "k": 3, "algorithm": "kmeans", "rhos": []float64{0, 0.2}}, // zero rho
	}
	for i, spec := range bad {
		raw := mustJSON(t, spec)
		resp, body := postAuth(t, ts.URL+"/v1/jobs?owner=val", tok, raw)
		want := http.StatusBadRequest
		if spec["dataset"] == "missing" {
			want = http.StatusNotFound
		}
		if resp.StatusCode != want {
			t.Fatalf("case %d (%v): status %d, want %d: %s", i, spec, resp.StatusCode, want, body)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
