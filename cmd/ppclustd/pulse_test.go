package main

// pppulse integration tests. The tentpole acceptance runs a real
// 3-node ring with sampling, SLO alerting and the flight recorder on
// every node, breaches an objective on one node, and checks the whole
// pipeline: the alert goes pending→firing and is visible from every
// node's /v1/alerts, the webhook stub receives exactly one (debounced)
// notification, an incident bundle lands on disk with a goroutine dump
// and resolvable trace IDs, and /v1/metrics/history shows the latency
// series over the threshold. The smaller tests cover the local HTTP
// surface: query validation, disabled-plane answers and incident 404s.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppclust/internal/engine"
	"ppclust/internal/keyring"
	"ppclust/internal/obs"
	"ppclust/ppclient"
)

// alertSink is a webhook stub: it records every alert event POSTed to
// it and answers 200.
type alertSink struct {
	mu     sync.Mutex
	events []obs.AlertEvent
	srv    *httptest.Server
}

func newAlertSink(t *testing.T) *alertSink {
	t.Helper()
	sink := &alertSink{}
	sink.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev obs.AlertEvent
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		sink.mu.Lock()
		sink.events = append(sink.events, ev)
		sink.mu.Unlock()
	}))
	t.Cleanup(sink.srv.Close)
	return sink
}

func (s *alertSink) firing() []obs.AlertEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []obs.AlertEvent
	for _, ev := range s.events {
		if ev.State == obs.AlertFiring {
			out = append(out, ev)
		}
	}
	return out
}

// TestRingPulseAlertIncidentFlow is the pppulse acceptance: breach an
// SLO on one node of a 3-node ring and follow the evidence everywhere
// it should land.
func TestRingPulseAlertIncidentFlow(t *testing.T) {
	sink := newAlertSink(t)

	objectives, err := obs.ParseSLO("protect:p99<1ms")
	if err != nil {
		t.Fatal(err)
	}
	ringNodeSetup = func(tb testing.TB, nd *ringTestNode, s *server) {
		s.slo = obs.NewSLOEngine(objectives, time.Minute)
		if err := s.setupPulse(pulseConfig{
			Interval:      50 * time.Millisecond,
			Retention:     time.Minute,
			SLOFor:        600 * time.Millisecond,
			AlertDebounce: 10 * time.Minute, // long: re-notification would break exactly-once
			WebhookURL:    sink.srv.URL,
			IncidentDir:   tb.TempDir(),
			CPUProfileDur: -1, // CPU profiling is process-global; 3 nodes share this process
		}); err != nil {
			tb.Fatalf("setupPulse %s: %v", nd.id, err)
		}
		tb.Cleanup(s.closePulse)
	}
	t.Cleanup(func() { ringNodeSetup = nil })

	nodes := startRing(t, 3, 1, "")

	// Drive protect traffic into the owner's home node only, so exactly
	// one node observes the route and exactly one alert instance exists.
	owner := ownerHomedOn(t, nodes, "n1", 0)
	home := nodeByID(t, nodes, "n1")
	csvBody, _ := testCSV(t, 300, 1)
	_, tok := uploadDataset(t, home.srv, owner, "d", "", "", csvBody)

	// Rates and percentiles are derived from deltas between consecutive
	// samples, so traffic landing entirely before the sampler's first
	// snapshot is baseline, not a step — wait for a sample, then spread
	// the burst across several sampling windows. Few requests after
	// that: the pending window is only SLOFor long, and a longer traffic
	// loop could outlast it.
	waitUntil(t, 5*time.Second, "first pulse sample on n1", func() bool {
		return home.s.localSnapshot()["pulse_samples_total"] >= 1
	})
	for i := 0; i < 10; i++ {
		resp, rel := postAuth(t, home.srv.URL+"/v1/protect?owner="+owner+"&seed=3", tok, csvBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("protect %d: %d %s", i, resp.StatusCode, rel)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The alert must pass through pending before firing: with a 600ms
	// hold over 50ms samples the intermediate state is observable.
	c1 := ppclient.New(home.srv.URL, "watcher")
	sawPending := false
	waitUntil(t, 10*time.Second, "slo alert firing on n1", func() bool {
		list, err := c1.Alerts(t.Context(), false)
		if err != nil {
			return false
		}
		for _, a := range list.Alerts {
			if a.Kind != "slo" {
				continue
			}
			switch a.State {
			case "pending":
				sawPending = true
			case "firing":
				return true
			}
		}
		return false
	})
	if !sawPending {
		t.Error("alert fired without an observable pending state")
	}

	// Cluster scope: every node answers with the firing alert, labelled
	// with the node that evaluated it.
	for _, nd := range nodes {
		c := ppclient.New(nd.srv.URL, "watcher")
		list, err := c.Alerts(t.Context(), true)
		if err != nil {
			t.Fatalf("alerts via %s: %v", nd.id, err)
		}
		if len(list.PeerErrors) != 0 {
			t.Fatalf("alerts via %s: peer errors %v", nd.id, list.PeerErrors)
		}
		found := false
		for _, a := range list.Alerts {
			if a.Kind == "slo" && a.State == "firing" && a.Node == "n1" {
				found = true
			}
		}
		if !found || !list.Enabled || len(list.Nodes) != 3 {
			t.Fatalf("alerts via %s = %+v, want n1's firing slo alert", nd.id, list)
		}
	}

	// Exactly one webhook notification: the firing crossed once, the
	// debounce swallows everything after.
	waitUntil(t, 10*time.Second, "webhook notification", func() bool {
		return len(sink.firing()) >= 1
	})
	time.Sleep(300 * time.Millisecond) // several more samples: a duplicate would land here
	if got := sink.firing(); len(got) != 1 {
		t.Fatalf("webhook got %d firing notifications, want exactly 1: %+v", len(got), got)
	} else if got[0].Node != "n1" || got[0].Kind != "slo" {
		t.Fatalf("webhook event = %+v", got[0])
	}

	// The flight recorder captured one bundle on the firing node, with a
	// goroutine dump and trace IDs that resolve against the trace API.
	var incidents []ppclient.Incident
	waitUntil(t, 10*time.Second, "incident bundle on n1", func() bool {
		enabled, incs, err := c1.Incidents(t.Context())
		if err != nil || !enabled || len(incs) == 0 {
			return false
		}
		incidents = incs
		return true
	})
	inc := incidents[0]
	if !strings.HasPrefix(inc.Rule, "slo:") || inc.Node != "n1" {
		t.Fatalf("incident = %+v", inc)
	}
	hasFile := func(name string) bool {
		for _, f := range inc.Files {
			if f == name {
				return true
			}
		}
		return false
	}
	for _, f := range []string{"meta.json", "goroutines.txt", "traces.json", "history.json"} {
		if !hasFile(f) {
			t.Errorf("incident bundle lacks %s (files: %v, notes: %v)", f, inc.Files, inc.Notes)
		}
	}
	dump, err := c1.IncidentFile(t.Context(), inc.ID, "goroutines.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "goroutine") {
		t.Fatalf("goroutines.txt does not look like a dump: %.120q", dump)
	}
	if len(inc.TraceIDs) == 0 {
		t.Fatal("incident captured no trace IDs")
	}
	if resp, body := getJSON(t, home.srv.URL+"/v1/traces/"+inc.TraceIDs[0], "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("incident trace %s does not resolve: %d %s", inc.TraceIDs[0], resp.StatusCode, body)
	}

	// Metrics history shows the protect latency series over the 1000µs
	// threshold — the evidence an operator would graph.
	hist, err := c1.MetricsHistory(t.Context(), ppclient.HistoryFilter{
		Series: []string{"http_request_duration_us_p99"},
	})
	if err != nil {
		t.Fatal(err)
	}
	over := false
	for _, hs := range hist.Series {
		if !strings.Contains(hs.Name, `route="POST /v1/protect"`) {
			continue
		}
		for _, p := range hs.Points {
			if p.V > 1000 {
				over = true
			}
		}
	}
	if !over {
		t.Fatalf("no p99 point over 1000µs for the protect route in %+v", hist.Series)
	}

	// Cluster-scope history carries node labels from every node.
	cl, err := c1.MetricsHistory(t.Context(), ppclient.HistoryFilter{
		Series:  []string{"http_request_duration_us_p99"},
		Cluster: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Nodes) != 3 || len(cl.PeerErrors) != 0 {
		t.Fatalf("cluster history nodes = %v, errors = %v", cl.Nodes, cl.PeerErrors)
	}
	labelled := false
	for _, hs := range cl.Series {
		if strings.Contains(hs.Name, `node="n1"`) && strings.Contains(hs.Name, `route="POST /v1/protect"`) {
			labelled = true
		}
	}
	if !labelled {
		t.Fatal("cluster history lacks n1's node-labelled protect series")
	}
}

// pulseTestServer is a single-node daemon with the pulse plane up.
func pulseTestServer(t *testing.T, cfg pulseConfig) (*httptest.Server, *server) {
	t.Helper()
	s := newServerWith(t, engine.New(4, 1024), keyring.NewMemory())
	if err := s.setupPulse(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.closePulse)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func TestPulseHistoryQueryValidation(t *testing.T) {
	ts, _ := pulseTestServer(t, pulseConfig{Interval: time.Hour})
	for _, q := range []string{
		"since=nope", "step=0", "step=banana", "agg=median", "max_series=0", "scope=galaxy",
	} {
		resp, body := getJSON(t, ts.URL+"/v1/metrics/history?"+q, "", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d %s, want 400", q, resp.StatusCode, body)
		}
	}
	// A valid query on a quiet node answers with an empty series list.
	var view historyView
	resp, body := getJSON(t, ts.URL+"/v1/metrics/history?series=nothing&since=5m&step=30s&agg=max", "", &view)
	if resp.StatusCode != http.StatusOK || len(view.Series) != 0 {
		t.Fatalf("valid query: %d %s", resp.StatusCode, body)
	}
	if view.IntervalMs != int64(time.Hour/time.Millisecond) {
		t.Errorf("interval_ms = %d", view.IntervalMs)
	}
}

// TestPulseDisabledPlane: a daemon without setupPulse answers the whole
// surface gracefully instead of crashing on nil engines.
func TestPulseDisabledPlane(t *testing.T) {
	ts, _ := newTestServer(t)

	var hist historyView
	if resp, body := getJSON(t, ts.URL+"/v1/metrics/history", "", &hist); resp.StatusCode != http.StatusOK {
		t.Fatalf("history: %d %s", resp.StatusCode, body)
	}
	if len(hist.Series) != 0 {
		t.Fatalf("history on a pulseless daemon = %+v", hist.Series)
	}

	var alerts alertsView
	if resp, body := getJSON(t, ts.URL+"/v1/alerts", "", &alerts); resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts: %d %s", resp.StatusCode, body)
	}
	if alerts.Enabled || len(alerts.Alerts) != 0 {
		t.Fatalf("alerts on a pulseless daemon = %+v", alerts)
	}

	var incs struct {
		Enabled bool `json:"enabled"`
	}
	if resp, body := getJSON(t, ts.URL+"/v1/incidents", "", &incs); resp.StatusCode != http.StatusOK || incs.Enabled {
		t.Fatalf("incidents: %d %s enabled=%v", resp.StatusCode, body, incs.Enabled)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/incidents/any", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("incident get without recorder: %d, want 404", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/incidents/any/files/meta.json", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("incident file without recorder: %d, want 404", resp.StatusCode)
	}
}

// TestPulseIncidentNotFound: a live recorder still 404s cleanly on
// unknown bundles and on path-escape attempts.
func TestPulseIncidentNotFound(t *testing.T) {
	ts, _ := pulseTestServer(t, pulseConfig{
		Interval:    time.Hour,
		IncidentDir: t.TempDir(),
	})
	for _, p := range []string{
		"/v1/incidents/nope",
		"/v1/incidents/nope/files/meta.json",
		"/v1/incidents/" + "%2e%2e" + "/files/meta.json",
	} {
		resp, _ := getJSON(t, ts.URL+p, "", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", p, resp.StatusCode)
		}
	}
}

// TestPulseGaugesExposed: the sampler and alert engine publish their
// own health on the ordinary metrics surface, and the runtime gauges
// ride along.
func TestPulseGaugesExposed(t *testing.T) {
	rules, err := obs.ParseAlertRules("jobs_queued>1000 for 1s")
	if err != nil {
		t.Fatal(err)
	}
	ts, s := pulseTestServer(t, pulseConfig{Interval: 50 * time.Millisecond, AlertRules: rules})
	s.pulse.SampleNow()

	var snap map[string]float64
	if resp, body := getJSON(t, ts.URL+"/v1/metrics", "", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	for _, k := range []string{
		"pulse_series", "pulse_interval_ms", "alerts_firing", "alerts_pending",
		"go_goroutines", "go_heap_alloc_bytes",
	} {
		if _, ok := snap[k]; !ok {
			t.Errorf("metrics snapshot lacks %s", k)
		}
	}
	if snap["pulse_interval_ms"] != 50 {
		t.Errorf("pulse_interval_ms = %g", snap["pulse_interval_ms"])
	}
	if snap["go_goroutines"] <= 0 {
		t.Errorf("go_goroutines = %g", snap["go_goroutines"])
	}
}
