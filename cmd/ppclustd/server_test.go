package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"ppclust/internal/dataset"
	"ppclust/internal/engine"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
)

func newTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	s := newServer(engine.New(4, 1024), keyring.NewMemory())
	s.batchRows = 64 // force multiple batches in stream tests
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func testCSV(t *testing.T, rows, seed int) (string, *matrix.Dense) {
	t.Helper()
	ds, err := dataset.SyntheticPatients(rows, 3, rand.New(rand.NewSource(int64(seed))))
	if err != nil {
		t.Fatal(err)
	}
	ds = ds.DropIDs()
	ds.Labels = nil
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ds.Data
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func parseCSVBody(t *testing.T, body string) *matrix.Dense {
	t.Helper()
	ds, err := dataset.ReadCSV(strings.NewReader(body), dataset.DefaultCSVOptions())
	if err != nil {
		t.Fatalf("parsing response csv: %v\n%s", err, body[:min(len(body), 400)])
	}
	return ds.Data
}

// TestProtectRecoverRoundTripHTTP is the acceptance flow: a CSV protected
// over HTTP and recovered over HTTP must reproduce the original values.
func TestProtectRecoverRoundTripHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	csvBody, orig := testCSV(t, 500, 1)

	resp, rel := post(t, ts.URL+"/v1/protect?owner=alice&rho1=0.3&rho2=0.3&seed=7", csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect: status %d: %s", resp.StatusCode, rel)
	}
	if got := resp.Header.Get("X-Ppclust-Key-Version"); got != "1" {
		t.Fatalf("key version header = %q, want 1", got)
	}
	released := parseCSVBody(t, rel)
	if matrix.EqualApprox(released, orig, 0.5) {
		t.Fatal("released data looks like the original")
	}

	resp, rec := post(t, ts.URL+"/v1/recover?owner=alice", rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: status %d: %s", resp.StatusCode, rec)
	}
	recovered := parseCSVBody(t, rec)
	if !matrix.EqualApprox(recovered, orig, 1e-6) {
		diff, _ := matrix.MaxAbsDiff(recovered, orig)
		t.Fatalf("recovered data diverges from original (max abs diff %g)", diff)
	}
}

// TestProtectStreamMode: after a fit, more records can be protected under
// the frozen key with constant-memory streaming, and recovered again.
func TestProtectStreamMode(t *testing.T) {
	ts, _ := newTestServer(t)
	seedCSV, _ := testCSV(t, 300, 2)
	if resp, body := post(t, ts.URL+"/v1/protect?owner=bob", seedCSV); resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: status %d: %s", resp.StatusCode, body)
	}

	moreCSV, more := testCSV(t, 450, 3) // spans several 64-row batches
	resp, rel := post(t, ts.URL+"/v1/protect?owner=bob&mode=stream", moreCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d: %s", resp.StatusCode, rel)
	}
	released := parseCSVBody(t, rel)
	if released.Rows() != more.Rows() {
		t.Fatalf("stream released %d rows, want %d", released.Rows(), more.Rows())
	}

	resp, rec := post(t, ts.URL+"/v1/recover?owner=bob", rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: status %d: %s", resp.StatusCode, rec)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), more, 1e-6) {
		t.Fatal("stream-protected records did not round-trip")
	}
}

// TestKeyRotationAndVersions: re-protecting rotates the key; old releases
// recover only under their own version.
func TestKeyRotationAndVersions(t *testing.T) {
	ts, _ := newTestServer(t)
	csv1, orig1 := testCSV(t, 120, 4)
	csv2, _ := testCSV(t, 120, 5)

	if resp, _ := post(t, ts.URL+"/v1/protect?owner=carol&seed=1", csv1); resp.Header.Get("X-Ppclust-Key-Version") != "1" {
		t.Fatalf("first protect: version %q", resp.Header.Get("X-Ppclust-Key-Version"))
	}
	resp, rel1 := post(t, ts.URL+"/v1/protect?owner=carol&seed=1", csv1)
	if resp.Header.Get("X-Ppclust-Key-Version") != "2" {
		t.Fatalf("second protect: version %q", resp.Header.Get("X-Ppclust-Key-Version"))
	}
	if resp, _ := post(t, ts.URL+"/v1/protect?owner=carol&seed=99", csv2); resp.Header.Get("X-Ppclust-Key-Version") != "3" {
		t.Fatalf("third protect: version %q", resp.Header.Get("X-Ppclust-Key-Version"))
	}

	// Version 2's release recovers under version=2 but not under the
	// current (different-seed) key.
	resp, rec := post(t, ts.URL+"/v1/recover?owner=carol&version=2", rel1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned recover: status %d: %s", resp.StatusCode, rec)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), orig1, 1e-6) {
		t.Fatal("versioned recover failed")
	}
	_, recWrong := post(t, ts.URL+"/v1/recover?owner=carol", rel1)
	if matrix.EqualApprox(parseCSVBody(t, recWrong), orig1, 1e-3) {
		t.Fatal("recovering under the wrong key version should not restore the data")
	}
}

// TestNDJSONFormat drives protect and recover over the NDJSON codec.
func TestNDJSONFormat(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(6))
	var in bytes.Buffer
	orig := matrix.NewDense(200, 4, nil)
	for i := 0; i < 200; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64() * float64(j+1)
			orig.SetAt(i, j, row[j])
		}
		raw, _ := json.Marshal(row)
		in.Write(raw)
		in.WriteByte('\n')
	}

	resp, err := http.Post(ts.URL+"/v1/protect?owner=dave&format=ndjson", "application/x-ndjson", bytes.NewReader(in.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect ndjson: status %d: %s", resp.StatusCode, rel)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	// Content-Type sniffing should also route to the ndjson reader.
	resp, err = http.Post(ts.URL+"/v1/recover?owner=dave", "application/x-ndjson", bytes.NewReader(rel))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover ndjson: status %d: %s", resp.StatusCode, rec)
	}
	var got []float64
	lines := strings.Split(strings.TrimSpace(string(rec)), "\n")
	if len(lines) != 200 {
		t.Fatalf("recovered %d rows, want 200", len(lines))
	}
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for j, v := range got {
			if math.Abs(v-orig.At(i, j)) > 1e-6 {
				t.Fatalf("row %d col %d: %g vs %g", i, j, v, orig.At(i, j))
			}
		}
	}
}

// TestHealthzAndKeys covers the two GET endpoints.
func TestHealthzAndKeys(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["workers"].(float64) != 4 {
		t.Fatalf("healthz = %v", health)
	}

	csvBody, _ := testCSV(t, 100, 7)
	post(t, ts.URL+"/v1/protect?owner=erin", csvBody)
	post(t, ts.URL+"/v1/protect?owner=erin", csvBody)
	post(t, ts.URL+"/v1/protect?owner=frank", csvBody)

	resp, err = http.Get(ts.URL + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	var infos []keyring.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 || infos[0].Owner != "erin" || infos[0].Versions != 2 || infos[1].Owner != "frank" {
		t.Fatalf("keys = %+v", infos)
	}
	// The listing must never leak secret material.
	raw, _ := json.Marshal(infos)
	if strings.Contains(string(raw), "angles") || strings.Contains(string(raw), "params") {
		t.Fatalf("keys listing leaks secrets: %s", raw)
	}
}

// TestHTTPErrors covers the failure statuses.
func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	csvBody, _ := testCSV(t, 50, 8)
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"missing owner", "/v1/protect", csvBody, http.StatusBadRequest},
		{"bad owner", "/v1/protect?owner=a/b", csvBody, http.StatusBadRequest},
		{"bad format", "/v1/protect?owner=x&format=xml", csvBody, http.StatusBadRequest},
		{"bad mode", "/v1/protect?owner=x&mode=warp", csvBody, http.StatusBadRequest},
		{"bad norm", "/v1/protect?owner=x&norm=fourier", csvBody, http.StatusBadRequest},
		{"bad rho", "/v1/protect?owner=x&rho1=NOPE", csvBody, http.StatusBadRequest},
		{"zero rho", "/v1/protect?owner=x&rho1=0", csvBody, http.StatusBadRequest},
		{"bad seed", "/v1/protect?owner=x&seed=NOPE", csvBody, http.StatusBadRequest},
		{"empty body", "/v1/protect?owner=x", "", http.StatusBadRequest},
		{"junk csv", "/v1/protect?owner=x", "a,b\nnot,numbers\n", http.StatusBadRequest},
		{"unknown owner recover", "/v1/recover?owner=ghost", csvBody, http.StatusNotFound},
		{"unknown owner stream", "/v1/protect?owner=ghost&mode=stream", csvBody, http.StatusNotFound},
		{"bad version", "/v1/recover?owner=ghost&version=x", csvBody, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var e map[string]string
			if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
				t.Fatalf("expected JSON error body, got %q", body)
			}
		})
	}
	// Unknown version of a known owner.
	post(t, ts.URL+"/v1/protect?owner=zed", csvBody)
	if resp, _ := post(t, ts.URL+"/v1/recover?owner=zed&version=9", csvBody); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown version: status %d", resp.StatusCode)
	}
}

// TestFileKeyringSurvivesRestart: protect with one server process, recover
// with a fresh one sharing the keyring file.
func TestFileKeyringSurvivesRestart(t *testing.T) {
	path := t.TempDir() + "/keys.json"
	store1, err := keyring.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newServer(engine.New(2, 512), store1)
	ts1 := httptest.NewServer(s1.handler())
	csvBody, orig := testCSV(t, 150, 9)
	resp, rel := post(t, ts1.URL+"/v1/protect?owner=alice", csvBody)
	ts1.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect: %d", resp.StatusCode)
	}

	store2, err := keyring.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newServer(engine.New(2, 512), store2)
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()
	resp, rec := post(t, ts2.URL+"/v1/recover?owner=alice", rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover after restart: %d: %s", resp.StatusCode, rec)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), orig, 1e-6) {
		t.Fatal("recover after restart diverged")
	}
}

func TestRunRejectsBadKeyringPath(t *testing.T) {
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{broken"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run("127.0.0.1:0", bad, 1, 0, 0, 0); err == nil {
		t.Fatal("expected error for corrupt keyring path")
	}
}
