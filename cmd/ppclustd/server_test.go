package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"ppclust"
	"ppclust/internal/dataset"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
)

// newServerWith assembles a server around the given keyring with fresh
// in-memory stores and a small job pool, cleaned up with the test.
func newServerWith(t *testing.T, eng *engine.Engine, keys keyring.Store) *server {
	t.Helper()
	mgr := jobs.New(jobs.Config{Workers: 2})
	t.Cleanup(mgr.Close)
	return newServer(eng, keys, datastore.NewMemory(), mgr, federation.NewMemory())
}

func newTestServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	s := newServerWith(t, engine.New(4, 1024), keyring.NewMemory())
	s.batchRows = 64 // force multiple batches in stream tests
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func testCSV(t *testing.T, rows, seed int) (string, *matrix.Dense) {
	t.Helper()
	ds, err := dataset.SyntheticPatients(rows, 3, rand.New(rand.NewSource(int64(seed))))
	if err != nil {
		t.Fatal(err)
	}
	ds = ds.DropIDs()
	ds.Labels = nil
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ds.Data
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	return postAuth(t, url, "", body)
}

// postAuth posts body, presenting token as a bearer credential when
// non-empty.
func postAuth(t *testing.T, url, token, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

// token extracts the once-only owner credential from a fit response.
func token(t *testing.T, resp *http.Response) string {
	t.Helper()
	tok := resp.Header.Get("X-Ppclust-Token")
	if tok == "" {
		t.Fatal("fit response carries no X-Ppclust-Token header")
	}
	return tok
}

func parseCSVBody(t *testing.T, body string) *matrix.Dense {
	t.Helper()
	ds, err := dataset.ReadCSV(strings.NewReader(body), dataset.DefaultCSVOptions())
	if err != nil {
		t.Fatalf("parsing response csv: %v\n%s", err, body[:min(len(body), 400)])
	}
	return ds.Data
}

// TestProtectRecoverRoundTripHTTP is the acceptance flow: a CSV protected
// over HTTP and recovered over HTTP must reproduce the original values.
func TestProtectRecoverRoundTripHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	csvBody, orig := testCSV(t, 500, 1)

	resp, rel := post(t, ts.URL+"/v1/protect?owner=alice&rho1=0.3&rho2=0.3&seed=7", csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect: status %d: %s", resp.StatusCode, rel)
	}
	if got := resp.Header.Get("X-Ppclust-Key-Version"); got != "1" {
		t.Fatalf("key version header = %q, want 1", got)
	}
	tok := token(t, resp)
	released := parseCSVBody(t, rel)
	if matrix.EqualApprox(released, orig, 0.5) {
		t.Fatal("released data looks like the original")
	}

	resp, rec := postAuth(t, ts.URL+"/v1/recover?owner=alice", tok, rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: status %d: %s", resp.StatusCode, rec)
	}
	recovered := parseCSVBody(t, rec)
	if !matrix.EqualApprox(recovered, orig, 1e-6) {
		diff, _ := matrix.MaxAbsDiff(recovered, orig)
		t.Fatalf("recovered data diverges from original (max abs diff %g)", diff)
	}
}

// TestProtectStreamMode: after a fit, more records can be protected under
// the frozen key with constant-memory streaming, and recovered again.
func TestProtectStreamMode(t *testing.T) {
	ts, _ := newTestServer(t)
	seedCSV, _ := testCSV(t, 300, 2)
	fitResp, body := post(t, ts.URL+"/v1/protect?owner=bob", seedCSV)
	if fitResp.StatusCode != http.StatusOK {
		t.Fatalf("fit: status %d: %s", fitResp.StatusCode, body)
	}
	tok := token(t, fitResp)

	moreCSV, more := testCSV(t, 450, 3) // spans several 64-row batches
	resp, rel := postAuth(t, ts.URL+"/v1/protect?owner=bob&mode=stream", tok, moreCSV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d: %s", resp.StatusCode, rel)
	}
	released := parseCSVBody(t, rel)
	if released.Rows() != more.Rows() {
		t.Fatalf("stream released %d rows, want %d", released.Rows(), more.Rows())
	}

	resp, rec := postAuth(t, ts.URL+"/v1/recover?owner=bob", tok, rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: status %d: %s", resp.StatusCode, rec)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), more, 1e-6) {
		t.Fatal("stream-protected records did not round-trip")
	}
}

// TestKeyRotationAndVersions: re-protecting rotates the key; old releases
// recover only under their own version.
func TestKeyRotationAndVersions(t *testing.T) {
	ts, _ := newTestServer(t)
	csv1, orig1 := testCSV(t, 120, 4)
	csv2, _ := testCSV(t, 120, 5)

	first, _ := post(t, ts.URL+"/v1/protect?owner=carol&seed=1", csv1)
	if first.Header.Get("X-Ppclust-Key-Version") != "1" {
		t.Fatalf("first protect: version %q", first.Header.Get("X-Ppclust-Key-Version"))
	}
	tok := token(t, first)
	resp, rel1 := postAuth(t, ts.URL+"/v1/protect?owner=carol&seed=1", tok, csv1)
	if resp.Header.Get("X-Ppclust-Key-Version") != "2" {
		t.Fatalf("second protect: version %q", resp.Header.Get("X-Ppclust-Key-Version"))
	}
	if resp.Header.Get("X-Ppclust-Token") != "" {
		t.Fatal("rotation must not mint a fresh token")
	}
	if resp, _ := postAuth(t, ts.URL+"/v1/protect?owner=carol&seed=99", tok, csv2); resp.Header.Get("X-Ppclust-Key-Version") != "3" {
		t.Fatalf("third protect: version %q", resp.Header.Get("X-Ppclust-Key-Version"))
	}

	// Version 2's release recovers under version=2 but not under the
	// current (different-seed) key.
	resp, rec := postAuth(t, ts.URL+"/v1/recover?owner=carol&version=2", tok, rel1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versioned recover: status %d: %s", resp.StatusCode, rec)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), orig1, 1e-6) {
		t.Fatal("versioned recover failed")
	}
	_, recWrong := postAuth(t, ts.URL+"/v1/recover?owner=carol", tok, rel1)
	if matrix.EqualApprox(parseCSVBody(t, recWrong), orig1, 1e-3) {
		t.Fatal("recovering under the wrong key version should not restore the data")
	}
}

// TestNDJSONFormat drives protect and recover over the NDJSON codec.
func TestNDJSONFormat(t *testing.T) {
	ts, _ := newTestServer(t)
	rng := rand.New(rand.NewSource(6))
	var in bytes.Buffer
	orig := matrix.NewDense(200, 4, nil)
	for i := 0; i < 200; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64() * float64(j+1)
			orig.SetAt(i, j, row[j])
		}
		raw, _ := json.Marshal(row)
		in.Write(raw)
		in.WriteByte('\n')
	}

	resp, err := http.Post(ts.URL+"/v1/protect?owner=dave&format=ndjson", "application/x-ndjson", bytes.NewReader(in.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect ndjson: status %d: %s", resp.StatusCode, rel)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	tok := token(t, resp)

	// Content-Type sniffing should also route to the ndjson reader.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/recover?owner=dave", bytes.NewReader(rel))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover ndjson: status %d: %s", resp.StatusCode, rec)
	}
	var got []float64
	lines := strings.Split(strings.TrimSpace(string(rec)), "\n")
	if len(lines) != 200 {
		t.Fatalf("recovered %d rows, want 200", len(lines))
	}
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for j, v := range got {
			if math.Abs(v-orig.At(i, j)) > 1e-6 {
				t.Fatalf("row %d col %d: %g vs %g", i, j, v, orig.At(i, j))
			}
		}
	}
}

// TestHealthzAndKeys covers the two GET endpoints.
func TestHealthzAndKeys(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["workers"].(float64) != 4 {
		t.Fatalf("healthz = %v", health)
	}

	csvBody, _ := testCSV(t, 100, 7)
	resp, _ = post(t, ts.URL+"/v1/protect?owner=erin", csvBody)
	postAuth(t, ts.URL+"/v1/protect?owner=erin", token(t, resp), csvBody)
	post(t, ts.URL+"/v1/protect?owner=frank", csvBody)

	resp, err = http.Get(ts.URL + "/v1/keys")
	if err != nil {
		t.Fatal(err)
	}
	var infos []keyring.Info
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 || infos[0].Owner != "erin" || infos[0].Versions != 2 || infos[1].Owner != "frank" {
		t.Fatalf("keys = %+v", infos)
	}
	// The listing must never leak secret material.
	raw, _ := json.Marshal(infos)
	if strings.Contains(string(raw), "angles") || strings.Contains(string(raw), "params") {
		t.Fatalf("keys listing leaks secrets: %s", raw)
	}
}

// TestHTTPErrors covers the failure statuses.
func TestHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	csvBody, _ := testCSV(t, 50, 8)
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"missing owner", "/v1/protect", csvBody, http.StatusBadRequest},
		{"bad owner", "/v1/protect?owner=a/b", csvBody, http.StatusBadRequest},
		{"bad format", "/v1/protect?owner=x&format=xml", csvBody, http.StatusBadRequest},
		{"bad mode", "/v1/protect?owner=x&mode=warp", csvBody, http.StatusBadRequest},
		{"bad norm", "/v1/protect?owner=x&norm=fourier", csvBody, http.StatusBadRequest},
		{"bad rho", "/v1/protect?owner=x&rho1=NOPE", csvBody, http.StatusBadRequest},
		{"zero rho", "/v1/protect?owner=x&rho1=0", csvBody, http.StatusBadRequest},
		{"bad seed", "/v1/protect?owner=x&seed=NOPE", csvBody, http.StatusBadRequest},
		{"empty body", "/v1/protect?owner=x", "", http.StatusBadRequest},
		{"junk csv", "/v1/protect?owner=x", "a,b\nnot,numbers\n", http.StatusBadRequest},
		{"unknown owner recover", "/v1/recover?owner=ghost", csvBody, http.StatusNotFound},
		{"unknown owner stream", "/v1/protect?owner=ghost&mode=stream", csvBody, http.StatusNotFound},
		{"bad version", "/v1/recover?owner=ghost&version=x", csvBody, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			// Every error crosses the wire in the one shared envelope:
			// {"error": {"code": "...", "message": "..."}}.
			var e struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
				t.Fatalf("expected enveloped JSON error body, got %q", body)
			}
		})
	}
	// Unknown version of a known owner.
	post(t, ts.URL+"/v1/protect?owner=zed", csvBody)
	if resp, _ := post(t, ts.URL+"/v1/recover?owner=zed&version=9", csvBody); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown version: status %d", resp.StatusCode)
	}
}

// TestOwnerAuth: the fit that creates an owner mints a bearer token; every
// later request against that owner must present it. Inversion must never
// be possible for a client that only holds the released data.
func TestOwnerAuth(t *testing.T) {
	keys := keyring.NewMemory()
	srv := newServerWith(t, engine.New(4, 1024), keys)
	srv.batchRows = 64
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	csvBody, _ := testCSV(t, 200, 10)

	fit, rel := post(t, ts.URL+"/v1/protect?owner=alice", csvBody)
	if fit.StatusCode != http.StatusOK {
		t.Fatalf("fit: status %d", fit.StatusCode)
	}
	tok := token(t, fit)

	for name, tc := range map[string]struct {
		url, token string
		want       int
	}{
		"recover without token":    {"/v1/recover?owner=alice", "", http.StatusUnauthorized},
		"recover with wrong token": {"/v1/recover?owner=alice", "deadbeef", http.StatusForbidden},
		"stream without token":     {"/v1/protect?owner=alice&mode=stream", "", http.StatusUnauthorized},
		"rotate without token":     {"/v1/protect?owner=alice", "", http.StatusUnauthorized},
		"recover with token":       {"/v1/recover?owner=alice", tok, http.StatusOK},
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := postAuth(t, ts.URL+tc.url, tc.token, rel)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			if tc.want == http.StatusUnauthorized && resp.Header.Get("WWW-Authenticate") == "" {
				t.Fatal("401 without WWW-Authenticate header")
			}
		})
	}

	// An owner stored without a credential (keyring predating token auth)
	// is refused outright — there is no token that could be presented.
	if _, err := keys.Put("legacy", ppclust.OwnerSecret{
		Key:           ppclust.Key{Pairs: []ppclust.Pair{{I: 0, J: 1}}, AnglesDeg: []float64{30}},
		Normalization: ppclust.ZScore,
		ParamsA:       []float64{0, 0, 0},
		ParamsB:       []float64{1, 1, 1},
	}); err != nil {
		t.Fatal(err)
	}
	if resp, body := postAuth(t, ts.URL+"/v1/recover?owner=legacy", tok, rel); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("credential-less owner: status %d, want 403: %s", resp.StatusCode, body)
	}
}

// TestAuthDisabled: -insecure-no-auth turns enforcement off while tokens
// are still issued (so auth can be enabled later without locking owners
// out).
func TestAuthDisabled(t *testing.T) {
	s := newServerWith(t, engine.New(2, 512), keyring.NewMemory())
	s.authDisabled = true
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	csvBody, _ := testCSV(t, 100, 11)

	resp, rel := post(t, ts.URL+"/v1/protect?owner=open", csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: status %d", resp.StatusCode)
	}
	token(t, resp) // still minted
	if resp, body := post(t, ts.URL+"/v1/recover?owner=open", rel); resp.StatusCode != http.StatusOK {
		t.Fatalf("tokenless recover with auth disabled: status %d: %s", resp.StatusCode, body)
	}
}

// TestFileKeyringSurvivesRestart: protect with one server process, recover
// with a fresh one sharing the keyring file.
func TestFileKeyringSurvivesRestart(t *testing.T) {
	path := t.TempDir() + "/keys.json"
	store1, err := keyring.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newServerWith(t, engine.New(2, 512), store1)
	ts1 := httptest.NewServer(s1.handler())
	csvBody, orig := testCSV(t, 150, 9)
	resp, rel := post(t, ts1.URL+"/v1/protect?owner=alice", csvBody)
	ts1.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect: %d", resp.StatusCode)
	}
	tok := token(t, resp)

	store2, err := keyring.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newServerWith(t, engine.New(2, 512), store2)
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()
	// The token hash persisted with the keyring, so the credential issued
	// by the first process must keep working after a restart.
	resp, rec := postAuth(t, ts2.URL+"/v1/recover?owner=alice", tok, rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover after restart: %d: %s", resp.StatusCode, rec)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), orig, 1e-6) {
		t.Fatal("recover after restart diverged")
	}
}

func TestRunRejectsBadKeyringPath(t *testing.T) {
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{broken"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(options{addr: "127.0.0.1:0", keyringPath: bad, workers: 1}); err == nil {
		t.Fatal("expected error for corrupt keyring path")
	}
}
