package main

// Integration tests for the federation subsystem over real HTTP, driven
// through the ppclient SDK: the 3-party acceptance flow (disjoint
// horizontal partitions, joint clustering equal to the plaintext union),
// owner isolation of contributions, lifecycle and auth edges, and
// drain/restart persistence of unsealed federations.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppclust/internal/cluster"
	"ppclust/internal/dataset"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
	"ppclust/internal/quality"
	"ppclust/internal/service"
	"ppclust/ppclient"
)

// fedTestData builds a well-separated blobs dataset and splits its rows
// into n disjoint interleaved partitions (each containing all clusters, so
// the coordinator's fit is representative). It returns the partitions, the
// union in party-concatenation order, and the matching labels.
func fedTestData(t *testing.T, rows, k, n int, seed int64) (parts [][][]float64, union *matrix.Dense, labels []int, names []string) {
	t.Helper()
	ds, err := dataset.WellSeparatedBlobs(rows, k, 4, 10, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	parts = make([][][]float64, n)
	var unionRows [][]float64
	for p := 0; p < n; p++ {
		for i := p; i < rows; i += n {
			parts[p] = append(parts[p], ds.Data.RawRow(i))
			unionRows = append(unionRows, ds.Data.RawRow(i))
			labels = append(labels, ds.Labels[i])
		}
	}
	return parts, matrix.FromRows(unionRows), labels, ds.Names
}

func fedClient(ts *httptest.Server, owner string) *ppclient.Client {
	return ppclient.New(ts.URL, owner)
}

// TestFederationThreePartyAcceptance is the integration acceptance
// criterion: three parties on one instance federate disjoint horizontal
// partitions of a datagen dataset; the sealed federation's
// federated-cluster result matches clustering the plaintext union
// (misclassification error 0 for well-separated data); and party A gets
// 403 / owner-isolated 404 when touching party B's contribution.
func TestFederationThreePartyAcceptance(t *testing.T) {
	ctx := context.Background()
	ts, _ := newJobsServer(t)
	parts, union, labels, names := fedTestData(t, 240, 3, 3, 11)

	coord := fedClient(ts, "hospital-a")
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{
		Name: "joint-study", Columns: names, Rho1: 0.3, Rho2: 0.3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if coord.Token == "" {
		t.Fatal("create must mint the coordinator's token")
	}
	if fed.State != "open" || fed.Coordinator != "hospital-a" {
		t.Fatalf("created = %+v", fed)
	}

	partyB := fedClient(ts, "hospital-b")
	partyC := fedClient(ts, "hospital-c")
	if _, err := partyB.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := partyC.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if partyB.Token == "" || partyC.Token == "" {
		t.Fatal("join must mint new parties' tokens")
	}

	// A party contributing before the coordinator froze the key is told
	// to wait, with 409.
	if _, err := partyB.Contribute(ctx, fed.ID, names, parts[1]); !ppclient.IsStatus(err, http.StatusConflict) {
		t.Fatalf("pre-freeze contribution: %v", err)
	}

	// The coordinator's contribution fits and freezes the shared key.
	fv, err := coord.Contribute(ctx, fed.ID, names, parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if fv.State != "frozen" || fv.Contributions != 1 || fv.RowsTotal != len(parts[0]) {
		t.Fatalf("after coordinator contribution: %+v", fv)
	}
	// Wrong column count is rejected.
	if _, err := partyB.Contribute(ctx, fed.ID, names[:3], truncCols(parts[1], 3)); !ppclient.IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("narrow contribution: %v", err)
	}
	if _, err := partyB.Contribute(ctx, fed.ID, names, parts[1]); err != nil {
		t.Fatal(err)
	}
	fv, err = partyC.Contribute(ctx, fed.ID, names, parts[2])
	if err != nil {
		t.Fatal(err)
	}
	if fv.Contributions != 3 || fv.RowsTotal != 240 {
		t.Fatalf("after all contributions: %+v", fv)
	}

	// Isolation: party B's contribution is its own dataset. Party A's
	// token against owner=hospital-b is 403; the dataset name inside
	// party A's own namespace was taken by A's contribution, so probe
	// with a party that withdrew: C withdraws, then C's own namespace
	// answers 404 for the name, while B's data stays B-only.
	contribName := "fed." + fed.ID
	if resp, _ := getJSON(t, ts.URL+"/v1/datasets/"+contribName+"/rows?owner=hospital-b", coord.Token, nil); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("A reads B's contribution rows: %d, want 403", resp.StatusCode)
	}
	if resp, _ := deleteReq(t, ts.URL+"/v1/datasets/"+contribName+"?owner=hospital-b", coord.Token); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("A deletes B's contribution: %d, want 403", resp.StatusCode)
	}
	if err := partyC.WithdrawContribution(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/datasets/"+contribName+"?owner=hospital-c", partyC.Token, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("withdrawn contribution still resolves: %d", resp.StatusCode)
	}
	// ...while B can still download its own protected rows via the SDK.
	if _, err := partyC.DownloadDataset(ctx, contribName); err == nil {
		t.Fatal("C downloading a withdrawn contribution must fail")
	}
	if body, err := partyB.DownloadDataset(ctx, contribName); err != nil || len(body) == 0 {
		t.Fatalf("B downloading its own contribution: %v", err)
	}
	if _, err := partyC.Contribute(ctx, fed.ID, names, parts[2]); err != nil {
		t.Fatal(err)
	}

	// A non-member cannot even see the federation: owner-isolated 404.
	stranger := fedClient(ts, "stranger")
	if _, err := stranger.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err) // join first so the owner exists...
	}
	// ...but a *different* federation ID stays invisible.
	if _, err := stranger.Federation(ctx, "f000000000000000000000ff"); !ppclient.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("stranger on unknown federation: %v", err)
	}

	// Non-coordinator seal is 403; result before seal is 409.
	if _, err := partyB.Seal(ctx, fed.ID, ppclient.Analysis{Algorithm: "kmeans", K: 3}); !ppclient.IsStatus(err, http.StatusForbidden) {
		t.Fatalf("party seal: %v", err)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/federations/"+fed.ID+"/result?owner=hospital-b", partyB.Token, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result: %d, want 409", resp.StatusCode)
	}

	sealed, err := coord.Seal(ctx, fed.ID, ppclient.Analysis{Algorithm: "kmeans", K: 3, ClustSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sealed.State != "sealed" || sealed.JobID == "" {
		t.Fatalf("sealed = %+v", sealed)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	res, err := coord.Result(wctx, fed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 240 || res.K != 3 || len(res.Parties) != 3 {
		t.Fatalf("result shape = k=%d parties=%d assignments=%d", res.K, len(res.Parties), len(res.Assignments))
	}

	// The joint clustering over protected contributions matches
	// clustering the plaintext union: misclassification error 0.
	plain, err := (&cluster.KMeans{K: 3, Rand: rand.New(rand.NewSource(5)), Restarts: 4}).Cluster(union)
	if err != nil {
		t.Fatal(err)
	}
	misclass, err := quality.MisclassificationError(plain.Assignments, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if misclass != 0 {
		t.Fatalf("federated vs plaintext union misclassification = %g, want 0", misclass)
	}
	// And both recover the ground truth exactly on well-separated blobs.
	vsTruth, err := quality.MisclassificationError(labels, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if vsTruth != 0 {
		t.Fatalf("federated vs ground truth misclassification = %g, want 0", vsTruth)
	}

	// Every member can read the result; the coordinator's job also shows
	// up under its own jobs listing as federated-cluster.
	if resp, body := getJSON(t, ts.URL+"/v1/federations/"+fed.ID+"/result?owner=hospital-b", partyB.Token, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("member result fetch: %d: %s", resp.StatusCode, body)
	}
	var jlist []jobs.Status
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs?owner=hospital-a", coord.Token, &jlist); resp.StatusCode != http.StatusOK || len(jlist) != 1 || jlist[0].Type != "federated-cluster" {
		t.Fatalf("coordinator job list = %+v", jlist)
	}
}

// truncCols narrows rows to their first n values.
func truncCols(rows [][]float64, n int) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = r[:n]
	}
	return out
}

// TestFederationSurvivesRestart is the drain/restart acceptance
// criterion: an unsealed federation persisted under -data-dir resumes
// with the same ID, joined parties and contributions after the daemon's
// stores are reopened, and can then run to completion.
func TestFederationSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	keysPath := filepath.Join(dir, "keys.json")
	dataDir := filepath.Join(dir, "data")
	fedDir := filepath.Join(dataDir, "_federations")

	boot := func() (*httptest.Server, *jobs.Manager) {
		keys, err := keyring.OpenFile(keysPath)
		if err != nil {
			t.Fatal(err)
		}
		store, err := datastore.OpenDir(dataDir)
		if err != nil {
			t.Fatal(err)
		}
		feds, err := federation.Open(fedDir)
		if err != nil {
			t.Fatal(err)
		}
		mgr := jobs.New(jobs.Config{Workers: 2})
		s := newServer(engine.New(2, 1024), keys, store, mgr, feds)
		ts := httptest.NewServer(s.handler())
		return ts, mgr
	}

	parts, _, _, names := fedTestData(t, 90, 3, 3, 23)
	ts1, mgr1 := boot()
	coord := fedClient(ts1, "alpha")
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{Name: "resume", Columns: names, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	partyB := fedClient(ts1, "beta")
	if _, err := partyB.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Contribute(ctx, fed.ID, names, parts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := partyB.Contribute(ctx, fed.ID, names, parts[1]); err != nil {
		t.Fatal(err)
	}
	// SIGTERM-style shutdown: drain jobs, stop serving.
	mgr1.Close()
	ts1.Close()

	ts2, mgr2 := boot()
	defer mgr2.Close()
	defer ts2.Close()
	coord2 := fedClient(ts2, "alpha")
	coord2.Token = coord.Token
	got, err := coord2.Federation(ctx, fed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != fed.ID || got.State != "frozen" || len(got.Parties) != 2 || got.Contributions != 2 || got.RowsTotal != 60 {
		t.Fatalf("restored federation = %+v", got)
	}

	// The restored federation continues: a third party joins with a fresh
	// credential, contributes under the *same* frozen key, and the seal +
	// joint analysis completes.
	partyC := fedClient(ts2, "gamma")
	if _, err := partyC.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := partyC.Contribute(ctx, fed.ID, names, parts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := coord2.Seal(ctx, fed.ID, ppclient.Analysis{Algorithm: "kmeans", K: 3, ClustSeed: 1}); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	res, err := coord2.Result(wctx, fed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 90 {
		t.Fatalf("assignments = %d, want 90", len(res.Assignments))
	}
}

// TestFederationAuthEdges: tokenless and wrong-token access to federation
// routes, the 404 for unknown owners, and the two-contribution floor on
// seal.
func TestFederationAuthEdges(t *testing.T) {
	ctx := context.Background()
	ts, _ := newJobsServer(t)
	parts, _, _, names := fedTestData(t, 60, 2, 2, 31)

	coord := fedClient(ts, "org-a")
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{Name: "edges", Columns: names, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Known owner without token: 401 with a challenge.
	bare := fedClient(ts, "org-a")
	if _, err := bare.Federation(ctx, fed.ID); !ppclient.IsStatus(err, http.StatusUnauthorized) {
		t.Fatalf("tokenless get: %v", err)
	}
	// Wrong token (another owner's): 403.
	other := fedClient(ts, "org-b")
	if _, err := other.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	impostor := fedClient(ts, "org-a")
	impostor.Token = other.Token
	if _, err := impostor.Federation(ctx, fed.ID); !ppclient.IsStatus(err, http.StatusForbidden) {
		t.Fatalf("wrong-token get: %v", err)
	}
	// Unknown owner on a member route: 404.
	ghost := fedClient(ts, "ghost")
	ghost.Token = other.Token
	if _, err := ghost.Federation(ctx, fed.ID); !ppclient.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown owner: %v", err)
	}
	// Duplicate join: 409.
	if _, err := other.JoinFederation(ctx, fed.ID); !ppclient.IsStatus(err, http.StatusConflict) {
		t.Fatalf("duplicate join: %v", err)
	}

	// Seal below the two-contribution floor: 409 even for the
	// coordinator, in both open and frozen states.
	if _, err := coord.Seal(ctx, fed.ID, ppclient.Analysis{K: 2}); !ppclient.IsStatus(err, http.StatusConflict) {
		t.Fatalf("seal while open: %v", err)
	}
	if _, err := coord.Contribute(ctx, fed.ID, names, parts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Seal(ctx, fed.ID, ppclient.Analysis{K: 2}); !ppclient.IsStatus(err, http.StatusConflict) {
		t.Fatalf("seal with one contribution: %v", err)
	}
	// Bad analysis spec: 400.
	if _, err := other.Contribute(ctx, fed.ID, names, parts[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Seal(ctx, fed.ID, ppclient.Analysis{Algorithm: "quantum"}); !ppclient.IsStatus(err, http.StatusBadRequest) {
		t.Fatalf("bad algorithm: %v", err)
	}

	// Deleting the federation removes the contributions with it.
	if err := coord.DeleteFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/datasets/fed."+fed.ID+"?owner=org-a", coord.Token, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("contribution survived federation delete: %d", resp.StatusCode)
	}
	if _, err := coord.Federation(ctx, fed.ID); !ppclient.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("deleted federation still resolves: %v", err)
	}
}

// TestFederationMetrics: the per-federation gauges surface on
// /v1/metrics without leaking the federation ID (the join capability).
func TestFederationMetrics(t *testing.T) {
	ctx := context.Background()
	ts, _ := newJobsServer(t)
	parts, _, _, names := fedTestData(t, 40, 2, 2, 41)
	coord := fedClient(ts, "m-a")
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{Name: "metrics", Columns: names, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Contribute(ctx, fed.ID, names, parts[0]); err != nil {
		t.Fatal(err)
	}

	var snap map[string]int64
	if resp, body := getJSON(t, ts.URL+"/v1/metrics", "", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d: %s", resp.StatusCode, body)
	}
	if snap["federations_total"] != 1 || snap["federations_frozen"] != 1 {
		t.Fatalf("federation totals = %v", snap)
	}
	if snap["federation_rows_total"] != int64(len(parts[0])) {
		t.Fatalf("federation_rows_total = %d", snap["federation_rows_total"])
	}
	label := service.FedMetricLabel(fed.ID)
	if snap[fmt.Sprintf(`federation_parties{fed=%q}`, label)] != 1 {
		t.Fatalf("per-federation gauge missing: %v", snap)
	}
	for k := range snap {
		if strings.Contains(k, fed.ID) {
			t.Fatalf("metrics leak the federation ID in %q", k)
		}
	}
}

// TestFederationLostJobReschedule: a sealed federation whose joint job no
// longer exists (here: evicted by a retention of 1) transparently
// reschedules the stored analysis on the next result fetch instead of
// answering 404 forever.
func TestFederationLostJobReschedule(t *testing.T) {
	ctx := context.Background()
	mgr := jobs.New(jobs.Config{Workers: 2, Retention: 1})
	t.Cleanup(mgr.Close)
	s := newServer(engine.New(2, 1024), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory())
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)

	parts, _, _, names := fedTestData(t, 60, 2, 2, 51)
	coord := fedClient(ts, "org-a")
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{Name: "lost", Columns: names, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	partyB := fedClient(ts, "org-b")
	if _, err := partyB.JoinFederation(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Contribute(ctx, fed.ID, names, parts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := partyB.Contribute(ctx, fed.ID, names, parts[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Seal(ctx, fed.ID, ppclient.Analysis{Algorithm: "kmeans", K: 2, ClustSeed: 3}); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := coord.Result(wctx, fed.ID); err != nil {
		t.Fatal(err)
	}

	// Evict the finished federated-cluster job: with retention 1, the
	// next finished job for the coordinator pushes it out. The
	// coordinator's own contribution dataset serves as input.
	st := submitJob(t, ts, "org-a", coord.Token, map[string]any{
		"type": "cluster", "dataset": "fed." + fed.ID, "k": 2,
	})
	waitJob(t, ts, "org-a", coord.Token, st.ID)

	// The original job ID is gone; the result route reschedules and a
	// poll completes against the fresh job.
	res, err := coord.Result(wctx, fed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 60 || res.K != 2 {
		t.Fatalf("rescheduled result = k=%d assignments=%d", res.K, len(res.Assignments))
	}
	// The federation now points at a different job than the one sealed.
	got, err := coord.Federation(ctx, fed.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID == "" || got.State != "sealed" {
		t.Fatalf("after reschedule = %+v", got)
	}
}

// TestFederationReservedDatasetNamespace: the fed. dataset prefix cannot
// be created, deleted or targeted by protect jobs through the ordinary
// dataset routes — only the federation routes manage contributions.
func TestFederationReservedDatasetNamespace(t *testing.T) {
	ctx := context.Background()
	ts, _ := newJobsServer(t)
	parts, _, _, names := fedTestData(t, 40, 2, 2, 61)
	coord := fedClient(ts, "res-a")
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{Name: "res", Columns: names, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Contribute(ctx, fed.ID, names, parts[0]); err != nil {
		t.Fatal(err)
	}
	contrib := "fed." + fed.ID

	// Upload into the reserved namespace: 400.
	if resp, body := postAuth(t, ts.URL+"/v1/datasets?owner=res-a&name=fed.something", coord.Token, blobsCSV(t, 20, 2, 1)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved upload: %d: %s", resp.StatusCode, body)
	}
	// Direct delete of a contribution: 409 pointing at the withdraw route.
	if resp, body := deleteReq(t, ts.URL+"/v1/datasets/"+contrib+"?owner=res-a", coord.Token); resp.StatusCode != http.StatusConflict {
		t.Fatalf("reserved delete: %d: %s", resp.StatusCode, body)
	}
	// Protect job writing into the reserved namespace: 400.
	if resp, body := postAuth(t, ts.URL+"/v1/jobs?owner=res-a", coord.Token,
		`{"type":"protect","dataset":"`+contrib+`","dest":"fed.shadow"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved protect dest: %d: %s", resp.StatusCode, body)
	}
	// Reading a contribution through the dataset routes stays allowed.
	if _, err := coord.DownloadDataset(ctx, contrib); err != nil {
		t.Fatal(err)
	}
	// Withdraw through the federation route still works and removes it.
	if err := coord.WithdrawContribution(ctx, fed.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.DownloadDataset(ctx, contrib); !ppclient.IsStatus(err, http.StatusNotFound) {
		t.Fatalf("withdrawn contribution: %v", err)
	}
}
