package main

// Async analytics job routes — thin adapters over service.JobService:
//
//	POST   /v1/jobs?owner=O              submit {type, dataset, ...} (202)
//	GET    /v1/jobs?owner=O              list owner's jobs
//	GET    /v1/jobs/{id}?owner=O         status + progress
//	DELETE /v1/jobs/{id}?owner=O         cancel (queued or running)
//	GET    /v1/jobs/{id}/result?owner=O  result of a finished job
//
// Job types (validated and executed by the service layer): protect,
// cluster, evaluate, audit, tune — plus federated-cluster, which only a
// federation seal schedules. All routes authorize against the owner's
// bearer token; jobs are owner-isolated (a foreign job ID is
// indistinguishable from an absent one).

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ppclust/internal/service"
)

func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	var spec service.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, service.Invalid(fmt.Errorf("parsing job spec: %w", err)))
		return
	}
	st, err := s.svc.Jobs.Submit(r.Context(), owner, &spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Jobs.List(owner))
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	st, err := s.svc.Jobs.Get(owner, r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	st, err := s.svc.Jobs.Cancel(owner, r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.ownerAuth(w, r)
	if !ok {
		return
	}
	res, st, err := s.svc.Jobs.Result(owner, r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": st, "result": res})
}
