package main

// Async analytics jobs: the HTTP lifecycle routes and the runners for the
// three launch job types.
//
//	POST   /v1/jobs?owner=O            submit {type, dataset, ...} (202)
//	GET    /v1/jobs?owner=O            list owner's jobs
//	GET    /v1/jobs/{id}?owner=O       status + progress
//	DELETE /v1/jobs/{id}?owner=O       cancel (queued or running)
//	GET    /v1/jobs/{id}/result?owner=O  result of a finished job
//
// Job types:
//
//	protect   dataset → released dataset (engine fit, key stored in the
//	          keyring as a new version for the owner)
//	cluster   kmeans/kmedoids/hierarchical/dbscan/spectral over any stored
//	          dataset — protected or raw — with optional silhouette
//	          k-selection (kmin/kmax)
//	evaluate  the paper's utility experiment as a service: protect the
//	          dataset, run the same algorithm on the normalized original
//	          and on the release, report misclassification error and
//	          F-measure between the two partitions (plus agreement with
//	          ground-truth labels when the dataset carries them)
//	audit     per-attribute Sec + known-sample re-identification against a
//	          stored release (audit.go)
//	tune      sweep mechanisms × parameters, return the privacy–utility
//	          Pareto frontier and a recommended point (tune.go)
//
// All routes authorize against the owner's bearer token; jobs are
// owner-isolated (a foreign job ID is indistinguishable from an absent
// one).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"ppclust/internal/cluster"
	"ppclust/internal/core"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/quality"
)

// jobSpec is the submission body shared by all job types; each runner
// reads the fields its type defines.
type jobSpec struct {
	Type    string `json:"type"`
	Dataset string `json:"dataset"`

	// protect + evaluate: transform parameters.
	Norm string  `json:"norm,omitempty"`
	Rho1 float64 `json:"rho1,omitempty"`
	Rho2 float64 `json:"rho2,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	// protect: destination dataset name for the release.
	Dest string `json:"dest,omitempty"`

	// cluster + evaluate: algorithm selection.
	Algorithm string  `json:"algorithm,omitempty"`
	K         int     `json:"k,omitempty"`
	KMin      int     `json:"kmin,omitempty"`
	KMax      int     `json:"kmax,omitempty"`
	Linkage   string  `json:"linkage,omitempty"`
	Eps       float64 `json:"eps,omitempty"`
	MinPts    int     `json:"min_pts,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`
	ClustSeed int64   `json:"cluster_seed,omitempty"`

	// audit + tune: the number of known records the simulated adversary
	// holds (0 = column count). Release and KeyVersion are audit-only.
	Release    string `json:"release,omitempty"`
	KeyVersion int    `json:"key_version,omitempty"`
	Known      int    `json:"known,omitempty"`

	// tune: the sweep grid and the recommendation constraint (tune.go).
	Mechanisms []string  `json:"mechanisms,omitempty"`
	Rhos       []float64 `json:"rhos,omitempty"`
	Sigmas     []float64 `json:"sigmas,omitempty"`
	MinSec     float64   `json:"min_sec,omitempty"`
	Refine     int       `json:"refine,omitempty"`
}

const (
	jobProtect  = "protect"
	jobCluster  = "cluster"
	jobEvaluate = "evaluate"
)

// registerJobRunners installs the launch job types on the manager.
// federated-cluster is registered here too so drained seals can be
// resubmitted at startup, but it is only ever scheduled by a federation
// seal, never by POST /v1/jobs.
func (s *server) registerJobRunners() {
	s.mgr.Register(jobProtect, s.runProtectJob)
	s.mgr.Register(jobCluster, s.runClusterJob)
	s.mgr.Register(jobEvaluate, s.runEvaluateJob)
	s.mgr.Register(jobAudit, s.runAuditJob)
	s.mgr.Register(jobTune, s.runTuneJob)
	s.mgr.Register(jobFederatedCluster, s.runFederatedClusterJob)
}

func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.jobAuth(w, r)
	if !ok {
		return
	}
	var spec jobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing job spec: %w", err))
		return
	}
	if err := s.validateSpec(owner, &spec); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	st, err := s.mgr.Submit(owner, spec.Type, raw)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// validateSpec rejects what would only fail later inside a worker, so
// submission errors surface synchronously.
func (s *server) validateSpec(owner string, spec *jobSpec) error {
	if spec.Dataset == "" {
		return fmt.Errorf("%w: missing dataset", errBadJob)
	}
	ds, err := s.store.Get(owner, spec.Dataset)
	if err != nil {
		return err
	}
	switch spec.Type {
	case jobProtect:
		if spec.Dest == "" {
			return fmt.Errorf("%w: protect needs dest (name for the released dataset)", errBadJob)
		}
		if err := datastore.ValidName(spec.Dest); err != nil {
			return err
		}
		if isFederationDataset(spec.Dest) {
			return fmt.Errorf("%w: dest %q — the fed. prefix is reserved for federation contributions", errBadJob, spec.Dest)
		}
		if _, err := normKind(spec.Norm); err != nil {
			return err
		}
	case jobCluster:
		if spec.KMin != 0 || spec.KMax != 0 {
			if spec.Algorithm != "" && spec.Algorithm != "kmeans" {
				return fmt.Errorf("%w: k-selection sweeps use kmeans, not %q", errBadJob, spec.Algorithm)
			}
			if spec.KMin < 2 || spec.KMax < spec.KMin || spec.KMax > ds.Rows {
				return fmt.Errorf("%w: bad sweep range [%d, %d] for %d rows", errBadJob, spec.KMin, spec.KMax, ds.Rows)
			}
			return nil
		}
		_, err := buildClusterer(spec)
		return err
	case jobEvaluate:
		if _, err := normKind(spec.Norm); err != nil {
			return err
		}
		if spec.KMin != 0 || spec.KMax != 0 {
			return fmt.Errorf("%w: evaluate compares one algorithm; k-selection is a cluster job", errBadJob)
		}
		_, err := buildClusterer(spec)
		return err
	case jobAudit:
		return s.validateAuditSpec(owner, spec, ds)
	case jobTune:
		return s.validateTuneSpec(spec, ds)
	default:
		return fmt.Errorf("%w: unknown type %q (want protect, cluster, evaluate, audit or tune)", errBadJob, spec.Type)
	}
	return nil
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.jobAuth(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.mgr.List(owner))
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.jobAuth(w, r)
	if !ok {
		return
	}
	st, err := s.mgr.Get(owner, r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.jobAuth(w, r)
	if !ok {
		return
	}
	st, err := s.mgr.Cancel(owner, r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	owner, ok := s.jobAuth(w, r)
	if !ok {
		return
	}
	res, st, err := s.mgr.Result(owner, r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": st, "result": res})
}

// jobAuth validates the owner parameter and its credential for every job
// route. Jobs exist only for owners that already exist (via a dataset
// upload or a protect), so an unknown owner is a 404, not a claim.
func (s *server) jobAuth(w http.ResponseWriter, r *http.Request) (string, bool) {
	owner := r.URL.Query().Get("owner")
	if err := keyring.ValidName(owner); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return "", false
	}
	known, err := s.ownerKnown(owner)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return "", false
	}
	if !known {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: owner %q", keyring.ErrNotFound, owner))
		return "", false
	}
	if err := s.authorize(r, owner); err != nil {
		writeAuthErr(w, err)
		return "", false
	}
	return owner, true
}

var errBadJob = errors.New("invalid job spec")

// normKind maps the wire normalization name onto the engine's.
func normKind(norm string) (string, error) {
	switch norm {
	case "", "zscore":
		return engine.NormZScore, nil
	case "minmax":
		return engine.NormMinMax, nil
	default:
		return "", fmt.Errorf("%w: unknown norm %q (want zscore or minmax)", errBadJob, norm)
	}
}

// protectOptions assembles engine options from a spec's transform fields.
func protectOptions(spec *jobSpec) (engine.ProtectOptions, error) {
	norm, err := normKind(spec.Norm)
	if err != nil {
		return engine.ProtectOptions{}, err
	}
	rho1, rho2 := spec.Rho1, spec.Rho2
	if rho1 == 0 {
		rho1 = 0.3
	}
	if rho2 == 0 {
		rho2 = 0.3
	}
	return engine.ProtectOptions{
		Normalization: norm,
		Thresholds:    []core.PST{{Rho1: rho1, Rho2: rho2}},
		Seed:          spec.Seed,
	}, nil
}

// newClusterRand seeds an algorithm's tie-breaking/init randomness.
func newClusterRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildClusterer constructs the algorithm a cluster or evaluate spec names.
func buildClusterer(spec *jobSpec) (cluster.Clusterer, error) {
	seed := spec.ClustSeed
	if seed == 0 {
		seed = 1
	}
	switch spec.Algorithm {
	case "", "kmeans":
		if spec.K < 1 {
			return nil, fmt.Errorf("%w: kmeans needs k >= 1", errBadJob)
		}
		return &cluster.KMeans{K: spec.K, Rand: newClusterRand(seed), Restarts: 4}, nil
	case "kmedoids":
		if spec.K < 1 {
			return nil, fmt.Errorf("%w: kmedoids needs k >= 1", errBadJob)
		}
		return &cluster.KMedoids{K: spec.K, Rand: newClusterRand(seed)}, nil
	case "hierarchical":
		if spec.K < 1 {
			return nil, fmt.Errorf("%w: hierarchical needs k >= 1", errBadJob)
		}
		link, err := linkageKind(spec.Linkage)
		if err != nil {
			return nil, err
		}
		return &cluster.Hierarchical{K: spec.K, Linkage: link}, nil
	case "dbscan":
		if spec.Eps <= 0 || spec.MinPts < 1 {
			return nil, fmt.Errorf("%w: dbscan needs eps > 0 and min_pts >= 1", errBadJob)
		}
		return &cluster.DBSCAN{Eps: spec.Eps, MinPts: spec.MinPts}, nil
	case "spectral":
		if spec.K < 1 {
			return nil, fmt.Errorf("%w: spectral needs k >= 1", errBadJob)
		}
		return &cluster.Spectral{K: spec.K, Sigma: spec.Sigma, Rand: newClusterRand(seed)}, nil
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", errBadJob, spec.Algorithm)
	}
}

func linkageKind(name string) (cluster.Linkage, error) {
	switch name {
	case "", "average":
		return cluster.AverageLinkage, nil
	case "single":
		return cluster.SingleLinkage, nil
	case "complete":
		return cluster.CompleteLinkage, nil
	case "ward":
		return cluster.WardLinkage, nil
	default:
		return 0, fmt.Errorf("%w: unknown linkage %q", errBadJob, name)
	}
}

// runProtectJob fits a fresh key over the stored dataset, stores the
// secret as a new key version for the owner, and stores the release as a
// new dataset.
func (s *server) runProtectJob(ctx context.Context, t *jobs.Task) (any, error) {
	var spec jobSpec
	if err := json.Unmarshal(t.Spec, &spec); err != nil {
		return nil, err
	}
	ds, err := s.store.Get(t.Owner, spec.Dataset)
	if err != nil {
		return nil, err
	}
	opts, err := protectOptions(&spec)
	if err != nil {
		return nil, err
	}
	t.SetProgress(0.1)
	res, err := s.eng.Protect(ds.Matrix(), opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.SetProgress(0.7)

	// The release lands in the store before the key lands in the keyring:
	// appending the key version first would repoint the owner's *current*
	// key at a release that failed to materialize (dest taken, disk
	// error), and a later version-less recover would then silently
	// decrypt older releases with the wrong key. A key failure after the
	// dataset is stored rolls the dataset back instead.
	b, err := datastore.NewBuilder(t.Owner, spec.Dest, ds.Attrs)
	if err != nil {
		return nil, err
	}
	labels := ds.Labels()
	for i := 0; i < res.Released.Rows(); i++ {
		if labels != nil {
			err = b.AppendLabeled(res.Released.RawRow(i), labels[i])
		} else {
			err = b.Append(res.Released.RawRow(i))
		}
		if err != nil {
			return nil, err
		}
	}
	out, err := b.Finish(time.Now())
	if err != nil {
		return nil, err
	}
	if err := s.store.Put(out); err != nil {
		return nil, err
	}
	entry, err := s.keys.Put(t.Owner, fromEngineSecret(res.Secret()))
	if err != nil {
		if derr := s.store.Delete(t.Owner, spec.Dest); derr != nil {
			err = fmt.Errorf("%w (and removing orphaned release %q: %v)", err, spec.Dest, derr)
		}
		return nil, err
	}
	s.rowsProtected.Add(int64(out.Rows))
	return map[string]any{
		"dataset":     spec.Dest,
		"rows":        out.Rows,
		"cols":        out.Cols,
		"key_version": entry.Version,
		"pairs":       len(res.Key.Pairs),
	}, nil
}

// clusterOutcome is the shared result shape of cluster and the two halves
// of evaluate.
type clusterOutcome struct {
	Algorithm   string          `json:"algorithm"`
	K           int             `json:"k"`
	Assignments []int           `json:"assignments"`
	Inertia     float64         `json:"inertia,omitempty"`
	Iterations  int             `json:"iterations,omitempty"`
	Converged   bool            `json:"converged"`
	Silhouette  *float64        `json:"silhouette,omitempty"`
	KScores     map[int]float64 `json:"k_scores,omitempty"`
}

// runClusterJob partitions a stored dataset, optionally selecting K by
// silhouette sweep first.
func (s *server) runClusterJob(ctx context.Context, t *jobs.Task) (any, error) {
	var spec jobSpec
	if err := json.Unmarshal(t.Spec, &spec); err != nil {
		return nil, err
	}
	ds, err := s.store.Get(t.Owner, spec.Dataset)
	if err != nil {
		return nil, err
	}
	data := ds.Matrix()
	t.SetProgress(0.05)

	outcome := &clusterOutcome{}
	var res *cluster.Result
	if spec.KMin != 0 || spec.KMax != 0 {
		seed := spec.ClustSeed
		if seed == 0 {
			seed = 1
		}
		span := float64(spec.KMax - spec.KMin + 1)
		sel, bestRes, err := cluster.SweepKBySilhouette(ctx, data, spec.KMin, spec.KMax, seed,
			func(k int, _ float64) {
				t.SetProgress(0.05 + 0.9*float64(k-spec.KMin+1)/span)
			})
		if err != nil {
			return nil, err
		}
		res = bestRes
		outcome.Algorithm = "kmeans"
		outcome.KScores = sel.Scores
	} else {
		c, err := buildClusterer(&spec)
		if err != nil {
			return nil, err
		}
		if res, err = c.Cluster(data); err != nil {
			return nil, err
		}
		outcome.Algorithm = c.Name()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.SetProgress(0.95)
	outcome.K = res.K
	outcome.Assignments = res.Assignments
	outcome.Inertia = res.Inertia
	outcome.Iterations = res.Iterations
	outcome.Converged = res.Converged
	if sil, err := quality.Silhouette(data, res.Assignments, nil); err == nil {
		outcome.Silhouette = &sil
	}
	return outcome, nil
}

// evaluation is the evaluate job's result: the paper's Tables as a
// service.
type evaluation struct {
	Algorithm string `json:"algorithm"`
	Rows      int    `json:"rows"`
	K         int    `json:"k"`
	// Misclassification and FMeasure compare the partition mined from the
	// normalized original against the one mined from the release —
	// Corollary 1 promises 0 and 1 respectively.
	Misclassification float64 `json:"misclassification"`
	FMeasure          float64 `json:"f_measure"`
	RandIndex         float64 `json:"rand_index"`
	SamePartition     bool    `json:"same_partition"`
	// VsLabels scores both partitions against ground-truth labels when
	// the dataset carries them: protection should not change how well
	// the algorithm recovers the true structure.
	VsLabels *labelAgreement `json:"vs_labels,omitempty"`
}

type labelAgreement struct {
	OriginalMisclassification  float64 `json:"original_misclassification"`
	ProtectedMisclassification float64 `json:"protected_misclassification"`
	OriginalFMeasure           float64 `json:"original_f_measure"`
	ProtectedFMeasure          float64 `json:"protected_f_measure"`
}

// runEvaluateJob protects the dataset with an ephemeral key and measures
// partition agreement between the normalized original and the release.
func (s *server) runEvaluateJob(ctx context.Context, t *jobs.Task) (any, error) {
	var spec jobSpec
	if err := json.Unmarshal(t.Spec, &spec); err != nil {
		return nil, err
	}
	ds, err := s.store.Get(t.Owner, spec.Dataset)
	if err != nil {
		return nil, err
	}
	opts, err := protectOptions(&spec)
	if err != nil {
		return nil, err
	}
	orig := ds.Matrix()
	t.SetProgress(0.05)
	res, err := s.eng.Protect(orig, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.SetProgress(0.3)

	// The comparison baseline is the normalized original: the release
	// differs from it only by the isometry, which is exactly what the
	// paper's utility tables isolate.
	secret := res.Secret()
	normalized := orig // Matrix() returned a copy; normalize it in place
	for i := 0; i < normalized.Rows(); i++ {
		secret.NormalizeRow(normalized.RawRow(i))
	}

	c, err := buildClusterer(&spec)
	if err != nil {
		return nil, err
	}
	onOrig, err := c.Cluster(normalized)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.SetProgress(0.6)
	// A fresh clusterer for the release: same algorithm, same seeding.
	c2, err := buildClusterer(&spec)
	if err != nil {
		return nil, err
	}
	onRelease, err := c2.Cluster(res.Released)
	if err != nil {
		return nil, err
	}
	t.SetProgress(0.85)

	misclass, err := quality.MisclassificationError(onOrig.Assignments, onRelease.Assignments)
	if err != nil {
		return nil, err
	}
	fmeasure, err := quality.FMeasure(onOrig.Assignments, onRelease.Assignments)
	if err != nil {
		return nil, err
	}
	randIdx, err := quality.RandIndex(onOrig.Assignments, onRelease.Assignments)
	if err != nil {
		return nil, err
	}
	ev := &evaluation{
		Algorithm:         c.Name(),
		Rows:              ds.Rows,
		K:                 onRelease.K,
		Misclassification: misclass,
		FMeasure:          fmeasure,
		RandIndex:         randIdx,
		SamePartition:     misclass < 1e-12,
	}
	if labels := ds.Labels(); labels != nil {
		agree := &labelAgreement{}
		if agree.OriginalMisclassification, err = quality.MisclassificationError(labels, onOrig.Assignments); err != nil {
			return nil, err
		}
		if agree.ProtectedMisclassification, err = quality.MisclassificationError(labels, onRelease.Assignments); err != nil {
			return nil, err
		}
		if agree.OriginalFMeasure, err = quality.FMeasure(labels, onOrig.Assignments); err != nil {
			return nil, err
		}
		if agree.ProtectedFMeasure, err = quality.FMeasure(labels, onRelease.Assignments); err != nil {
			return nil, err
		}
		ev.VsLabels = agree
	}
	return ev, nil
}
