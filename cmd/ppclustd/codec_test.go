package main

// Error-path coverage for the streaming codecs: malformed input must
// surface as an error from the reader — and, once a streaming response has
// started, as an aborted connection — never as a silently truncated
// dataset that parses cleanly.

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// drainRows reads rows until the first error, returning it and the count.
func drainRows(rr rowReader) (int, error) {
	n := 0
	for {
		_, err := rr.Read()
		if err != nil {
			return n, err
		}
		n++
	}
}

func TestCSVReaderTruncatedRecord(t *testing.T) {
	rr := newRowReader(formatCSV, strings.NewReader("x,y,z\n1,2,3\n4,5\n"))
	n, err := drainRows(rr)
	if n != 1 {
		t.Fatalf("rows before error = %d, want 1", n)
	}
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record must error, got %v", err)
	}
}

func TestCSVReaderNonNumericField(t *testing.T) {
	rr := newRowReader(formatCSV, strings.NewReader("x,y\n1,oops\n"))
	if _, err := drainRows(rr); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("non-numeric field must error, got %v", err)
	}
}

func TestNDJSONReaderWrongArity(t *testing.T) {
	rr := newRowReader(formatNDJSON, strings.NewReader("[1,2,3]\n[4,5]\n"))
	n, err := drainRows(rr)
	if n != 1 {
		t.Fatalf("rows before error = %d, want 1", n)
	}
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("wrong-arity row must error, got %v", err)
	}
}

func TestNDJSONReaderMalformedRow(t *testing.T) {
	rr := newRowReader(formatNDJSON, strings.NewReader("[1,2]\n[3,\n"))
	if _, err := drainRows(rr); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("malformed JSON row must error, got %v", err)
	}
}

func TestNDJSONReaderOversizedLine(t *testing.T) {
	// One line just past the scanner's 16 MiB ceiling: the reader must
	// report bufio.ErrTooLong instead of splitting or truncating the row.
	var sb strings.Builder
	sb.WriteString("[1")
	for sb.Len() < 17*1024*1024 {
		sb.WriteString(",1")
	}
	sb.WriteString("]\n")
	rr := newRowReader(formatNDJSON, strings.NewReader(sb.String()))
	n, err := drainRows(rr)
	if n != 0 {
		t.Fatalf("rows before error = %d, want 0", n)
	}
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("oversized line must error, got %v", err)
	}
	if !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("err = %v, want the scanner's too-long failure", err)
	}
}

// TestStreamAbortsOnMidStreamGarbage: once a streaming response has
// started, a malformed record must kill the connection — the client sees
// a transport error, never a clean EOF on a truncated release.
func TestStreamAbortsOnMidStreamGarbage(t *testing.T) {
	ts, s := newTestServer(t)
	s.batchRows = 2 // response starts after the first 2-row batch

	csvBody, _ := testCSV(t, 64, 1)
	resp, rel := post(t, ts.URL+"/v1/protect?owner=amy&seed=2", csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect: %d", resp.StatusCode)
	}
	tok := token(t, resp)

	// Recover a body whose first rows are valid (from the real release)
	// and which then degenerates into a truncated record.
	lines := strings.Split(strings.TrimSpace(rel), "\n")
	bad := strings.Join(lines[:5], "\n") + "\n1,2\n"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/recover?owner=amy", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		// The abort may already surface at Do for small responses.
		return
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d before the garbage row was reached", hresp.StatusCode)
	}
	if _, err := io.ReadAll(hresp.Body); err == nil {
		t.Fatal("truncated stream ended with a clean EOF; the connection must abort")
	}
}
