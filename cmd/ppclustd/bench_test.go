package main

// BenchmarkJobEndToEnd measures the full served job path — HTTP submit,
// queue, worker pool, cluster run, HTTP result fetch — the number the CI
// bench smoke tracks alongside the raw engine protect/recover timings.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ppclust/internal/dataset"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/ppclient"
)

func BenchmarkJobEndToEnd(b *testing.B) {
	mgr := jobs.New(jobs.Config{Workers: 2, Retention: 8})
	defer mgr.Close()
	s := newServer(engine.New(0, 0), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory())
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ds, err := dataset.WellSeparatedBlobs(2000, 3, 8, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	ds.Labels = nil
	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, ds); err != nil {
		b.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets?owner=bench&name=d", bytes.NewReader(csvBuf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("upload: %d", resp.StatusCode)
	}
	tok := resp.Header.Get("X-Ppclust-Token")

	spec := []byte(`{"type":"cluster","dataset":"d","algorithm":"kmeans","k":3}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?owner=bench", bytes.NewReader(spec))
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: %d", resp.StatusCode)
		}
		for !st.State.Terminal() {
			time.Sleep(500 * time.Microsecond)
			sreq, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s?owner=bench", ts.URL, st.ID), nil)
			sreq.Header.Set("Authorization", "Bearer "+tok)
			sresp, err := http.DefaultClient.Do(sreq)
			if err != nil {
				b.Fatal(err)
			}
			if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			sresp.Body.Close()
		}
		if st.State != jobs.StateDone {
			b.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
	}
}

// BenchmarkFederationEndToEnd measures the full served federation path —
// create, N parties join, contribute M-row partitions (coordinator fit +
// stream-protected parties), seal, joint kmeans, result fetch — through
// the ppclient SDK, the number the CI bench smoke archives as
// BENCH_ppfed.json.
func BenchmarkFederationEndToEnd(b *testing.B) {
	for _, shape := range []struct{ parties, rows int }{
		{3, 500},
		{3, 2000},
		{6, 1000},
	} {
		b.Run(fmt.Sprintf("parties=%d/rows=%d", shape.parties, shape.rows), func(b *testing.B) {
			mgr := jobs.New(jobs.Config{Workers: 2, Retention: 64})
			defer mgr.Close()
			s := newServer(engine.New(0, 0), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory())
			ts := httptest.NewServer(s.handler())
			defer ts.Close()

			total := shape.parties * shape.rows
			ds, err := dataset.WellSeparatedBlobs(total, 3, 8, 10, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			parts := make([][][]float64, shape.parties)
			for p := 0; p < shape.parties; p++ {
				for i := p; i < total; i += shape.parties {
					parts[p] = append(parts[p], ds.Data.RawRow(i))
				}
			}

			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clients := make([]*ppclient.Client, shape.parties)
				for p := range clients {
					clients[p] = ppclient.New(ts.URL, fmt.Sprintf("bench%d-p%d", i, p))
				}
				fed, err := clients[0].CreateFederation(ctx, ppclient.FederationConfig{
					Name: "bench", Columns: ds.Names, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for p := 1; p < shape.parties; p++ {
					if _, err := clients[p].JoinFederation(ctx, fed.ID); err != nil {
						b.Fatal(err)
					}
				}
				for p := 0; p < shape.parties; p++ {
					if _, err := clients[p].Contribute(ctx, fed.ID, ds.Names, parts[p]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := clients[0].Seal(ctx, fed.ID, ppclient.Analysis{Algorithm: "kmeans", K: 3, ClustSeed: 1}); err != nil {
					b.Fatal(err)
				}
				wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
				res, err := clients[0].Result(wctx, fed.ID)
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Assignments) != total {
					b.Fatalf("assignments = %d, want %d", len(res.Assignments), total)
				}
			}
			b.ReportMetric(float64(total), "rows/op")
		})
	}
}
