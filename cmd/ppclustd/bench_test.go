package main

// BenchmarkJobEndToEnd measures the full served job path — HTTP submit,
// queue, worker pool, cluster run, HTTP result fetch — the number the CI
// bench smoke tracks alongside the raw engine protect/recover timings.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ppclust/internal/dataset"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
)

func BenchmarkJobEndToEnd(b *testing.B) {
	mgr := jobs.New(jobs.Config{Workers: 2, Retention: 8})
	defer mgr.Close()
	s := newServer(engine.New(0, 0), keyring.NewMemory(), datastore.NewMemory(), mgr)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ds, err := dataset.WellSeparatedBlobs(2000, 3, 8, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	ds.Labels = nil
	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, ds); err != nil {
		b.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets?owner=bench&name=d", bytes.NewReader(csvBuf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("upload: %d", resp.StatusCode)
	}
	tok := resp.Header.Get("X-Ppclust-Token")

	spec := []byte(`{"type":"cluster","dataset":"d","algorithm":"kmeans","k":3}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?owner=bench", bytes.NewReader(spec))
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: %d", resp.StatusCode)
		}
		for !st.State.Terminal() {
			time.Sleep(500 * time.Microsecond)
			sreq, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s?owner=bench", ts.URL, st.ID), nil)
			sreq.Header.Set("Authorization", "Bearer "+tok)
			sresp, err := http.DefaultClient.Do(sreq)
			if err != nil {
				b.Fatal(err)
			}
			if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			sresp.Body.Close()
		}
		if st.State != jobs.StateDone {
			b.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
	}
}
