package main

// Integration tests for the datasets + jobs subsystem: upload → job →
// result over real HTTP, owner auth and isolation on the new routes, the
// paper-bound evaluate acceptance flow, multi-owner concurrency, and the
// drain/restore state files.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppclust/internal/dataset"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/matrix"
)

// newJobsServer builds a server with a pool of exactly two job workers —
// the shape the concurrency acceptance test depends on.
func newJobsServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	mgr := jobs.New(jobs.Config{Workers: 2})
	t.Cleanup(mgr.Close)
	s := newServer(engine.New(2, 1024), keyring.NewMemory(), datastore.NewMemory(), mgr, federation.NewMemory())
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// blobsCSV renders the datagen blobs dataset (with its ground-truth label
// column, as `datagen -labels` emits it) to CSV.
func blobsCSV(t *testing.T, m, k int, seed int64) string {
	t.Helper()
	ds, err := dataset.WellSeparatedBlobs(m, k, 4, 10, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// uploadDataset posts body as owner's named dataset and returns the
// response body and the (possibly empty) minted token.
func uploadDataset(t *testing.T, ts *httptest.Server, owner, name, token, query, body string) (string, string) {
	t.Helper()
	url := fmt.Sprintf("%s/v1/datasets?owner=%s&name=%s%s", ts.URL, owner, name, query)
	resp, raw := postAuth(t, url, token, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s/%s: status %d: %s", owner, name, resp.StatusCode, raw)
	}
	return raw, resp.Header.Get("X-Ppclust-Token")
}

// submitJob posts spec and returns the accepted job status.
func submitJob(t *testing.T, ts *httptest.Server, owner, token string, spec map[string]any) jobs.Status {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postAuth(t, ts.URL+"/v1/jobs?owner="+owner, token, string(raw))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %v: status %d: %s", spec, resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != jobs.StateQueued {
		t.Fatalf("submitted status = %+v", st)
	}
	return st
}

func getJSON(t *testing.T, url, token string, out any) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("parsing %s: %v\n%s", url, err, buf.String())
		}
	}
	return resp, buf.String()
}

// waitJob polls the status route until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, owner, token, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st jobs.Status
		resp, body := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?owner=%s", ts.URL, id, owner), token, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status: %d: %s", resp.StatusCode, body)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Status{}
}

// jobResult fetches and decodes a finished job's result payload.
func jobResult(t *testing.T, ts *httptest.Server, owner, token, id string, out any) {
	t.Helper()
	var wrapper struct {
		Status jobs.Status     `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	resp, body := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/result?owner=%s", ts.URL, id, owner), token, &wrapper)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", resp.StatusCode, body)
	}
	if wrapper.Status.State != jobs.StateDone {
		t.Fatalf("result status = %+v (%s)", wrapper.Status, wrapper.Status.Error)
	}
	if err := json.Unmarshal(wrapper.Result, out); err != nil {
		t.Fatalf("parsing result: %v\n%s", err, wrapper.Result)
	}
}

// TestDatasetLifecycle: upload with labels mints a token; metadata, row
// download, listing and deletion all work under that token.
func TestDatasetLifecycle(t *testing.T) {
	ts, _ := newJobsServer(t)
	csvBody := blobsCSV(t, 60, 3, 1)

	body, tok := uploadDataset(t, ts, "alice", "blobs", "", "&labels=last", csvBody)
	if tok == "" {
		t.Fatal("first upload must mint the owner token")
	}
	var meta datastore.Meta
	if err := json.Unmarshal([]byte(body), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Rows != 60 || meta.Cols != 4 || !meta.Labeled {
		t.Fatalf("meta = %+v", meta)
	}

	// Second upload for the same owner needs the token and must not mint
	// a new one.
	if _, tok2 := uploadDataset(t, ts, "alice", "blobs2", tok, "", blobsCSV(t, 30, 2, 2)); tok2 != "" {
		t.Fatal("second upload minted a fresh token")
	}
	// Duplicate name: 409.
	if resp, body := postAuth(t, ts.URL+"/v1/datasets?owner=alice&name=blobs", tok, csvBody); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate upload: %d: %s", resp.StatusCode, body)
	}

	var metas []datastore.Meta
	if resp, _ := getJSON(t, ts.URL+"/v1/datasets?owner=alice", tok, &metas); resp.StatusCode != http.StatusOK || len(metas) != 2 {
		t.Fatalf("list = %v", metas)
	}
	var one datastore.Meta
	if resp, _ := getJSON(t, ts.URL+"/v1/datasets/blobs?owner=alice", tok, &one); resp.StatusCode != http.StatusOK || one.Rows != 60 {
		t.Fatalf("get = %+v", one)
	}

	// Row download round-trips the data (labels stay inside the service).
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/blobs/rows?owner=alice", nil)
	req.Header.Set("Authorization", "Bearer "+tok)
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(rresp.Body)
	rresp.Body.Close()
	rows := parseCSVBody(t, buf.String())
	if rows.Rows() != 60 || rows.Cols() != 4 {
		t.Fatalf("downloaded %dx%d", rows.Rows(), rows.Cols())
	}

	resp3, body := deleteReq(t, ts.URL+"/v1/datasets/blobs2?owner=alice", tok)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d: %s", resp3.StatusCode, body)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/datasets/blobs2?owner=alice", tok, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted dataset still resolves: %d", resp.StatusCode)
	}
}

// TestDatasetUploadThenProtectSharesCredential: an owner born from a
// dataset upload keeps the same bearer token across its first protect fit
// (no second mint), closing the loop between the two creation paths.
func TestDatasetUploadThenProtectSharesCredential(t *testing.T) {
	ts, _ := newJobsServer(t)
	_, tok := uploadDataset(t, ts, "carol", "d", "", "", blobsCSV(t, 40, 2, 3))

	csvBody, orig := testCSV(t, 80, 4)
	resp, rel := postAuth(t, ts.URL+"/v1/protect?owner=carol&seed=5", tok, csvBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protect for upload-born owner: %d: %s", resp.StatusCode, rel)
	}
	if resp.Header.Get("X-Ppclust-Token") != "" {
		t.Fatal("protect minted a second token for an owner that already has one")
	}
	if resp.Header.Get("X-Ppclust-Key-Version") != "1" {
		t.Fatalf("version = %q", resp.Header.Get("X-Ppclust-Key-Version"))
	}
	// And without the token the fit is refused outright.
	if resp, _ := post(t, ts.URL+"/v1/protect?owner=carol", csvBody); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless protect for credentialed owner: %d", resp.StatusCode)
	}
	resp, rec := postAuth(t, ts.URL+"/v1/recover?owner=carol", tok, rel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: %d", resp.StatusCode)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), orig, 1e-6) {
		t.Fatal("recover under upload-born credential diverged")
	}
}

// TestJobsAuthAndIsolation is the auth satellite: 401 without a token,
// 403 with another owner's token, and cross-owner invisibility of both
// datasets and jobs (read and cancel).
func TestJobsAuthAndIsolation(t *testing.T) {
	ts, _ := newJobsServer(t)
	_, tokA := uploadDataset(t, ts, "alice", "d", "", "", blobsCSV(t, 60, 3, 1))
	_, tokB := uploadDataset(t, ts, "bob", "d", "", "", blobsCSV(t, 60, 3, 2))
	jobA := submitJob(t, ts, "alice", tokA, map[string]any{"type": "cluster", "dataset": "d", "k": 3})
	waitJob(t, ts, "alice", tokA, jobA.ID)

	t.Run("401 without token", func(t *testing.T) {
		for _, url := range []string{
			"/v1/datasets?owner=alice",
			"/v1/datasets/d?owner=alice",
			"/v1/datasets/d/rows?owner=alice",
			"/v1/jobs?owner=alice",
			"/v1/jobs/" + jobA.ID + "?owner=alice",
			"/v1/jobs/" + jobA.ID + "/result?owner=alice",
		} {
			resp, _ := getJSON(t, ts.URL+url, "", nil)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("%s: %d, want 401", url, resp.StatusCode)
			}
			if resp.Header.Get("WWW-Authenticate") == "" {
				t.Errorf("%s: 401 without WWW-Authenticate", url)
			}
		}
		if resp, _ := postAuth(t, ts.URL+"/v1/jobs?owner=alice", "", `{"type":"cluster","dataset":"d","k":3}`); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("submit: %d, want 401", resp.StatusCode)
		}
	})

	t.Run("403 with another owner's token", func(t *testing.T) {
		for _, url := range []string{
			"/v1/datasets?owner=alice",
			"/v1/jobs?owner=alice",
			"/v1/jobs/" + jobA.ID + "?owner=alice",
		} {
			resp, _ := getJSON(t, ts.URL+url, tokB, nil)
			if resp.StatusCode != http.StatusForbidden {
				t.Errorf("%s with bob's token: %d, want 403", url, resp.StatusCode)
			}
		}
		if resp, _ := postAuth(t, ts.URL+"/v1/jobs?owner=alice", tokB, `{"type":"cluster","dataset":"d","k":3}`); resp.StatusCode != http.StatusForbidden {
			t.Errorf("submit with bob's token: %d, want 403", resp.StatusCode)
		}
	})

	t.Run("cross-owner isolation", func(t *testing.T) {
		// Bob, correctly authenticated as bob, cannot see or touch
		// alice's job or dataset — 404, indistinguishable from absent.
		if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+jobA.ID+"?owner=bob", tokB, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("bob reads alice's job: %d, want 404", resp.StatusCode)
		}
		if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+jobA.ID+"/result?owner=bob", tokB, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("bob reads alice's result: %d, want 404", resp.StatusCode)
		}
		if resp, _ := deleteReq(t, ts.URL+"/v1/jobs/"+jobA.ID+"?owner=bob", tokB); resp.StatusCode != http.StatusNotFound {
			t.Errorf("bob cancels alice's job: %d, want 404", resp.StatusCode)
		}
		// Bob's own job against alice's dataset name resolves inside
		// bob's namespace only.
		if resp, body := postAuth(t, ts.URL+"/v1/jobs?owner=bob", tokB, `{"type":"cluster","dataset":"nope","k":3}`); resp.StatusCode != http.StatusNotFound {
			t.Errorf("job over missing dataset: %d: %s", resp.StatusCode, body)
		}
		// Unknown owner on the job and dataset routes is 404 (nothing to
		// claim there).
		if resp, _ := getJSON(t, ts.URL+"/v1/jobs?owner=ghost", tokB, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown owner job list: %d, want 404", resp.StatusCode)
		}
		if resp, _ := getJSON(t, ts.URL+"/v1/datasets?owner=ghost", tokB, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown owner dataset list: %d, want 404", resp.StatusCode)
		}
	})
}

// TestEvaluateJobMatchesPaperBound is the acceptance flow: an evaluate
// job over a datagen dataset must report misclassification error within
// the paper-expected bound (zero — the isometry preserves every partition,
// the claim internal/experiments asserts for the same algorithms).
func TestEvaluateJobMatchesPaperBound(t *testing.T) {
	ts, _ := newJobsServer(t)
	_, tok := uploadDataset(t, ts, "alice", "blobs", "", "&labels=last", blobsCSV(t, 200, 3, 7))

	for _, alg := range []map[string]any{
		{"algorithm": "kmeans", "k": 3},
		{"algorithm": "hierarchical", "k": 3, "linkage": "average"},
	} {
		spec := map[string]any{"type": "evaluate", "dataset": "blobs", "rho1": 0.3, "rho2": 0.3, "seed": 11}
		for k, v := range alg {
			spec[k] = v
		}
		st := submitJob(t, ts, "alice", tok, spec)
		if got := waitJob(t, ts, "alice", tok, st.ID); got.State != jobs.StateDone {
			t.Fatalf("%v: state %s: %s", alg, got.State, got.Error)
		}
		var ev struct {
			Algorithm         string  `json:"algorithm"`
			Misclassification float64 `json:"misclassification"`
			FMeasure          float64 `json:"f_measure"`
			SamePartition     bool    `json:"same_partition"`
			VsLabels          *struct {
				OriginalMisclassification  float64 `json:"original_misclassification"`
				ProtectedMisclassification float64 `json:"protected_misclassification"`
			} `json:"vs_labels"`
		}
		jobResult(t, ts, "alice", tok, st.ID, &ev)
		// The bound asserted in internal/experiments for RBT: exactly
		// zero misclassification at any privacy level.
		if ev.Misclassification > 0 {
			t.Fatalf("%s: misclassification %g exceeds the paper bound 0", ev.Algorithm, ev.Misclassification)
		}
		if ev.FMeasure != 1 || !ev.SamePartition {
			t.Fatalf("%s: f-measure %g, same=%v", ev.Algorithm, ev.FMeasure, ev.SamePartition)
		}
		// Ground truth rode along from the labeled upload, and the
		// protected partition matches it exactly as well as the original.
		if ev.VsLabels == nil {
			t.Fatalf("%s: no ground-truth agreement in result", ev.Algorithm)
		}
		if ev.VsLabels.OriginalMisclassification != ev.VsLabels.ProtectedMisclassification {
			t.Fatalf("%s: protection changed ground-truth agreement: %+v", ev.Algorithm, ev.VsLabels)
		}
	}
}

// TestProtectJobAndClusterProtected: a protect job materializes the
// release as a dataset and stores the key; clustering with silhouette
// k-selection finds the same K on the protected data as on the original,
// and the downloaded release recovers to the original via /v1/recover.
func TestProtectJobAndClusterProtected(t *testing.T) {
	ts, _ := newJobsServer(t)
	csvBody := blobsCSV(t, 150, 3, 9)
	_, tok := uploadDataset(t, ts, "alice", "raw", "", "&labels=last", csvBody)

	st := submitJob(t, ts, "alice", tok, map[string]any{
		"type": "protect", "dataset": "raw", "dest": "released", "rho1": 0.3, "rho2": 0.3, "seed": 4,
	})
	if got := waitJob(t, ts, "alice", tok, st.ID); got.State != jobs.StateDone {
		t.Fatalf("protect job: %s: %s", got.State, got.Error)
	}
	var pres struct {
		Dataset    string `json:"dataset"`
		Rows       int    `json:"rows"`
		KeyVersion int    `json:"key_version"`
	}
	jobResult(t, ts, "alice", tok, st.ID, &pres)
	if pres.Dataset != "released" || pres.Rows != 150 || pres.KeyVersion != 1 {
		t.Fatalf("protect result = %+v", pres)
	}

	// Model selection agrees across raw and released data.
	kOf := func(name string) int {
		st := submitJob(t, ts, "alice", tok, map[string]any{
			"type": "cluster", "dataset": name, "kmin": 2, "kmax": 6,
		})
		if got := waitJob(t, ts, "alice", tok, st.ID); got.State != jobs.StateDone {
			t.Fatalf("cluster %s: %s: %s", name, got.State, got.Error)
		}
		var out struct {
			K       int             `json:"k"`
			KScores map[int]float64 `json:"k_scores"`
		}
		jobResult(t, ts, "alice", tok, st.ID, &out)
		if len(out.KScores) != 5 {
			t.Fatalf("cluster %s: scores %v", name, out.KScores)
		}
		return out.K
	}
	if kRaw, kRel := kOf("raw"), kOf("released"); kRaw != 3 || kRel != 3 {
		t.Fatalf("selected k: raw %d, released %d, want 3", kRaw, kRel)
	}

	// The released rows leave the service and invert under the stored key.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/released/rows?owner=alice", nil)
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	rresp, rec := postAuth(t, ts.URL+"/v1/recover?owner=alice", tok, buf.String())
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("recover: %d: %s", rresp.StatusCode, rec)
	}
	ds, err := dataset.ReadCSV(strings.NewReader(csvBody), func() dataset.CSVOptions {
		o := dataset.DefaultCSVOptions()
		o.LabelColumn = 4
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(parseCSVBody(t, rec), ds.Data, 1e-6) {
		t.Fatal("released dataset did not recover to the original")
	}
}

// TestConcurrentOwnersAndQueuedThird is the concurrency acceptance
// criterion: with a two-worker pool, long cluster jobs from two different
// owners run and make progress simultaneously while a third queued job
// reports `queued`; cancelling it works without touching the running two.
func TestConcurrentOwnersAndQueuedThird(t *testing.T) {
	ts, _ := newJobsServer(t)
	// Big enough that the silhouette sweep takes real time per candidate.
	_, tokA := uploadDataset(t, ts, "alice", "d", "", "", blobsCSV(t, 1400, 3, 1))
	_, tokB := uploadDataset(t, ts, "bob", "d", "", "", blobsCSV(t, 1400, 3, 2))

	sweep := map[string]any{"type": "cluster", "dataset": "d", "kmin": 2, "kmax": 10}
	jobA := submitJob(t, ts, "alice", tokA, sweep)
	jobB := submitJob(t, ts, "bob", tokB, sweep)
	jobC := submitJob(t, ts, "alice", tokA, map[string]any{"type": "cluster", "dataset": "d", "k": 3})

	// Poll until both long jobs are observably running with progress while
	// the third still reports queued — all through the HTTP API.
	deadline := time.Now().Add(20 * time.Second)
	observed := false
	for time.Now().Before(deadline) {
		var a, b, c jobs.Status
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?owner=alice", ts.URL, jobA.ID), tokA, &a)
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?owner=bob", ts.URL, jobB.ID), tokB, &b)
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?owner=alice", ts.URL, jobC.ID), tokA, &c)
		if a.State == jobs.StateRunning && b.State == jobs.StateRunning &&
			a.Progress > 0 && b.Progress > 0 && c.State == jobs.StateQueued {
			observed = true
			break
		}
		if a.State.Terminal() && b.State.Terminal() {
			t.Fatalf("both jobs finished before concurrency was observable (a=%+v b=%+v)", a, b)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !observed {
		t.Fatal("never observed two owners running simultaneously with a third queued")
	}

	// The queued third job cancels cleanly while the pool is busy. (On a
	// machine where a worker freed up and ran the small job to completion
	// between the observation and this request, the cancel correctly
	// answers 409 instead.)
	resp, body := deleteReq(t, ts.URL+"/v1/jobs/"+jobC.ID+"?owner=alice", tokA)
	switch resp.StatusCode {
	case http.StatusOK:
		var cSt jobs.Status
		if err := json.Unmarshal([]byte(body), &cSt); err != nil || cSt.State != jobs.StateCancelled {
			t.Fatalf("cancelled status = %s (%v)", body, err)
		}
	case http.StatusConflict:
	default:
		t.Fatalf("cancel queued: %d: %s", resp.StatusCode, body)
	}
	// And the two long jobs still complete with identical selections —
	// the same data under different owners picks the same K.
	a := waitJob(t, ts, "alice", tokA, jobA.ID)
	b := waitJob(t, ts, "bob", tokB, jobB.ID)
	if a.State != jobs.StateDone || b.State != jobs.StateDone {
		t.Fatalf("long jobs: a=%s b=%s", a.State, b.State)
	}
}

// TestCancelRunningJobHTTP: DELETE on a running sweep stops it between
// candidates.
func TestCancelRunningJobHTTP(t *testing.T) {
	ts, _ := newJobsServer(t)
	_, tok := uploadDataset(t, ts, "alice", "d", "", "", blobsCSV(t, 900, 3, 5))
	st := submitJob(t, ts, "alice", tok, map[string]any{"type": "cluster", "dataset": "d", "kmin": 2, "kmax": 9})

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var s jobs.Status
		getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?owner=alice", ts.URL, st.ID), tok, &s)
		if s.State == jobs.StateRunning {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The sweep may already have finished on a fast machine; then DELETE
	// correctly answers 409 and the job stays done.
	if resp, body := deleteReq(t, ts.URL+"/v1/jobs/"+st.ID+"?owner=alice", tok); resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel running: %d: %s", resp.StatusCode, body)
	}
	final := waitJob(t, ts, "alice", tok, st.ID)
	if final.State != jobs.StateCancelled && final.State != jobs.StateDone {
		t.Fatalf("after cancel: %s (%s)", final.State, final.Error)
	}
	// Results of a cancelled job are a 409, not a 500.
	if final.State == jobs.StateCancelled {
		if resp, _ := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/result?owner=alice", ts.URL, st.ID), tok, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("result of cancelled job: %d", resp.StatusCode)
		}
	}
}

// TestJobSpecValidation: bad submissions fail synchronously with 400.
func TestJobSpecValidation(t *testing.T) {
	ts, _ := newJobsServer(t)
	_, tok := uploadDataset(t, ts, "alice", "d", "", "", blobsCSV(t, 40, 2, 6))
	for name, spec := range map[string]string{
		"unknown type":      `{"type":"transmogrify","dataset":"d"}`,
		"missing dataset":   `{"type":"cluster","k":3}`,
		"audit no release":  `{"type":"audit","dataset":"d"}`,
		"audit bad known":   `{"type":"audit","dataset":"d","release":"d","known":1}`,
		"bad algorithm":     `{"type":"cluster","dataset":"d","algorithm":"quantum","k":3}`,
		"kmeans without k":  `{"type":"cluster","dataset":"d"}`,
		"bad sweep range":   `{"type":"cluster","dataset":"d","kmin":5,"kmax":2}`,
		"sweep non-kmeans":  `{"type":"cluster","dataset":"d","algorithm":"dbscan","kmin":2,"kmax":4}`,
		"protect no dest":   `{"type":"protect","dataset":"d"}`,
		"bad norm":          `{"type":"protect","dataset":"d","dest":"x","norm":"fourier"}`,
		"evaluate sweep":    `{"type":"evaluate","dataset":"d","kmin":2,"kmax":4}`,
		"dbscan bad eps":    `{"type":"cluster","dataset":"d","algorithm":"dbscan","min_pts":3}`,
		"unknown field":     `{"type":"cluster","dataset":"d","k":3,"frobnicate":1}`,
		"hierarchical link": `{"type":"cluster","dataset":"d","algorithm":"hierarchical","k":2,"linkage":"webbed"}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, body := postAuth(t, ts.URL+"/v1/jobs?owner=alice", tok, spec)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
		})
	}
	// Live-state conflicts: fetching the result of a still-queued or
	// running job is 409. A long sweep keeps the window comfortably open.
	_, _ = uploadDataset(t, ts, "alice", "big", tok, "", blobsCSV(t, 1200, 3, 7))
	big := submitJob(t, ts, "alice", tok, map[string]any{"type": "cluster", "dataset": "big", "kmin": 2, "kmax": 9})
	if resp, _ := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s/result?owner=alice", ts.URL, big.ID), tok, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result fetch: %d, want 409", resp.StatusCode)
	}
	waitJob(t, ts, "alice", tok, big.ID)
}

// TestMetricsEndpoint: the counters satellite — request, row and job
// counters all surface on /v1/metrics.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newJobsServer(t)
	csvBody, _ := testCSV(t, 120, 12)
	resp, _ := post(t, ts.URL+"/v1/protect?owner=erin", csvBody)
	tok := token(t, resp)
	_, _ = uploadDataset(t, ts, "erin", "d", tok, "", blobsCSV(t, 50, 2, 8))
	st := submitJob(t, ts, "erin", tok, map[string]any{"type": "cluster", "dataset": "d", "k": 2})
	waitJob(t, ts, "erin", tok, st.ID)

	var snap map[string]int64
	if resp, body := getJSON(t, ts.URL+"/v1/metrics", "", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d: %s", resp.StatusCode, body)
	}
	if snap["rows_protected_total"] != 120 {
		t.Fatalf("rows_protected_total = %d, want 120", snap["rows_protected_total"])
	}
	if snap["rows_ingested_total"] != 50 {
		t.Fatalf("rows_ingested_total = %d, want 50", snap["rows_ingested_total"])
	}
	if snap["jobs_submitted_total"] != 1 || snap["jobs_completed_total"] != 1 {
		t.Fatalf("job counters = %v", snap)
	}
	if snap["job_workers"] != 2 || snap["engine_workers"] != 2 {
		t.Fatalf("worker gauges = %v", snap)
	}
	if snap[`http_requests_total{route="POST /v1/protect",status="200"}`] < 1 {
		t.Fatalf("request counter missing: %v", snap)
	}
	if snap[`http_requests_total{route="POST /v1/jobs",status="202"}`] < 1 {
		t.Fatalf("job submit counter missing: %v", snap)
	}
}

// TestQueuedJobStateFiles: the drain satellite's persistence halves —
// persistQueuedJobs writes an atomic 0600 snapshot, restoreQueuedJobs
// resubmits and consumes it, and an empty drain clears stale state.
func TestQueuedJobStateFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "queued-jobs.json")
	queued := []jobs.QueuedJob{
		{ID: "j1", Owner: "alice", Type: "cluster", Spec: json.RawMessage(`{"k":3}`), CreatedAt: time.Now().UTC()},
		{ID: "j2", Owner: "bob", Type: "protect", Spec: json.RawMessage(`{}`), CreatedAt: time.Now().UTC()},
	}
	if err := persistQueuedJobs(path, queued); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("state file mode = %v, want 0600", fi.Mode().Perm())
	}

	mgr := jobs.New(jobs.Config{Workers: 1})
	defer mgr.Close()
	ran := make(chan string, 2)
	for _, typ := range []string{"cluster", "protect"} {
		mgr.Register(typ, func(ctx context.Context, task *jobs.Task) (any, error) {
			ran <- task.ID
			return nil, nil
		})
	}
	n, err := restoreQueuedJobs(mgr, path)
	if err != nil || n != 2 {
		t.Fatalf("restore = %d, %v", n, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("restore must consume the state file")
	}
	got := map[string]bool{<-ran: true, <-ran: true}
	if !got["j1"] || !got["j2"] {
		t.Fatalf("restored jobs ran = %v", got)
	}

	// An empty drain removes stale state so old jobs cannot resurrect.
	if err := persistQueuedJobs(path, queued); err != nil {
		t.Fatal(err)
	}
	if err := persistQueuedJobs(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("empty persist must remove stale state")
	}
}

func deleteReq(t *testing.T, url, token string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, buf.String()
}

// TestAuditJob is the audit satellite's positive test (the type that used
// to be this suite's unknown-type fixture): protect a dataset, then audit
// the stored release. The paper's per-attribute security measures come
// back positive, and the known-sample re-identification attack — the
// mechanism's documented weakness — recovers the release essentially
// exactly, which the audit must report honestly.
func TestAuditJob(t *testing.T) {
	ts, _ := newJobsServer(t)
	_, tok := uploadDataset(t, ts, "alice", "raw", "", "&labels=last", blobsCSV(t, 120, 3, 13))

	st := submitJob(t, ts, "alice", tok, map[string]any{
		"type": "protect", "dataset": "raw", "dest": "released", "seed": 6,
	})
	if got := waitJob(t, ts, "alice", tok, st.ID); got.State != jobs.StateDone {
		t.Fatalf("protect job: %s: %s", got.State, got.Error)
	}

	st = submitJob(t, ts, "alice", tok, map[string]any{
		"type": "audit", "dataset": "raw", "release": "released", "seed": 3,
	})
	if got := waitJob(t, ts, "alice", tok, st.ID); got.State != jobs.StateDone {
		t.Fatalf("audit job: %s: %s", got.State, got.Error)
	}
	var audit struct {
		Dataset    string `json:"dataset"`
		Release    string `json:"release"`
		KeyVersion int    `json:"key_version"`
		Rows       int    `json:"rows"`
		Cols       int    `json:"cols"`
		Attributes []struct {
			Name           string  `json:"name"`
			ScaleInvariant float64 `json:"scale_invariant"`
		} `json:"attributes"`
		MinSecurity float64 `json:"min_security"`
		Attack      *struct {
			KnownRecords int     `json:"known_records"`
			RMSE         float64 `json:"rmse"`
			WithinTol    float64 `json:"within_tol"`
			Broken       bool    `json:"broken"`
		} `json:"attack"`
		AttackError string `json:"attack_error"`
	}
	jobResult(t, ts, "alice", tok, st.ID, &audit)
	if audit.KeyVersion != 1 || audit.Rows != 120 || audit.Cols != 4 {
		t.Fatalf("audit header = %+v", audit)
	}
	if len(audit.Attributes) != 4 {
		t.Fatalf("attributes = %d, want 4", len(audit.Attributes))
	}
	// Rotated attributes carry real distortion: the weakest link is still
	// strictly positive.
	if !(audit.MinSecurity > 0) {
		t.Fatalf("min_security = %g, want > 0", audit.MinSecurity)
	}
	// The known-sample adversary with cols known rows breaks RBT: the
	// audit reports near-exact recovery.
	if audit.Attack == nil {
		t.Fatalf("no attack result (attack_error = %q)", audit.AttackError)
	}
	if audit.Attack.KnownRecords != 4 {
		t.Fatalf("known_records = %d, want cols", audit.Attack.KnownRecords)
	}
	if !audit.Attack.Broken || audit.Attack.WithinTol < 0.99 || audit.Attack.RMSE > 1e-6 {
		t.Fatalf("attack = %+v, want essentially exact recovery", audit.Attack)
	}

	// Auditing an older key version after a rotation still aligns the
	// spaces correctly.
	st = submitJob(t, ts, "alice", tok, map[string]any{
		"type": "protect", "dataset": "raw", "dest": "released2", "seed": 7,
	})
	waitJob(t, ts, "alice", tok, st.ID)
	st = submitJob(t, ts, "alice", tok, map[string]any{
		"type": "audit", "dataset": "raw", "release": "released", "key_version": 1,
	})
	if got := waitJob(t, ts, "alice", tok, st.ID); got.State != jobs.StateDone {
		t.Fatalf("versioned audit: %s: %s", got.State, got.Error)
	}
	jobResult(t, ts, "alice", tok, st.ID, &audit)
	if audit.KeyVersion != 1 || audit.Attack == nil || !audit.Attack.Broken {
		t.Fatalf("versioned audit = %+v", audit)
	}
}
