package main

// Bearer-token plumbing. The fit-protect call (or dataset upload,
// federation create/join) that creates an owner mints a 256-bit token,
// returns it once in the X-Ppclust-Token response header, and stores only
// its SHA-256 hash in the keyring. Every later request that touches that
// owner's resources must present the token as `Authorization: Bearer
// <token>`. Without this, anyone who can reach the daemon could invert
// any owner's releases; inversion is the owner's privilege, so the owner
// must hold a credential.
//
// The verification itself (hashing, constant-time compare, the
// 401-vs-403 distinction) lives in internal/service; this file only
// extracts the header and honors -insecure-no-auth, which disables the
// check for deployments behind an authenticating proxy on a trusted
// network.

import (
	"net/http"
	"strings"

	"ppclust/internal/obs"
)

// authorize checks the request's bearer token against the owner's stored
// credential. The caller must have established that the owner exists.
func (s *server) authorize(r *http.Request, owner string) error {
	if s.authDisabled {
		return nil
	}
	_, sp := obs.Start(r.Context(), "auth")
	defer sp.End()
	token, _ := bearerToken(r)
	err := s.svc.Authorize(owner, token)
	if err != nil {
		sp.Set("denied", true)
	}
	return err
}

func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return "", false
	}
	return auth[len(prefix):], true
}
