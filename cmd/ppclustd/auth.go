package main

// Per-owner bearer-token authentication. The fit-protect call that creates
// an owner mints a 256-bit token, returns it once in the X-Ppclust-Token
// response header, and stores only its SHA-256 hash in the keyring. Every
// later request that touches that owner's key material — recover,
// stream-protect, re-protect (key rotation) — must present the token as
// `Authorization: Bearer <token>`. Without this, anyone who can reach the
// daemon could invert any owner's releases; inversion is the owner's
// privilege, so the owner must hold a credential.
//
// Auth can be disabled with -insecure-no-auth for deployments that sit
// behind an authenticating proxy on a trusted network.

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"ppclust/internal/keyring"
)

var (
	errNoToken      = errors.New("missing bearer token")
	errBadToken     = errors.New("invalid bearer token")
	errNoCredential = errors.New("owner has no credential on file (created with auth disabled, or before token auth existed); re-protect the owner once under -insecure-no-auth to mint one")
)

// newToken mints a fresh owner credential and the hash to store for it.
func newToken() (token string, hash []byte, err error) {
	var raw [32]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", nil, fmt.Errorf("minting token: %w", err)
	}
	token = hex.EncodeToString(raw[:])
	return token, hashToken(token), nil
}

func hashToken(token string) []byte {
	h := sha256.Sum256([]byte(token))
	return h[:]
}

// authorize checks the request's bearer token against the owner's stored
// credential hash. The caller must have established that the owner exists.
func (s *server) authorize(r *http.Request, owner string) error {
	if s.authDisabled {
		return nil
	}
	stored, err := s.keys.TokenHash(owner)
	if err != nil {
		if errors.Is(err, keyring.ErrNotFound) {
			return fmt.Errorf("owner %q: %w", owner, errNoCredential)
		}
		return err
	}
	token, ok := bearerToken(r)
	if !ok {
		return fmt.Errorf("owner %q: %w", owner, errNoToken)
	}
	if subtle.ConstantTimeCompare(hashToken(token), stored) != 1 {
		return fmt.Errorf("owner %q: %w", owner, errBadToken)
	}
	return nil
}

func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return "", false
	}
	return auth[len(prefix):], true
}

// writeAuthErr maps credential failures onto HTTP statuses: 401 when no
// token was presented (authenticate and retry), 403 when a token was
// presented but does not match the owner — e.g. another owner's valid
// credential, which authenticates its holder but grants nothing here —
// and 403 when the owner has no credential that could ever be presented.
func writeAuthErr(w http.ResponseWriter, err error) {
	code := http.StatusForbidden
	if errors.Is(err, errNoToken) {
		code = http.StatusUnauthorized
		w.Header().Set("WWW-Authenticate", `Bearer realm="ppclust"`)
	}
	writeErr(w, code, err)
}
