package main

// Ring ingest benchmarks: the same multi-owner upload workload against
// a single node and a 3-node ring. CI's bench smoke runs these and
// records the pair into BENCH_ppring.json, so the ingest scaling the
// ring buys (or costs) is tracked over time.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"ppclust/internal/dataset"
)

func benchCSV(tb testing.TB, rows int) string {
	tb.Helper()
	ds, err := dataset.SyntheticPatients(rows, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		tb.Fatal(err)
	}
	ds = ds.DropIDs()
	ds.Labels = nil
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, ds); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// benchHTTP keeps enough idle connections per host that the benchmark
// measures ingest, not TCP connection churn.
var benchHTTP = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
}}

func benchUpload(url, token, body string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/csv")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := benchHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp, nil
}

// benchmarkRingIngest uploads datasets for three owners concurrently,
// each client talking to its owner's home node (the routing a
// ring-aware client performs), so a 3-node ring spreads the ingest
// across all three daemons while a single node absorbs all of it.
func benchmarkRingIngest(b *testing.B, nNodes int) {
	nodes := startRing(b, nNodes, 0, "")
	csvBody := benchCSV(b, 256)

	const nOwners = 3
	owners := make([]string, nOwners)
	tokens := make([]string, nOwners)
	homes := make([]*ringTestNode, nOwners)
	for i := range owners {
		homes[i] = nodes[i%len(nodes)]
		owners[i] = ownerHomedOn(b, nodes, homes[i].id, i*1000)
		resp, err := benchUpload(
			fmt.Sprintf("%s/v1/datasets?owner=%s&name=seed", homes[i].srv.URL, owners[i]), "", csvBody)
		if err != nil || resp.StatusCode != http.StatusCreated {
			b.Fatalf("seeding owner %s: %v (%v)", owners[i], err, resp)
		}
		tokens[i] = resp.Header.Get("X-Ppclust-Token")
	}

	b.SetBytes(int64(len(csvBody)))
	b.ResetTimer()
	var ctr int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&ctr, 1)
			oi := int(i) % nOwners
			url := fmt.Sprintf("%s/v1/datasets?owner=%s&name=bench%d", homes[oi].srv.URL, owners[oi], i)
			resp, err := benchUpload(url, tokens[oi], csvBody)
			if err != nil {
				b.Errorf("upload: %v", err)
				return
			}
			if resp.StatusCode != http.StatusCreated {
				b.Errorf("upload: status %d", resp.StatusCode)
				return
			}
		}
	})
}

func BenchmarkRingIngest1Node(b *testing.B)  { benchmarkRingIngest(b, 1) }
func BenchmarkRingIngest3Nodes(b *testing.B) { benchmarkRingIngest(b, 3) }

// benchmarkRingJobs measures end-to-end clustering job throughput:
// submit a cluster job against a pre-seeded dataset, poll it to a
// terminal state and fetch the result. As with ingest, each owner's
// client targets its home node.
func benchmarkRingJobs(b *testing.B, nNodes int) {
	nodes := startRing(b, nNodes, 0, "")
	csvBody := benchCSV(b, 128)

	const nOwners = 3
	owners := make([]string, nOwners)
	tokens := make([]string, nOwners)
	homes := make([]*ringTestNode, nOwners)
	for i := range owners {
		homes[i] = nodes[i%len(nodes)]
		owners[i] = ownerHomedOn(b, nodes, homes[i].id, i*1000)
		resp, err := benchUpload(
			fmt.Sprintf("%s/v1/datasets?owner=%s&name=seed", homes[i].srv.URL, owners[i]), "", csvBody)
		if err != nil || resp.StatusCode != http.StatusCreated {
			b.Fatalf("seeding owner %s: %v (%v)", owners[i], err, resp)
		}
		tokens[i] = resp.Header.Get("X-Ppclust-Token")
	}

	benchJSON := func(method, url, token, body string, out any) (int, error) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return 0, err
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := benchHTTP.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	b.ResetTimer()
	var ctr int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			oi := int(atomic.AddInt64(&ctr, 1)) % nOwners
			base, owner, token := homes[oi].srv.URL, owners[oi], tokens[oi]
			var st struct {
				ID    string `json:"id"`
				State string `json:"state"`
			}
			code, err := benchJSON(http.MethodPost,
				fmt.Sprintf("%s/v1/jobs?owner=%s", base, owner), token,
				`{"type":"cluster","dataset":"seed","k":3}`, &st)
			if err != nil || code != http.StatusAccepted {
				b.Errorf("submit: status %d, %v", code, err)
				return
			}
			for st.State != "done" && st.State != "failed" && st.State != "cancelled" {
				if code, err = benchJSON(http.MethodGet,
					fmt.Sprintf("%s/v1/jobs/%s?owner=%s", base, st.ID, owner), token, "", &st); err != nil || code != http.StatusOK {
					b.Errorf("poll: status %d, %v", code, err)
					return
				}
			}
			if st.State != "done" {
				b.Errorf("job %s ended %s", st.ID, st.State)
				return
			}
		}
	})
}

func BenchmarkRingJobs1Node(b *testing.B)  { benchmarkRingJobs(b, 1) }
func BenchmarkRingJobs3Nodes(b *testing.B) { benchmarkRingJobs(b, 3) }
