package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGuardRatios(t *testing.T) {
	dir := t.TempDir()
	baseline := writeDoc(t, dir, "base.json", `{"benchmarks":[
		{"name":"BenchmarkX/slow","ns_per_op":300},
		{"name":"BenchmarkX/fast","ns_per_op":100}]}`)
	// Same 3.0x speedup: passes.
	same := writeDoc(t, dir, "same.json", `{"benchmarks":[
		{"name":"BenchmarkX/slow","ns_per_op":600},
		{"name":"BenchmarkX/fast","ns_per_op":200}]}`)
	// Speedup collapsed to 1.5x: a >15% regression.
	worse := writeDoc(t, dir, "worse.json", `{"benchmarks":[
		{"name":"BenchmarkX/slow","ns_per_op":300},
		{"name":"BenchmarkX/fast","ns_per_op":200}]}`)
	// 2.7x is a 10% drop: inside the default tolerance.
	drift := writeDoc(t, dir, "drift.json", `{"benchmarks":[
		{"name":"BenchmarkX/slow","ns_per_op":270},
		{"name":"BenchmarkX/fast","ns_per_op":100}]}`)

	args := func(current string) []string {
		return []string{"-baseline", baseline, "-current", current,
			"-ratio", "BenchmarkX/slow:BenchmarkX/fast"}
	}
	var out bytes.Buffer
	if err := run(args(same), &out); err != nil {
		t.Fatalf("identical ratio failed: %v", err)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("output = %q", out.String())
	}
	if err := run(args(drift), &out); err != nil {
		t.Fatalf("10%% drift within 15%% tolerance failed: %v", err)
	}
	err := run(args(worse), &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("collapsed speedup passed: %v", err)
	}
	// A machine 2x slower overall (both benches scale) still passes:
	// the guard is ratio-normalized.
	if err := run(args(same), &out); err != nil {
		t.Fatal(err)
	}

	// Tighter tolerance flips the drift case to a failure.
	if err := run(append(args(drift), "-tolerance", "0.05"), &out); err == nil {
		t.Fatal("5% tolerance accepted a 10% drop")
	}

	// Missing benchmarks and malformed specs are errors, not passes.
	if err := run([]string{"-baseline", baseline, "-current", same,
		"-ratio", "BenchmarkX/slow:BenchmarkMissing"}, &out); err == nil {
		t.Fatal("missing benchmark accepted")
	}
	if err := run([]string{"-baseline", baseline, "-current", same,
		"-ratio", "nocolon"}, &out); err == nil {
		t.Fatal("malformed -ratio accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Fatal("no flags accepted")
	}
}
