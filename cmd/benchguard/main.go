// Command benchguard is the CI regression gate over benchjson artifacts.
// It compares speedup ratios — not absolute ns/op — between a committed
// baseline document and the current run, so the gate holds on any runner
// speed: a ratio like rows-path / columnar-path time is a property of the
// code, while raw nanoseconds are a property of the machine.
//
// Usage:
//
//	benchguard -baseline bench/BENCH_ppspeed_baseline.json \
//	           -current BENCH_ppspeed.json \
//	           -tolerance 0.15 \
//	           -ratio 'BenchmarkEngineProtectParallel/rows/workers=4:BenchmarkEngineProtectParallel/workers=4' \
//	           -ratio 'BenchmarkWireIngestProtect/csv:BenchmarkWireIngestProtect/binary'
//
// Each -ratio names slow:fast benchmarks; the guarded quantity is
// slowNs/fastNs (how many times faster the fast path is). The gate fails
// when the current ratio falls more than -tolerance below the baseline's
// — e.g. the columnar kernels or the binary wire path losing >15% of
// their measured advantage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// result and doc mirror benchjson's artifact (only the fields the guard
// reads).
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type doc struct {
	Benchmarks []result `json:"benchmarks"`
}

// ratioSpec is one slow:fast pair to guard.
type ratioSpec struct{ slow, fast string }

type ratioFlags []ratioSpec

func (r *ratioFlags) String() string { return fmt.Sprintf("%v", []ratioSpec(*r)) }

func (r *ratioFlags) Set(v string) error {
	slow, fast, ok := strings.Cut(v, ":")
	if !ok || slow == "" || fast == "" {
		return fmt.Errorf("want slowBench:fastBench, got %q", v)
	}
	*r = append(*r, ratioSpec{slow: slow, fast: fast})
	return nil
}

func load(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d doc
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	ns := make(map[string]float64, len(d.Benchmarks))
	for _, b := range d.Benchmarks {
		ns[b.Name] = b.NsPerOp
	}
	return ns, nil
}

func ratio(ns map[string]float64, spec ratioSpec, src string) (float64, error) {
	slow, ok := ns[spec.slow]
	if !ok {
		return 0, fmt.Errorf("%s: no benchmark %q", src, spec.slow)
	}
	fast, ok := ns[spec.fast]
	if !ok {
		return 0, fmt.Errorf("%s: no benchmark %q", src, spec.fast)
	}
	if fast <= 0 || slow <= 0 {
		return 0, fmt.Errorf("%s: non-positive ns/op for %q or %q", src, spec.slow, spec.fast)
	}
	return slow / fast, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "", "committed benchjson baseline document")
	currentPath := fs.String("current", "", "benchjson document from this run")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional drop of a speedup ratio before failing")
	var ratios ratioFlags
	fs.Var(&ratios, "ratio", "slowBench:fastBench speedup to guard (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" || *currentPath == "" || len(ratios) == 0 {
		return fmt.Errorf("need -baseline, -current and at least one -ratio")
	}
	base, err := load(*baselinePath)
	if err != nil {
		return err
	}
	cur, err := load(*currentPath)
	if err != nil {
		return err
	}

	var failures []string
	for _, spec := range ratios {
		br, err := ratio(base, spec, *baselinePath)
		if err != nil {
			return err
		}
		cr, err := ratio(cur, spec, *currentPath)
		if err != nil {
			return err
		}
		floor := br * (1 - *tolerance)
		status := "ok"
		if cr < floor {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s vs %s: speedup %.2fx < %.2fx (baseline %.2fx -%.0f%%)",
				spec.fast, spec.slow, cr, floor, br, *tolerance*100))
		}
		fmt.Fprintf(stdout, "%-10s %s vs %s: baseline %.2fx, current %.2fx (floor %.2fx)\n",
			status, spec.fast, spec.slow, br, cr, floor)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}
