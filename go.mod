module ppclust

go 1.24
