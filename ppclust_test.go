package ppclust

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/matrix"
)

func cardiac() *Dataset { return dataset.CardiacSample() }

func defaultOpts() ProtectOptions {
	return ProtectOptions{Thresholds: []PST{{Rho1: 0.2, Rho2: 0.2}}}
}

func TestProtectBasics(t *testing.T) {
	p, err := Protect(cardiac(), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if p.Released.IDs != nil {
		t.Fatal("IDs should be suppressed by default (Section 5.3 Step 2)")
	}
	if p.Released.Labels != nil {
		t.Fatal("labels must never be released")
	}
	if p.Released.Rows() != 5 || p.Released.Cols() != 3 {
		t.Fatal("released shape wrong")
	}
	if len(p.Reports) == 0 {
		t.Fatal("reports missing")
	}
	// The release must differ from the raw data everywhere meaningful.
	if matrix.EqualApprox(p.Released.Data, cardiac().Data, 0.5) {
		t.Fatal("release suspiciously close to raw data")
	}
}

func TestProtectKeepIDs(t *testing.T) {
	opts := defaultOpts()
	opts.KeepIDs = true
	p, err := Protect(cardiac(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Released.IDs == nil || p.Released.IDs[0] != "1237" {
		t.Fatal("KeepIDs should retain identifiers")
	}
}

func TestProtectPreservesDistancesOfNormalizedData(t *testing.T) {
	ds := cardiac()
	p, err := Protect(ds, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.CardiacNormalized().Data
	before := dist.NewDissimMatrix(want, dist.Euclidean{})
	after := dist.NewDissimMatrix(p.Released.Data, dist.Euclidean{})
	if !before.EqualApprox(after, 1e-3) {
		t.Fatal("released distances should equal normalized-data distances")
	}
}

func TestProtectRecoverRoundTrip(t *testing.T) {
	for _, method := range []Normalization{ZScore, MinMax} {
		opts := defaultOpts()
		opts.Normalization = method
		if method == MinMax {
			// Unit-range data needs smaller thresholds to stay feasible.
			opts.Thresholds = []PST{{Rho1: 0.01, Rho2: 0.01}}
		}
		p, err := Protect(cardiac(), opts)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		back, err := Recover(p.Released, p.Secret())
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !matrix.EqualApprox(back.Data, cardiac().Data, 1e-8) {
			t.Fatalf("%s: recovery did not restore raw values", method)
		}
	}
}

func TestSecretSerializationRoundTrip(t *testing.T) {
	p, err := Protect(cardiac(), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.Secret().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	secret, err := ParseSecret(blob)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Recover(p.Released, secret)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(back.Data, cardiac().Data, 1e-8) {
		t.Fatal("recovery from serialized secret failed")
	}
}

func TestParseSecretErrors(t *testing.T) {
	if _, err := ParseSecret([]byte("{")); err == nil {
		t.Fatal("malformed json should fail")
	}
	if _, err := ParseSecret([]byte(`{"normalization":"bogus"}`)); !errors.Is(err, ErrOptions) {
		t.Fatal("unknown normalization should fail")
	}
}

func TestProtectErrors(t *testing.T) {
	if _, err := Protect(nil, defaultOpts()); !errors.Is(err, ErrOptions) {
		t.Fatal("nil dataset should fail")
	}
	bad := &Dataset{Names: []string{"a"}, Data: matrix.NewDense(2, 2, nil)}
	if _, err := Protect(bad, defaultOpts()); err == nil {
		t.Fatal("invalid dataset should fail")
	}
	opts := defaultOpts()
	opts.Normalization = "bogus"
	if _, err := Protect(cardiac(), opts); !errors.Is(err, ErrOptions) {
		t.Fatal("bad normalization should fail")
	}
	if _, err := Protect(cardiac(), ProtectOptions{}); err == nil {
		t.Fatal("missing thresholds should fail")
	}
	// Constant column defeats z-score.
	constant := &Dataset{
		Names: []string{"a", "b"},
		Data:  matrix.FromRows([][]float64{{1, 2}, {1, 3}}),
	}
	if _, err := Protect(constant, defaultOpts()); err == nil {
		t.Fatal("constant column should fail normalization")
	}
}

func TestRecoverErrors(t *testing.T) {
	p, err := Protect(cardiac(), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(nil, p.Secret()); !errors.Is(err, ErrOptions) {
		t.Fatal("nil dataset should fail")
	}
	secret := p.Secret()
	secret.Normalization = "bogus"
	if _, err := Recover(p.Released, secret); !errors.Is(err, ErrOptions) {
		t.Fatal("bad normalization should fail")
	}
	secret = p.Secret()
	secret.Key = Key{}
	if _, err := Recover(p.Released, secret); err == nil {
		t.Fatal("empty key should fail")
	}
	secret = p.Secret()
	secret.ParamsB = []float64{0, 0, 0} // zero stds
	if _, err := Recover(p.Released, secret); err == nil {
		t.Fatal("zero stds should fail")
	}
}

func TestProtectSeededDeterminism(t *testing.T) {
	opts := defaultOpts()
	opts.Seed = 42
	a, err := Protect(cardiac(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Protect(cardiac(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a.Released.Data, b.Released.Data) {
		t.Fatal("same seed should give identical releases")
	}
	opts.Seed = 43
	c, err := Protect(cardiac(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.Equal(a.Released.Data, c.Released.Data) {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestProtectPaperConfiguration(t *testing.T) {
	p, err := Protect(cardiac(), ProtectOptions{
		Pairs:       []Pair{{I: 0, J: 2}, {I: 1, J: 0}},
		Thresholds:  []PST{{Rho1: 0.30, Rho2: 0.55}, {Rho1: 2.30, Rho2: 2.30}},
		FixedAngles: []float64{312.47, 147.29},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(p.Released.Data, dataset.CardiacTransformed().Data, 5e-5) {
		t.Fatal("facade does not reproduce Table 3")
	}
}

// Property: Protect → Recover is the identity on random datasets for both
// normalizations.
func TestQuickProtectRecoverRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(30)
		n := 2 + rng.Intn(5)
		data := matrix.RandomDense(m, n, rng)
		data.ScaleInPlace(3)
		names := make([]string, n)
		for j := range names {
			names[j] = string(rune('a' + j))
		}
		ds, err := dataset.New(names, data)
		if err != nil {
			return false
		}
		p, err := Protect(ds, ProtectOptions{
			Thresholds: []PST{{Rho1: 1e-6, Rho2: 1e-6}},
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		back, err := Recover(p.Released, p.Secret())
		if err != nil {
			return false
		}
		return matrix.EqualApprox(back.Data, data, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
