// The attackdemo example shows both sides of RBT's security story.
//
// First the defense the paper demonstrates: an attacker who re-normalizes
// the released data only destroys its geometry (Section 5.2 / Table 5).
// Then the attacks published after the paper: with a handful of known
// records — or with nothing but distributional knowledge of the population
// — the rotation is recovered and every record decrypted. This is why
// rotation perturbation is no longer considered a privacy mechanism, and
// why the soundness caveat in DESIGN.md exists.
//
// The same known-sample adversary is one of the three axes the tune job
// sweeps for every candidate mechanism (examples/tuning): this file is the
// offline, single-mechanism view; the served sweep's reident_rate column
// is the same measurement across rbt, noise and hybrid settings.
//
// Run with:
//
//	go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppclust"
	"ppclust/internal/attack"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/norm"
	"ppclust/internal/stats"
)

func main() {
	// A realistic-sized release: 2000 patients, five vitals.
	rng := rand.New(rand.NewSource(5))
	patients, err := dataset.SyntheticPatients(2000, 3, rng)
	if err != nil {
		log.Fatal(err)
	}
	protected, err := ppclust.Protect(patients, ppclust.ProtectOptions{
		Thresholds: []ppclust.PST{{Rho1: 0.4, Rho2: 0.4}},
		Seed:       17,
	})
	if err != nil {
		log.Fatal(err)
	}
	released := protected.Released.Data

	// The defender's reference point: the normalized original.
	z := &norm.ZScore{Denominator: stats.Sample}
	normalized, err := norm.FitTransform(z, patients.Data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== attack 1: re-normalization (the paper's Section 5.2 adversary) ===")
	renorm, err := attack.Renormalize(released)
	if err != nil {
		log.Fatal(err)
	}
	sample := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	before := dist.NewDissimMatrix(normalized.SelectRows(sample), dist.Euclidean{})
	after := dist.NewDissimMatrix(renorm.SelectRows(sample), dist.Euclidean{})
	drift, err := before.MaxAbsDiff(after)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distances drift by up to %.3f after re-normalizing — geometry destroyed, attack FAILS\n", drift)
	fmt.Println("(this is the paper's Table 5 phenomenon, and its claim holds)")

	fmt.Println("\n=== attack 2: known input-output records ===")
	// The adversary re-identified 5 patients out of band (say, themselves
	// and four acquaintances) and knows their normalized vitals.
	rows := []int{3, 77, 500, 1200, 1999}
	qhat, err := attack.KnownIO(normalized.SelectRows(rows), released.SelectRows(rows))
	if err != nil {
		log.Fatal(err)
	}
	recovered, err := attack.RecoverWithQ(released, qhat)
	if err != nil {
		log.Fatal(err)
	}
	met, err := attack.Measure(normalized, recovered, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d known records: %.1f%% of ALL %d×%d cells recovered exactly (RMSE %.1e)\n",
		len(rows), met.WithinTol*100, normalized.Rows(), normalized.Cols(), met.RMSE)
	fmt.Println("the rotation key offers no protection against known plaintext — attack SUCCEEDS")

	fmt.Println("\n=== attack 3: PCA eigen-alignment (distributional knowledge only) ===")
	// The adversary has no released-row correspondence at all — only a
	// public dataset drawn from the same population (e.g. published
	// hospital statistics), from which they estimate covariance and
	// skewness.
	publicSample, err := dataset.SyntheticPatients(2000, 3, rand.New(rand.NewSource(1234)))
	if err != nil {
		log.Fatal(err)
	}
	publicNorm, err := norm.FitTransform(&norm.ZScore{Denominator: stats.Sample}, publicSample.Data)
	if err != nil {
		log.Fatal(err)
	}
	refCov := stats.CovarianceMatrix(publicNorm, stats.Sample)
	refSkew := make([]float64, publicNorm.Cols())
	for j := range refSkew {
		refSkew[j] = attack.Skewness(publicNorm.Col(j))
	}
	pcaOut, err := attack.PCA(released, refCov, refSkew)
	if err != nil {
		log.Fatal(err)
	}
	pcaMet, err := attack.Measure(normalized, pcaOut.Recovered, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with population statistics only: %.1f%% of cells within 0.25 std (RMSE %.3f), %d sign candidates tried\n",
		pcaMet.WithinTol*100, pcaMet.RMSE, pcaOut.CandidatesTried)
	if pcaMet.WithinTol > 0.5 {
		fmt.Println("distributional knowledge alone largely breaks the scheme — attack SUCCEEDS")
	} else {
		fmt.Println("this population's structure resisted eigen-alignment (near-tied eigenvalues or symmetric marginals)")
	}

	// Show what "recovered" means concretely for one patient.
	fmt.Println("\nfirst patient, normalized truth vs known-IO recovery:")
	for j, name := range patients.Names {
		fmt.Printf("  %-12s true %9.4f   recovered %9.4f\n", name, normalized.At(0, j), recovered.At(0, j))
	}

	// The served counterpart: attack 2 is exactly the adversary the tune
	// job (examples/tuning, POST /v1/jobs {"type":"tune"}) replays against
	// every candidate mechanism — its reident_rate axis is this WithinTol
	// number. Where this demo shows pure RBT collapsing to ~100%, the
	// sweep shows which noise and hybrid settings hold that axis near 0%
	// and what utility they pay for it.
	fmt.Println("\nto see this attack as a tuning axis across mechanisms (rbt vs noise vs")
	fmt.Println("hybrid), run the served sweep: go run ./examples/tuning — its frontier's")
	fmt.Println("reident_rate column is this known-IO attack, per candidate.")
}
