// The medical example plays out the paper's first motivating scenario: a
// hospital wants researchers to find groups of similar patients without
// seeing anyone's actual vitals.
//
// A synthetic cohort of 300 patients in three disease groups is protected
// with RBT; the "researcher" clusters only the released data with k-means
// and k-medoids and gets exactly the clusters the hospital would have found
// on the original data, while every attribute value they see has been
// rotated away from its true value.
//
// Run with:
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppclust"
	"ppclust/internal/cluster"
	"ppclust/internal/dataset"
	"ppclust/internal/norm"
	"ppclust/internal/privacy"
	"ppclust/internal/quality"
	"ppclust/internal/stats"
)

func main() {
	// The hospital's private cohort: three disease groups over five vitals.
	rng := rand.New(rand.NewSource(2024))
	patients, err := dataset.SyntheticPatients(300, 3, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hospital cohort: %d patients, attributes %v\n", patients.Rows(), patients.Names)

	// Hospital side: protect and release. A PST of (0.4, 0.4) demands
	// substantial distortion of every attribute pair.
	protected, err := ppclust.Protect(patients, ppclust.ProtectOptions{
		Thresholds: []ppclust.PST{{Rho1: 0.4, Rho2: 0.4}},
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released: IDs suppressed, %d attribute pairs rotated\n\n", len(protected.Reports))

	// What the researcher would see for the first patient vs the truth.
	fmt.Println("first patient, true vs released values:")
	for j, name := range patients.Names {
		fmt.Printf("  %-12s true %8.2f   released %8.4f\n",
			name, patients.Data.At(0, j), protected.Released.Data.At(0, j))
	}

	// Researcher side: cluster the released data only.
	kmeans := func() cluster.Clusterer { return &cluster.KMeans{K: 3, Rand: rand.New(rand.NewSource(1))} }
	released, err := kmeans().Cluster(protected.Released.Data)
	if err != nil {
		log.Fatal(err)
	}

	// Hospital-side ground truth for comparison: the same algorithm on the
	// normalized original. (The hospital can compute this; the researcher
	// cannot.)
	z := &norm.ZScore{Denominator: stats.Sample}
	normalized, err := norm.FitTransform(z, patients.Data)
	if err != nil {
		log.Fatal(err)
	}
	original, err := kmeans().Cluster(normalized)
	if err != nil {
		log.Fatal(err)
	}

	misclass, err := quality.MisclassificationError(original.Assignments, released.Assignments)
	if err != nil {
		log.Fatal(err)
	}
	ari, err := quality.AdjustedRandIndex(released.Assignments, patients.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclustering on released vs original data: misclassification = %.4f (Corollary 1 says 0)\n", misclass)
	fmt.Printf("released-data clusters vs true disease groups: ARI = %.3f\n", ari)

	// PAM agrees too — algorithm independence in action.
	pamReleased, err := (&cluster.KMedoids{K: 3}).Cluster(protected.Released.Data)
	if err != nil {
		log.Fatal(err)
	}
	pamOriginal, err := (&cluster.KMedoids{K: 3}).Cluster(normalized)
	if err != nil {
		log.Fatal(err)
	}
	pamMis, err := quality.MisclassificationError(pamOriginal.Assignments, pamReleased.Assignments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same check with k-medoids (PAM): misclassification = %.4f\n\n", pamMis)

	// How private is the release? Compare normalized truth vs release.
	reports, err := privacy.Report(normalized, protected.Released.Data, patients.Names, stats.Sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy report (normalized space):\n%s", privacy.FormatReports(reports))
	fmt.Printf("weakest-attribute security Var(X-X')/Var(X): %.4f\n", privacy.MinimumSecurity(reports))
}
