// The marketing example follows the paper's second motivating scenario
// from the data owner's side: an on-line retailer wants an outside
// analytics firm to segment its customers without handing over anyone's
// actual purchase history.
//
// The retailer protects its RFM-style customer table with RBT, the analyst
// segments the release with Ward hierarchical clustering, ships back only
// the cluster assignments, and the retailer joins those assignments with
// the raw data it never shared to build actionable segment profiles.
//
// Run with:
//
//	go run ./examples/marketing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppclust"
	"ppclust/internal/cluster"
	"ppclust/internal/dataset"
	"ppclust/internal/quality"
	"ppclust/internal/report"
	"ppclust/internal/stats"
)

func main() {
	// Retailer side: the private customer table.
	rng := rand.New(rand.NewSource(99))
	customers, err := dataset.SyntheticCustomers(400, 4, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retailer table: %d customers, attributes %v\n", customers.Rows(), customers.Names)

	// Protect for release. KeepIDs lets the analyst return per-customer
	// assignments; the IDs are pseudonymous account numbers.
	protected, err := ppclust.Protect(customers, ppclust.ProtectOptions{
		Thresholds: []ppclust.PST{{Rho1: 0.5, Rho2: 0.5}},
		Seed:       31,
		KeepIDs:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Analyst side: sees only rotated values. Segment with Ward linkage.
	ward := &cluster.Hierarchical{K: 4, Linkage: cluster.WardLinkage}
	res, err := ward.Cluster(protected.Released.Data)
	if err != nil {
		log.Fatal(err)
	}
	sil, err := quality.Silhouette(protected.Released.Data, res.Assignments, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyst: %s found %d segments on the release (silhouette %.3f)\n",
		ward.Name(), res.K, sil)

	// Sanity: the segments match the true generator groups even though the
	// analyst never saw a single real number.
	ari, err := quality.AdjustedRandIndex(res.Assignments, customers.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segments vs true generator groups: ARI = %.3f\n\n", ari)

	// Retailer side again: join the analyst's assignments with the raw
	// values (which never left the building) to profile each segment.
	fmt.Println("retailer-side segment profiles (raw attribute means):")
	tb := report.NewTable(append([]string{"segment", "size"}, customers.Names...)...)
	for c := 0; c < res.K; c++ {
		var rows []int
		for i, a := range res.Assignments {
			if a == c {
				rows = append(rows, i)
			}
		}
		cells := []string{fmt.Sprintf("%d", c), fmt.Sprintf("%d", len(rows))}
		sub := customers.Data.SelectRows(rows)
		for j := range customers.Names {
			cells = append(cells, fmt.Sprintf("%.1f", stats.Mean(sub.Col(j))))
		}
		tb.AddRow(cells...)
	}
	fmt.Println(tb.String())
	fmt.Println("the analyst saw none of these raw values; the retailer never saw its own data leave.")
}
