// The quickstart example walks the paper's worked example end to end on
// the embedded cardiac-arrhythmia sample: protect the data with the exact
// pairs, thresholds and angles of Section 5.1, verify the release matches
// the paper's Table 3, confirm that distances survive, and recover the
// original values with the owner's secret.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ppclust"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/report"
)

func main() {
	// Table 1: the raw hospital sample (age, weight, heart_rate).
	ds := dataset.CardiacSample()
	fmt.Println("raw data (paper Table 1):")
	printDataset(ds)

	// Protect with the paper's exact configuration. In production you
	// would omit FixedAngles and set a Seed instead; the angles are pinned
	// here so the output matches the paper line by line.
	protected, err := ppclust.Protect(ds, ppclust.ProtectOptions{
		Pairs:       []ppclust.Pair{{I: 0, J: 2}, {I: 1, J: 0}},
		Thresholds:  []ppclust.PST{{Rho1: 0.30, Rho2: 0.55}, {Rho1: 2.30, Rho2: 2.30}},
		FixedAngles: []float64{312.47, 147.29},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("released data (paper Table 3; IDs suppressed):")
	printDataset(protected.Released)

	for _, r := range protected.Reports {
		fmt.Printf("pair (%s,%s): θ=%.2f°  Var(Ai-Ai')=%.4f  Var(Aj-Aj')=%.4f  range %v\n",
			ds.Names[r.Pair.I], ds.Names[r.Pair.J], r.ThetaDeg, r.VarI, r.VarJ, r.SecurityRange)
	}

	// The whole point: the dissimilarity matrix of the release equals that
	// of the normalized original (paper Table 4), so clustering results
	// are identical.
	dm := dist.NewDissimMatrix(protected.Released.Data, dist.Euclidean{})
	fmt.Printf("\ndissimilarity matrix of the release (paper Table 4):\n%s\n",
		report.LowerTriangle(dm.LowerTriangle()))

	// Only the secret holder can go back to raw values.
	secret := protected.Secret()
	recovered, err := ppclust.Recover(protected.Released, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered data (owner side, using the secret):")
	printDataset(recovered)
}

func printDataset(ds *ppclust.Dataset) {
	tb := report.NewTable(append([]string{"ID"}, ds.Names...)...)
	for i := 0; i < ds.Rows(); i++ {
		row := make([]string, 0, ds.Cols()+1)
		if ds.IDs != nil {
			row = append(row, ds.IDs[i])
		} else {
			row = append(row, fmt.Sprintf("#%d", i))
		}
		for j := 0; j < ds.Cols(); j++ {
			row = append(row, fmt.Sprintf("%8.4f", ds.Data.At(i, j)))
		}
		tb.AddRow(row...)
	}
	fmt.Println(tb.String())
}
