// Command streaming demonstrates the incremental protection API: fit a
// Protector once on seed data, protect later record batches under the
// frozen key (distances preserved across batches), and rebuild the
// Protector from a serialized secret — the service-restart path that
// cmd/ppclustd exercises over HTTP.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppclust"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/matrix"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	seed, err := dataset.SyntheticPatients(1000, 3, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Fit once: normalization parameters and the PST-checked rotation key
	// are frozen here.
	p, err := ppclust.NewProtector(seed, ppclust.ProtectOptions{
		Thresholds: []ppclust.PST{{Rho1: 0.3, Rho2: 0.3}},
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted on %d rows; released %d rows, %d rotated pairs\n",
		seed.Rows(), p.Released().Rows(), len(p.Reports()))

	// Protect a stream of later arrivals batch by batch.
	in := make(chan *ppclust.Dataset)
	go func() {
		defer close(in)
		for i := 0; i < 3; i++ {
			batch, err := dataset.SyntheticPatients(200, 3, rng)
			if err != nil {
				log.Fatal(err)
			}
			in <- batch
		}
	}()
	var releases []*ppclust.Dataset
	for res := range p.ProtectStream(in) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		releases = append(releases, res.Released)
		fmt.Printf("stream batch %d: released %d rows\n", len(releases), res.Released.Rows())
	}

	// Every batch shares one orthogonal map, so distances are preserved
	// across batches: stack two releases and check against their originals.
	joined, err := matrix.AppendRows(releases[0].Data, releases[1].Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stacked releases: %d rows, distance matrix %d objects\n",
		joined.Rows(), dist.NewDissimMatrix(joined, dist.Euclidean{}).Len())

	// The owner's secret round-trips through JSON — the service restart
	// path — and still inverts every release.
	raw, err := p.Secret().Marshal()
	if err != nil {
		log.Fatal(err)
	}
	q, err := ppclust.NewProtectorFromSecret(mustParse(raw))
	if err != nil {
		log.Fatal(err)
	}
	back, err := q.RecoverBatch(releases[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered batch 3: %d rows restored (secret was %d bytes of JSON)\n",
		back.Rows(), len(raw))
}

func mustParse(raw []byte) ppclust.OwnerSecret {
	s, err := ppclust.ParseSecret(raw)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
