// Embedded use of the ppclust service layer: the daemon's workloads —
// datasets, async jobs, evaluation — driven fully in-process through
// internal/service, with no HTTP listener and no socket anywhere.
//
// This is the library face of the same architecture ppclustd serves over
// HTTP: transport → service → storage/engine. The program wires the
// service layer to in-memory stores, uploads a dataset, runs a protect
// job (release + stored key version), then an evaluate job proving the
// release clusters identically to the normalized original.
//
//	go run ./examples/embedded
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/federation"
	"ppclust/internal/jobs"
	"ppclust/internal/keyring"
	"ppclust/internal/service"
)

func main() {
	// The same wiring main.go does for the daemon — swap in OpenDir /
	// OpenFile stores for persistence.
	mgr := jobs.New(jobs.Config{Workers: 2})
	defer mgr.Close()
	svc := service.New(service.Config{
		Engine:      engine.Default(),
		Keys:        keyring.NewMemory(),
		Store:       datastore.NewMemory(),
		Jobs:        mgr,
		Federations: federation.NewMemory(),
	})

	// 1. Upload: three well-separated patient clusters, in-memory rows in
	// place of a CSV body. The first upload claims the owner and mints
	// its credential — embedded programs can keep or ignore it.
	cols := []string{"systolic", "cholesterol", "bmi"}
	up, err := svc.Datasets.Upload(
		context.Background(),
		service.UploadRequest{Owner: "clinic", Name: "patients", Claim: true},
		&service.SliceRows{Columns: cols, Rows: blobs(300)},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %s/%s: %d rows × %d cols (token minted: %v)\n",
		up.Meta.Owner, up.Meta.Name, up.Meta.Rows, up.Meta.Cols, up.MintedToken != "")

	// 2. Protect job: dataset → released dataset, key stored as version 1.
	res := runJob(svc, "clinic", &service.JobSpec{
		Type: service.JobProtect, Dataset: "patients", Dest: "released", Seed: 11,
	})
	m := res.(map[string]any)
	fmt.Printf("protect job done: release %q, key version %v, %v rotation pairs\n",
		m["dataset"], m["key_version"], m["pairs"])

	// 3. Evaluate job: the paper's utility experiment — cluster the
	// normalized original and the release, compare partitions.
	res = runJob(svc, "clinic", &service.JobSpec{
		Type: service.JobEvaluate, Dataset: "patients", K: 3, Seed: 5, ClustSeed: 2,
	})
	ev := res.(*service.Evaluation)
	fmt.Printf("evaluate job done: misclassification=%.3f f_measure=%.3f same_partition=%v\n",
		ev.Misclassification, ev.FMeasure, ev.SamePartition)
	if !ev.SamePartition {
		log.Fatal("release should cluster identically to the normalized original")
	}

	// The same metrics surface the HTTP route serves, without the route.
	snap := svc.MetricsSnapshot()
	fmt.Printf("metrics: rows_ingested=%d rows_protected=%d jobs_completed=%d\n",
		snap["rows_ingested_total"], snap["rows_protected_total"], snap["jobs_completed_total"])
	fmt.Println("embedded flow complete: no HTTP listener was harmed (or started)")
}

// runJob submits spec and polls to completion — what ppclient.WaitJob
// does over HTTP, done directly against the service.
func runJob(svc *service.Services, owner string, spec *service.JobSpec) any {
	st, err := svc.Jobs.Submit(context.Background(), owner, spec)
	if err != nil {
		log.Fatal(err)
	}
	for {
		cur, err := svc.Jobs.Get(owner, st.ID)
		if err != nil {
			log.Fatal(err)
		}
		if cur.State.Terminal() {
			if cur.State != jobs.StateDone {
				log.Fatalf("job %s (%s): %s: %s", cur.ID, cur.Type, cur.State, cur.Error)
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, _, err := svc.Jobs.Result(owner, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// blobs samples three tight clusters — data where k-means has an
// unambiguous answer, so the evaluate job's comparison is exact.
func blobs(rows int) [][]float64 {
	rng := rand.New(rand.NewSource(42))
	centers := [][]float64{{115, 180, 22}, {145, 260, 31}, {130, 210, 27}}
	out := make([][]float64, rows)
	for i := range out {
		c := centers[i%3]
		out[i] = []float64{
			c[0] + rng.NormFloat64(),
			c[1] + rng.NormFloat64(),
			c[2] + rng.NormFloat64(),
		}
	}
	return out
}
