// The tuning example answers the question every data owner faces before
// releasing data for clustering: which protection mechanism, at which
// setting? It launches a real ppclustd daemon as a subprocess, uploads a
// Gaussian-mixture dataset through the ppclient SDK, and submits a tune
// job that sweeps four mechanism families —
//
//   - rbt            the paper's rotation-based transform (several PSTs),
//   - additive       classic Gaussian noise in normalized space,
//   - multiplicative proportional noise,
//   - hybrid         RBT followed by additive noise,
//
// — scoring every candidate on utility (misclassification vs the
// plaintext clustering), privacy (min per-attribute Sec) and attack
// resistance (known-sample re-identification, the same adversary
// examples/attackdemo runs offline). It then prints the Pareto frontier
// and the recommended operating point under the constraint
// "maximize utility s.t. Sec >= 0.3".
//
// Run from the repository root (the example shells out to `go run`):
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"ppclust/internal/dataset"
	"ppclust/ppclient"
)

func main() {
	baseURL, stop := startDaemon()
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	// The owner's sensitive dataset: a 3-cluster Gaussian mixture.
	ds, err := dataset.WellSeparatedBlobs(600, 3, 4, 10, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}
	rows := make([][]float64, ds.Rows())
	for i := range rows {
		rows[i] = ds.Data.RawRow(i)
	}

	cl := ppclient.New(baseURL, "clinic")
	if _, err := cl.UploadDataset(ctx, "patients", ds.Names, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded clinic/patients: %dx%d (token minted and captured by the SDK)\n\n", ds.Rows(), ds.Cols())

	// One tune job sweeps the whole mechanism × parameter grid, with one
	// adaptive refinement round around the frontier.
	st, err := cl.SubmitTune(ctx, "patients", ppclient.TuneSpec{
		Algorithm: "kmeans",
		K:         3,
		Rhos:      []float64{0.15, 0.3, 0.45},
		Sigmas:    []float64{0.05, 0.1, 0.2, 0.4},
		Seed:      7,
		MinSec:    0.3,
		Refine:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tune job %s submitted; polling...\n", st.ID)

	lastPct := -10 // one decade below zero, so the 0–9% band still prints
	res, err := cl.TuneResult(ctx, st.ID, func(js *ppclient.JobStatus) {
		if pct := int(js.Progress * 100); pct/10 > lastPct/10 {
			fmt.Printf("  %3d%% (%s)\n", pct, js.State)
			lastPct = pct
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nevaluated %d candidates (%d failed, %d pruned) over %dx%d with %s\n\n",
		res.Evaluated, res.Failed, res.Pruned, res.Rows, res.Cols, res.Algorithm)

	fmt.Println("Pareto frontier (no point is beaten on every axis):")
	fmt.Printf("  %-28s %14s %10s %12s\n", "mechanism", "misclass", "min Sec", "re-ident")
	for _, p := range res.Frontier {
		fmt.Printf("  %-28s %14.4f %10.4f %11.0f%%\n",
			p.Describe, p.Misclassification, p.MinSecurity, 100*p.ReidentRate)
	}

	if res.Recommended != nil {
		r := res.Recommended
		fmt.Printf("\nrecommended under \"max utility s.t. Sec >= %g\": %s\n", res.MinSec, r.Describe)
		fmt.Printf("  misclassification %.4f, F-measure %.4f, min Sec %.4f, re-identification %.0f%%\n",
			r.Misclassification, r.FMeasure, r.MinSecurity, 100*r.ReidentRate)
	} else {
		fmt.Printf("\nno candidate satisfied the constraint: %s\n", res.RecommendNote)
	}

	fmt.Println("\nreading the frontier:")
	fmt.Println("  - pure rbt scores misclassification 0 (Corollary 1) with solid Sec, but")
	fmt.Println("    ~100% re-identification once an adversary knows a few rows — the")
	fmt.Println("    offline version of that attack is examples/attackdemo, and it is why")
	fmt.Println("    hybrids usually dominate pure rbt right off the frontier;")
	fmt.Println("  - noise mechanisms resist that adversary but pay for it in Sec/utility;")
	fmt.Println("  - the hybrid keeps the rotation's Sec and buys attack resistance for a")
	fmt.Println("    small (often zero) utility cost.")
}

// startDaemon launches `go run ./cmd/ppclustd` on a free loopback port
// with throwaway persistent state and waits for /healthz.
func startDaemon() (baseURL string, stop func()) {
	port := freePort()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	dir, err := os.MkdirTemp("", "ppclust-tuning-example")
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/ppclustd",
		"-addr", addr,
		"-keyring", filepath.Join(dir, "keys.json"),
		"-data-dir", filepath.Join(dir, "data"),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	// Its own process group, so the daemon `go run` spawns dies with it.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting ppclustd (run from the repository root): %v", err)
	}
	stop = func() {
		syscall.Kill(-cmd.Process.Pid, syscall.SIGTERM)
		cmd.Wait()
		os.RemoveAll(dir)
	}
	baseURL = "http://" + addr
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Printf("ppclustd up on %s\n\n", addr)
				return baseURL, stop
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	stop()
	log.Fatal("ppclustd never became healthy")
	return "", nil
}

func freePort() int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}
