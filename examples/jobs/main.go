// Command jobs walks through the async analytics subsystem that backs
// ppclustd's /v1/datasets and /v1/jobs routes, driving the same internal
// packages the daemon wires together: a dataset is ingested into the
// block store, then protect / cluster / evaluate workloads run through the
// fair worker pool while the "client" polls status and progress — the
// paper's outsourced-clustering scenario end to end, in process.
//
//	go run ./examples/jobs
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ppclust/internal/cluster"
	"ppclust/internal/core"
	"ppclust/internal/dataset"
	"ppclust/internal/datastore"
	"ppclust/internal/engine"
	"ppclust/internal/jobs"
	"ppclust/internal/quality"
)

func main() {
	// An owner's dataset lands in the store the way an upload would:
	// streamed row by row through a Builder into fixed-size blocks.
	ds, err := dataset.WellSeparatedBlobs(600, 3, 4, 10, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	store := datastore.NewMemory()
	b, err := datastore.NewBuilder("hospital", "patients", ds.Names)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < ds.Rows(); i++ {
		if err := b.AppendLabeled(ds.Data.RawRow(i), ds.Labels[i]); err != nil {
			log.Fatal(err)
		}
	}
	stored, err := b.Finish(time.Now())
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Put(stored); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %s/%s: %dx%d in %d blocks (labeled=%v)\n\n",
		stored.Owner, stored.Name, stored.Rows, stored.Cols, stored.NumBlocks(), stored.Labeled)

	// The job manager: two workers, per-owner fair scheduling, context
	// cancellation — ppclustd's -job-workers pool in miniature.
	eng := engine.Default()
	mgr := jobs.New(jobs.Config{Workers: 2})
	defer mgr.Close()

	// protect: dataset -> released dataset (the key would go to the
	// keyring; here it stays in the closure).
	mgr.Register("protect", func(ctx context.Context, t *jobs.Task) (any, error) {
		in, err := store.Get(t.Owner, "patients")
		if err != nil {
			return nil, err
		}
		t.SetProgress(0.1)
		data, err := in.Matrix()
		if err != nil {
			return nil, err
		}
		res, err := eng.Protect(data, engine.ProtectOptions{
			Normalization: engine.NormZScore,
			Thresholds:    []core.PST{{Rho1: 0.3, Rho2: 0.3}},
			Seed:          11,
		})
		if err != nil {
			return nil, err
		}
		t.SetProgress(0.7)
		out, err := datastore.NewBuilder(t.Owner, "released", in.Attrs)
		if err != nil {
			return nil, err
		}
		labels := in.Labels()
		for i := 0; i < res.Released.Rows(); i++ {
			if err := out.AppendLabeled(res.Released.RawRow(i), labels[i]); err != nil {
				return nil, err
			}
		}
		rel, err := out.Finish(time.Now())
		if err != nil {
			return nil, err
		}
		if err := store.Put(rel); err != nil {
			return nil, err
		}
		return map[string]any{"dataset": "released", "pairs": len(res.Key.Pairs)}, nil
	})

	// cluster: silhouette k-selection over whichever dataset the spec
	// names — this is what the third-party analyst runs on the release.
	mgr.Register("cluster", func(ctx context.Context, t *jobs.Task) (any, error) {
		var spec struct{ Dataset string }
		if err := json.Unmarshal(t.Spec, &spec); err != nil {
			return nil, err
		}
		in, err := store.Get(t.Owner, spec.Dataset)
		if err != nil {
			return nil, err
		}
		data, err := in.Matrix()
		if err != nil {
			return nil, err
		}
		sel, best, err := cluster.SweepKBySilhouette(ctx, data, 2, 6, 1, func(k int, _ float64) {
			t.SetProgress(float64(k-1) / 5)
		})
		if err != nil {
			return nil, err
		}
		miss, err := quality.MisclassificationError(in.Labels(), best.Assignments)
		if err != nil {
			return nil, err
		}
		return map[string]any{"dataset": spec.Dataset, "k": sel.K, "vs_truth_misclassification": miss}, nil
	})

	// Queue the pipeline: protect first, then clustering over original
	// and release side by side (two workers -> they run concurrently).
	pj, err := mgr.Submit("hospital", "protect", nil)
	if err != nil {
		log.Fatal(err)
	}
	await(mgr, "hospital", pj.ID)

	cOrig, _ := mgr.Submit("hospital", "cluster", json.RawMessage(`{"Dataset":"patients"}`))
	cRel, _ := mgr.Submit("hospital", "cluster", json.RawMessage(`{"Dataset":"released"}`))
	for _, id := range []string{cOrig.ID, cRel.ID} {
		await(mgr, "hospital", id)
	}

	orig := result(mgr, "hospital", cOrig.ID)
	rel := result(mgr, "hospital", cRel.ID)
	fmt.Printf("\ncluster on original: %v\n", orig)
	fmt.Printf("cluster on release:  %v\n", rel)
	fmt.Println("\nsame K and same agreement with the hidden truth on both sides —")
	fmt.Println("the analyst never saw an original value (Corollary 1 as a service).")
}

// await polls like an HTTP client would poll GET /v1/jobs/{id}.
func await(mgr *jobs.Manager, owner, id string) {
	for {
		st, err := mgr.Get(owner, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %s [%s] %3.0f%% %s\n", id[:8], st.Type, st.Progress*100, st.State)
		if st.State.Terminal() {
			if st.State != jobs.StateDone {
				log.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
			}
			return
		}
		time.Sleep(30 * time.Millisecond)
	}
}

func result(mgr *jobs.Manager, owner, id string) any {
	res, _, err := mgr.Result(owner, id)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
