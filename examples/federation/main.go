// The federation example plays the paper's multi-party scenario over a
// real network boundary: three hospitals each hold a horizontal partition
// of the same patient schema and want one joint clustering without any
// hospital (or the analyst) seeing another's raw records.
//
// It launches an actual ppclustd daemon as a subprocess, then drives the
// whole protocol through the ppclient SDK:
//
//  1. hospital-a creates the federation (schema + transform agreement)
//     and its bearer token is minted;
//  2. hospital-b and hospital-c join using the federation ID as their
//     invitation, each minting its own credential;
//  3. hospital-a contributes first — that contribution fits and freezes
//     the shared normalization + rotation key;
//  4. the other hospitals contribute; their rows are protected under the
//     frozen key, so the union stays one isometric image;
//  5. hospital-a seals, scheduling the joint kmeans as an async job;
//  6. every member fetches the joint result and reads off its own rows'
//     cluster assignments.
//
// Run from the repository root (the example shells out to `go run`):
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"ppclust/internal/dataset"
	"ppclust/ppclient"
)

func main() {
	baseURL, stop := startDaemon()
	defer stop()

	// One underlying population, horizontally partitioned: every hospital
	// sees the same attributes for a disjoint third of the patients.
	rng := rand.New(rand.NewSource(42))
	population, err := dataset.WellSeparatedBlobs(300, 3, 4, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	hospitals := []string{"hospital-a", "hospital-b", "hospital-c"}
	parts := make([][][]float64, len(hospitals))
	truth := make([][]int, len(hospitals))
	for p := range hospitals {
		for i := p; i < population.Rows(); i += len(hospitals) {
			parts[p] = append(parts[p], population.Data.RawRow(i))
			truth[p] = append(truth[p], population.Labels[i])
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// 1. The coordinator creates the federation. Its owner name is claimed
	// on first touch and the bearer token captured by the SDK.
	coord := ppclient.New(baseURL, hospitals[0])
	fed, err := coord.CreateFederation(ctx, ppclient.FederationConfig{
		Name:    "oncology-study",
		Columns: population.Names,
		Rho1:    0.3, Rho2: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation %s created by %s (state %s)\n", fed.ID, fed.Coordinator, fed.State)

	// 2. The other hospitals join; the federation ID is the invitation.
	clients := []*ppclient.Client{coord}
	for _, h := range hospitals[1:] {
		c := ppclient.New(baseURL, h)
		if _, err := c.JoinFederation(ctx, fed.ID); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s joined (own credential minted)\n", h)
		clients = append(clients, c)
	}

	// 3.–4. Contributions. The coordinator's goes first and freezes the
	// shared key; the daemon stores only protected rows for everyone.
	for p, c := range clients {
		fv, err := c.Contribute(ctx, fed.ID, population.Names, parts[p])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s contributed %d rows (federation now %s, %d/%d contributions)\n",
			hospitals[p], len(parts[p]), fv.State, fv.Contributions, len(fv.Parties))
	}

	// Each hospital can download its own protected contribution — and
	// only its own; another hospital's answers 403.
	if _, err := clients[1].DownloadDataset(ctx, "fed."+fed.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hospital-b downloaded its own protected rows; raw rows never persisted")

	// 5. Seal: membership freezes and the joint kmeans is scheduled.
	if _, err := coord.Seal(ctx, fed.ID, ppclient.Analysis{Algorithm: "kmeans", K: 3, ClustSeed: 7}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sealed; joint clustering scheduled as a federated-cluster job")

	// 6. The result is shared by design: any member may fetch it.
	res, err := clients[1].Result(ctx, fed.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoint %s over %d rows: k=%d, converged=%v\n",
		res.Algorithm, len(res.Assignments), res.K, res.Converged)
	for p, h := range hospitals {
		mine := res.PartyAssignments(h)
		agree := clusterAgreement(truth[p], mine)
		fmt.Printf("  %s: %d rows, agreement with ground truth %.0f%%\n", h, len(mine), 100*agree)
	}
	fmt.Println("\nno hospital saw another's raw rows; the analyst clustered only protected data")
}

// clusterAgreement scores how well assignments recover labels under the
// best greedy label matching — enough for a demo printout.
func clusterAgreement(labels, assignments []int) float64 {
	if len(labels) != len(assignments) || len(labels) == 0 {
		return 0
	}
	// count[c][l]: rows of cluster c carrying label l.
	count := map[int]map[int]int{}
	for i, c := range assignments {
		if count[c] == nil {
			count[c] = map[int]int{}
		}
		count[c][labels[i]]++
	}
	match := 0
	for _, byLabel := range count {
		best := 0
		for _, n := range byLabel {
			if n > best {
				best = n
			}
		}
		match += best
	}
	return float64(match) / float64(len(labels))
}

// startDaemon launches `go run ./cmd/ppclustd` on a free loopback port
// with throwaway persistent state and waits for /healthz.
func startDaemon() (baseURL string, stop func()) {
	port := freePort()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	dir, err := os.MkdirTemp("", "ppclust-federation-example")
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/ppclustd",
		"-addr", addr,
		"-keyring", filepath.Join(dir, "keys.json"),
		"-data-dir", filepath.Join(dir, "data"),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	// Its own process group, so the daemon `go run` spawns dies with it.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting ppclustd (run from the repository root): %v", err)
	}
	stop = func() {
		syscall.Kill(-cmd.Process.Pid, syscall.SIGTERM)
		cmd.Wait()
		os.RemoveAll(dir)
	}
	baseURL = "http://" + addr
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				fmt.Printf("ppclustd up on %s\n\n", addr)
				return baseURL, stop
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	stop()
	log.Fatal("ppclustd never became healthy")
	return "", nil
}

func freePort() int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}
