// The twoparty example plays out the paper's second motivating scenario
// literally: "an Internet marketing company and an on-line retail company
// have datasets with different attributes for a common set of individuals
// [and] decide to share their data for clustering to find the optimal
// customer targets" — without learning anything about each other's
// attribute values.
//
// Each party RBT-protects its own attribute block with its own private key;
// the analyst joins the two releases and clusters the union. Because the
// combined transform is block-diagonal orthogonal, the joint clustering is
// exactly what a (forbidden) centralized run would produce.
//
// Run with:
//
//	go run ./examples/twoparty
//
// This example is the *in-process, vertically partitioned* variant (each
// party holds different attributes under its own key). For the networked
// scenario — several parties holding horizontal partitions of one schema,
// federating over HTTP under a single shared key via ppclustd's
// /v1/federations routes — see examples/federation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppclust/internal/cluster"
	"ppclust/internal/core"
	"ppclust/internal/dataset"
	"ppclust/internal/matrix"
	"ppclust/internal/multiparty"
	"ppclust/internal/quality"
)

func main() {
	// One underlying population of 500 customers in 4 behavioural
	// segments; the two companies each observe a different slice of it.
	rng := rand.New(rand.NewSource(7))
	population, err := dataset.SyntheticCustomers(500, 4, rng)
	if err != nil {
		log.Fatal(err)
	}
	ids := population.IDs

	// The marketing company holds engagement attributes, the retailer
	// holds purchase attributes — a vertical partition of the same people.
	marketing := &dataset.Dataset{
		Names: population.Names[:2], // recency_days, frequency
		Data:  population.Data.SubMatrix(0, population.Rows(), 0, 2),
		IDs:   ids,
	}
	retail := &dataset.Dataset{
		Names: population.Names[2:], // monetary, basket_size, tenure_years
		Data:  population.Data.SubMatrix(0, population.Rows(), 2, 5),
		IDs:   ids,
	}
	fmt.Printf("marketing company holds %v for %d customers\n", marketing.Names, marketing.Rows())
	fmt.Printf("retail company holds    %v for the same customers\n\n", retail.Names)

	// Each party protects its block independently with its own secret.
	relM, err := (&multiparty.Party{
		Name: "marketing", Data: marketing,
		Thresholds: []core.PST{{Rho1: 0.3, Rho2: 0.3}},
		Seed:       1001,
	}).Protect()
	if err != nil {
		log.Fatal(err)
	}
	relR, err := (&multiparty.Party{
		Name: "retail", Data: retail,
		Thresholds: []core.PST{{Rho1: 0.3, Rho2: 0.3}},
		Seed:       2002,
	}).Protect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("each party released a rotated block; neither can read the other's raw values.")

	// The analyst joins the releases and clusters the union.
	joint, err := multiparty.Join(relM, relR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyst joined view: %d customers x %d attributes %v\n\n",
		joint.Rows(), joint.Cols(), joint.Names)
	res, err := (&cluster.KMeans{K: 4, Rand: rand.New(rand.NewSource(1)), Restarts: 8}).Cluster(joint.Data)
	if err != nil {
		log.Fatal(err)
	}
	ari, err := quality.AdjustedRandIndex(res.Assignments, population.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint clustering on protected data: %d segments, ARI vs true segments = %.3f\n", res.K, ari)

	// The combined transform really is one big orthogonal matrix — the
	// formal reason the joint geometry is intact.
	q, err := multiparty.JointKey(relM, relR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint transform is a %dx%d block-diagonal orthogonal matrix (orthogonality check: %v)\n",
		q.Rows(), q.Cols(), matrix.IsOrthogonal(q, 1e-10))

	// Each party can still decrypt only its own block.
	backM, err := relM.Recover()
	if err != nil {
		log.Fatal(err)
	}
	exact := matrix.EqualApprox(backM.Data, marketing.Data, 1e-8)
	fmt.Printf("marketing company recovers its own block with its own secret: %v\n", exact)
}
