package cluster

import (
	"fmt"
	"math"
	"sort"

	"ppclust/internal/dist"
	"ppclust/internal/matrix"
)

// Linkage selects the inter-cluster distance rule for agglomerative
// clustering.
type Linkage int

const (
	// SingleLinkage merges on the minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges on the maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage (UPGMA) merges on the mean pairwise distance.
	AverageLinkage
	// WardLinkage minimizes the within-cluster variance increase; distances
	// are interpreted as Euclidean and squared internally.
	WardLinkage
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	case WardLinkage:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step: clusters A and B (indices into the
// dendrogram numbering: leaves are 0..m-1, internal nodes m, m+1, ...)
// merged at the given linkage distance into a cluster of Size leaves.
type Merge struct {
	A, B int
	Dist float64
	Size int
}

// Dendrogram is the full merge history of an agglomerative run.
type Dendrogram struct {
	// Merges has m-1 entries for m leaves, in merge order.
	Merges []Merge
	// Leaves is the number of original objects.
	Leaves int
}

// Cut returns the k-cluster partition obtained by undoing the last k-1
// merges, with cluster indices relabelled to 0..k-1 in order of first
// appearance.
func (d *Dendrogram) Cut(k int) ([]int, error) {
	m := d.Leaves
	if k < 1 || k > m {
		return nil, fmt.Errorf("%w: cut k = %d for %d leaves", ErrConfig, k, m)
	}
	// Union-find over leaves, replaying all but the last k-1 merges.
	parent := make([]int, 2*m-1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	node := m
	for _, mg := range d.Merges[:m-k] {
		ra, rb := find(mg.A), find(mg.B)
		parent[ra] = node
		parent[rb] = node
		node++
	}
	labels := make([]int, m)
	next := 0
	seen := map[int]int{}
	for i := 0; i < m; i++ {
		root := find(i)
		lab, ok := seen[root]
		if !ok {
			lab = next
			seen[root] = lab
			next++
		}
		labels[i] = lab
	}
	return labels, nil
}

// Hierarchical is agglomerative clustering via the Lance-Williams update.
// The full dendrogram is built (O(m³) time, O(m²) space) and then cut at K
// clusters.
type Hierarchical struct {
	// K is the number of clusters to cut the dendrogram at.
	K int
	// Linkage selects the merge rule.
	Linkage Linkage
	// Metric defaults to Euclidean when nil. Ward requires Euclidean.
	Metric dist.Metric
}

// Name implements Clusterer.
func (h *Hierarchical) Name() string {
	return fmt.Sprintf("hierarchical(%s,k=%d)", h.Linkage, h.K)
}

// Cluster implements Clusterer.
func (h *Hierarchical) Cluster(data *matrix.Dense) (*Result, error) {
	dend, err := h.Dendrogram(data)
	if err != nil {
		return nil, err
	}
	labels, err := dend.Cut(h.K)
	if err != nil {
		return nil, err
	}
	return &Result{Assignments: labels, K: h.K, Converged: true, Iterations: len(dend.Merges)}, nil
}

// Dendrogram runs the full agglomeration and returns the merge tree.
func (h *Hierarchical) Dendrogram(data *matrix.Dense) (*Dendrogram, error) {
	if err := validateData(data, max(h.K, 1)); err != nil {
		return nil, err
	}
	if h.Linkage < SingleLinkage || h.Linkage > WardLinkage {
		return nil, fmt.Errorf("%w: unknown linkage %d", ErrConfig, int(h.Linkage))
	}
	metric := h.Metric
	if metric == nil {
		metric = dist.Euclidean{}
	}
	if h.Linkage == WardLinkage {
		if _, ok := metric.(dist.Euclidean); !ok {
			return nil, fmt.Errorf("%w: ward linkage requires the euclidean metric", ErrConfig)
		}
	}
	m := data.Rows()
	if m == 1 {
		return &Dendrogram{Leaves: 1}, nil
	}

	// Working distance matrix; Ward operates on squared distances.
	d := make([][]float64, m)
	for i := range d {
		d[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := metric.Distance(data.RawRow(i), data.RawRow(j))
			if h.Linkage == WardLinkage {
				v = v * v
			}
			d[i][j] = v
			d[j][i] = v
		}
	}

	active := make([]bool, m)
	size := make([]int, m)
	nodeID := make([]int, m)
	for i := range active {
		active[i] = true
		size[i] = 1
		nodeID[i] = i
	}
	dend := &Dendrogram{Leaves: m}
	nextNode := m
	for step := 0; step < m-1; step++ {
		// Find the closest active pair.
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < m; j++ {
				if active[j] && d[i][j] < bd {
					bi, bj, bd = i, j, d[i][j]
				}
			}
		}
		mergeDist := bd
		if h.Linkage == WardLinkage {
			mergeDist = math.Sqrt(bd)
		}
		dend.Merges = append(dend.Merges, Merge{
			A: nodeID[bi], B: nodeID[bj], Dist: mergeDist, Size: size[bi] + size[bj],
		})
		// Lance-Williams update into slot bi; deactivate bj.
		ni, nj := float64(size[bi]), float64(size[bj])
		for k := 0; k < m; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dik, djk := d[bi][k], d[bj][k]
			var nd float64
			switch h.Linkage {
			case SingleLinkage:
				nd = math.Min(dik, djk)
			case CompleteLinkage:
				nd = math.Max(dik, djk)
			case AverageLinkage:
				nd = (ni*dik + nj*djk) / (ni + nj)
			case WardLinkage:
				nk := float64(size[k])
				nd = ((ni+nk)*dik + (nj+nk)*djk - nk*d[bi][bj]) / (ni + nj + nk)
			}
			d[bi][k] = nd
			d[k][bi] = nd
		}
		size[bi] += size[bj]
		active[bj] = false
		nodeID[bi] = nextNode
		nextNode++
	}
	return dend, nil
}

// MergeHeights returns the sorted sequence of merge distances — a
// representation-independent fingerprint of the tree used by the isometry
// tests (labels may permute under isometry, heights may not).
func (d *Dendrogram) MergeHeights() []float64 {
	hs := make([]float64, len(d.Merges))
	for i, m := range d.Merges {
		hs[i] = m.Dist
	}
	sort.Float64s(hs)
	return hs
}
