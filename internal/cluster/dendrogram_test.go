package cluster

import (
	"errors"
	"strings"
	"testing"

	"ppclust/internal/matrix"
)

func TestDendrogramRender(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {1}, {10}, {11}})
	h := &Hierarchical{K: 2, Linkage: AverageLinkage}
	dend, err := h.Dendrogram(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dend.Render([]string{"a", "b", "c", "d"}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a", "b", "c", "d", "merge heights:", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Leaves merged first (a-b, c-d) must have shorter bars than the final
	// cross-cluster merge height printed at the margin.
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestDendrogramRenderDefaultsAndErrors(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {3}})
	dend, err := (&Hierarchical{K: 1}).Dendrogram(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dend.Render(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#0") || !strings.Contains(out, "#1") {
		t.Fatalf("default labels missing:\n%s", out)
	}
	if _, err := dend.Render([]string{"only-one"}, 40); !errors.Is(err, ErrConfig) {
		t.Fatal("label count mismatch should fail")
	}
}

func TestDendrogramRenderSingleLeaf(t *testing.T) {
	dend, err := (&Hierarchical{K: 1}).Dendrogram(matrix.FromRows([][]float64{{5}}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := dend.Render([]string{"solo"}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "solo") {
		t.Fatalf("single leaf render: %q", out)
	}
}

func TestDendrogramRenderZeroHeights(t *testing.T) {
	// Coincident points merge at distance 0; rendering must not divide by
	// zero.
	data := matrix.FromRows([][]float64{{1}, {1}, {1}})
	dend, err := (&Hierarchical{K: 1}).Dendrogram(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dend.Render(nil, 30); err != nil {
		t.Fatal(err)
	}
}
