// Package cluster implements the distance-based clustering algorithms used
// to validate Corollary 1 ("the clusters mined from D and D' are exactly
// the same for any clustering algorithm"): k-means with k-means++ seeding,
// k-medoids (PAM), agglomerative hierarchical clustering with four linkage
// rules, and DBSCAN.
//
// All algorithms depend on the data only through Euclidean geometry, so an
// isometric transformation of the input must leave their output unchanged
// up to label permutation — the property the experiments assert.
package cluster

import (
	"errors"
	"fmt"

	"ppclust/internal/matrix"
)

// ErrConfig is wrapped by invalid clustering configurations.
var ErrConfig = errors.New("cluster: invalid configuration")

// Noise is the assignment DBSCAN gives to points in no cluster.
const Noise = -1

// Result is the common output of every clustering algorithm here.
type Result struct {
	// Assignments holds one cluster index per input row; DBSCAN may assign
	// Noise (-1).
	Assignments []int
	// K is the number of clusters found (excluding noise).
	K int
	// Centroids holds the cluster centers for centroid-based algorithms
	// (k-means); nil otherwise.
	Centroids *matrix.Dense
	// Medoids holds row indices of medoids for k-medoids; nil otherwise.
	Medoids []int
	// Inertia is the algorithm's internal objective: within-cluster sum of
	// squared distances for k-means, total distance to medoids for PAM,
	// zero for the others.
	Inertia float64
	// Iterations counts refinement rounds for iterative algorithms.
	Iterations int
	// Converged reports whether an iterative algorithm reached its
	// tolerance before the iteration cap.
	Converged bool
}

// Clusterer is implemented by every algorithm in this package.
type Clusterer interface {
	// Cluster partitions the rows of data.
	Cluster(data *matrix.Dense) (*Result, error)
	// Name identifies the algorithm for reports.
	Name() string
}

// validateData applies the shared input checks.
func validateData(data *matrix.Dense, k int) error {
	m, n := data.Dims()
	if m == 0 || n == 0 {
		return fmt.Errorf("%w: empty data matrix", ErrConfig)
	}
	if data.HasNaN() {
		return fmt.Errorf("%w: data contains NaN or Inf", ErrConfig)
	}
	if k < 1 {
		return fmt.Errorf("%w: k = %d, need k >= 1", ErrConfig, k)
	}
	if k > m {
		return fmt.Errorf("%w: k = %d exceeds %d objects", ErrConfig, k, m)
	}
	return nil
}

// countClusters returns the number of distinct non-noise assignments.
func countClusters(assignments []int) int {
	seen := map[int]bool{}
	for _, a := range assignments {
		if a != Noise {
			seen[a] = true
		}
	}
	return len(seen)
}
