package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ppclust/internal/matrix"
)

// Spectral implements normalized spectral clustering (Ng, Jordan & Weiss
// 2002): build a Gaussian affinity matrix from pairwise Euclidean
// distances, form the symmetric normalized Laplacian, embed the points in
// the top-K eigenvector space (rows renormalized to unit length) and
// cluster the embedding with k-means.
//
// Because the affinity depends on the data only through Euclidean
// distances, spectral clustering is yet another algorithm family covered by
// Corollary 1: it produces identical partitions on D and RBT(D).
type Spectral struct {
	// K is the number of clusters.
	K int
	// Sigma is the Gaussian affinity bandwidth; 0 selects the median
	// pairwise distance heuristic.
	Sigma float64
	// Rand seeds the k-means stage; nil means a fixed-seed source.
	Rand *rand.Rand
}

// Name implements Clusterer.
func (s *Spectral) Name() string { return fmt.Sprintf("spectral(k=%d)", s.K) }

// Cluster implements Clusterer.
func (s *Spectral) Cluster(data *matrix.Dense) (*Result, error) {
	if err := validateData(data, s.K); err != nil {
		return nil, err
	}
	m := data.Rows()
	if s.K == 1 {
		return &Result{Assignments: make([]int, m), K: 1, Converged: true}, nil
	}

	// Pairwise distances, reused for the bandwidth heuristic.
	d := make([][]float64, m)
	var all []float64
	for i := range d {
		d[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := matrix.Distance(data.RawRow(i), data.RawRow(j))
			d[i][j] = v
			d[j][i] = v
			all = append(all, v)
		}
	}
	sigma := s.Sigma
	if sigma <= 0 {
		sigma = median(all)
		if sigma == 0 {
			sigma = 1 // all points coincide; affinity saturates either way
		}
	}

	// Affinity W and degree D; A = D^-1/2 W D^-1/2.
	w := matrix.NewDense(m, m, nil)
	deg := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue // zero diagonal per NJW
			}
			a := math.Exp(-d[i][j] * d[i][j] / (2 * sigma * sigma))
			w.SetAt(i, j, a)
			deg[i] += a
		}
	}
	for i := range deg {
		if deg[i] <= 0 {
			deg[i] = 1e-300 // isolated point; keeps the scaling finite
		}
		deg[i] = 1 / math.Sqrt(deg[i])
	}
	a := matrix.NewDense(m, m, nil)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			a.SetAt(i, j, deg[i]*w.At(i, j)*deg[j])
		}
	}

	eig, err := matrix.SymEigen(a)
	if err != nil {
		return nil, err
	}
	// Embedding: top-K eigenvectors as columns, rows renormalized.
	embed := matrix.NewDense(m, s.K, nil)
	for i := 0; i < m; i++ {
		var norm float64
		for k := 0; k < s.K; k++ {
			v := eig.Vectors.At(i, k)
			embed.SetAt(i, k, v)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for k := 0; k < s.K; k++ {
			embed.SetAt(i, k, embed.At(i, k)/norm)
		}
	}
	rng := s.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	km := &KMeans{K: s.K, Rand: rng}
	res, err := km.Cluster(embed)
	if err != nil {
		return nil, err
	}
	res.Centroids = nil // centroids live in embedding space; not meaningful to callers
	return res, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
