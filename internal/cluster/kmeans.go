package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"ppclust/internal/matrix"
)

// KMeans is Lloyd's algorithm with k-means++ initialization.
type KMeans struct {
	// K is the number of clusters.
	K int
	// MaxIter caps the Lloyd iterations; 0 means 300.
	MaxIter int
	// Tol stops iteration when the summed squared centroid movement falls
	// below it; 0 means 1e-10.
	Tol float64
	// Rand seeds the k-means++ initialization. When nil a fixed-seed source
	// is used, making runs reproducible by default.
	Rand *rand.Rand
	// RandomInit selects uniform random seeding instead of k-means++.
	RandomInit bool
	// Restarts runs Lloyd this many times with different initializations
	// and keeps the lowest-inertia solution; 0 means 1. Restarts guard
	// against bad local optima in model-selection sweeps.
	Restarts int
}

// Name implements Clusterer.
func (k *KMeans) Name() string { return fmt.Sprintf("kmeans(k=%d)", k.K) }

// Cluster implements Clusterer.
func (k *KMeans) Cluster(data *matrix.Dense) (*Result, error) {
	if err := validateData(data, k.K); err != nil {
		return nil, err
	}
	restarts := k.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	rng := k.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		res, err := k.clusterOnce(data, rng)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// clusterOnce is one Lloyd run from one initialization.
func (k *KMeans) clusterOnce(data *matrix.Dense, rng *rand.Rand) (*Result, error) {
	m, n := data.Dims()
	maxIter := k.MaxIter
	if maxIter <= 0 {
		maxIter = 300
	}
	tol := k.Tol
	if tol <= 0 {
		tol = 1e-10
	}

	var centroids *matrix.Dense
	if k.RandomInit {
		centroids = data.SelectRows(rng.Perm(m)[:k.K])
	} else {
		centroids = kmeansPlusPlus(data, k.K, rng)
	}

	assignments := make([]int, m)
	counts := make([]int, k.K)
	next := matrix.NewDense(k.K, n, nil)
	result := &Result{K: k.K}
	for iter := 1; iter <= maxIter; iter++ {
		result.Iterations = iter
		// Assignment step.
		inertia := 0.0
		for i := 0; i < m; i++ {
			row := data.RawRow(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k.K; c++ {
				if d := matrix.SquaredDistance(row, centroids.RawRow(c)); d < bestD {
					best, bestD = c, d
				}
			}
			assignments[i] = best
			inertia += bestD
		}
		result.Inertia = inertia
		// Update step.
		for c := range counts {
			counts[c] = 0
		}
		for c := 0; c < k.K; c++ {
			row := next.RawRow(c)
			for j := range row {
				row[j] = 0
			}
		}
		for i := 0; i < m; i++ {
			c := assignments[i]
			counts[c]++
			matrix.AXPY(1, data.RawRow(i), next.RawRow(c))
		}
		shift := 0.0
		for c := 0; c < k.K; c++ {
			row := next.RawRow(c)
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid, a standard Lloyd repair.
				far, farD := 0, -1.0
				for i := 0; i < m; i++ {
					if d := matrix.SquaredDistance(data.RawRow(i), centroids.RawRow(assignments[i])); d > farD {
						far, farD = i, d
					}
				}
				copy(row, data.RawRow(far))
			} else {
				matrix.ScaleVec(1/float64(counts[c]), row)
			}
			shift += matrix.SquaredDistance(row, centroids.RawRow(c))
			copy(centroids.RawRow(c), row)
		}
		if shift < tol {
			result.Converged = true
			break
		}
	}
	result.Assignments = assignments
	result.Centroids = centroids
	return result, nil
}

// kmeansPlusPlus implements Arthur & Vassilvitskii's D² seeding.
func kmeansPlusPlus(data *matrix.Dense, k int, rng *rand.Rand) *matrix.Dense {
	m, n := data.Dims()
	centroids := matrix.NewDense(k, n, nil)
	first := rng.Intn(m)
	copy(centroids.RawRow(0), data.RawRow(first))
	d2 := make([]float64, m)
	for i := 0; i < m; i++ {
		d2[i] = matrix.SquaredDistance(data.RawRow(i), centroids.RawRow(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(m) // all points coincide with a centroid
		} else {
			u := rng.Float64() * total
			for i, d := range d2 {
				u -= d
				if u <= 0 {
					pick = i
					break
				}
			}
		}
		copy(centroids.RawRow(c), data.RawRow(pick))
		for i := 0; i < m; i++ {
			if d := matrix.SquaredDistance(data.RawRow(i), centroids.RawRow(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}
