package cluster

import (
	"fmt"
	"strings"
)

// Render draws the dendrogram as ASCII art, one leaf per line, with merge
// brackets positioned proportionally to merge distance. labels supplies
// one name per leaf; nil uses #0, #1, ... The width parameter bounds the
// horizontal resolution (0 means 60 columns).
//
// The layout lists leaves in dendrogram traversal order, so merged leaves
// are adjacent and every bracket is drawable without crossings.
func (d *Dendrogram) Render(labels []string, width int) (string, error) {
	m := d.Leaves
	if labels != nil && len(labels) != m {
		return "", fmt.Errorf("%w: %d labels for %d leaves", ErrConfig, len(labels), m)
	}
	if width <= 0 {
		width = 60
	}
	if m == 1 {
		name := "#0"
		if labels != nil {
			name = labels[0]
		}
		return name + "\n", nil
	}

	// Children of each internal node (node ids m..2m-2, in merge order).
	children := make(map[int][2]int, len(d.Merges))
	heights := make(map[int]float64, len(d.Merges))
	var maxH float64
	for i, mg := range d.Merges {
		node := m + i
		children[node] = [2]int{mg.A, mg.B}
		heights[node] = mg.Dist
		if mg.Dist > maxH {
			maxH = mg.Dist
		}
	}
	if maxH == 0 {
		maxH = 1
	}
	root := m + len(d.Merges) - 1

	// In-order traversal: leaf order plus the column of each node.
	var order []int
	col := make(map[int]int)
	var walk func(node int) (first, last int)
	walk = func(node int) (int, int) {
		if node < m {
			order = append(order, node)
			idx := len(order) - 1
			col[node] = 0
			return idx, idx
		}
		ch := children[node]
		f1, l1 := walk(ch[0])
		f2, l2 := walk(ch[1])
		_ = f1
		_ = l2
		col[node] = 1 + int(heights[node]/maxH*float64(width-12))
		_ = l1
		_ = f2
		return f1, l2
	}
	walk(root)

	// Each leaf line: label + a bar out to the column where its lineage
	// merges next; deeper structure is summarized by the merge heights
	// printed at the right margin.
	labelWidth := 2
	name := func(leaf int) string {
		if labels != nil {
			return labels[leaf]
		}
		return fmt.Sprintf("#%d", leaf)
	}
	for _, leaf := range order {
		if w := len(name(leaf)); w > labelWidth {
			labelWidth = w
		}
	}
	// Column where each leaf first participates in a merge.
	firstMerge := make(map[int]int, m)
	memberOf := make(map[int][]int) // node id -> leaves
	for i := 0; i < m; i++ {
		memberOf[i] = []int{i}
	}
	for i, mg := range d.Merges {
		node := m + i
		leaves := append(append([]int(nil), memberOf[mg.A]...), memberOf[mg.B]...)
		memberOf[node] = leaves
		for _, leaf := range leaves {
			if _, seen := firstMerge[leaf]; !seen {
				firstMerge[leaf] = col[node]
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  0%s%.4f\n", labelWidth, "leaf", strings.Repeat(" ", width-12), maxH)
	for _, leaf := range order {
		c := firstMerge[leaf]
		if c < 1 {
			c = 1
		}
		fmt.Fprintf(&b, "%-*s  |%s+\n", labelWidth, name(leaf), strings.Repeat("-", c))
	}
	b.WriteString("merge heights: ")
	for i, h := range d.MergeHeights() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4f", h)
	}
	b.WriteByte('\n')
	return b.String(), nil
}
