package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"ppclust/internal/dist"
	"ppclust/internal/matrix"
)

// KMedoids implements PAM (Partitioning Around Medoids): a greedy BUILD
// phase followed by SWAP refinement. Unlike k-means it only consumes the
// dissimilarity matrix, so it works for any metric.
type KMedoids struct {
	// K is the number of clusters.
	K int
	// MaxIter caps SWAP passes; 0 means 100.
	MaxIter int
	// Metric defaults to Euclidean when nil.
	Metric dist.Metric
	// Rand breaks ties during BUILD when multiple equally good medoids
	// exist; nil means a fixed-seed source.
	Rand *rand.Rand
}

// Name implements Clusterer.
func (k *KMedoids) Name() string { return fmt.Sprintf("kmedoids(k=%d)", k.K) }

// Cluster implements Clusterer.
func (k *KMedoids) Cluster(data *matrix.Dense) (*Result, error) {
	if err := validateData(data, k.K); err != nil {
		return nil, err
	}
	metric := k.Metric
	if metric == nil {
		metric = dist.Euclidean{}
	}
	maxIter := k.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	m := data.Rows()
	dm := dist.NewDissimMatrix(data, metric)

	// BUILD: first medoid minimizes total distance; each next medoid
	// maximizes the total reduction in assignment cost.
	medoids := make([]int, 0, k.K)
	isMedoid := make([]bool, m)
	best, bestCost := -1, math.Inf(1)
	for i := 0; i < m; i++ {
		var cost float64
		for j := 0; j < m; j++ {
			cost += dm.At(i, j)
		}
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	medoids = append(medoids, best)
	isMedoid[best] = true
	nearest := make([]float64, m) // distance to the closest chosen medoid
	for j := 0; j < m; j++ {
		nearest[j] = dm.At(best, j)
	}
	for len(medoids) < k.K {
		bestGain := math.Inf(-1)
		bestIdx := -1
		for c := 0; c < m; c++ {
			if isMedoid[c] {
				continue
			}
			var gain float64
			for j := 0; j < m; j++ {
				if d := dm.At(c, j); d < nearest[j] {
					gain += nearest[j] - d
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, c
			}
		}
		medoids = append(medoids, bestIdx)
		isMedoid[bestIdx] = true
		for j := 0; j < m; j++ {
			if d := dm.At(bestIdx, j); d < nearest[j] {
				nearest[j] = d
			}
		}
	}

	assign := func() ([]int, float64) {
		a := make([]int, m)
		var total float64
		for j := 0; j < m; j++ {
			bi, bd := 0, math.Inf(1)
			for ci, med := range medoids {
				if d := dm.At(med, j); d < bd {
					bi, bd = ci, d
				}
			}
			a[j] = bi
			total += bd
		}
		return a, total
	}

	// SWAP: try replacing each medoid with each non-medoid while any swap
	// improves the total cost.
	result := &Result{K: k.K}
	_, cost := assign()
	for iter := 1; iter <= maxIter; iter++ {
		result.Iterations = iter
		improved := false
		for ci := range medoids {
			old := medoids[ci]
			for cand := 0; cand < m; cand++ {
				if isMedoid[cand] {
					continue
				}
				medoids[ci] = cand
				_, newCost := assign()
				if newCost < cost-1e-12 {
					cost = newCost
					isMedoid[old] = false
					isMedoid[cand] = true
					old = cand
					improved = true
				} else {
					medoids[ci] = old
				}
			}
		}
		if !improved {
			result.Converged = true
			break
		}
	}
	assignments, total := assign()
	result.Assignments = assignments
	result.Medoids = append([]int(nil), medoids...)
	result.Inertia = total
	return result, nil
}
