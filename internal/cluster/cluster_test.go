package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/matrix"
	"ppclust/internal/quality"
)

// twoBlobs returns an easily clusterable dataset with ground truth.
func twoBlobs(t *testing.T, m int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds, err := dataset.GaussianMixture(m, []dataset.GaussianBlob{
		{Center: []float64{0, 0, 0}, Std: 0.4},
		{Center: []float64{8, 8, 8}, Std: 0.4},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func assertPerfectRecovery(t *testing.T, c Clusterer, ds *dataset.Dataset) {
	t.Helper()
	res, err := c.Cluster(ds.Data)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	same, err := quality.SameClustering(res.Assignments, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("%s failed to recover well-separated blobs", c.Name())
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	ds := twoBlobs(t, 120, 1)
	assertPerfectRecovery(t, &KMeans{K: 2}, ds)
}

func TestKMeansRandomInit(t *testing.T) {
	ds := twoBlobs(t, 100, 2)
	assertPerfectRecovery(t, &KMeans{K: 2, RandomInit: true}, ds)
}

func TestKMeansInertiaAndConvergence(t *testing.T) {
	ds := twoBlobs(t, 80, 3)
	res, err := (&KMeans{K: 2}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("easy blobs should converge")
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
	if res.Centroids == nil || res.Centroids.Rows() != 2 {
		t.Fatal("centroids missing")
	}
	// More clusters can only lower the objective.
	res4, err := (&KMeans{K: 4}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Inertia > res.Inertia+1e-9 {
		t.Fatalf("k=4 inertia %v should not exceed k=2 inertia %v", res4.Inertia, res.Inertia)
	}
}

func TestKMeansKEqualsM(t *testing.T) {
	data := matrix.FromRows([][]float64{{0, 0}, {5, 5}, {9, 0}})
	res, err := (&KMeans{K: 3}).Cluster(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("k = m should give zero inertia, got %v", res.Inertia)
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	ds := twoBlobs(t, 60, 4)
	a, err := (&KMeans{K: 2, Rand: rand.New(rand.NewSource(7))}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&KMeans{K: 2, Rand: rand.New(rand.NewSource(7))}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed must give identical clusterings")
		}
	}
}

func TestValidateDataErrors(t *testing.T) {
	cases := []struct {
		name string
		c    Clusterer
		data *matrix.Dense
	}{
		{"empty", &KMeans{K: 1}, matrix.NewDense(0, 2, nil)},
		{"k too large", &KMeans{K: 5}, matrix.NewDense(3, 2, nil)},
		{"k zero", &KMeans{K: 0}, matrix.NewDense(3, 2, nil)},
		{"nan", &KMeans{K: 1}, matrix.FromRows([][]float64{{math.NaN()}})},
		{"kmedoids k", &KMedoids{K: 0}, matrix.NewDense(3, 2, nil)},
		{"hier k", &Hierarchical{K: 9}, matrix.NewDense(3, 2, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.c.Cluster(tc.data); !errors.Is(err, ErrConfig) {
				t.Fatalf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestKMedoidsRecoversBlobs(t *testing.T) {
	ds := twoBlobs(t, 80, 5)
	assertPerfectRecovery(t, &KMedoids{K: 2}, ds)
}

func TestKMedoidsMedoidsAreMembers(t *testing.T) {
	ds := twoBlobs(t, 60, 6)
	res, err := (&KMedoids{K: 2}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	for ci, med := range res.Medoids {
		if res.Assignments[med] != ci {
			t.Fatalf("medoid %d not assigned to its own cluster", med)
		}
	}
	if res.Inertia <= 0 || !res.Converged {
		t.Fatalf("inertia=%v converged=%v", res.Inertia, res.Converged)
	}
}

func TestKMedoidsManhattanMetric(t *testing.T) {
	ds := twoBlobs(t, 60, 7)
	assertPerfectRecovery(t, &KMedoids{K: 2, Metric: dist.Manhattan{}}, ds)
}

func TestHierarchicalAllLinkagesRecoverBlobs(t *testing.T) {
	ds := twoBlobs(t, 60, 8)
	for _, l := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage, WardLinkage} {
		assertPerfectRecovery(t, &Hierarchical{K: 2, Linkage: l}, ds)
	}
}

func TestHierarchicalKnownSingleLinkage(t *testing.T) {
	// Points on a line: 0, 1, 2, 10. Single linkage at k=2 must split
	// {0,1,2} from {10}.
	data := matrix.FromRows([][]float64{{0}, {1}, {2}, {10}})
	res, err := (&Hierarchical{K: 2, Linkage: SingleLinkage}).Cluster(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0] != res.Assignments[1] || res.Assignments[1] != res.Assignments[2] {
		t.Fatalf("first three should cluster together: %v", res.Assignments)
	}
	if res.Assignments[3] == res.Assignments[0] {
		t.Fatalf("outlier should be alone: %v", res.Assignments)
	}
}

func TestDendrogramStructure(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {1}, {5}, {6}})
	h := &Hierarchical{K: 2, Linkage: AverageLinkage}
	dend, err := h.Dendrogram(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dend.Merges) != 3 || dend.Leaves != 4 {
		t.Fatalf("merges = %v", dend.Merges)
	}
	// Merge distances must be non-decreasing for average linkage on this
	// data (monotone dendrogram).
	hs := dend.MergeHeights()
	for i := 1; i < len(hs); i++ {
		if hs[i] < hs[i-1] {
			t.Fatalf("heights not sorted: %v", hs)
		}
	}
	// Cut at every k.
	for k := 1; k <= 4; k++ {
		labels, err := dend.Cut(k)
		if err != nil {
			t.Fatal(err)
		}
		if countClusters(labels) != k {
			t.Fatalf("cut(%d) gave %d clusters: %v", k, countClusters(labels), labels)
		}
	}
	if _, err := dend.Cut(0); !errors.Is(err, ErrConfig) {
		t.Fatal("cut(0) should fail")
	}
	if _, err := dend.Cut(9); !errors.Is(err, ErrConfig) {
		t.Fatal("cut(9) should fail")
	}
}

func TestHierarchicalWardRequiresEuclidean(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {1}})
	h := &Hierarchical{K: 1, Linkage: WardLinkage, Metric: dist.Manhattan{}}
	if _, err := h.Cluster(data); !errors.Is(err, ErrConfig) {
		t.Fatal("ward with manhattan should fail")
	}
}

func TestHierarchicalBadLinkage(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {1}})
	h := &Hierarchical{K: 1, Linkage: Linkage(42)}
	if _, err := h.Cluster(data); !errors.Is(err, ErrConfig) {
		t.Fatal("unknown linkage should fail")
	}
	if Linkage(42).String() == "" || SingleLinkage.String() != "single" {
		t.Fatal("linkage names wrong")
	}
}

func TestHierarchicalSinglePoint(t *testing.T) {
	dend, err := (&Hierarchical{K: 1}).Dendrogram(matrix.FromRows([][]float64{{3}}))
	if err != nil {
		t.Fatal(err)
	}
	labels, err := dend.Cut(1)
	if err != nil || len(labels) != 1 || labels[0] != 0 {
		t.Fatalf("single point dendrogram broken: %v %v", labels, err)
	}
}

func TestDBSCANRecoversRings(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Dense rings: with 300 random points per ring the largest angular gap
	// stays well below eps, so each ring is one density-connected component.
	ds, err := dataset.Rings(600, 2, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&DBSCAN{Eps: 0.9, MinPts: 4}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("DBSCAN found %d clusters on 2 rings", res.K)
	}
	same, err := quality.SameClustering(res.Assignments, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("DBSCAN should separate the rings exactly")
	}
}

func TestDBSCANNoise(t *testing.T) {
	// Two tight pairs plus one far outlier.
	data := matrix.FromRows([][]float64{{0}, {0.1}, {10}, {10.1}, {100}})
	res, err := (&DBSCAN{Eps: 0.5, MinPts: 2}).Cluster(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	if res.Assignments[4] != Noise {
		t.Fatalf("outlier should be noise: %v", res.Assignments)
	}
}

func TestDBSCANConfigErrors(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {1}})
	if _, err := (&DBSCAN{Eps: 0, MinPts: 2}).Cluster(data); !errors.Is(err, ErrConfig) {
		t.Fatal("eps=0 should fail")
	}
	if _, err := (&DBSCAN{Eps: 1, MinPts: 0}).Cluster(data); !errors.Is(err, ErrConfig) {
		t.Fatal("minPts=0 should fail")
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {10}, {20}})
	res, err := (&DBSCAN{Eps: 1, MinPts: 2}).Cluster(data)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 {
		t.Fatalf("K = %d, want 0", res.K)
	}
	for _, a := range res.Assignments {
		if a != Noise {
			t.Fatal("everything should be noise")
		}
	}
}

func TestNames(t *testing.T) {
	names := []string{
		(&KMeans{K: 3}).Name(),
		(&KMedoids{K: 2}).Name(),
		(&Hierarchical{K: 2, Linkage: WardLinkage}).Name(),
		(&DBSCAN{Eps: 1, MinPts: 3}).Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Fatal("empty name")
		}
	}
}

// Property (Corollary 1 backbone): k-means with a fixed seed produces the
// same partition on isometrically transformed data.
func TestQuickKMeansIsometryInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, err := dataset.WellSeparatedBlobs(60, 3, 4, 15, rng)
		if err != nil {
			return false
		}
		q := matrix.RandomOrthogonal(4, rng)
		rotated, err := matrix.Mul(ds.Data, q.T())
		if err != nil {
			return false
		}
		a, err := (&KMeans{K: 3, Rand: rand.New(rand.NewSource(1))}).Cluster(ds.Data)
		if err != nil {
			return false
		}
		b, err := (&KMeans{K: 3, Rand: rand.New(rand.NewSource(1))}).Cluster(rotated)
		if err != nil {
			return false
		}
		same, err := quality.SameClustering(a.Assignments, b.Assignments)
		return err == nil && same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: dendrogram merge heights are invariant under isometry even
// when labels permute.
func TestQuickDendrogramHeightInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := matrix.RandomDense(4+rng.Intn(12), 3, rng)
		q := matrix.RandomOrthogonal(3, rng)
		rotated, err := matrix.Mul(data, q.T())
		if err != nil {
			return false
		}
		h := &Hierarchical{K: 1, Linkage: CompleteLinkage}
		d1, err := h.Dendrogram(data)
		if err != nil {
			return false
		}
		d2, err := h.Dendrogram(rotated)
		if err != nil {
			return false
		}
		h1, h2 := d1.MergeHeights(), d2.MergeHeights()
		for i := range h1 {
			if math.Abs(h1[i]-h2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
