package cluster

import (
	"fmt"

	"ppclust/internal/dist"
	"ppclust/internal/matrix"
)

// DBSCAN is density-based clustering (Ester et al. 1996): core points have
// at least MinPts neighbours within Eps; clusters are the density-connected
// components; the rest is Noise.
type DBSCAN struct {
	// Eps is the neighbourhood radius (must be > 0).
	Eps float64
	// MinPts is the core-point density threshold, counting the point
	// itself (must be >= 1).
	MinPts int
	// Metric defaults to Euclidean when nil.
	Metric dist.Metric
}

// Name implements Clusterer.
func (d *DBSCAN) Name() string { return fmt.Sprintf("dbscan(eps=%g,minPts=%d)", d.Eps, d.MinPts) }

// Cluster implements Clusterer.
func (d *DBSCAN) Cluster(data *matrix.Dense) (*Result, error) {
	if err := validateData(data, 1); err != nil {
		return nil, err
	}
	if d.Eps <= 0 {
		return nil, fmt.Errorf("%w: eps = %g, need > 0", ErrConfig, d.Eps)
	}
	if d.MinPts < 1 {
		return nil, fmt.Errorf("%w: minPts = %d, need >= 1", ErrConfig, d.MinPts)
	}
	metric := d.Metric
	if metric == nil {
		metric = dist.Euclidean{}
	}
	m := data.Rows()

	neighbors := func(i int) []int {
		var out []int
		ri := data.RawRow(i)
		for j := 0; j < m; j++ {
			if metric.Distance(ri, data.RawRow(j)) <= d.Eps {
				out = append(out, j)
			}
		}
		return out
	}

	const unvisited = -2
	labels := make([]int, m)
	for i := range labels {
		labels[i] = unvisited
	}
	cluster := 0
	for i := 0; i < m; i++ {
		if labels[i] != unvisited {
			continue
		}
		nbrs := neighbors(i)
		if len(nbrs) < d.MinPts {
			labels[i] = Noise
			continue
		}
		labels[i] = cluster
		// Expand the cluster with a growing frontier.
		queue := append([]int(nil), nbrs...)
		for qi := 0; qi < len(queue); qi++ {
			p := queue[qi]
			if labels[p] == Noise {
				labels[p] = cluster // border point adopted by the cluster
			}
			if labels[p] != unvisited {
				continue
			}
			labels[p] = cluster
			pn := neighbors(p)
			if len(pn) >= d.MinPts {
				queue = append(queue, pn...)
			}
		}
		cluster++
	}
	return &Result{
		Assignments: labels,
		K:           countClusters(labels),
		Converged:   true,
	}, nil
}
