package cluster

import (
	"fmt"
	"math/rand"

	"ppclust/internal/matrix"
	"ppclust/internal/quality"
)

// KSelection reports the silhouette score obtained at each candidate K.
type KSelection struct {
	// K is the winning cluster count.
	K int
	// Scores maps each candidate K to its mean silhouette.
	Scores map[int]float64
}

// ChooseKBySilhouette clusters data with k-means for every K in
// [kmin, kmax] and returns the K with the best mean silhouette — the
// standard model-selection companion for the paper's "release and cluster"
// workflow, where the analyst does not know the true group count.
//
// Because silhouettes depend only on pairwise distances, the selected K is
// the same on D and on RBT(D): model selection survives the transformation
// too.
func ChooseKBySilhouette(data *matrix.Dense, kmin, kmax int, seed int64) (*KSelection, error) {
	if kmin < 2 {
		return nil, fmt.Errorf("%w: kmin = %d, need >= 2 (silhouette is undefined below)", ErrConfig, kmin)
	}
	if kmax < kmin {
		return nil, fmt.Errorf("%w: kmax = %d < kmin = %d", ErrConfig, kmax, kmin)
	}
	if kmax > data.Rows() {
		return nil, fmt.Errorf("%w: kmax = %d exceeds %d objects", ErrConfig, kmax, data.Rows())
	}
	sel := &KSelection{Scores: map[int]float64{}}
	best := -2.0 // silhouettes live in [-1, 1]
	for k := kmin; k <= kmax; k++ {
		km := &KMeans{K: k, Rand: rand.New(rand.NewSource(seed)), Restarts: 8}
		res, err := km.Cluster(data)
		if err != nil {
			return nil, err
		}
		score, err := quality.Silhouette(data, res.Assignments, nil)
		if err != nil {
			// A degenerate solution (k-means collapsed to one effective
			// cluster) scores worst rather than aborting the sweep.
			score = -1
		}
		sel.Scores[k] = score
		if score > best {
			best = score
			sel.K = k
		}
	}
	return sel, nil
}
