package cluster

import (
	"context"
	"fmt"
	"math/rand"

	"ppclust/internal/matrix"
	"ppclust/internal/quality"
)

// KSelection reports the silhouette score obtained at each candidate K.
type KSelection struct {
	// K is the winning cluster count.
	K int
	// Scores maps each candidate K to its mean silhouette.
	Scores map[int]float64
}

// ChooseKBySilhouette clusters data with k-means for every K in
// [kmin, kmax] and returns the K with the best mean silhouette — the
// standard model-selection companion for the paper's "release and cluster"
// workflow, where the analyst does not know the true group count.
//
// Because silhouettes depend only on pairwise distances, the selected K is
// the same on D and on RBT(D): model selection survives the transformation
// too.
func ChooseKBySilhouette(data *matrix.Dense, kmin, kmax int, seed int64) (*KSelection, error) {
	sel, _, err := SweepKBySilhouette(context.Background(), data, kmin, kmax, seed, nil)
	return sel, err
}

// SweepKBySilhouette is ChooseKBySilhouette for a served, long-running
// workload: it honors ctx between candidates (a cancelled sweep returns
// ctx.Err()), reports each candidate's score to onStep as it lands (nil to
// skip), and additionally returns the winning candidate's full clustering
// so callers do not pay for a recomputation of the chosen K. Candidate
// seeding is identical to ChooseKBySilhouette, so both select the same K
// on the same data.
func SweepKBySilhouette(ctx context.Context, data *matrix.Dense, kmin, kmax int, seed int64, onStep func(k int, score float64)) (*KSelection, *Result, error) {
	if kmin < 2 {
		return nil, nil, fmt.Errorf("%w: kmin = %d, need >= 2 (silhouette is undefined below)", ErrConfig, kmin)
	}
	if kmax < kmin {
		return nil, nil, fmt.Errorf("%w: kmax = %d < kmin = %d", ErrConfig, kmax, kmin)
	}
	if kmax > data.Rows() {
		return nil, nil, fmt.Errorf("%w: kmax = %d exceeds %d objects", ErrConfig, kmax, data.Rows())
	}
	sel := &KSelection{Scores: map[int]float64{}}
	best := -2.0 // silhouettes live in [-1, 1]
	var bestRes *Result
	for k := kmin; k <= kmax; k++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		km := &KMeans{K: k, Rand: rand.New(rand.NewSource(seed)), Restarts: 8}
		res, err := km.Cluster(data)
		if err != nil {
			return nil, nil, err
		}
		score, err := quality.Silhouette(data, res.Assignments, nil)
		if err != nil {
			// A degenerate solution (k-means collapsed to one effective
			// cluster) scores worst rather than aborting the sweep.
			score = -1
		}
		sel.Scores[k] = score
		if onStep != nil {
			onStep(k, score)
		}
		if score > best {
			best = score
			sel.K = k
			bestRes = res
		}
	}
	return sel, bestRes, nil
}
