package cluster

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ppclust/internal/dataset"
	"ppclust/internal/matrix"
	"ppclust/internal/quality"
)

func TestSpectralRecoversBlobs(t *testing.T) {
	ds := twoBlobs(t, 80, 21)
	assertPerfectRecovery(t, &Spectral{K: 2}, ds)
}

func TestSpectralRecoversRings(t *testing.T) {
	// The canonical spectral win: concentric rings defeat k-means but not
	// spectral clustering with a local bandwidth.
	rng := rand.New(rand.NewSource(22))
	ds, err := dataset.Rings(200, 2, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Spectral{K: 2, Sigma: 0.5}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	same, err := quality.SameClustering(res.Assignments, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("spectral clustering should separate concentric rings")
	}
	// Contrast: plain k-means cannot separate them.
	km, err := (&KMeans{K: 2}).Cluster(ds.Data)
	if err != nil {
		t.Fatal(err)
	}
	kmSame, err := quality.SameClustering(km.Assignments, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if kmSame {
		t.Fatal("k-means separating rings would make this test vacuous")
	}
}

func TestSpectralK1AndErrors(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {1}, {2}})
	res, err := (&Spectral{K: 1}).Cluster(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("K=1 should assign everything to cluster 0")
		}
	}
	if _, err := (&Spectral{K: 0}).Cluster(data); !errors.Is(err, ErrConfig) {
		t.Fatal("K=0 should fail")
	}
	if _, err := (&Spectral{K: 5}).Cluster(data); !errors.Is(err, ErrConfig) {
		t.Fatal("K>m should fail")
	}
}

func TestSpectralCoincidentPoints(t *testing.T) {
	// All points identical: degenerate but must not panic or NaN.
	data := matrix.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	res, err := (&Spectral{K: 2}).Cluster(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 3 {
		t.Fatal("assignments missing")
	}
}

func TestSpectralName(t *testing.T) {
	if (&Spectral{K: 4}).Name() == "" {
		t.Fatal("empty name")
	}
}

// Property (Corollary 1 for the spectral family): identical partitions on
// isometrically transformed data with matched seeds.
func TestQuickSpectralIsometryInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, err := dataset.WellSeparatedBlobs(50, 2, 3, 14, rng)
		if err != nil {
			return false
		}
		q := matrix.RandomOrthogonal(3, rng)
		rotated, err := matrix.Mul(ds.Data, q.T())
		if err != nil {
			return false
		}
		a, err := (&Spectral{K: 2, Rand: rand.New(rand.NewSource(1))}).Cluster(ds.Data)
		if err != nil {
			return false
		}
		b, err := (&Spectral{K: 2, Rand: rand.New(rand.NewSource(1))}).Cluster(rotated)
		if err != nil {
			return false
		}
		same, err := quality.SameClustering(a.Assignments, b.Assignments)
		return err == nil && same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseKBySilhouette(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ds, err := dataset.WellSeparatedBlobs(120, 3, 4, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ChooseKBySilhouette(ds.Data, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 3 {
		t.Fatalf("ChooseK picked %d on 3 well-separated blobs (scores %v)", sel.K, sel.Scores)
	}
	if len(sel.Scores) != 5 {
		t.Fatalf("scores = %v", sel.Scores)
	}
}

func TestChooseKSurvivesRBTStyleRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ds, err := dataset.WellSeparatedBlobs(90, 3, 4, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := matrix.RandomOrthogonal(4, rng)
	rotated, err := matrix.Mul(ds.Data, q.T())
	if err != nil {
		t.Fatal(err)
	}
	a, err := ChooseKBySilhouette(ds.Data, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChooseKBySilhouette(rotated, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Fatalf("model selection changed under isometry: %d vs %d", a.K, b.K)
	}
}

func TestChooseKErrors(t *testing.T) {
	data := matrix.FromRows([][]float64{{0}, {1}, {2}})
	if _, err := ChooseKBySilhouette(data, 1, 3, 1); !errors.Is(err, ErrConfig) {
		t.Fatal("kmin < 2 should fail")
	}
	if _, err := ChooseKBySilhouette(data, 3, 2, 1); !errors.Is(err, ErrConfig) {
		t.Fatal("kmax < kmin should fail")
	}
	if _, err := ChooseKBySilhouette(data, 2, 9, 1); !errors.Is(err, ErrConfig) {
		t.Fatal("kmax > m should fail")
	}
}
