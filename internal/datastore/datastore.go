// Package datastore stores the named, owner-scoped datasets the analytics
// job subsystem operates on: a dataset is ingested once (streamed row by
// row through a Builder), frozen, and then read many times by protect,
// cluster, evaluate, audit and tune jobs.
//
// Data is held as fixed-size row blocks — the same decomposition
// internal/engine uses for its deterministic parallel reductions — so a
// job can iterate blocks without re-chunking, and an upload of unbounded
// length never needs a second contiguous copy during ingest.
//
// The package ships two Store implementations:
//
//   - Memory: a sharded in-process store. Owners hash onto independent
//     shards, each with its own lock, so concurrent ingest from many
//     owners scales with the shard count instead of funnelling through
//     one mutex.
//   - Dir: a directory-backed store with the same sharded index, where
//     each dataset is a directory of append-only binary row segments plus
//     an NDJSON manifest journal (dir.go). Blocks are read back lazily
//     through a byte-bounded LRU cache (cache.go) shared across shards,
//     so hot datasets serve repeated job reads without touching disk.
//
// Datasets are immutable after Finish: stores and callers share the
// underlying blocks without copying, which is what makes a Get on the hot
// job path cheap.
package datastore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"regexp"
	"sort"
	"sync"
	"time"

	"ppclust/internal/matrix"
)

// Errors returned by datastore operations.
var (
	// ErrNotFound reports a missing owner or dataset.
	ErrNotFound = errors.New("datastore: not found")
	// ErrExists reports a Put over a dataset that already exists.
	ErrExists = errors.New("datastore: dataset already exists")
	// ErrBadName reports an invalid owner or dataset name.
	ErrBadName = errors.New("datastore: invalid name")
	// ErrBadData reports malformed rows during ingest.
	ErrBadData = errors.New("datastore: invalid data")
	// ErrCorrupt reports unreadable on-disk state that could not be
	// recovered (a dataset whose manifest lost every complete batch).
	ErrCorrupt = errors.New("datastore: corrupt dataset")
)

// DefaultBlockRows is the Builder's row-block size when none is set. It
// matches engine.DefaultBlockRows so stored blocks line up with the
// engine's parallel decomposition.
const DefaultBlockRows = 8192

// DefaultShards is the store shard count when none is configured: enough
// to keep a few dozen concurrently ingesting owners off each other's
// locks without bloating small deployments.
const DefaultShards = 16

var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidName reports whether name is acceptable as an owner or dataset
// name. The character set deliberately excludes path separators so names
// can double as file names in the directory-backed store.
func ValidName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// Meta is the secret-free description of a stored dataset, safe to list
// over the API.
type Meta struct {
	// Owner names the data owner the dataset belongs to.
	Owner string `json:"owner"`
	// Name identifies the dataset within its owner's namespace.
	Name string `json:"name"`
	// Rows and Cols give the data shape.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Attrs holds one attribute name per column.
	Attrs []string `json:"attrs"`
	// Labeled reports whether every row carries a ground-truth label.
	Labeled bool `json:"labeled"`
	// CreatedAt records when the dataset was ingested (UTC).
	CreatedAt time.Time `json:"created_at"`
}

// segref is one row block of a dataset: either resident in memory (the
// Memory store, or a dataset fresh out of a Builder) or loadable on
// demand from a segment file through the store's block cache.
type segref struct {
	rows  int
	block *matrix.Dense                 // resident block; nil when lazy
	load  func() (*matrix.Dense, error) // lazy loader; nil when resident
}

func (s *segref) get() (*matrix.Dense, error) {
	if s.block != nil {
		return s.block, nil
	}
	return s.load()
}

// Dataset is an immutable ingested dataset: metadata plus row blocks.
// Blocks may be lazily materialized from disk; the accessors that touch
// row data can therefore fail with an I/O error on the Dir store.
type Dataset struct {
	Meta
	segs   []segref
	labels []int
}

// Blocks calls fn for each row block in order, stopping at the first
// error. Blocks all have the builder's block size except the last.
func (d *Dataset) Blocks(fn func(b *matrix.Dense) error) error {
	for i := range d.segs {
		b, err := d.segs[i].get()
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// NumBlocks returns the number of row blocks.
func (d *Dataset) NumBlocks() int { return len(d.segs) }

// Matrix materializes the dataset as one contiguous matrix — the form
// engine.Protect and the clustering algorithms consume. The result is a
// fresh copy; mutating it never touches the stored blocks.
func (d *Dataset) Matrix() (*matrix.Dense, error) {
	out := matrix.NewDense(d.Rows, d.Cols, nil)
	r := 0
	err := d.Blocks(func(b *matrix.Dense) error {
		for i := 0; i < b.Rows(); i++ {
			copy(out.RawRow(r), b.RawRow(i))
			r++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Labels returns a copy of the per-row ground-truth labels, or nil when
// the dataset is unlabeled.
func (d *Dataset) Labels() []int {
	if d.labels == nil {
		return nil
	}
	return append([]int(nil), d.labels...)
}

// Builder ingests a dataset row by row, chunking into blocks as it goes.
// It is not safe for concurrent use; one upload drives one builder.
type Builder struct {
	meta      Meta
	blockRows int
	cur       []float64 // flat rows of the block being filled
	curRows   int
	segs      []segref
	labels    []int
}

// NewBuilder starts a dataset for owner with the given attribute names.
func NewBuilder(owner, name string, attrs []string) (*Builder, error) {
	if err := ValidName(owner); err != nil {
		return nil, err
	}
	if err := ValidName(name); err != nil {
		return nil, err
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrBadData)
	}
	return &Builder{
		meta: Meta{
			Owner: owner,
			Name:  name,
			Cols:  len(attrs),
			Attrs: append([]string(nil), attrs...),
		},
		blockRows: DefaultBlockRows,
	}, nil
}

// SetBlockRows overrides the row-block size; it must be called before the
// first Append.
func (b *Builder) SetBlockRows(n int) {
	if n > 0 && b.meta.Rows == 0 {
		b.blockRows = n
	}
}

// Append adds one unlabeled row.
func (b *Builder) Append(row []float64) error {
	return b.append(row, 0, false)
}

// AppendLabeled adds one row with its ground-truth label. A dataset is
// labeled all-or-nothing: mixing Append and AppendLabeled fails.
func (b *Builder) AppendLabeled(row []float64, label int) error {
	return b.append(row, label, true)
}

func (b *Builder) append(row []float64, label int, labeled bool) error {
	if len(row) != b.meta.Cols {
		return fmt.Errorf("%w: row %d has %d values, want %d", ErrBadData, b.meta.Rows, len(row), b.meta.Cols)
	}
	for j, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: row %d column %d is not finite", ErrBadData, b.meta.Rows, j)
		}
	}
	if b.meta.Rows > 0 && labeled != (b.labels != nil) {
		return fmt.Errorf("%w: row %d mixes labeled and unlabeled rows", ErrBadData, b.meta.Rows)
	}
	if labeled {
		b.labels = append(b.labels, label)
	}
	if b.cur == nil {
		b.cur = make([]float64, 0, b.blockRows*b.meta.Cols)
	}
	b.cur = append(b.cur, row...)
	b.curRows++
	b.meta.Rows++
	if b.curRows == b.blockRows {
		b.flush()
	}
	return nil
}

func (b *Builder) flush() {
	if b.curRows == 0 {
		return
	}
	b.segs = append(b.segs, segref{
		rows:  b.curRows,
		block: matrix.NewDense(b.curRows, b.meta.Cols, b.cur),
	})
	b.cur = nil
	b.curRows = 0
}

// Finish freezes the builder into an immutable Dataset stamped at now.
func (b *Builder) Finish(now time.Time) (*Dataset, error) {
	if b.meta.Rows == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadData)
	}
	b.flush()
	meta := b.meta
	meta.Labeled = b.labels != nil
	meta.CreatedAt = now.UTC()
	ds := &Dataset{Meta: meta, segs: b.segs, labels: b.labels}
	b.segs, b.labels = nil, nil // the builder is spent
	return ds, nil
}

// Store is a dataset backend. Implementations are safe for concurrent
// use; the datasets they hand out are immutable.
type Store interface {
	// Put stores a finished dataset; ErrExists if (owner, name) is taken.
	Put(ds *Dataset) error
	// Get returns the named dataset.
	Get(owner, name string) (*Dataset, error)
	// List returns metadata for every dataset of owner, sorted by name.
	// An unknown owner lists empty, not ErrNotFound — job submission
	// distinguishes "no such dataset" from "no datasets yet" elsewhere.
	List(owner string) ([]Meta, error)
	// Delete removes the named dataset.
	Delete(owner, name string) error
}

// shardOf picks the shard index for an owner: every dataset of one owner
// lives on one shard, so per-owner operations never cross shard locks.
func shardOf(owner string, n int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(owner))
	return int(h.Sum32() % uint32(n))
}

// memShard is one independently locked slice of the owner space.
type memShard struct {
	mu     sync.RWMutex
	owners map[string]map[string]*Dataset
}

// Memory is a sharded in-process Store: owners hash onto independent
// shards so concurrent multi-owner ingest does not serialize on one lock.
type Memory struct {
	shards []*memShard
}

// NewMemory returns an empty in-memory dataset store with DefaultShards
// shards.
func NewMemory() *Memory { return NewSharded(DefaultShards) }

// NewSharded returns an empty in-memory dataset store with n independently
// locked shards (n < 1 falls back to 1).
func NewSharded(n int) *Memory {
	if n < 1 {
		n = 1
	}
	m := &Memory{shards: make([]*memShard, n)}
	for i := range m.shards {
		m.shards[i] = &memShard{owners: map[string]map[string]*Dataset{}}
	}
	return m
}

// Shards returns the shard count.
func (m *Memory) Shards() int { return len(m.shards) }

func (m *Memory) shard(owner string) *memShard {
	return m.shards[shardOf(owner, len(m.shards))]
}

// Put implements Store.
func (m *Memory) Put(ds *Dataset) error {
	if err := ValidName(ds.Owner); err != nil {
		return err
	}
	if err := ValidName(ds.Name); err != nil {
		return err
	}
	sh := m.shard(ds.Owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.putLocked(ds)
}

func (sh *memShard) putLocked(ds *Dataset) error {
	sets := sh.owners[ds.Owner]
	if sets == nil {
		sets = map[string]*Dataset{}
		sh.owners[ds.Owner] = sets
	}
	if _, ok := sets[ds.Name]; ok {
		return fmt.Errorf("%w: %s/%s", ErrExists, ds.Owner, ds.Name)
	}
	sets[ds.Name] = ds
	return nil
}

// Get implements Store.
func (m *Memory) Get(owner, name string) (*Dataset, error) {
	sh := m.shard(owner)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ds, ok := sh.owners[owner][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, owner, name)
	}
	return ds, nil
}

// List implements Store.
func (m *Memory) List(owner string) ([]Meta, error) {
	sh := m.shard(owner)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sets := sh.owners[owner]
	out := make([]Meta, 0, len(sets))
	for _, ds := range sets {
		out = append(out, ds.Meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Delete implements Store.
func (m *Memory) Delete(owner, name string) error {
	sh := m.shard(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.deleteLocked(owner, name)
}

func (sh *memShard) deleteLocked(owner, name string) error {
	if _, ok := sh.owners[owner][name]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, owner, name)
	}
	delete(sh.owners[owner], name)
	if len(sh.owners[owner]) == 0 {
		delete(sh.owners, owner)
	}
	return nil
}
