package datastore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ppclust/internal/matrix"
)

// Dir is a Store persisted as one directory per dataset under
// root/<owner>/<name>/: append-only binary row-segment files plus an
// NDJSON manifest journal. Each Put writes its segments and manifest into
// a private temp directory and renames it into place, all with 0600/0700
// permissions — uploaded data may be unprotected originals, so the store
// is as private as the keyring.
//
// The manifest is a journal, not a document: its first line is the
// dataset header, every following line commits one segment (a batch of
// rows). Recovery is therefore prefix-shaped — a truncated trailing
// manifest line, or a segment file shorter than its committed row count,
// drops that batch and everything after it, and the dataset reopens at
// the last complete batch instead of failing outright.
//
// Only metadata is resident: row blocks load lazily from their segment
// files through a byte-bounded LRU cache shared across every shard, so
// hot datasets serve repeated job reads from memory while cold ones cost
// no RAM at all. The index itself is sharded by owner exactly like
// Memory, so concurrent multi-owner ingest scales with the shard count.
type Dir struct {
	root   string
	cache  *BlockCache
	shards []*memShard // same sharded index as Memory; the shard lock also serializes file mutations for its owners
}

// DirOptions tunes a Dir store.
type DirOptions struct {
	// Shards is the index shard count (< 1: DefaultShards).
	Shards int
	// CacheBytes bounds the shared block cache (< 1: DefaultCacheBytes).
	CacheBytes int64
}

// manifestHeader is the journal's first line. Its Meta.Rows is advisory:
// the authoritative row count is the sum of the recovered batch lines.
type manifestHeader struct {
	Version int  `json:"version"`
	Meta    Meta `json:"meta"`
}

// manifestBatch commits one segment: its file, row count and (for labeled
// datasets) the batch's labels.
type manifestBatch struct {
	Seg    string `json:"seg"`
	Rows   int    `json:"rows"`
	Labels []int  `json:"labels,omitempty"`
}

const (
	manifestName    = "manifest"
	manifestVersion = 2
	// legacy PR-2 format: one JSON document per dataset.
	legacySuffix  = ".json"
	legacyVersion = 1
)

// OpenDir opens (or initializes) a directory-backed dataset store with
// default options.
func OpenDir(root string) (*Dir, error) {
	return OpenDirOptions(root, DirOptions{})
}

// OpenDirOptions opens (or initializes) a directory-backed dataset store.
func OpenDirOptions(root string, opts DirOptions) (*Dir, error) {
	if opts.Shards < 1 {
		opts.Shards = DefaultShards
	}
	if err := os.MkdirAll(root, 0o700); err != nil {
		return nil, fmt.Errorf("datastore: creating %s: %w", root, err)
	}
	d := &Dir{
		root:   root,
		cache:  NewBlockCache(opts.CacheBytes),
		shards: make([]*memShard, opts.Shards),
	}
	for i := range d.shards {
		d.shards[i] = &memShard{owners: map[string]map[string]*Dataset{}}
	}
	owners, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("datastore: reading %s: %w", root, err)
	}
	for _, ownerEnt := range owners {
		if !ownerEnt.IsDir() || ValidName(ownerEnt.Name()) != nil {
			continue
		}
		owner := ownerEnt.Name()
		files, err := os.ReadDir(filepath.Join(root, owner))
		if err != nil {
			return nil, fmt.Errorf("datastore: reading %s: %w", owner, err)
		}
		for _, f := range files {
			// Dot-prefixed entries are persist()'s temp dirs and files; a
			// crash can leave one behind (possibly truncated) and it must
			// never be loaded. They are garbage — sweep them.
			if strings.HasPrefix(f.Name(), ".") {
				_ = os.RemoveAll(filepath.Join(root, owner, f.Name()))
				continue
			}
			var ds *Dataset
			switch {
			case f.IsDir() && ValidName(f.Name()) == nil:
				ds, err = d.loadDataset(owner, f.Name())
			case !f.IsDir() && strings.HasSuffix(f.Name(), legacySuffix):
				ds, err = loadLegacy(filepath.Join(root, owner, f.Name()))
			default:
				continue
			}
			if err != nil {
				return nil, err
			}
			if ds == nil {
				continue // unrecoverable dataset: skipped, not fatal
			}
			sh := d.shard(ds.Owner)
			if err := sh.putLocked(ds); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// Root returns the backing directory.
func (d *Dir) Root() string { return d.root }

// Cache returns the store's shared block cache (for metrics and
// benchmarks).
func (d *Dir) Cache() *BlockCache { return d.cache }

// Shards returns the index shard count.
func (d *Dir) Shards() int { return len(d.shards) }

func (d *Dir) shard(owner string) *memShard {
	return d.shards[shardOf(owner, len(d.shards))]
}

func (d *Dir) datasetDir(owner, name string) string {
	return filepath.Join(d.root, owner, name)
}

func cacheKey(owner, name, seg string) string {
	return owner + "\x00" + name + "\x00" + seg
}

// loadDataset reopens one dataset directory, recovering to the longest
// prefix of complete batches. It returns (nil, nil) when nothing is
// recoverable — the caller skips the dataset rather than failing the
// whole store.
func (d *Dir) loadDataset(owner, name string) (*Dataset, error) {
	dir := d.datasetDir(owner, name)
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil // crash between dir rename steps: no manifest, no data
		}
		return nil, fmt.Errorf("datastore: reading %s: %w", dir, err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 0, 64*1024), 256<<20) // label lines scale with batch rows
	if !sc.Scan() {
		return nil, nil
	}
	var hdr manifestHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Version != manifestVersion {
		return nil, nil // unreadable header: unrecoverable
	}
	meta := hdr.Meta
	if meta.Cols <= 0 || ValidName(meta.Owner) != nil || ValidName(meta.Name) != nil {
		return nil, nil
	}
	ds := &Dataset{Meta: meta}
	ds.Rows = 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var batch manifestBatch
		if err := json.Unmarshal([]byte(line), &batch); err != nil {
			break // partial trailing line: recovered prefix ends here
		}
		if batch.Rows <= 0 || !fs.ValidPath(batch.Seg) || strings.Contains(batch.Seg, "/") {
			break
		}
		if meta.Labeled != (batch.Labels != nil) || (batch.Labels != nil && len(batch.Labels) != batch.Rows) {
			break
		}
		fi, err := os.Stat(filepath.Join(dir, batch.Seg))
		if err != nil || fi.Size() < int64(batch.Rows)*int64(meta.Cols)*8 {
			break // truncated or missing segment: drop this batch and the rest
		}
		ds.segs = append(ds.segs, d.lazySeg(owner, name, batch.Seg, batch.Rows, meta.Cols))
		ds.labels = append(ds.labels, batch.Labels...)
		ds.Rows += batch.Rows
	}
	if ds.Rows == 0 {
		return nil, nil
	}
	if !meta.Labeled {
		ds.labels = nil
	}
	return ds, nil
}

// lazySeg builds a segref that reads its segment file through the shared
// cache on first use.
func (d *Dir) lazySeg(owner, name, seg string, rows, cols int) segref {
	key := cacheKey(owner, name, seg)
	path := filepath.Join(d.datasetDir(owner, name), seg)
	return segref{
		rows: rows,
		load: func() (*matrix.Dense, error) {
			return d.cache.GetOrLoad(key, func() (*matrix.Dense, error) {
				return readSegment(path, rows, cols)
			})
		},
	}
}

// readSegment decodes one binary segment file: rows×cols little-endian
// float64 values, row-major.
func readSegment(path string, rows, cols int) (*matrix.Dense, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("datastore: reading segment %s: %w", path, err)
	}
	want := rows * cols * 8
	if len(raw) < want {
		return nil, fmt.Errorf("%w: segment %s has %d bytes, want %d", ErrCorrupt, path, len(raw), want)
	}
	flat := make([]float64, rows*cols)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return matrix.NewDense(rows, cols, flat), nil
}

func writeSegment(path string, b *matrix.Dense) error {
	buf := make([]byte, b.Rows()*b.Cols()*8)
	off := 0
	for i := 0; i < b.Rows(); i++ {
		for _, v := range b.RawRow(i) {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return os.WriteFile(path, buf, 0o600)
}

// Put implements Store: persist into a temp directory, rename into place,
// then index. Only the owner's shard is locked, so ingest from different
// owners proceeds in parallel — that lock is held across the disk write,
// which serializes writers (and briefly readers) within one shard; the
// shard count (-store-shards) is the knob that bounds how much of the
// owner space one large ingest can stall.
func (d *Dir) Put(ds *Dataset) error {
	if err := ValidName(ds.Owner); err != nil {
		return err
	}
	if err := ValidName(ds.Name); err != nil {
		return err
	}
	sh := d.shard(ds.Owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.owners[ds.Owner][ds.Name]; ok {
		return fmt.Errorf("%w: %s/%s", ErrExists, ds.Owner, ds.Name)
	}
	stored, err := d.persist(ds)
	if err != nil {
		return err
	}
	return sh.putLocked(stored)
}

// persist writes ds as segments + manifest and returns the lazily backed
// Dataset to index: blocks live in the shared cache (warmed write-through)
// rather than being pinned per dataset.
func (d *Dir) persist(ds *Dataset) (*Dataset, error) {
	ownerDir := filepath.Join(d.root, ds.Owner)
	if err := os.MkdirAll(ownerDir, 0o700); err != nil {
		return nil, fmt.Errorf("datastore: creating %s: %w", ownerDir, err)
	}
	tmp, err := os.MkdirTemp(ownerDir, ".dataset-*")
	if err != nil {
		return nil, fmt.Errorf("datastore: temp dir: %w", err)
	}
	defer os.RemoveAll(tmp)

	var mf strings.Builder
	hdr := manifestHeader{Version: manifestVersion, Meta: ds.Meta}
	hdrRaw, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("datastore: encoding manifest: %w", err)
	}
	mf.Write(hdrRaw)
	mf.WriteByte('\n')

	stored := &Dataset{Meta: ds.Meta, labels: ds.labels}
	row := 0
	for i := range ds.segs {
		b, err := ds.segs[i].get()
		if err != nil {
			return nil, err
		}
		seg := fmt.Sprintf("seg-%06d.dat", i+1)
		if err := writeSegment(filepath.Join(tmp, seg), b); err != nil {
			return nil, fmt.Errorf("datastore: writing %s/%s %s: %w", ds.Owner, ds.Name, seg, err)
		}
		batch := manifestBatch{Seg: seg, Rows: b.Rows()}
		if ds.labels != nil {
			batch.Labels = ds.labels[row : row+b.Rows()]
		}
		row += b.Rows()
		batchRaw, err := json.Marshal(batch)
		if err != nil {
			return nil, fmt.Errorf("datastore: encoding manifest: %w", err)
		}
		mf.Write(batchRaw)
		mf.WriteByte('\n')
		stored.segs = append(stored.segs, d.lazySeg(ds.Owner, ds.Name, seg, b.Rows(), ds.Cols))
	}
	if err := os.WriteFile(filepath.Join(tmp, manifestName), []byte(mf.String()), 0o600); err != nil {
		return nil, fmt.Errorf("datastore: writing manifest: %w", err)
	}
	final := d.datasetDir(ds.Owner, ds.Name)
	// The index (under the caller's shard lock) says the name is free, so
	// anything still on disk is an unrecoverable leftover — a dataset
	// whose manifest header was unreadable at open. Reclaim the name
	// rather than failing the rename with ENOTEMPTY forever.
	if err := os.RemoveAll(final); err != nil {
		return nil, fmt.Errorf("datastore: reclaiming %s: %w", final, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("datastore: committing %s: %w", final, err)
	}
	// Write-through: the ingested blocks are hot by definition (a protect
	// or evaluate job typically follows the upload immediately).
	for i := range ds.segs {
		b, _ := ds.segs[i].get()
		d.cache.Add(cacheKey(ds.Owner, ds.Name, fmt.Sprintf("seg-%06d.dat", i+1)), b)
	}
	return stored, nil
}

// Get implements Store.
func (d *Dir) Get(owner, name string) (*Dataset, error) {
	sh := d.shard(owner)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ds, ok := sh.owners[owner][name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, owner, name)
	}
	return ds, nil
}

// List implements Store.
func (d *Dir) List(owner string) ([]Meta, error) {
	sh := d.shard(owner)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sets := sh.owners[owner]
	out := make([]Meta, 0, len(sets))
	for _, ds := range sets {
		out = append(out, ds.Meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Delete implements Store: the files go first so a crash can only leave
// an orphaned directory behind, never an index entry without backing
// data; the cache entries go last, after nothing can re-admit them.
func (d *Dir) Delete(owner, name string) error {
	sh := d.shard(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.owners[owner][name]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, owner, name)
	}
	if err := os.RemoveAll(d.datasetDir(owner, name)); err != nil {
		return fmt.Errorf("datastore: removing %s/%s: %w", owner, name, err)
	}
	// A dataset loaded from the legacy one-document format has no
	// directory; its document is removed instead.
	legacy := filepath.Join(d.root, owner, name+legacySuffix)
	if err := os.Remove(legacy); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("datastore: removing %s: %w", legacy, err)
	}
	if err := sh.deleteLocked(owner, name); err != nil {
		return err
	}
	d.cache.RemovePrefix(owner + "\x00" + name + "\x00")
	return nil
}

// legacyDoc is the PR-2 on-disk schema: one JSON document per dataset
// with the whole matrix flattened inline. Still readable so a data dir
// written by an older daemon survives the upgrade; new writes always use
// the segment layout.
type legacyDoc struct {
	Version int       `json:"version"`
	Meta    Meta      `json:"meta"`
	Labels  []int     `json:"labels,omitempty"`
	Data    []float64 `json:"data"`
}

func loadLegacy(path string) (*Dataset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("datastore: reading %s: %w", path, err)
	}
	var doc legacyDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("datastore: parsing %s: %w", path, err)
	}
	if doc.Version != legacyVersion {
		return nil, fmt.Errorf("datastore: %s has unsupported version %d", path, doc.Version)
	}
	m := doc.Meta
	if m.Rows <= 0 || m.Cols <= 0 || len(doc.Data) != m.Rows*m.Cols {
		return nil, fmt.Errorf("datastore: %s: %d values for a %dx%d dataset", path, len(doc.Data), m.Rows, m.Cols)
	}
	if m.Labeled != (doc.Labels != nil) || (doc.Labels != nil && len(doc.Labels) != m.Rows) {
		return nil, fmt.Errorf("datastore: %s: inconsistent labels", path)
	}
	ds := &Dataset{Meta: m, labels: doc.Labels}
	for lo := 0; lo < m.Rows; lo += DefaultBlockRows {
		hi := min(lo+DefaultBlockRows, m.Rows)
		ds.segs = append(ds.segs, segref{
			rows:  hi - lo,
			block: matrix.NewDense(hi-lo, m.Cols, doc.Data[lo*m.Cols:hi*m.Cols]),
		})
	}
	return ds, nil
}
