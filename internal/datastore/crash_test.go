package datastore

// Crash-safety of the Dir store's segment+manifest layout: reopening
// after a simulated crash (truncated segment file, partially written
// manifest line) must recover the longest prefix of complete batches
// instead of failing the dataset — and never fail the whole store.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ppclust/internal/matrix"
)

func openTestDir(t *testing.T, root string) *Dir {
	t.Helper()
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// putBlocked stores rows split into 16-row blocks for owner/name.
func putBlocked(t *testing.T, d *Dir, owner, name string, rows int, labeled bool) {
	t.Helper()
	if err := d.Put(buildDataset(t, owner, name, rows, labeled)); err != nil {
		t.Fatal(err)
	}
}

func TestDirReopenRecoversTruncatedSegment(t *testing.T) {
	root := t.TempDir()
	d := openTestDir(t, root)
	putBlocked(t, d, "alice", "d1", 40, true) // blocks of 16: 16+16+8

	// Crash: the last segment lost half its bytes.
	seg := filepath.Join(root, "alice", "d1", "seg-000003.dat")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDir(t, root)
	got, err := d2.Get("alice", "d1")
	if err != nil {
		t.Fatalf("truncated segment must not lose the dataset: %v", err)
	}
	if got.Rows != 32 || got.NumBlocks() != 2 {
		t.Fatalf("recovered %d rows in %d blocks, want 32 in 2", got.Rows, got.NumBlocks())
	}
	if len(got.Labels()) != 32 {
		t.Fatalf("labels = %d, want 32", len(got.Labels()))
	}
	m, err := got.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if m.At(i, 0) != float64(i) {
			t.Fatalf("row %d corrupted after recovery", i)
		}
	}
}

func TestDirReopenRecoversPartialManifestLine(t *testing.T) {
	root := t.TempDir()
	d := openTestDir(t, root)
	putBlocked(t, d, "alice", "d1", 40, false)

	// Crash: a new batch line was half-written (no trailing newline, cut
	// mid-JSON), as an appending ingest dying mid-write would leave it.
	mf := filepath.Join(root, "alice", "d1", "manifest")
	f, err := os.OpenFile(mf, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seg":"seg-000004.dat","ro`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := openTestDir(t, root)
	got, err := d2.Get("alice", "d1")
	if err != nil {
		t.Fatalf("partial manifest line must not lose the dataset: %v", err)
	}
	if got.Rows != 40 {
		t.Fatalf("recovered %d rows, want all 40 committed ones", got.Rows)
	}
}

func TestDirReopenRecoversMissingSegment(t *testing.T) {
	root := t.TempDir()
	d := openTestDir(t, root)
	putBlocked(t, d, "alice", "d1", 40, false)
	if err := os.Remove(filepath.Join(root, "alice", "d1", "seg-000002.dat")); err != nil {
		t.Fatal(err)
	}
	// A hole in the middle drops that batch and everything after it: the
	// recovered dataset is the longest consistent prefix.
	d2 := openTestDir(t, root)
	got, err := d2.Get("alice", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 16 {
		t.Fatalf("recovered %d rows, want 16", got.Rows)
	}
}

func TestDirReopenSkipsUnrecoverableDataset(t *testing.T) {
	root := t.TempDir()
	d := openTestDir(t, root)
	putBlocked(t, d, "alice", "good", 8, false)
	putBlocked(t, d, "alice", "bad", 8, false)

	// The bad dataset's manifest header itself is garbage: nothing to
	// recover — but the store (and the good dataset) must still open.
	if err := os.WriteFile(filepath.Join(root, "alice", "bad", "manifest"), []byte("{half a hea"), 0o600); err != nil {
		t.Fatal(err)
	}
	d2 := openTestDir(t, root)
	if _, err := d2.Get("alice", "good"); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Get("alice", "bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unrecoverable dataset should be absent, got %v", err)
	}

	// The leftover directory must not poison the name: a fresh Put under
	// it reclaims the on-disk space and round-trips through a reopen.
	putBlocked(t, d2, "alice", "bad", 8, false)
	d3 := openTestDir(t, root)
	got, err := d3.Get("alice", "bad")
	if err != nil || got.Rows != 8 {
		t.Fatalf("reclaimed dataset = %+v, %v", got, err)
	}
}

func TestDirReopenSweepsTempDirs(t *testing.T) {
	root := t.TempDir()
	d := openTestDir(t, root)
	putBlocked(t, d, "alice", "d1", 8, false)

	// Crash mid-persist: a temp dir with a segment but no committed
	// rename. Reopen must ignore and remove it.
	tmp := filepath.Join(root, "alice", ".dataset-crashed")
	if err := os.MkdirAll(tmp, 0o700); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "seg-000001.dat"), []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	d2 := openTestDir(t, root)
	metas, err := d2.List("alice")
	if err != nil || len(metas) != 1 {
		t.Fatalf("list = %v, %v", metas, err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("leftover temp dir must be swept at open")
	}
}

// TestDirLegacyFormatStillLoads: a data dir written by the PR-2 era store
// (one JSON document per dataset) survives the upgrade: it loads, reads
// and deletes through the new store.
func TestDirLegacyFormatStillLoads(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "alice"), 0o700); err != nil {
		t.Fatal(err)
	}
	doc := `{"version":1,"meta":{"owner":"alice","name":"old","rows":2,"cols":2,"attrs":["x","y"],"labeled":false,"created_at":"2025-01-01T00:00:00Z"},"data":[1,2,3,4]}`
	if err := os.WriteFile(filepath.Join(root, "alice", "old.json"), []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	d := openTestDir(t, root)
	ds, err := d.Get("alice", "old")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ds.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 4 {
		t.Fatalf("legacy data wrong: %v", m.RawRow(1))
	}
	if err := d.Delete("alice", "old"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "alice", "old.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("legacy document must be removed by delete")
	}
}

// TestShardedConcurrentIngest drives many owners through one store
// concurrently — run under -race this is the satellite's data-race check
// for the sharded index and the shared cache.
func TestShardedConcurrentIngest(t *testing.T) {
	for _, store := range []struct {
		name string
		s    Store
	}{
		{"memory", NewSharded(4)},
		{"dir", mustOpenDirOptions(t, DirOptions{Shards: 4, CacheBytes: 1 << 20})},
	} {
		t.Run(store.name, func(t *testing.T) {
			const owners, setsPer = 8, 4
			var wg sync.WaitGroup
			errc := make(chan error, owners*setsPer)
			for o := 0; o < owners; o++ {
				owner := fmt.Sprintf("owner%02d", o)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 0; n < setsPer; n++ {
						b, err := NewBuilder(owner, fmt.Sprintf("d%02d", n), []string{"x", "y"})
						if err != nil {
							errc <- err
							return
						}
						b.SetBlockRows(8)
						for i := 0; i < 33; i++ {
							if err := b.Append([]float64{float64(i), float64(i * i)}); err != nil {
								errc <- err
								return
							}
						}
						ds, err := b.Finish(time.Now())
						if err != nil {
							errc <- err
							return
						}
						if err := store.s.Put(ds); err != nil {
							errc <- err
							return
						}
						// Interleave reads with other owners' writes.
						got, err := store.s.Get(owner, ds.Name)
						if err != nil {
							errc <- err
							return
						}
						if _, err := got.Matrix(); err != nil {
							errc <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			for o := 0; o < owners; o++ {
				metas, err := store.s.List(fmt.Sprintf("owner%02d", o))
				if err != nil || len(metas) != setsPer {
					t.Fatalf("owner%02d: %d datasets, %v", o, len(metas), err)
				}
			}
		})
	}
}

func mustOpenDirOptions(t *testing.T, opts DirOptions) *Dir {
	t.Helper()
	d, err := OpenDirOptions(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBlockCacheWarmReadsAndInvalidation(t *testing.T) {
	// Budget holds all 3 segments (16 rows × 3 cols = 384 bytes each).
	d := mustOpenDirOptions(t, DirOptions{Shards: 2, CacheBytes: 4096})
	putBlocked(t, d, "alice", "d1", 48, false) // 3 segments
	d.Cache().Clear()

	ds, err := d.Get("alice", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Matrix(); err != nil { // 3 cold loads
		t.Fatal(err)
	}
	st := d.Cache().Stats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats after cold read = %+v, want 3 misses", st)
	}
	if _, err := ds.Matrix(); err != nil { // warm: all hits
		t.Fatal(err)
	}
	if st2 := d.Cache().Stats(); st2.Hits != 3 || st2.Misses != 3 {
		t.Fatalf("stats after warm read = %+v, want 3 hits", st2)
	}

	// Delete invalidates the dataset's cached blocks.
	if err := d.Delete("alice", "d1"); err != nil {
		t.Fatal(err)
	}
	if st3 := d.Cache().Stats(); st3.Entries != 0 {
		t.Fatalf("entries survive delete: %+v", st3)
	}
}

func TestBlockCacheStaysInBudget(t *testing.T) {
	// Budget fits ~2 of the 3 blocks: reads must evict, never exceed.
	d := mustOpenDirOptions(t, DirOptions{Shards: 2, CacheBytes: 800})
	putBlocked(t, d, "alice", "d1", 48, false)
	ds, err := d.Get("alice", "d1")
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		if _, err := ds.Matrix(); err != nil {
			t.Fatal(err)
		}
		st := d.Cache().Stats()
		if st.Bytes > st.MaxBytes {
			t.Fatalf("pass %d: cache over budget: %+v", pass, st)
		}
	}
	if st := d.Cache().Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions under a tight budget: %+v", st)
	}
}

// TestBlockCacheSingleFlight: concurrent GetOrLoad of one key runs the
// loader exactly once; everyone else waits and shares the result.
func TestBlockCacheSingleFlight(t *testing.T) {
	c := NewBlockCache(1 << 20)
	var mu sync.Mutex
	loads := 0
	block := matrix.NewDense(1, 1, []float64{42})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.GetOrLoad("k", func() (*matrix.Dense, error) {
				mu.Lock()
				loads++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				return block, nil
			})
			if err != nil || got.At(0, 0) != 42 {
				t.Errorf("got %v, %v", got, err)
			}
		}()
	}
	wg.Wait()
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	if st := c.Stats(); st.Hits != 7 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
