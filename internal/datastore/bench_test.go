package datastore

// The ppcore storage benchmarks, emitted to CI as BENCH_ppcore.json:
//
//   - BenchmarkDatastoreIngestSharded: concurrent multi-owner ingest
//     through the Dir store over an owners × rows × shards grid — the
//     point is throughput scaling with the shard count, since each owner
//     only contends for its own shard's lock.
//   - BenchmarkDatastoreReadCached: repeated whole-dataset reads with the
//     block cache cold (cleared every iteration) vs warm — the point is
//     cached re-reads beating the disk path on the same grid.

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func benchDataset(b *testing.B, owner, name string, rows int) *Dataset {
	b.Helper()
	bd, err := NewBuilder(owner, name, []string{"a", "b", "c", "d"})
	if err != nil {
		b.Fatal(err)
	}
	bd.SetBlockRows(1024)
	row := make([]float64, 4)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = float64(i*4 + j)
		}
		if err := bd.Append(row); err != nil {
			b.Fatal(err)
		}
	}
	ds, err := bd.Finish(time.Unix(1700000000, 0))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkDatastoreIngestSharded(b *testing.B) {
	for _, owners := range []int{2, 8} {
		for _, rows := range []int{2048, 8192} {
			for _, shards := range []int{1, 4, 16} {
				name := fmt.Sprintf("owners=%d/rows=%d/shards=%d", owners, rows, shards)
				b.Run(name, func(b *testing.B) {
					d, err := OpenDirOptions(b.TempDir(), DirOptions{Shards: shards})
					if err != nil {
						b.Fatal(err)
					}
					// Build once per owner outside the timer; Put re-persists
					// fresh names each iteration, so the measured work is the
					// store's, not the builder's.
					sets := make([]*Dataset, owners)
					for o := range sets {
						sets[o] = benchDataset(b, fmt.Sprintf("owner%02d", o), "seed", rows)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var wg sync.WaitGroup
						for o := 0; o < owners; o++ {
							wg.Add(1)
							go func(o int) {
								defer wg.Done()
								src := sets[o]
								ds := &Dataset{Meta: src.Meta, segs: src.segs, labels: src.labels}
								ds.Name = fmt.Sprintf("d%06d", i)
								if err := d.Put(ds); err != nil {
									b.Error(err)
								}
							}(o)
						}
						wg.Wait()
					}
					b.StopTimer()
					rowsPerOp := float64(owners * rows)
					b.ReportMetric(rowsPerOp*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
				})
			}
		}
	}
}

func BenchmarkDatastoreReadCached(b *testing.B) {
	for _, owners := range []int{2, 4} {
		for _, rows := range []int{8192} {
			for _, shards := range []int{4} {
				for _, mode := range []string{"cold", "warm"} {
					name := fmt.Sprintf("owners=%d/rows=%d/shards=%d/%s", owners, rows, shards, mode)
					b.Run(name, func(b *testing.B) {
						d, err := OpenDirOptions(b.TempDir(), DirOptions{Shards: shards})
						if err != nil {
							b.Fatal(err)
						}
						for o := 0; o < owners; o++ {
							d0 := benchDataset(b, fmt.Sprintf("owner%02d", o), "hot", rows)
							if err := d.Put(d0); err != nil {
								b.Fatal(err)
							}
						}
						d.Cache().Clear()
						if mode == "warm" {
							// Pre-touch so every measured read is a hit.
							for o := 0; o < owners; o++ {
								ds, _ := d.Get(fmt.Sprintf("owner%02d", o), "hot")
								if _, err := ds.Matrix(); err != nil {
									b.Fatal(err)
								}
							}
						}
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if mode == "cold" {
								b.StopTimer()
								d.Cache().Clear()
								b.StartTimer()
							}
							var wg sync.WaitGroup
							for o := 0; o < owners; o++ {
								wg.Add(1)
								go func(o int) {
									defer wg.Done()
									ds, err := d.Get(fmt.Sprintf("owner%02d", o), "hot")
									if err != nil {
										b.Error(err)
										return
									}
									if _, err := ds.Matrix(); err != nil {
										b.Error(err)
									}
								}(o)
							}
							wg.Wait()
						}
						b.StopTimer()
						rowsPerOp := float64(owners * rows)
						b.ReportMetric(rowsPerOp*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
					})
				}
			}
		}
	}
}
