package datastore

import (
	"container/list"
	"strings"
	"sync"

	"ppclust/internal/matrix"
)

// DefaultCacheBytes bounds the Dir store's block cache when no size is
// configured: 256 MiB, a few dozen full-size blocks.
const DefaultCacheBytes = 256 << 20

// CacheStats is a point-in-time view of a BlockCache, shaped for
// /v1/metrics and the read benchmarks.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// BlockCache is a byte-bounded LRU of row blocks, shared across every
// shard of a Dir store: one budget governs the whole process, so a hot
// dataset on one shard can use headroom a cold shard is not.
//
// Loads are single-flight per key: concurrent readers of the same block
// share one disk read instead of stampeding.
type BlockCache struct {
	mu                      sync.Mutex
	max                     int64
	bytes                   int64
	ll                      *list.List // front = most recently used
	items                   map[string]*cacheEntry
	hits, misses, evictions int64
}

type cacheEntry struct {
	key   string
	block *matrix.Dense
	size  int64
	err   error
	ready chan struct{} // closed once block/err is settled
	elem  *list.Element // nil until the entry is admitted to the LRU
}

// NewBlockCache returns a cache bounded to maxBytes of block data
// (maxBytes < 1 falls back to DefaultCacheBytes).
func NewBlockCache(maxBytes int64) *BlockCache {
	if maxBytes < 1 {
		maxBytes = DefaultCacheBytes
	}
	return &BlockCache{
		max:   maxBytes,
		ll:    list.New(),
		items: map[string]*cacheEntry{},
	}
}

func blockBytes(b *matrix.Dense) int64 {
	return int64(b.Rows()) * int64(b.Cols()) * 8
}

// GetOrLoad returns the cached block for key, or runs load exactly once
// (across concurrent callers) to materialize it. A block larger than the
// whole budget is returned uncached.
func (c *BlockCache) GetOrLoad(key string, load func() (*matrix.Dense, error)) (*matrix.Dense, error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		select {
		case <-e.ready:
			// Settled: a hit (errored entries are removed on settle, so a
			// present+settled entry always carries a block).
			c.hits++
			if e.elem != nil {
				c.ll.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			return e.block, e.err
		default:
			// In flight: wait for the loader without holding the lock.
			c.mu.Unlock()
			<-e.ready
			if e.err != nil {
				return nil, e.err
			}
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return e.block, nil
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.items[key] = e
	c.misses++
	c.mu.Unlock()

	block, err := load()

	c.mu.Lock()
	e.block, e.err = block, err
	// The entry is only admitted if it is still the one the map points at:
	// RemovePrefix/Clear may have dropped it mid-load (dataset deleted),
	// and admitting it anyway would serve the deleted dataset's bytes to a
	// later re-creation of the same name.
	current := c.items[key] == e
	switch {
	case err != nil:
		if current {
			delete(c.items, key)
		}
	case !current:
		// Invalidated while loading: hand the block to the waiters that
		// asked before the delete, but never cache it.
	case blockBytes(block) > c.max:
		// Too big to ever fit: hand it out but do not admit it, or it
		// would evict the entire cache for one oversized tenant.
		delete(c.items, key)
	default:
		e.size = blockBytes(block)
		e.elem = c.ll.PushFront(e)
		c.bytes += e.size
		c.evictLocked()
	}
	close(e.ready)
	c.mu.Unlock()
	return block, err
}

// Add warms the cache with a block that is already in memory — the Dir
// store's write-through on ingest, so the first job over a fresh upload
// reads from memory, not disk.
func (c *BlockCache) Add(key string, block *matrix.Dense) {
	size := blockBytes(block)
	if size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		select {
		case <-e.ready:
			if e.elem != nil {
				c.ll.MoveToFront(e.elem)
			}
		default:
			// A concurrent load is settling the same key; let it win.
		}
		return
	}
	e := &cacheEntry{key: key, block: block, size: size, ready: make(chan struct{})}
	close(e.ready)
	c.items[key] = e
	e.elem = c.ll.PushFront(e)
	c.bytes += size
	c.evictLocked()
}

// evictLocked drops least-recently-used settled entries until the cache
// fits its budget.
func (c *BlockCache) evictLocked() {
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			return
		}
		c.removeLocked(back.Value.(*cacheEntry))
		c.evictions++
	}
}

func (c *BlockCache) removeLocked(e *cacheEntry) {
	delete(c.items, e.key)
	if e.elem != nil {
		c.ll.Remove(e.elem)
		e.elem = nil
		c.bytes -= e.size
	}
}

// RemovePrefix invalidates every entry whose key begins with prefix —
// how a dataset delete drops its blocks. In-flight loads are unlinked
// from the map so their settle cannot admit stale bytes under a name a
// re-created dataset may reuse; their waiters still receive the block
// they asked for.
func (c *BlockCache) RemovePrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.items {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		select {
		case <-e.ready:
			c.removeLocked(e)
		default:
			delete(c.items, key)
		}
	}
}

// Clear drops every entry — the benchmarks' cold-read reset. In-flight
// loads are unlinked like in RemovePrefix.
func (c *BlockCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.items {
		select {
		case <-e.ready:
			c.removeLocked(e)
		default:
			delete(c.items, key)
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *BlockCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.max,
	}
}
