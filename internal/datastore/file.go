package datastore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"ppclust/internal/matrix"
)

// Dir is a Store persisted as one JSON document per dataset under
// root/<owner>/<name>.json. Each Put writes its document atomically (temp
// file + rename) with 0600 permissions — uploaded data may be unprotected
// originals, so the store is as private as the keyring. Reads are served
// from memory; the directory is only touched by mutations and at open.
type Dir struct {
	root string
	mu   sync.Mutex
	mem  *Memory
}

// dirDoc is the on-disk schema, versioned for forward compatibility. Data
// is the row-major flattened matrix; blocks are re-chunked at load so the
// in-memory layout never depends on the block size a file was written
// under.
type dirDoc struct {
	Version int       `json:"version"`
	Meta    Meta      `json:"meta"`
	Labels  []int     `json:"labels,omitempty"`
	Data    []float64 `json:"data"`
}

const dirDocVersion = 1

// OpenDir opens (or initializes) a directory-backed dataset store.
func OpenDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o700); err != nil {
		return nil, fmt.Errorf("datastore: creating %s: %w", root, err)
	}
	d := &Dir{root: root, mem: NewMemory()}
	owners, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("datastore: reading %s: %w", root, err)
	}
	for _, ownerEnt := range owners {
		if !ownerEnt.IsDir() || ValidName(ownerEnt.Name()) != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, ownerEnt.Name()))
		if err != nil {
			return nil, fmt.Errorf("datastore: reading %s: %w", ownerEnt.Name(), err)
		}
		for _, f := range files {
			// Dot-prefixed files are persist()'s temp files; a crash can
			// leave one behind (possibly truncated) and it must never be
			// loaded — or worse, fail the whole open.
			if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") || strings.HasPrefix(f.Name(), ".") {
				continue
			}
			ds, err := d.load(filepath.Join(root, ownerEnt.Name(), f.Name()))
			if err != nil {
				return nil, err
			}
			if err := d.mem.Put(ds); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// Root returns the backing directory.
func (d *Dir) Root() string { return d.root }

func (d *Dir) load(path string) (*Dataset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("datastore: reading %s: %w", path, err)
	}
	var doc dirDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("datastore: parsing %s: %w", path, err)
	}
	if doc.Version != dirDocVersion {
		return nil, fmt.Errorf("datastore: %s has unsupported version %d", path, doc.Version)
	}
	m := doc.Meta
	if m.Rows <= 0 || m.Cols <= 0 || len(doc.Data) != m.Rows*m.Cols {
		return nil, fmt.Errorf("datastore: %s: %d values for a %dx%d dataset", path, len(doc.Data), m.Rows, m.Cols)
	}
	if m.Labeled != (doc.Labels != nil) || (doc.Labels != nil && len(doc.Labels) != m.Rows) {
		return nil, fmt.Errorf("datastore: %s: inconsistent labels", path)
	}
	ds := &Dataset{Meta: m, labels: doc.Labels}
	for lo := 0; lo < m.Rows; lo += DefaultBlockRows {
		hi := min(lo+DefaultBlockRows, m.Rows)
		ds.blocks = append(ds.blocks, matrix.NewDense(hi-lo, m.Cols, doc.Data[lo*m.Cols:hi*m.Cols]))
	}
	return ds, nil
}

// Put implements Store: memory insert, then persist-or-rollback.
func (d *Dir) Put(ds *Dataset) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.mem.Put(ds); err != nil {
		return err
	}
	if err := d.persist(ds); err != nil {
		_ = d.mem.Delete(ds.Owner, ds.Name)
		return err
	}
	return nil
}

// Get implements Store.
func (d *Dir) Get(owner, name string) (*Dataset, error) { return d.mem.Get(owner, name) }

// List implements Store.
func (d *Dir) List(owner string) ([]Meta, error) { return d.mem.List(owner) }

// Delete implements Store: the file goes first so a crash can only leave
// an orphaned file behind, never a memory entry without backing data.
func (d *Dir) Delete(owner, name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.mem.Get(owner, name); err != nil {
		return err
	}
	if err := os.Remove(d.path(owner, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("datastore: removing %s/%s: %w", owner, name, err)
	}
	return d.mem.Delete(owner, name)
}

func (d *Dir) path(owner, name string) string {
	return filepath.Join(d.root, owner, name+".json")
}

func (d *Dir) persist(ds *Dataset) error {
	doc := dirDoc{Version: dirDocVersion, Meta: ds.Meta, Labels: ds.labels}
	doc.Data = make([]float64, 0, ds.Rows*ds.Cols)
	for _, b := range ds.blocks {
		for i := 0; i < b.Rows(); i++ {
			doc.Data = append(doc.Data, b.RawRow(i)...)
		}
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("datastore: encoding %s/%s: %w", ds.Owner, ds.Name, err)
	}
	dir := filepath.Join(d.root, ds.Owner)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return fmt.Errorf("datastore: creating %s: %w", dir, err)
	}
	tmp, err := os.CreateTemp(dir, ".dataset-*.json")
	if err != nil {
		return fmt.Errorf("datastore: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return fmt.Errorf("datastore: chmod: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("datastore: writing: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("datastore: closing: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.path(ds.Owner, ds.Name)); err != nil {
		return fmt.Errorf("datastore: replacing %s: %w", d.path(ds.Owner, ds.Name), err)
	}
	return nil
}
