package datastore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ppclust/internal/matrix"
)

func buildDataset(t *testing.T, owner, name string, rows int, labeled bool) *Dataset {
	t.Helper()
	b, err := NewBuilder(owner, name, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	b.SetBlockRows(16)
	for i := 0; i < rows; i++ {
		row := []float64{float64(i), float64(i) * 2, float64(i) * 3}
		if labeled {
			err = b.AppendLabeled(row, i%2)
		} else {
			err = b.Append(row)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Finish(time.Unix(1700000000, 0))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuilderBlocksAndMatrix(t *testing.T) {
	ds := buildDataset(t, "alice", "d1", 50, true)
	if ds.Rows != 50 || ds.Cols != 3 || !ds.Labeled {
		t.Fatalf("meta = %+v", ds.Meta)
	}
	if got := ds.NumBlocks(); got != 4 { // ceil(50/16)
		t.Fatalf("blocks = %d, want 4", got)
	}
	var blockRows []int
	if err := ds.Blocks(func(b *matrix.Dense) error {
		blockRows = append(blockRows, b.Rows())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blockRows, []int{16, 16, 16, 2}) {
		t.Fatalf("block rows = %v", blockRows)
	}
	m, err := ds.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	r, c := m.Dims()
	if r != 50 || c != 3 {
		t.Fatalf("matrix %dx%d", r, c)
	}
	for i := 0; i < 50; i++ {
		if m.At(i, 1) != float64(i)*2 {
			t.Fatalf("row %d out of order: %v", i, m.RawRow(i))
		}
	}
	labels := ds.Labels()
	if len(labels) != 50 || labels[3] != 1 {
		t.Fatalf("labels = %v...", labels[:4])
	}
	labels[0] = 99
	if ds.Labels()[0] == 99 {
		t.Fatal("Labels must return a copy")
	}
}

func TestBuilderRejectsBadRows(t *testing.T) {
	b, err := NewBuilder("alice", "d", []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]float64{1}); !errors.Is(err, ErrBadData) {
		t.Fatalf("short row: %v", err)
	}
	if err := b.Append([]float64{1, math.NaN()}); !errors.Is(err, ErrBadData) {
		t.Fatalf("NaN row: %v", err)
	}
	if err := b.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendLabeled([]float64{3, 4}, 1); !errors.Is(err, ErrBadData) {
		t.Fatalf("mixed labeling: %v", err)
	}
	empty, _ := NewBuilder("alice", "e", []string{"x"})
	if _, err := empty.Finish(time.Now()); !errors.Is(err, ErrBadData) {
		t.Fatalf("empty finish: %v", err)
	}
	if _, err := NewBuilder("a/b", "d", []string{"x"}); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad owner: %v", err)
	}
	if _, err := NewBuilder("a", "../d", []string{"x"}); !errors.Is(err, ErrBadName) {
		t.Fatalf("bad name: %v", err)
	}
}

func TestMemoryStoreCRUD(t *testing.T) {
	m := NewMemory()
	ds := buildDataset(t, "alice", "d1", 10, false)
	if err := m.Put(ds); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(ds); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate put: %v", err)
	}
	if _, err := m.Get("alice", "d1"); err != nil {
		t.Fatal(err)
	}
	// Owner isolation: same name under a different owner is distinct, and
	// a foreign owner cannot see it.
	if _, err := m.Get("bob", "d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-owner get: %v", err)
	}
	if err := m.Put(buildDataset(t, "bob", "d1", 5, false)); err != nil {
		t.Fatal(err)
	}
	metas, err := m.List("alice")
	if err != nil || len(metas) != 1 || metas[0].Name != "d1" || metas[0].Rows != 10 {
		t.Fatalf("list = %v, %v", metas, err)
	}
	if metas, _ := m.List("nobody"); len(metas) != 0 {
		t.Fatalf("unknown owner listed %v", metas)
	}
	if err := m.Delete("alice", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("alice", "d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := m.Get("bob", "d1"); err != nil {
		t.Fatal("bob's dataset must survive alice's delete")
	}
}

func TestDirStoreRoundTripAndReload(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(filepath.Join(root, "data"))
	if err != nil {
		t.Fatal(err)
	}
	ds := buildDataset(t, "alice", "d1", 40, true)
	if err := d.Put(ds); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(buildDataset(t, "alice", "d2", 7, false)); err != nil {
		t.Fatal(err)
	}

	// Manifest and segments must be 0600 under a 0700 owner directory.
	path := filepath.Join(root, "data", "alice", "d1")
	for _, f := range []string{"manifest", "seg-000001.dat"} {
		fi, err := os.Stat(filepath.Join(path, f))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Mode().Perm() != 0o600 {
			t.Fatalf("%s mode = %v, want 0600", f, fi.Mode().Perm())
		}
	}
	if fi, err := os.Stat(filepath.Join(root, "data", "alice")); err != nil || fi.Mode().Perm() != 0o700 {
		t.Fatalf("owner dir mode: %v, %v", fi, err)
	}

	// A fresh open must see both datasets with identical content.
	d2, err := OpenDir(filepath.Join(root, "data"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get("alice", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 40 || !got.Labeled || len(got.Labels()) != 40 {
		t.Fatalf("reloaded meta = %+v", got.Meta)
	}
	a, err := ds.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("value (%d,%d) diverged after reload", i, j)
			}
		}
	}

	// Delete removes the dataset directory; a reload no longer sees it.
	if err := d2.Delete("alice", "d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dataset dir survives delete: %v", err)
	}
	d3, err := OpenDir(filepath.Join(root, "data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d3.Get("alice", "d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted dataset reloaded: %v", err)
	}
	if _, err := d3.Get("alice", "d2"); err != nil {
		t.Fatal(err)
	}
}

// TestOpenDirSkipsTempFiles: a crash mid-persist can leave a (possibly
// truncated) dot-prefixed temp file behind; opening the store must ignore
// it rather than fail or double-load.
func TestOpenDirSkipsTempFiles(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(buildDataset(t, "alice", "d1", 8, false)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "alice", ".dataset-crash.json"), []byte(`{"version":1,"meta"`), 0o600); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(root)
	if err != nil {
		t.Fatalf("open with leftover temp file: %v", err)
	}
	metas, err := d2.List("alice")
	if err != nil || len(metas) != 1 {
		t.Fatalf("list = %v, %v", metas, err)
	}
}

func TestOpenDirRejectsCorruptDoc(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "alice"), 0o700); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "alice", "bad.json"), []byte("{broken"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(root); err == nil {
		t.Fatal("corrupt document must fail open")
	}
}
