// Package rotate implements the geometric rotations underlying RBT: the 2-D
// clockwise rotation matrix of Eq. (1), its application to a pair of data
// matrix columns, and general n-dimensional Givens rotations used by the
// extensions and attacks.
package rotate

import (
	"fmt"
	"math"

	"ppclust/internal/matrix"
)

// Degrees converts an angle in degrees to radians. The paper quotes all
// angles in degrees (e.g. θ = 312.47), so the public API accepts degrees
// and converts at the boundary.
func Degrees(deg float64) float64 { return deg * math.Pi / 180 }

// ToDegrees converts radians to degrees.
func ToDegrees(rad float64) float64 { return rad * 180 / math.Pi }

// NormalizeDegrees maps an angle to [0, 360).
func NormalizeDegrees(deg float64) float64 {
	d := math.Mod(deg, 360)
	if d < 0 {
		d += 360
	}
	return d
}

// Matrix2D returns the paper's 2x2 rotation matrix for an angle θ in
// degrees, measured clockwise (Eq. 1):
//
//	R = [ cosθ  sinθ]
//	    [-sinθ  cosθ]
func Matrix2D(thetaDeg float64) *matrix.Dense {
	rad := Degrees(thetaDeg)
	c, s := math.Cos(rad), math.Sin(rad)
	return matrix.FromRows([][]float64{{c, s}, {-s, c}})
}

// Pair applies R(θ) to columns (i, j) of data in place, exactly as
// Definition 2 prescribes: the column vector V = (Ai, Aj) becomes V' = R·V,
// so Ai' = Ai·cosθ + Aj·sinθ and Aj' = -Ai·sinθ + Aj·cosθ.
//
// The order of (i, j) matters — swapping them rotates in the opposite
// direction — which is one of the "key" components of the scheme's claimed
// computational security (Section 5.2).
func Pair(data *matrix.Dense, i, j int, thetaDeg float64) error {
	_, c := data.Dims()
	if i < 0 || i >= c || j < 0 || j >= c {
		return fmt.Errorf("rotate: %w: pair (%d,%d) for %d columns", matrix.ErrShape, i, j, c)
	}
	if i == j {
		return fmt.Errorf("rotate: %w: pair indices must differ, got (%d,%d)", matrix.ErrShape, i, j)
	}
	rad := Degrees(thetaDeg)
	cth, sth := math.Cos(rad), math.Sin(rad)
	rows := data.Rows()
	for r := 0; r < rows; r++ {
		row := data.RawRow(r)
		ai, aj := row[i], row[j]
		row[i] = cth*ai + sth*aj
		row[j] = -sth*ai + cth*aj
	}
	return nil
}

// PairCopy is Pair on a copy of data, returning the rotated matrix.
func PairCopy(data *matrix.Dense, i, j int, thetaDeg float64) (*matrix.Dense, error) {
	out := data.Clone()
	if err := Pair(out, i, j, thetaDeg); err != nil {
		return nil, err
	}
	return out, nil
}

// InversePair undoes Pair: rotating by -θ on the same ordered pair.
func InversePair(data *matrix.Dense, i, j int, thetaDeg float64) error {
	return Pair(data, i, j, -thetaDeg)
}

// Givens returns the n x n Givens rotation acting on coordinates (i, j)
// with angle θ in degrees, using the paper's clockwise convention embedded
// in the larger identity. Multiplying data rows by its transpose is
// equivalent to Pair.
func Givens(n, i, j int, thetaDeg float64) (*matrix.Dense, error) {
	if i < 0 || i >= n || j < 0 || j >= n || i == j {
		return nil, fmt.Errorf("rotate: %w: givens (%d,%d) in dimension %d", matrix.ErrShape, i, j, n)
	}
	rad := Degrees(thetaDeg)
	c, s := math.Cos(rad), math.Sin(rad)
	g := matrix.Identity(n)
	g.SetAt(i, i, c)
	g.SetAt(i, j, s)
	g.SetAt(j, i, -s)
	g.SetAt(j, j, c)
	return g, nil
}

// Compose multiplies a sequence of equally sized square matrices left to
// right: Compose(a, b, c) = a*b*c. Used to express an RBT key as one
// orthogonal matrix.
func Compose(ms ...*matrix.Dense) (*matrix.Dense, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("rotate: %w: empty composition", matrix.ErrShape)
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		next, err := matrix.Mul(out, m)
		if err != nil {
			return nil, err
		}
		out = next
	}
	return out, nil
}

// ApplyOrthogonal right-multiplies every row x of data by qᵀ (x' = q·x as
// column vectors), applying a full n-dimensional orthogonal transform. It
// generalizes Pair and is used by the random-orthogonal baseline.
func ApplyOrthogonal(data, q *matrix.Dense) (*matrix.Dense, error) {
	_, c := data.Dims()
	qr, qc := q.Dims()
	if qr != c || qc != c {
		return nil, fmt.Errorf("rotate: %w: orthogonal %dx%d for %d columns", matrix.ErrShape, qr, qc, c)
	}
	return matrix.Mul(data, q.T())
}
