package rotate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppclust/internal/matrix"
)

func TestDegreesConversions(t *testing.T) {
	if math.Abs(Degrees(180)-math.Pi) > 1e-15 {
		t.Fatal("Degrees(180) != pi")
	}
	if math.Abs(ToDegrees(math.Pi)-180) > 1e-12 {
		t.Fatal("ToDegrees(pi) != 180")
	}
	cases := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {-90, 270}, {720.5, 0.5}, {312.47, 312.47},
	}
	for _, tc := range cases {
		if got := NormalizeDegrees(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("NormalizeDegrees(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMatrix2DConvention(t *testing.T) {
	// The paper's clockwise convention: R(90°) maps (1,0) to (0,-1)... as
	// column vectors R*(1,0)ᵀ = (cos, -sin)ᵀ = (0,-1)ᵀ.
	r := Matrix2D(90)
	v, err := r.MulVec([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]) > 1e-12 || math.Abs(v[1]+1) > 1e-12 {
		t.Fatalf("R(90)·e1 = %v, want (0,-1)", v)
	}
	if !matrix.IsOrthogonal(r, 1e-12) {
		t.Fatal("rotation matrix must be orthogonal")
	}
	d, err := matrix.Det(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("det = %v, want 1", d)
	}
}

func TestPairMatchesMatrix2D(t *testing.T) {
	data := matrix.FromRows([][]float64{{1, 2}, {-0.5, 3}})
	r := Matrix2D(33.5)
	rotated, err := PairCopy(data, 0, 1, 33.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.Rows(); i++ {
		v, err := r.MulVec(data.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v[0]-rotated.At(i, 0)) > 1e-12 || math.Abs(v[1]-rotated.At(i, 1)) > 1e-12 {
			t.Fatalf("row %d: Pair gave (%v,%v), matrix gives %v", i, rotated.At(i, 0), rotated.At(i, 1), v)
		}
	}
}

func TestPairOrderMatters(t *testing.T) {
	data := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	a, err := PairCopy(data, 0, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PairCopy(data, 1, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.EqualApprox(a, b, 1e-9) {
		t.Fatal("swapping the ordered pair must change the result (Section 5.2)")
	}
	// (i,j) at θ equals (j,i) at -θ.
	c, err := PairCopy(data, 1, 0, -30)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(a, c, 1e-12) {
		t.Fatal("(i,j,θ) should equal (j,i,-θ)")
	}
}

func TestPairErrors(t *testing.T) {
	data := matrix.NewDense(2, 2, nil)
	if err := Pair(data, 0, 0, 10); !errors.Is(err, matrix.ErrShape) {
		t.Fatal("equal indices should fail")
	}
	if err := Pair(data, 0, 5, 10); !errors.Is(err, matrix.ErrShape) {
		t.Fatal("out of range should fail")
	}
	if _, err := PairCopy(data, -1, 1, 10); err == nil {
		t.Fatal("negative index should fail")
	}
}

func TestInversePairRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := matrix.RandomDense(10, 4, rng)
	orig := data.Clone()
	if err := Pair(data, 1, 3, 123.456); err != nil {
		t.Fatal(err)
	}
	if matrix.EqualApprox(data, orig, 1e-9) {
		t.Fatal("rotation should change the data")
	}
	if err := InversePair(data, 1, 3, 123.456); err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(data, orig, 1e-10) {
		t.Fatal("inverse rotation should restore the data")
	}
}

func TestGivens(t *testing.T) {
	g, err := Givens(4, 1, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.IsOrthogonal(g, 1e-12) {
		t.Fatal("Givens must be orthogonal")
	}
	// Applying the Givens matrix must match Pair.
	rng := rand.New(rand.NewSource(2))
	data := matrix.RandomDense(6, 4, rng)
	viaPair, err := PairCopy(data, 1, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	viaMatrix, err := ApplyOrthogonal(data, g)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(viaPair, viaMatrix, 1e-12) {
		t.Fatal("Givens application disagrees with Pair")
	}
	if _, err := Givens(3, 0, 0, 5); err == nil {
		t.Fatal("equal indices should fail")
	}
	if _, err := Givens(3, 0, 4, 5); err == nil {
		t.Fatal("out of range should fail")
	}
}

func TestCompose(t *testing.T) {
	a := Matrix2D(30)
	b := Matrix2D(45)
	ab, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Successive 2-D rotations add angles.
	if !matrix.EqualApprox(ab, Matrix2D(75), 1e-12) {
		t.Fatal("composition of rotations should add angles")
	}
	if _, err := Compose(); err == nil {
		t.Fatal("empty composition should fail")
	}
	if _, err := Compose(a, matrix.NewDense(3, 3, nil)); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestApplyOrthogonalShape(t *testing.T) {
	data := matrix.NewDense(5, 3, nil)
	if _, err := ApplyOrthogonal(data, matrix.Identity(2)); !errors.Is(err, matrix.ErrShape) {
		t.Fatal("wrong-size orthogonal should fail")
	}
}

// Property: Pair preserves all pairwise Euclidean distances (it is an
// isometry — the heart of Theorem 2).
func TestQuickPairIsometry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(10)
		n := 2 + rng.Intn(5)
		data := matrix.RandomDense(m, n, rng)
		i := rng.Intn(n)
		j := (i + 1 + rng.Intn(n-1)) % n
		theta := rng.Float64() * 360
		rotated, err := PairCopy(data, i, j, theta)
		if err != nil {
			return false
		}
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				d0 := matrix.Distance(data.RawRow(a), data.RawRow(b))
				d1 := matrix.Distance(rotated.RawRow(a), rotated.RawRow(b))
				if math.Abs(d0-d1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pair preserves vector norms about the origin and angles between
// row vectors (isometries preserve angles, Section 3.1).
func TestQuickPairPreservesAngles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		data := matrix.RandomDense(2, n, rng)
		i := rng.Intn(n)
		j := (i + 1 + rng.Intn(n-1)) % n
		rotated, err := PairCopy(data, i, j, rng.Float64()*360)
		if err != nil {
			return false
		}
		dot0 := matrix.Dot(data.RawRow(0), data.RawRow(1))
		dot1 := matrix.Dot(rotated.RawRow(0), rotated.RawRow(1))
		return math.Abs(dot0-dot1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
