package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO engine: per-route latency and error-rate objectives evaluated
// over a rolling window.
//
// Objectives arrive as compact specs, e.g.
//
//	-slo 'protect:p99<250ms,err<0.5%'
//	-slo 'p95<100ms'          (all routes)
//
// Each condition becomes one Objective. Both kinds reduce to the same
// burn model: an objective grants an error budget (the allowed bad
// fraction — 1-q for a pXX latency target, the rate itself for err<),
// every observed request is good or bad against it, and the burn rate
// is badFraction/budget. Burn 1.0 means the budget is being spent
// exactly as fast as allowed; above 1 the objective is in breach, and
// from WarningBurn up it is close enough to flag.

// Objective states, worst-first.
const (
	SLOStateOK      = "ok"
	SLOStateWarning = "warning"
	SLOStateBreach  = "breach"
)

// WarningBurn is the burn rate from which an objective reports
// "warning" instead of "ok".
const WarningBurn = 0.5

// DefaultSLOWindow is the rolling evaluation window when none is
// configured.
const DefaultSLOWindow = time.Minute

// Objective is one parsed SLO condition. Exactly one of Quantile
// (latency objective: the Quantile of requests must finish under
// ThresholdMs) or ErrBudget (error objective: at most this fraction of
// requests may fail) is set.
type Objective struct {
	// Route restricts the objective to routes containing this substring,
	// case-insensitively ("" or "*": all routes).
	Route string
	// Spec is the original condition text ("p99<250ms"), kept for display.
	Spec string
	// Quantile in (0,1) for latency objectives, 0 otherwise.
	Quantile float64
	// ThresholdMs is the latency target for latency objectives.
	ThresholdMs float64
	// ErrBudget is the allowed error fraction for error objectives.
	ErrBudget float64
}

// Name is the objective's display form, e.g. "protect:p99<250ms".
func (o Objective) Name() string {
	if o.Route == "" {
		return o.Spec
	}
	return o.Route + ":" + o.Spec
}

// Kind is "latency" or "error".
func (o Objective) Kind() string {
	if o.Quantile > 0 {
		return "latency"
	}
	return "error"
}

// Budget is the allowed bad-request fraction: 1-q for latency
// objectives, the configured rate for error objectives.
func (o Objective) Budget() float64 {
	if o.Quantile > 0 {
		return 1 - o.Quantile
	}
	return o.ErrBudget
}

// Matches reports whether the objective applies to the given route (or
// load-generator op) label.
func (o Objective) Matches(route string) bool {
	if o.Route == "" || o.Route == "*" {
		return true
	}
	return strings.Contains(strings.ToLower(route), strings.ToLower(o.Route))
}

// Bad classifies one observation against the objective: errors are bad
// for error objectives, over-threshold latencies for latency ones.
func (o Objective) Bad(durMs float64, isErr bool) bool {
	if o.Quantile > 0 {
		return durMs > o.ThresholdMs
	}
	return isErr
}

// EvalBudget turns a (total, bad) count into a burn rate and state.
// With no observations the objective is trivially "ok"; a zero budget
// (e.g. err<0%) breaches on the first bad request.
func EvalBudget(total, bad int64, budget float64) (burn float64, state string) {
	if total == 0 {
		return 0, SLOStateOK
	}
	frac := float64(bad) / float64(total)
	switch {
	case budget > 0:
		burn = frac / budget
	case bad > 0:
		burn = math.Inf(1)
	}
	switch {
	case burn > 1:
		state = SLOStateBreach
	case burn >= WarningBurn:
		state = SLOStateWarning
	default:
		state = SLOStateOK
	}
	return burn, state
}

// WorseSLOState returns the worse of two states.
func WorseSLOState(a, b string) string {
	rank := func(s string) int {
		switch s {
		case SLOStateBreach:
			return 2
		case SLOStateWarning:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// ParseSLO parses a spec list: objectives separated by ';', each an
// optional `route:` prefix followed by comma-separated conditions.
// Conditions are `pXX<DURATION` (Go duration or bare milliseconds) or
// `err<RATE%` (percent with '%', bare fraction without).
func ParseSLO(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		route := ""
		conds := part
		if i := strings.IndexByte(part, ':'); i >= 0 {
			route = strings.TrimSpace(part[:i])
			conds = part[i+1:]
		}
		if route == "*" {
			route = ""
		}
		for _, cond := range strings.Split(conds, ",") {
			cond = strings.TrimSpace(cond)
			if cond == "" {
				continue
			}
			o, err := parseCondition(cond)
			if err != nil {
				return nil, fmt.Errorf("slo %q: %w", part, err)
			}
			o.Route = route
			out = append(out, o)
		}
	}
	return out, nil
}

func parseCondition(cond string) (Objective, error) {
	lhs, rhs, ok := strings.Cut(cond, "<")
	if !ok {
		return Objective{}, fmt.Errorf("condition %q: want pXX<latency or err<rate", cond)
	}
	lhs = strings.TrimSpace(strings.ToLower(lhs))
	rhs = strings.TrimSpace(rhs)
	o := Objective{Spec: lhs + "<" + rhs}
	switch {
	case lhs == "err":
		rate, err := parseRate(rhs)
		if err != nil {
			return Objective{}, fmt.Errorf("condition %q: %w", cond, err)
		}
		o.ErrBudget = rate
	case strings.HasPrefix(lhs, "p"):
		q, err := strconv.ParseFloat(lhs[1:], 64)
		if err != nil || q <= 0 || q >= 100 {
			return Objective{}, fmt.Errorf("condition %q: quantile must be in (0,100)", cond)
		}
		ms, err := parseLatency(rhs)
		if err != nil {
			return Objective{}, fmt.Errorf("condition %q: %w", cond, err)
		}
		o.Quantile = q / 100
		o.ThresholdMs = ms
	default:
		return Objective{}, fmt.Errorf("condition %q: unknown objective %q", cond, lhs)
	}
	return o, nil
}

// parseRate accepts "0.5%" (percent) or "0.005" (fraction).
func parseRate(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	if pct {
		v /= 100
	}
	if v > 1 {
		return 0, fmt.Errorf("rate %q exceeds 100%%", s)
	}
	return v, nil
}

// parseLatency accepts a Go duration ("250ms", "1.5s") or bare
// milliseconds ("250").
func parseLatency(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("bad latency %q", s)
		}
		return float64(d) / float64(time.Millisecond), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad latency %q", s)
	}
	return v, nil
}

// sloBoundsMs are the fixed latency buckets each objective's window
// keeps for observed-quantile estimates. Coarse on purpose: the
// objective's own threshold decides good/bad exactly; the histogram
// only drives the reported "observed pXX".
var sloBoundsMs = [...]float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

const sloSlots = 30

// sloSlot is one time slice of an objective's rolling window.
type sloSlot struct {
	epoch int64
	total int64
	bad   int64
	hist  [len(sloBoundsMs) + 1]int64 // last bucket is +Inf overflow
}

// SLOEngine evaluates configured objectives over a rolling window of
// fixed slots. Observe is called once per finished request from the
// instrumentation edge; Statuses and Gauges read the live window.
type SLOEngine struct {
	objectives []Objective
	window     time.Duration
	slot       time.Duration
	now        func() time.Time

	mu   sync.Mutex
	wins [][]sloSlot // [objective][slot]
}

// NewSLOEngine builds an engine for the given objectives (nil engine
// semantics are handled by callers; an empty objective list is valid
// and reports nothing). window <= 0 uses DefaultSLOWindow.
func NewSLOEngine(objectives []Objective, window time.Duration) *SLOEngine {
	if window <= 0 {
		window = DefaultSLOWindow
	}
	slot := window / sloSlots
	if slot < time.Millisecond {
		slot = time.Millisecond
	}
	wins := make([][]sloSlot, len(objectives))
	for i := range wins {
		wins[i] = make([]sloSlot, sloSlots)
	}
	return &SLOEngine{
		objectives: objectives,
		window:     window,
		slot:       slot,
		now:        time.Now,
		wins:       wins,
	}
}

// Window returns the engine's rolling window.
func (e *SLOEngine) Window() time.Duration { return e.window }

// Objectives returns the configured objectives.
func (e *SLOEngine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return e.objectives
}

// Observe records one finished request against every matching
// objective.
func (e *SLOEngine) Observe(route string, durMs float64, isErr bool) {
	if e == nil || len(e.objectives) == 0 {
		return
	}
	epoch := e.now().UnixNano() / int64(e.slot)
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, o := range e.objectives {
		if !o.Matches(route) {
			continue
		}
		sl := &e.wins[i][epoch%sloSlots]
		if sl.epoch != epoch {
			*sl = sloSlot{epoch: epoch}
		}
		sl.total++
		if o.Bad(durMs, isErr) {
			sl.bad++
		}
		sl.hist[bucketIndex(durMs)]++
	}
}

func bucketIndex(ms float64) int {
	for i, b := range sloBoundsMs {
		if ms <= b {
			return i
		}
	}
	return len(sloBoundsMs)
}

// SLOStatus is one objective's live evaluation, as served at /v1/slo.
type SLOStatus struct {
	Objective    string  `json:"objective"`
	Route        string  `json:"route,omitempty"`
	Kind         string  `json:"kind"`
	Target       string  `json:"target"`
	Requests     int64   `json:"requests"`
	Bad          int64   `json:"bad"`
	Budget       float64 `json:"budget"`
	BurnRate     float64 `json:"burn_rate"`
	ObservedMs   float64 `json:"observed_ms,omitempty"`
	ObservedRate float64 `json:"observed_rate"`
	State        string  `json:"state"`
}

// Statuses evaluates every objective over the current window.
func (e *SLOEngine) Statuses() []SLOStatus {
	if e == nil {
		return nil
	}
	nowEpoch := e.now().UnixNano() / int64(e.slot)
	oldest := nowEpoch - sloSlots + 1
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.objectives))
	for i, o := range e.objectives {
		var total, bad int64
		var hist [len(sloBoundsMs) + 1]int64
		for s := range e.wins[i] {
			sl := &e.wins[i][s]
			if sl.epoch < oldest || sl.epoch > nowEpoch {
				continue
			}
			total += sl.total
			bad += sl.bad
			for b := range hist {
				hist[b] += sl.hist[b]
			}
		}
		burn, state := EvalBudget(total, bad, o.Budget())
		st := SLOStatus{
			Objective: o.Name(),
			Route:     o.Route,
			Kind:      o.Kind(),
			Target:    o.Spec,
			Requests:  total,
			Bad:       bad,
			Budget:    o.Budget(),
			BurnRate:  roundBurn(burn),
			State:     state,
		}
		if total > 0 {
			st.ObservedRate = float64(bad) / float64(total)
		}
		if o.Quantile > 0 && total > 0 {
			st.ObservedMs = quantileFromHist(hist[:], total, o.Quantile)
		}
		out = append(out, st)
	}
	return out
}

// quantileFromHist returns the upper bound of the bucket holding the
// q-th ranked observation — a coarse but monotone estimate.
func quantileFromHist(hist []int64, total int64, q float64) float64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range hist {
		seen += c
		if seen >= rank {
			if i < len(sloBoundsMs) {
				return sloBoundsMs[i]
			}
			return math.Inf(1)
		}
	}
	return 0
}

// roundBurn keeps burn rates JSON-friendly: +Inf (zero-budget breach)
// is clamped to a large sentinel, and noise beyond 3 decimals dropped.
func roundBurn(b float64) float64 {
	if math.IsInf(b, 1) || b > 1e6 {
		return 1e6
	}
	return math.Round(b*1000) / 1000
}

// Gauges exposes each objective's burn rate (×1000, as
// slo_burn_rate_milli) and state (0 ok / 1 warning / 2 breach) plus the
// breaching-objective count, for the registry-adjacent gauge surface.
func (e *SLOEngine) Gauges() map[string]int64 {
	if e == nil {
		return nil
	}
	sts := e.Statuses()
	g := make(map[string]int64, 2*len(sts)+1)
	var breaching int64
	for _, st := range sts {
		state := int64(0)
		switch st.State {
		case SLOStateWarning:
			state = 1
		case SLOStateBreach:
			state = 2
			breaching++
		}
		g[fmt.Sprintf("slo_burn_rate_milli{objective=%q}", st.Objective)] = int64(st.BurnRate * 1000)
		g[fmt.Sprintf("slo_state{objective=%q}", st.Objective)] = state
	}
	g["slo_breaching"] = breaching
	return g
}

// SortStatuses orders statuses worst-first, then by name — the order
// /v1/slo reports them in.
func SortStatuses(sts []SLOStatus) {
	rank := map[string]int{SLOStateBreach: 0, SLOStateWarning: 1, SLOStateOK: 2}
	sort.SliceStable(sts, func(i, j int) bool {
		if rank[sts[i].State] != rank[sts[j].State] {
			return rank[sts[i].State] < rank[sts[j].State]
		}
		return sts[i].Objective < sts[j].Objective
	})
}
