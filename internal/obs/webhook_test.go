package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ppclust/internal/metrics"
)

func webhookFor(t *testing.T, url string, reg *metrics.Registry) *WebhookSink {
	t.Helper()
	s := NewWebhookSink(WebhookConfig{
		URL:         url,
		Attempts:    3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Timeout:     time.Second,
	}, reg)
	t.Cleanup(s.Close)
	return s
}

func TestWebhookDelivers(t *testing.T) {
	got := make(chan AlertEvent, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev AlertEvent
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &ev); err != nil {
			t.Errorf("bad payload %s: %v", body, err)
		}
		got <- ev
	}))
	defer srv.Close()
	reg := metrics.NewRegistry()
	s := webhookFor(t, srv.URL, reg)
	s.Notify(AlertEvent{Rule: "depth>10", State: AlertFiring, Value: 42})
	select {
	case ev := <-got:
		if ev.Rule != "depth>10" || ev.State != AlertFiring || ev.Value != 42 {
			t.Fatalf("delivered event: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("webhook never delivered")
	}
	waitCounter(t, reg, "alerts_webhook_sent_total", 1)
}

func TestWebhookRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusBadGateway)
		}
	}))
	defer srv.Close()
	reg := metrics.NewRegistry()
	s := webhookFor(t, srv.URL, reg)
	s.Notify(AlertEvent{Rule: "r>1", State: AlertFiring})
	waitCounter(t, reg, "alerts_webhook_sent_total", 1)
	if calls.Load() != 3 {
		t.Fatalf("attempts: %d, want 3", calls.Load())
	}
}

func TestWebhookDoesNotRetryRejections(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()
	reg := metrics.NewRegistry()
	s := webhookFor(t, srv.URL, reg)
	s.Notify(AlertEvent{Rule: "r>1", State: AlertFiring})
	waitCounter(t, reg, "alerts_webhook_failed_total", 1)
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
	if reg.Snapshot()["alerts_webhook_sent_total"] != 0 {
		t.Fatal("rejection counted as sent")
	}
}

func TestWebhookGivesUpAfterAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	reg := metrics.NewRegistry()
	s := webhookFor(t, srv.URL, reg)
	s.Notify(AlertEvent{Rule: "r>1", State: AlertFiring})
	waitCounter(t, reg, "alerts_webhook_failed_total", 1)
	if calls.Load() != 3 {
		t.Fatalf("attempt cap: %d calls, want 3", calls.Load())
	}
}

func TestWebhookFullQueueDrops(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	reg := metrics.NewRegistry()
	s := NewWebhookSink(WebhookConfig{
		URL:       srv.URL,
		Attempts:  1,
		Timeout:   10 * time.Second,
		QueueSize: 1,
	}, reg)
	// One event in flight blocks the worker, one fills the queue; the
	// rest must drop without blocking this goroutine.
	for i := 0; i < 5; i++ {
		s.Notify(AlertEvent{Rule: "r>1", State: AlertFiring})
	}
	waitCounter(t, reg, "alerts_webhook_dropped_total", 1)
	close(block) // release every blocked delivery so Close can drain
	s.Close()
}

func waitCounter(t *testing.T, reg *metrics.Registry, name string, min int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot()[name] >= min {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d: %v", name, min, reg.Snapshot())
}
