package obs

// WritePromFlat unit tests: TYPE classification from flat keys alone,
// numeric bucket ordering with +Inf last, histogram reassembly per
// label set, and deterministic output order.

import (
	"strings"
	"testing"
)

func TestWritePromFlat(t *testing.T) {
	flat := map[string]int64{
		`rows_ingested_total`:                          42,
		`http_requests_total{route="/x",status="200"}`: 7,
		`queue_depth{node="n1"}`:                       3,
		`queue_depth{node="n2"}`:                       5,
		`lat_us_bucket{route="/x",le="100"}`:           1,
		`lat_us_bucket{route="/x",le="+Inf"}`:          4,
		`lat_us_bucket{route="/x",le="20"}`:            1,
		`lat_us_count{route="/x"}`:                     4,
		`lat_us_sum{route="/x"}`:                       900,
	}
	var sb strings.Builder
	if err := WritePromFlat(&sb, flat); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE rows_ingested_total counter",
		"# TYPE http_requests_total counter",
		"# TYPE queue_depth gauge",
		"# TYPE lat_us histogram",
		`queue_depth{node="n1"} 3`,
		`queue_depth{node="n2"} 5`,
		`lat_us_sum{route="/x"} 900`,
		`lat_us_count{route="/x"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Buckets must come back in numeric order (20 before 100), +Inf last,
	// with the le label re-spliced after the retained labels.
	i20 := strings.Index(out, `lat_us_bucket{route="/x",le="20"} 1`)
	i100 := strings.Index(out, `lat_us_bucket{route="/x",le="100"} 1`)
	iInf := strings.Index(out, `lat_us_bucket{route="/x",le="+Inf"} 4`)
	if i20 < 0 || i100 < 0 || iInf < 0 || !(i20 < i100 && i100 < iInf) {
		t.Errorf("bucket order wrong (%d %d %d):\n%s", i20, i100, iInf, out)
	}

	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := WritePromFlat(&sb2, flat); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("output not deterministic across renders")
	}
}

func TestWritePromFlatBucketWithoutLeIsGauge(t *testing.T) {
	// A *_bucket name with no le label is not a histogram series; it must
	// not be silently dropped.
	var sb strings.Builder
	if err := WritePromFlat(&sb, map[string]int64{"odd_bucket": 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE odd_bucket gauge") ||
		!strings.Contains(sb.String(), "odd_bucket 1") {
		t.Errorf("le-less bucket handling:\n%s", sb.String())
	}
}
