package obs

import "sort"

// Stitch joins the per-node records of one trace into a single span
// tree. Each node of the ring retains only the spans it executed; the
// seam between them is the entry node's "ring.forward" span, whose
// "peer" attribute names the node it proxied to. Stitch grafts the
// peer's root under that span (recursively, so multi-hop forwards
// chain), rebases every grafted subtree onto the entry node's clock
// using the wall-clock start difference, and annotates each per-node
// root with node/route/status attributes so the merged tree stays
// legible. Records without a parent seam become top-level; if more than
// one remains (clock skew, missing entry record), a synthetic "trace"
// root holds them all. Returns nil for no records.
func Stitch(records []TraceRecord) *SpanNode {
	if len(records) == 0 {
		return nil
	}
	recs := make([]TraceRecord, len(records))
	copy(recs, records)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })

	// Rebase every record onto the earliest start so grafted subtrees
	// keep wall-clock ordering. Cross-node clock skew makes this
	// best-effort; offsets are still far more useful than every node
	// claiming StartUs == 0.
	base := recs[0].Start
	roots := map[string]*SpanNode{}
	order := make([]string, 0, len(recs))
	for _, r := range recs {
		if r.Spans == nil {
			continue
		}
		root := cloneSpan(r.Spans)
		shiftSpan(root, r.Start.Sub(base).Microseconds())
		root.Attrs = append(root.Attrs,
			Attr{Key: "node", Value: r.Node},
			Attr{Key: "route", Value: r.Route},
			Attr{Key: "status", Value: r.Status},
		)
		roots[r.Node] = root
		order = append(order, r.Node)
	}
	if len(order) == 0 {
		return nil
	}

	// Graft each record under the forward span that produced it. Seams
	// are collected from each record's own tree before any attachment,
	// then applied with an ancestry check, so a forward loop (n1→n2→n1)
	// degrades to a partial graft instead of a cyclic tree.
	type seam struct {
		host string
		span *SpanNode
	}
	var seams []seam
	for _, node := range order {
		collectForwards(roots[node], func(sp *SpanNode) {
			seams = append(seams, seam{host: node, span: sp})
		})
	}
	attachedTo := map[string]string{}
	for _, s := range seams {
		peer := attrString(s.span, "peer")
		if peer == "" || peer == s.host {
			continue
		}
		sub, ok := roots[peer]
		if !ok {
			continue
		}
		if _, done := attachedTo[peer]; done {
			continue
		}
		// Attaching peer above an ancestor of the host would close a loop.
		cycle := false
		for cur := s.host; ; {
			if cur == peer {
				cycle = true
				break
			}
			parent, ok := attachedTo[cur]
			if !ok {
				break
			}
			cur = parent
		}
		if cycle {
			continue
		}
		attachedTo[peer] = s.host
		s.span.Children = append(s.span.Children, sub)
	}

	var tops []*SpanNode
	for _, node := range order {
		if _, ok := attachedTo[node]; !ok {
			tops = append(tops, roots[node])
		}
	}
	if len(tops) == 1 {
		return tops[0]
	}
	root := &SpanNode{Name: "trace"}
	for _, t := range tops {
		root.Children = append(root.Children, t)
		if end := t.StartUs + t.DurUs; end > root.DurUs {
			root.DurUs = end
		}
	}
	return root
}

// collectForwards walks one record's own (pre-graft) tree and reports
// its ring.forward spans — the seams other records attach under.
func collectForwards(n *SpanNode, visit func(*SpanNode)) {
	if n == nil {
		return
	}
	if n.Name == "ring.forward" {
		visit(n)
	}
	for _, c := range n.Children {
		collectForwards(c, visit)
	}
}

func attrString(n *SpanNode, key string) string {
	for _, a := range n.Attrs {
		if a.Key == key {
			if s, ok := a.Value.(string); ok {
				return s
			}
		}
	}
	return ""
}

func cloneSpan(n *SpanNode) *SpanNode {
	if n == nil {
		return nil
	}
	out := &SpanNode{Name: n.Name, StartUs: n.StartUs, DurUs: n.DurUs}
	if len(n.Attrs) > 0 {
		out.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, cloneSpan(c))
	}
	return out
}

func shiftSpan(n *SpanNode, us int64) {
	if n == nil || us == 0 {
		return
	}
	n.StartUs += us
	for _, c := range n.Children {
		shiftSpan(c, us)
	}
}
