package obs

import (
	"encoding/json"
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"ppclust/internal/metrics"
)

func testRecorder(t *testing.T, traces *TraceStore, pulse *Pulse, reg *metrics.Registry) *Recorder {
	t.Helper()
	clk := newPulseClock()
	rec, err := NewRecorder(RecorderConfig{
		Dir:        t.TempDir(),
		Node:       "n1",
		CPUProfile: -1, // keep unit tests fast; the capture path is exercised in the daemon test
		Now: func() time.Time {
			clk.advance(time.Second) // distinct bundle IDs per capture
			return clk.t
		},
	}, traces, pulse, reg)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func firingEvent(rule string) AlertEvent {
	return AlertEvent{
		Rule: rule, Kind: "threshold", Series: "queue_depth",
		State: AlertFiring, Value: 42, Threshold: 10, At: time.Unix(1_700_000_000, 0),
	}
}

func TestRecorderCaptureBundle(t *testing.T) {
	traces := NewTraceStore(TraceStoreConfig{Sample: 1}, nil)
	traces.Put(TraceRecord{ID: "t-slow", Route: "POST /v1/protect", Status: 200, DurMs: 900})
	traces.Put(TraceRecord{ID: "t-err", Route: "POST /v1/protect", Status: 500, DurMs: 5, Error: true})
	traces.Put(TraceRecord{ID: "t-fast", Route: "GET /healthz", Status: 200, DurMs: 1})

	clk := newPulseClock()
	pulse := NewPulse(PulseConfig{Interval: time.Second, Now: clk.now},
		func() map[string]int64 { return map[string]int64{"queue_depth": 42} }, nil)
	pulse.SampleNow()

	rec := testRecorder(t, traces, pulse, nil)
	meta := rec.Capture(firingEvent("queue_depth>10"))

	if meta.Rule != "queue_depth>10" || meta.Node != "n1" || meta.Value != 42 {
		t.Fatalf("meta: %+v", meta)
	}
	for _, want := range []string{"goroutines.txt", "heap.pprof", "traces.json", "history.json", "meta.json"} {
		if !slices.Contains(meta.Files, want) {
			t.Fatalf("bundle missing %s: %+v", want, meta.Files)
		}
	}
	if slices.Contains(meta.Files, "cpu.pprof") {
		t.Fatalf("cpu profile captured despite negative duration: %+v", meta.Files)
	}
	// Error trace ranks ahead of the slow one; the fast one may ride along.
	if len(meta.TraceIDs) < 2 || meta.TraceIDs[0] != "t-err" || meta.TraceIDs[1] != "t-slow" {
		t.Fatalf("trace ids: %+v", meta.TraceIDs)
	}

	dump, err := rec.ReadFile(meta.ID, "goroutines.txt")
	if err != nil || !strings.Contains(string(dump), "goroutine") {
		t.Fatalf("goroutine dump: err=%v len=%d", err, len(dump))
	}
	raw, err := rec.ReadFile(meta.ID, "history.json")
	if err != nil || !strings.Contains(string(raw), "queue_depth") {
		t.Fatalf("history excerpt: err=%v %s", err, raw)
	}

	list := rec.List()
	if len(list) != 1 || list[0].ID != meta.ID {
		t.Fatalf("list: %+v", list)
	}
	var roundTrip IncidentMeta
	raw, err = rec.ReadFile(meta.ID, "meta.json")
	if err != nil || json.Unmarshal(raw, &roundTrip) != nil || roundTrip.ID != meta.ID {
		t.Fatalf("meta.json round trip: err=%v %s", err, raw)
	}
}

func TestRecorderPathSanitization(t *testing.T) {
	rec := testRecorder(t, nil, nil, nil)
	meta := rec.Capture(firingEvent("r>1"))
	for _, bad := range []string{"../meta.json", "a/b", `a\b`, "..", ".", ""} {
		if _, err := rec.ReadFile(meta.ID, bad); err == nil {
			t.Errorf("ReadFile accepted %q", bad)
		}
		if _, err := rec.ReadFile(bad, "meta.json"); err == nil {
			t.Errorf("ReadFile accepted id %q", bad)
		}
		if _, err := rec.Get(bad); err == nil {
			t.Errorf("Get accepted %q", bad)
		}
	}
}

func TestRecorderRetention(t *testing.T) {
	clk := newPulseClock()
	rec, err := NewRecorder(RecorderConfig{
		Dir:          t.TempDir(),
		MaxIncidents: 3,
		CPUProfile:   -1,
		Now: func() time.Time {
			clk.advance(time.Second)
			return clk.t
		},
	}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, rec.Capture(firingEvent(fmt.Sprintf("rule-%d>1", i))).ID)
	}
	list := rec.List()
	if len(list) != 3 {
		t.Fatalf("retention kept %d bundles, want 3: %+v", len(list), list)
	}
	if list[0].ID != ids[4] || list[2].ID != ids[2] {
		t.Fatalf("retention kept wrong bundles (want newest first): %+v", list)
	}
	if _, err := rec.Get(ids[0]); err == nil {
		t.Fatal("oldest bundle survived retention")
	}
}

func TestRecorderOnEventFiltersAndSkipsOverlap(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := testRecorder(t, nil, nil, reg)
	rec.OnEvent(AlertEvent{Rule: "r>1", State: AlertResolved})
	rec.Wait()
	if n := len(rec.List()); n != 0 {
		t.Fatalf("resolved event captured: %d bundles", n)
	}
	// Hold the capture slot: concurrent firings must be skipped, counted.
	rec.busy.Store(true)
	rec.OnEvent(firingEvent("r>1"))
	rec.busy.Store(false)
	rec.Wait()
	if reg.Snapshot()["incidents_skipped_total"] != 1 {
		t.Fatalf("overlap not counted: %v", reg.Snapshot())
	}
	rec.OnEvent(firingEvent("r>1"))
	rec.Wait()
	if n := len(rec.List()); n != 1 {
		t.Fatalf("firing event not captured: %d bundles", n)
	}
	if reg.Snapshot()["incidents_captured_total"] != 1 {
		t.Fatalf("capture not counted: %v", reg.Snapshot())
	}
	var nilRec *Recorder
	nilRec.OnEvent(firingEvent("r>1")) // nil-safe
	nilRec.Wait()
}
