package obs

// Trace store unit tests: retention policy (errors and slow requests
// always kept, the rest hash-sampled identically on every node), the
// byte/count eviction budget with its counter, same-ID replacement,
// query filtering, and the occupancy gauges.

import (
	"fmt"
	"testing"
	"time"

	"ppclust/internal/metrics"
)

func testRecord(id string, durMs float64, at time.Time) TraceRecord {
	return TraceRecord{
		ID:    id,
		Node:  "self",
		Route: "POST /v1/protect",
		Start: at,
		DurMs: durMs,
		Spans: &SpanNode{Name: "http", DurUs: int64(durMs * 1000)},
	}
}

func TestShouldKeepPolicy(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Sample: 0, SlowMs: 100}, nil)
	if !s.ShouldKeep("a", 500, 1) {
		t.Error("error trace must always be kept")
	}
	if !s.ShouldKeep("a", 404, 1) {
		t.Error("4xx trace must always be kept")
	}
	if !s.ShouldKeep("a", 200, 100) {
		t.Error("slow trace must always be kept")
	}
	if s.ShouldKeep("a", 200, 1) {
		t.Error("sample 0 must drop ordinary traces")
	}
	s = NewTraceStore(TraceStoreConfig{Sample: 1}, nil)
	if !s.ShouldKeep("a", 200, 1) {
		t.Error("sample 1 must keep everything")
	}
}

func TestShouldKeepDeterministicAcrossStores(t *testing.T) {
	// Two stores with the same sample fraction must agree on every ID —
	// the property that makes a sampled cross-node trace stitchable.
	a := NewTraceStore(TraceStoreConfig{Sample: 0.3}, nil)
	b := NewTraceStore(TraceStoreConfig{Sample: 0.3}, nil)
	kept := 0
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("trace-%d", i)
		ka, kb := a.ShouldKeep(id, 200, 1), b.ShouldKeep(id, 200, 1)
		if ka != kb {
			t.Fatalf("stores disagree on %q", id)
		}
		if ka {
			kept++
		}
	}
	// The hash is uniform; 30% ± 5 points over 2000 IDs is generous.
	if kept < 500 || kept > 700 {
		t.Errorf("kept %d of 2000 at sample 0.3, want ~600", kept)
	}
}

func TestPutEvictsOldestPastCountBudget(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewTraceStore(TraceStoreConfig{MaxTraces: 3, Sample: 1}, reg)
	base := time.Now()
	for i := 0; i < 5; i++ {
		s.Put(testRecord(fmt.Sprintf("t%d", i), 1, base.Add(time.Duration(i)*time.Second)))
	}
	if got := s.Stats().Traces; got != 3 {
		t.Fatalf("live traces = %d, want 3", got)
	}
	if _, ok := s.Get("t0"); ok {
		t.Error("oldest record must be evicted")
	}
	if _, ok := s.Get("t4"); !ok {
		t.Error("newest record must survive")
	}
	if got := reg.Snapshot()["obs_trace_store_evictions_total"]; got != 2 {
		t.Errorf("evictions counter = %d, want 2", got)
	}
}

func TestPutEvictsPastByteBudget(t *testing.T) {
	one := recordSize(&TraceRecord{ID: "t0", Node: "self", Route: "POST /v1/protect",
		Spans: &SpanNode{Name: "http"}})
	s := NewTraceStore(TraceStoreConfig{MaxBytes: 3 * one, Sample: 1}, nil)
	base := time.Now()
	for i := 0; i < 10; i++ {
		s.Put(testRecord(fmt.Sprintf("t%d", i), 1, base.Add(time.Duration(i)*time.Second)))
	}
	st := s.Stats()
	if st.Bytes > 3*one {
		t.Errorf("bytes = %d, budget %d", st.Bytes, 3*one)
	}
	if st.Traces >= 10 {
		t.Errorf("no eviction happened: %d traces live", st.Traces)
	}
}

func TestPutReplacesSameID(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewTraceStore(TraceStoreConfig{Sample: 1}, reg)
	s.Put(testRecord("dup", 1, time.Now()))
	s.Put(testRecord("dup", 9, time.Now().Add(time.Second)))
	if got := s.Stats().Traces; got != 1 {
		t.Fatalf("live traces = %d, want 1", got)
	}
	rec, ok := s.Get("dup")
	if !ok || rec.DurMs != 9 {
		t.Fatalf("Get(dup) = %+v %v, want the newer record", rec, ok)
	}
	// A replacement is not an eviction.
	if got := reg.Snapshot()["obs_trace_store_evictions_total"]; got != 0 {
		t.Errorf("evictions counter = %d, want 0", got)
	}
}

func TestQueryFilters(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Sample: 1}, nil)
	base := time.Now()
	s.Put(TraceRecord{ID: "fast", Route: "GET /v1/datasets", Start: base, DurMs: 2})
	s.Put(TraceRecord{ID: "slow", Route: "POST /v1/protect", Start: base.Add(time.Second), DurMs: 300})
	s.Put(TraceRecord{ID: "mid", Route: "POST /v1/protect", Start: base.Add(2 * time.Second), DurMs: 50})

	all := s.Query(TraceQuery{})
	if len(all) != 3 || all[0].ID != "mid" || all[2].ID != "fast" {
		t.Fatalf("unfiltered query not newest-first: %+v", all)
	}
	if got := s.Query(TraceQuery{Route: "protect"}); len(got) != 2 {
		t.Errorf("route filter kept %d, want 2", len(got))
	}
	if got := s.Query(TraceQuery{Route: "PROTECT"}); len(got) != 2 {
		t.Errorf("route filter must be case-insensitive, kept %d", len(got))
	}
	if got := s.Query(TraceQuery{MinMs: 100}); len(got) != 1 || got[0].ID != "slow" {
		t.Errorf("min_ms filter = %+v, want [slow]", got)
	}
	if got := s.Query(TraceQuery{Limit: 1}); len(got) != 1 || got[0].ID != "mid" {
		t.Errorf("limit = %+v, want the newest record", got)
	}
}

func TestGauges(t *testing.T) {
	s := NewTraceStore(TraceStoreConfig{Sample: 1}, nil)
	s.Put(testRecord("t1", 1, time.Now()))
	g := s.Gauges()
	if g["obs_trace_store_traces"] != 1 {
		t.Errorf("obs_trace_store_traces = %d, want 1", g["obs_trace_store_traces"])
	}
	if g["obs_trace_store_bytes"] <= 0 {
		t.Errorf("obs_trace_store_bytes = %d, want > 0", g["obs_trace_store_bytes"])
	}
}

func BenchmarkTraceStoreRecord(b *testing.B) {
	s := NewTraceStore(TraceStoreConfig{Sample: 1}, nil)
	base := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		if s.ShouldKeep(id, 200, 1) {
			s.Put(testRecord(id, 1, base))
		}
	}
}

func BenchmarkTraceStoreQuery(b *testing.B) {
	s := NewTraceStore(TraceStoreConfig{Sample: 1}, nil)
	base := time.Now()
	for i := 0; i < 4096; i++ {
		s.Put(testRecord(fmt.Sprintf("bench-%d", i), float64(i%500), base.Add(time.Duration(i)*time.Millisecond)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Query(TraceQuery{Route: "protect", MinMs: 100}); len(got) == 0 {
			b.Fatal("query returned nothing")
		}
	}
}
