package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strconv"
	"strings"
	"testing"
	"time"

	"ppclust/internal/metrics"
)

func TestSpanTree(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "", "http")
	if TraceID(ctx) == "" || len(TraceID(ctx)) != 16 {
		t.Fatalf("minted trace ID %q, want 16 hex chars", TraceID(ctx))
	}
	ctx2, auth := Start(ctx, "auth")
	auth.Set("owner", "alice")
	auth.End()
	_, eng := Start(ctx2, "engine.protect")
	eng.End()
	root.End()

	tree := FromContext(ctx).Tree()
	if tree.Name != "http" || len(tree.Children) != 1 {
		t.Fatalf("tree = %+v, want root http with 1 child", tree)
	}
	if tree.Children[0].Name != "auth" || len(tree.Children[0].Children) != 1 {
		t.Fatalf("auth child = %+v", tree.Children[0])
	}
	if got := tree.Children[0].Children[0].Name; got != "engine.protect" {
		t.Fatalf("grandchild = %q, want engine.protect", got)
	}
	if len(tree.Children[0].Attrs) != 1 || tree.Children[0].Attrs[0].Key != "owner" {
		t.Fatalf("auth attrs = %+v", tree.Children[0].Attrs)
	}

	stages := FromContext(ctx).Stages()
	if len(stages) != 2 || stages[0].Name != "auth" || stages[1].Name != "engine.protect" {
		t.Fatalf("stages = %+v", stages)
	}
}

func TestStartTraceAdoptsID(t *testing.T) {
	ctx, _ := StartTrace(context.Background(), "deadbeefcafef00d", "http")
	if got := TraceID(ctx); got != "deadbeefcafef00d" {
		t.Fatalf("TraceID = %q, want adopted header ID", got)
	}
}

func TestNilSpanSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, s := Start(ctx, "orphan") // no trace in ctx
	if s != nil {
		t.Fatal("Start without trace should return nil span")
	}
	s.Set("k", 1) // must not panic
	s.End()
	if s.Duration() != 0 {
		t.Fatal("nil span duration")
	}
	if TraceID(ctx2) != "" {
		t.Fatal("no trace ID expected")
	}
}

func TestWithTraceID(t *testing.T) {
	ctx := WithTraceID(context.Background(), "0123456789abcdef")
	if got := TraceID(ctx); got != "0123456789abcdef" {
		t.Fatalf("pinned ID = %q", got)
	}
	if FromContext(ctx) != nil {
		t.Fatal("pinned ID must not activate span recording")
	}
}

func TestDoubleEndKeepsFirstDuration(t *testing.T) {
	_, root := StartTrace(context.Background(), "", "r")
	root.End()
	d := root.Duration()
	time.Sleep(2 * time.Millisecond)
	root.End()
	if root.Duration() != d {
		t.Fatalf("second End changed duration: %v -> %v", d, root.Duration())
	}
}

func TestLogAttrsAndLogger(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo, slog.String("node", "n1"))
	ctx, _ := StartTrace(context.Background(), "feedfacefeedface", "http")
	lg.Info("request", append([]any{slog.String("route", "GET /x")}, LogAttrs(ctx)...)...)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]string{
		"node": "n1", "route": "GET /x", "trace": "feedfacefeedface", "msg": "request",
	} {
		if rec[k] != want {
			t.Fatalf("log[%q] = %v, want %q (line: %s)", k, rec[k], want, buf.String())
		}
	}
	if LogAttrs(context.Background()) != nil {
		t.Fatal("LogAttrs without trace should be empty")
	}
}

// TestPromTextFormat is the conformance test for the renderer itself:
// TYPE lines precede samples, buckets are in numeric order (a lexical
// sort would put 10 before 5), and +Inf is last.
func TestPromTextFormat(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter(`http_requests_total{route="GET /x",status="200"}`).Add(3)
	reg.Counter(`http_requests_total{route="GET /x",status="404"}`).Add(1)
	// Bounds chosen so lexical ordering (10, 100, 25, 5) differs from
	// numeric (5, 10, 25, 100).
	h := reg.Histogram(`d_us{route="GET /x"}`, []float64{5, 10, 25, 100})
	h.Observe(7)
	h.Observe(2000)
	gauges := map[string]int64{"jobs_queue_depth": 4, `federation_parties{fed="ab"}`: 2}

	var buf bytes.Buffer
	if err := WritePromText(&buf, reg, gauges); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	seenType := map[string]string{}
	var lastBound float64
	var sawInf, infIsLastBucket bool
	for _, line := range lines {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			seenType[parts[0]] = parts[1]
			continue
		}
		// Label values may contain spaces (route="GET /x"); the value is
		// everything after the LAST space.
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:sp]
		base, _ := SplitMetricName(name)
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if _, ok := seenType[fam]; !ok {
			t.Fatalf("sample %q before its # TYPE line\n%s", line, out)
		}
		if strings.HasPrefix(name, "d_us_bucket{") {
			i := strings.Index(name, `le="`)
			le := name[i+4 : strings.LastIndex(name, `"`)]
			if le == "+Inf" {
				sawInf, infIsLastBucket = true, true
				continue
			}
			infIsLastBucket = false
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", le, err)
			}
			if b <= lastBound {
				t.Fatalf("bucket bounds out of numeric order: %g after %g\n%s", b, lastBound, out)
			}
			lastBound = b
		}
	}
	if !sawInf || !infIsLastBucket {
		t.Fatalf("+Inf bucket missing or not last\n%s", out)
	}
	if seenType["http_requests_total"] != "counter" ||
		seenType["d_us"] != "histogram" ||
		seenType["jobs_queue_depth"] != "gauge" ||
		seenType["federation_parties"] != "gauge" {
		t.Fatalf("TYPE lines = %v", seenType)
	}
	if !strings.Contains(out, `d_us_bucket{route="GET /x",le="+Inf"} 2`) {
		t.Fatalf("+Inf cumulative count wrong:\n%s", out)
	}
	if !strings.Contains(out, `d_us_count{route="GET /x"} 2`) {
		t.Fatalf("histogram _count missing:\n%s", out)
	}
}
