package obs

import (
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"ppclust/internal/metrics"
)

// TraceRecord is one finished request's span tree as retained by the
// TraceStore: the per-node residue of a trace, queryable after the fact
// at GET /v1/traces/{id}. A trace that crossed the ring leaves one
// record per node it touched, all under the shared ID; Stitch joins
// them back into a single tree.
type TraceRecord struct {
	ID     string    `json:"id"`
	Node   string    `json:"node,omitempty"`
	Route  string    `json:"route"`
	Status int       `json:"status"`
	Owner  string    `json:"owner,omitempty"`
	Start  time.Time `json:"start"`
	DurMs  float64   `json:"dur_ms"`
	Error  bool      `json:"error"`
	Spans  *SpanNode `json:"spans,omitempty"`
}

// TraceQuery filters a trace-store listing.
type TraceQuery struct {
	// Route is a case-insensitive substring match against the record's
	// route label ("" matches every route).
	Route string
	// MinMs drops records faster than this many milliseconds.
	MinMs float64
	// Limit caps the result count (0: DefaultQueryLimit). Records come
	// back newest first.
	Limit int
}

// DefaultQueryLimit bounds GET /v1/traces responses when the caller
// does not pass a limit.
const DefaultQueryLimit = 50

// TraceStoreConfig bounds and samples the per-node trace store.
type TraceStoreConfig struct {
	// MaxBytes caps the store's approximate retained size (0: 16 MiB).
	MaxBytes int64
	// MaxTraces caps the retained record count (0: 4096).
	MaxTraces int
	// Sample is the fraction of ordinary (fast, successful) traces kept,
	// in [0, 1]. Sampling is a deterministic hash of the trace ID, so
	// every node of a ring keeps or drops the same trace — a sampled
	// cross-node trace is always stitchable, never half-retained.
	// Values >= 1 keep everything; <= 0 keeps only slow/error traces.
	Sample float64
	// SlowMs marks the always-keep latency threshold; slow traces bypass
	// sampling, as do error (HTTP >= 400) traces (0: 250ms).
	SlowMs float64
}

// TraceStore is a bounded in-memory ring buffer of finished traces:
// oldest records are evicted once the byte or count budget is exceeded,
// so retention can never OOM a node. Occupancy is observable as the
// obs_trace_store_bytes / obs_trace_store_traces gauges (see Gauges)
// and the obs_trace_store_evictions_total registry counter.
type TraceStore struct {
	cfg       TraceStoreConfig
	evictions *metrics.Counter

	mu    sync.Mutex
	byID  map[string]*storedTrace
	queue []*storedTrace // insertion order; front is oldest
	bytes int64
}

type storedTrace struct {
	rec  TraceRecord
	size int64
	gone bool // replaced by a newer record for the same ID
}

// NewTraceStore builds a store with cfg's budgets, registering its
// eviction counter on reg (nil: counter kept private).
func NewTraceStore(cfg TraceStoreConfig, reg *metrics.Registry) *TraceStore {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 16 << 20
	}
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 4096
	}
	if cfg.SlowMs <= 0 {
		cfg.SlowMs = 250
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &TraceStore{
		cfg:       cfg,
		evictions: reg.Counter("obs_trace_store_evictions_total"),
		byID:      map[string]*storedTrace{},
	}
}

// ShouldKeep reports whether a finished trace is worth materializing:
// errors (status >= 400) and slow requests always are; the rest pass a
// deterministic hash of the trace ID against the sample fraction. Call
// it before building the span tree so dropped traces never pay the
// export cost.
func (s *TraceStore) ShouldKeep(id string, status int, durMs float64) bool {
	if status >= 400 {
		return true
	}
	if durMs >= s.cfg.SlowMs {
		return true
	}
	switch {
	case s.cfg.Sample >= 1:
		return true
	case s.cfg.Sample <= 0:
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	// FNV's high bits avalanche poorly on short sequential IDs, so run
	// the sum through a 64-bit finalization mix before taking the top 20
	// bits → uniform in [0, 1<<20), deterministic per ID across the ring.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>44) < s.cfg.Sample*float64(1<<20)
}

// Put retains rec, replacing any prior record under the same ID and
// evicting the oldest records past the byte/count budget.
func (s *TraceStore) Put(rec TraceRecord) {
	st := &storedTrace{rec: rec, size: recordSize(&rec)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byID[rec.ID]; ok {
		// Replaced, not evicted: the queue entry is tombstoned and its
		// bytes released; the sweep below discards it for free.
		old.gone = true
		s.bytes -= old.size
	}
	s.byID[rec.ID] = st
	s.queue = append(s.queue, st)
	s.bytes += st.size
	for len(s.queue) > 1 && (s.bytes > s.cfg.MaxBytes || s.live() > s.cfg.MaxTraces) {
		victim := s.queue[0]
		s.queue = s.queue[1:]
		if victim.gone {
			continue
		}
		delete(s.byID, victim.rec.ID)
		s.bytes -= victim.size
		s.evictions.Inc()
	}
}

// live counts non-tombstoned queue entries; byID is exactly that set.
func (s *TraceStore) live() int { return len(s.byID) }

// Get returns the retained record for id.
func (s *TraceStore) Get(id string) (TraceRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.byID[id]
	if !ok {
		return TraceRecord{}, false
	}
	return st.rec, true
}

// Query lists retained records matching q, newest first.
func (s *TraceStore) Query(q TraceQuery) []TraceRecord {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultQueryLimit
	}
	route := strings.ToLower(q.Route)
	s.mu.Lock()
	out := make([]TraceRecord, 0, limit)
	for i := len(s.queue) - 1; i >= 0 && len(out) < limit; i-- {
		st := s.queue[i]
		if st.gone || st.rec.DurMs < q.MinMs {
			continue
		}
		if route != "" && !strings.Contains(strings.ToLower(st.rec.Route), route) {
			continue
		}
		out = append(out, st.rec)
	}
	s.mu.Unlock()
	// The queue is insertion-ordered, which is start-ordered only per
	// node; sort by start so cross-replayed IDs still list newest first.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Stats is a point-in-time occupancy snapshot.
type TraceStoreStats struct {
	Traces int
	Bytes  int64
}

// Stats returns current occupancy.
func (s *TraceStore) Stats() TraceStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TraceStoreStats{Traces: s.live(), Bytes: s.bytes}
}

// Gauges returns the store's live gauges for the metrics surface.
func (s *TraceStore) Gauges() map[string]int64 {
	st := s.Stats()
	return map[string]int64{
		"obs_trace_store_bytes":  st.Bytes,
		"obs_trace_store_traces": int64(st.Traces),
	}
}

// recordSize estimates a record's retained footprint: struct overhead
// plus its strings and span tree. An estimate is enough — the budget
// guards order-of-magnitude growth, not malloc accounting.
func recordSize(r *TraceRecord) int64 {
	n := int64(96 + len(r.ID) + len(r.Node) + len(r.Route) + len(r.Owner))
	return n + spanSize(r.Spans)
}

func spanSize(n *SpanNode) int64 {
	if n == nil {
		return 0
	}
	sz := int64(64 + len(n.Name))
	for _, a := range n.Attrs {
		sz += int64(40 + len(a.Key))
		if s, ok := a.Value.(string); ok {
			sz += int64(len(s))
		}
	}
	for _, c := range n.Children {
		sz += spanSize(c)
	}
	return sz
}
