package obs

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ppclust/internal/metrics"
)

// pppulse: an in-memory ring-buffer time-series store over the metrics
// registry. Every interval the sampler takes one flat snapshot (the
// same map /v1/metrics serves) and derives step series from it:
//
//   - counters (`*_total`) become per-second rates (`name:rate`);
//   - histograms become per-step percentiles (`base_p50{labels}`,
//     `_p95`, `_p99`) and a per-second observation rate (`base:rate`),
//     computed from the bucket deltas between consecutive samples so
//     each point describes that step, not the process lifetime;
//   - everything else is a gauge, stored as-is.
//
// Raw `_bucket`/`_count`/`_sum` series are not retained — the derived
// forms answer "when did p99 start climbing?" directly, and dropping
// the bucket matrix is what keeps minutes of history per series inside
// a few megabytes. Values live in fixed slot rings (retention/interval
// slots); a byte budget caps total footprint by refusing new series
// (counted) rather than evicting old ones mid-incident.

// DefaultPulseInterval is the sampling cadence when none is configured.
const DefaultPulseInterval = 10 * time.Second

// DefaultPulseRetention is the history window when none is configured.
const DefaultPulseRetention = 15 * time.Minute

// defaultPulseBytes caps the store when no budget is configured.
const defaultPulseBytes = 4 << 20

// pulseQuantiles are the per-step histogram percentiles the sampler
// derives, matched to the suffix each series carries.
var pulseQuantiles = []struct {
	Suffix string
	Q      float64
}{
	{"_p50", 0.50},
	{"_p95", 0.95},
	{"_p99", 0.99},
}

// PulseConfig bounds and paces a Pulse.
type PulseConfig struct {
	// Interval is the sampling cadence (0: DefaultPulseInterval).
	Interval time.Duration
	// Retention is how far back Query can reach (0: DefaultPulseRetention).
	Retention time.Duration
	// MaxBytes caps the store's approximate footprint (0: 4 MiB). New
	// series past the budget are dropped and counted, existing ones keep
	// recording.
	MaxBytes int64
	// Now overrides the clock (tests).
	Now func() time.Time
	// OnSample, when set, receives every completed sample's derived
	// values — the alert engine's evaluation hook. Called outside the
	// store lock, on the sampler goroutine.
	OnSample func(t time.Time, values map[string]float64)
}

// Pulse is the sampling loop plus the slot-ring store. Construct with
// NewPulse, then Start the loop (or drive SampleNow from tests).
type Pulse struct {
	cfg     PulseConfig
	source  func() map[string]int64
	slots   int
	samples *metrics.Counter
	dropped *metrics.Counter

	mu        sync.Mutex
	epochs    []int64 // epoch held by each slot; -1 when never written
	series    map[string]*pulseSeries
	lastSnap  map[string]int64
	lastTime  time.Time
	lastEpoch int64
	bytes     int64
	droppedN  int64 // distinct series refused by the byte budget

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type pulseSeries struct {
	vals []float64 // slot-indexed; NaN = no sample in that slot
}

// NewPulse builds a store sampling source (a flat snapshot provider in
// the registry's naming convention), registering its counters on reg
// (nil: counters kept private). Call Start to begin sampling.
func NewPulse(cfg PulseConfig, source func() map[string]int64, reg *metrics.Registry) *Pulse {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultPulseInterval
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultPulseRetention
	}
	if cfg.Retention < cfg.Interval {
		cfg.Retention = cfg.Interval
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultPulseBytes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	slots := int(cfg.Retention / cfg.Interval)
	if slots < 2 {
		slots = 2
	}
	p := &Pulse{
		cfg:       cfg,
		source:    source,
		slots:     slots,
		samples:   reg.Counter("pulse_samples_total"),
		dropped:   reg.Counter("pulse_series_dropped_total"),
		epochs:    make([]int64, slots),
		series:    map[string]*pulseSeries{},
		lastEpoch: -1,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for i := range p.epochs {
		p.epochs[i] = -1
	}
	return p
}

// Start launches the sampling loop. Close stops it.
func (p *Pulse) Start() {
	go func() {
		defer close(p.done)
		tick := time.NewTicker(p.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				p.SampleNow()
			case <-p.stop:
				return
			}
		}
	}()
}

// Close stops the sampling loop, waiting for an in-flight sample.
func (p *Pulse) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	select {
	case <-p.done:
	case <-time.After(time.Second):
	}
}

// Interval returns the configured sampling cadence (0 on a nil store).
func (p *Pulse) Interval() time.Duration {
	if p == nil {
		return 0
	}
	return p.cfg.Interval
}

// SampleNow takes one sample immediately — the loop's body, exported so
// tests (and a just-started daemon) can sample deterministically.
func (p *Pulse) SampleNow() {
	now := p.cfg.Now()
	snap := p.source()
	values := p.derive(now, snap)
	p.store(now, values)
	p.samples.Inc()
	if p.cfg.OnSample != nil {
		p.cfg.OnSample(now, values)
	}
}

// histFamily is one histogram (base + non-le labels) reassembled from a
// flat snapshot.
type histFamily struct {
	base    string // name without the _bucket suffix
	labels  string // label body without the le pair
	buckets []metrics.BucketCount
}

// derive computes this sample's series values from the raw snapshot,
// using the previous snapshot for counter and bucket deltas. Reads
// p.lastSnap/p.lastTime and replaces them; callers must not hold p.mu
// (derive runs before the store lock so the source and the alert hook
// never nest inside it).
func (p *Pulse) derive(now time.Time, snap map[string]int64) map[string]float64 {
	prev := p.lastSnap
	dt := 0.0
	if prev != nil {
		dt = now.Sub(p.lastTime).Seconds()
	}
	p.lastSnap = snap
	p.lastTime = now

	fams, skip := histFamilies(snap)
	values := make(map[string]float64, len(snap))
	for name, v := range snap {
		if skip[name] {
			continue
		}
		base, labels := metrics.SplitName(name)
		if strings.HasSuffix(base, "_total") {
			if prev == nil || dt <= 0 {
				continue
			}
			pv, ok := prev[name]
			if !ok || v < pv {
				pv = 0 // new counter or reset: rate from zero
			}
			values[spliceName(strings.TrimSuffix(base, "_total")+":rate", labels)] = float64(v-pv) / dt
			continue
		}
		values[name] = float64(v)
	}
	if prev != nil && dt > 0 {
		prevFams, _ := histFamilies(prev)
		for key, fam := range fams {
			pf, ok := prevFams[key]
			delta, total := bucketDelta(fam.buckets, pf.buckets, ok)
			values[spliceName(fam.base+":rate", fam.labels)] = float64(total) / dt
			if total <= 0 {
				continue
			}
			for _, pq := range pulseQuantiles {
				if q := metrics.QuantileFromBuckets(delta, pq.Q); !math.IsNaN(q) {
					values[spliceName(fam.base+pq.Suffix, fam.labels)] = q
				}
			}
		}
	}
	return values
}

// histFamilies reassembles the histograms present in a flat snapshot
// and the full set of raw component keys (bucket/count/sum) to exclude
// from gauge treatment.
func histFamilies(snap map[string]int64) (map[string]histFamily, map[string]bool) {
	fams := map[string]histFamily{}
	skip := map[string]bool{}
	roots := map[string]bool{}
	for name := range snap {
		base, labels := metrics.SplitName(name)
		if !strings.HasSuffix(base, "_bucket") {
			continue
		}
		if _, _, ok := metrics.LabelValue(labels, "le"); !ok {
			continue
		}
		roots[strings.TrimSuffix(base, "_bucket")] = true
	}
	for name, v := range snap {
		base, labels := metrics.SplitName(name)
		switch {
		case strings.HasSuffix(base, "_bucket"):
			root := strings.TrimSuffix(base, "_bucket")
			le, rest, ok := metrics.LabelValue(labels, "le")
			if !ok || !roots[root] {
				continue
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					continue
				}
			}
			skip[name] = true
			key := spliceName(root, rest)
			fam := fams[key]
			fam.base, fam.labels = root, rest
			fam.buckets = append(fam.buckets, metrics.BucketCount{UpperBound: bound, Count: v})
			fams[key] = fam
		case strings.HasSuffix(base, "_count") && roots[strings.TrimSuffix(base, "_count")],
			strings.HasSuffix(base, "_sum") && roots[strings.TrimSuffix(base, "_sum")]:
			skip[name] = true
		}
	}
	for key, fam := range fams {
		sort.Slice(fam.buckets, func(i, j int) bool {
			return fam.buckets[i].UpperBound < fam.buckets[j].UpperBound
		})
		fams[key] = fam
	}
	return fams, skip
}

// bucketDelta subtracts the previous sample's cumulative buckets from
// the current ones, returning the step's own cumulative buckets and its
// observation count. A missing or shrunken previous bucket (restart,
// new route) falls back to the current cumulative value.
func bucketDelta(cur, prev []metrics.BucketCount, havePrev bool) ([]metrics.BucketCount, int64) {
	out := make([]metrics.BucketCount, len(cur))
	prevAt := map[float64]int64{}
	if havePrev {
		for _, b := range prev {
			prevAt[b.UpperBound] = b.Count
		}
	}
	for i, b := range cur {
		d := b.Count - prevAt[b.UpperBound]
		if d < 0 {
			d = b.Count
		}
		out[i] = metrics.BucketCount{UpperBound: b.UpperBound, Count: d}
	}
	var total int64
	if len(out) > 0 {
		total = out[len(out)-1].Count
	}
	return out, total
}

// spliceName re-attaches a label body to a derived base name.
func spliceName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// store writes one sample's values into the slot rings.
func (p *Pulse) store(now time.Time, values map[string]float64) {
	epoch := now.UnixNano() / int64(p.cfg.Interval)
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := int(epoch % int64(p.slots))
	if idx < 0 {
		idx += p.slots
	}
	if p.epochs[idx] != epoch {
		// The slot is being reused for a new epoch: every series forgets
		// it, so series absent from this sample read as gaps, not stale
		// values.
		for _, s := range p.series {
			s.vals[idx] = math.NaN()
		}
		p.epochs[idx] = epoch
	}
	for name, v := range values {
		s := p.series[name]
		if s == nil {
			cost := seriesCost(name, p.slots)
			if p.bytes+cost > p.cfg.MaxBytes {
				p.droppedN++
				p.dropped.Inc()
				continue
			}
			s = &pulseSeries{vals: make([]float64, p.slots)}
			for i := range s.vals {
				s.vals[i] = math.NaN()
			}
			p.series[name] = s
			p.bytes += cost
		}
		s.vals[idx] = v
	}
	p.lastEpoch = epoch
}

// seriesCost estimates one series' retained footprint: the name, the
// value ring, and map/struct overhead.
func seriesCost(name string, slots int) int64 {
	return int64(len(name) + slots*8 + 64)
}

// HistoryQuery filters and shapes a Query.
type HistoryQuery struct {
	// Series keeps series whose name contains any of these substrings,
	// case-insensitively (empty: all series).
	Series []string
	// Since drops points older than this instant (zero: full retention).
	Since time.Time
	// Step downsamples to one point per step (0 or < interval: raw).
	Step time.Duration
	// Agg folds a step's raw points: "avg" (default), "max", "min" or
	// "last".
	Agg string
	// MaxSeries caps the matched series count (0: DefaultMaxHistorySeries).
	MaxSeries int
}

// DefaultMaxHistorySeries bounds one history response.
const DefaultMaxHistorySeries = 100

// HistoryPoint is one sample: wall-clock milliseconds and the value.
type HistoryPoint struct {
	TMs int64   `json:"t_ms"`
	V   float64 `json:"v"`
}

// HistorySeries is one series' retained points, oldest first.
type HistorySeries struct {
	Name   string         `json:"name"`
	Points []HistoryPoint `json:"points"`
}

// Query reads the store. Series come back name-sorted, points oldest
// first; truncated reports whether MaxSeries cut the match set.
func (p *Pulse) Query(q HistoryQuery) (out []HistorySeries, truncated bool) {
	if p == nil {
		return nil, false
	}
	maxSeries := q.MaxSeries
	if maxSeries <= 0 {
		maxSeries = DefaultMaxHistorySeries
	}
	var filters []string
	for _, f := range q.Series {
		if f = strings.TrimSpace(f); f != "" {
			filters = append(filters, strings.ToLower(f))
		}
	}
	stepN := int64(1)
	if q.Step > p.cfg.Interval {
		stepN = int64(q.Step / p.cfg.Interval)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastEpoch < 0 {
		return nil, false
	}
	names := make([]string, 0, len(p.series))
	for name := range p.series {
		if matchesAny(name, filters) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) > maxSeries {
		names = names[:maxSeries]
		truncated = true
	}
	oldest := p.lastEpoch - int64(p.slots) + 1
	if !q.Since.IsZero() {
		if e := q.Since.UnixNano() / int64(p.cfg.Interval); e > oldest {
			oldest = e
		}
	}
	for _, name := range names {
		s := p.series[name]
		hs := HistorySeries{Name: name}
		var agg aggState
		groupEnd := int64(-1)
		flush := func() {
			if v, ok := agg.result(q.Agg); ok {
				hs.Points = append(hs.Points, HistoryPoint{
					TMs: groupEnd * int64(p.cfg.Interval) / int64(time.Millisecond),
					V:   v,
				})
			}
			agg = aggState{}
		}
		for e := oldest; e <= p.lastEpoch; e++ {
			idx := int(e % int64(p.slots))
			if idx < 0 {
				idx += p.slots
			}
			if p.epochs[idx] != e {
				continue
			}
			v := s.vals[idx]
			if math.IsNaN(v) {
				continue
			}
			end := (e/stepN + 1) * stepN
			if end != groupEnd && agg.n > 0 {
				flush()
			}
			groupEnd = end
			agg.add(v)
		}
		if agg.n > 0 {
			flush()
		}
		if len(hs.Points) > 0 {
			out = append(out, hs)
		}
	}
	return out, truncated
}

// Latest returns the newest value of every series matching the filters,
// in the same semantics as Query's Series field.
func (p *Pulse) Latest(filters []string) map[string]float64 {
	if p == nil {
		return nil
	}
	var low []string
	for _, f := range filters {
		if f = strings.TrimSpace(f); f != "" {
			low = append(low, strings.ToLower(f))
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastEpoch < 0 {
		return nil
	}
	idx := int(p.lastEpoch % int64(p.slots))
	out := make(map[string]float64)
	for name, s := range p.series {
		if !matchesAny(name, low) {
			continue
		}
		if v := s.vals[idx]; !math.IsNaN(v) {
			out[name] = v
		}
	}
	return out
}

func matchesAny(name string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	low := strings.ToLower(name)
	for _, f := range filters {
		if strings.Contains(low, f) {
			return true
		}
	}
	return false
}

// aggState folds one downsample group.
type aggState struct {
	n                   int
	sum, min, max, last float64
}

func (a *aggState) add(v float64) {
	if a.n == 0 {
		a.min, a.max = v, v
	} else {
		a.min = math.Min(a.min, v)
		a.max = math.Max(a.max, v)
	}
	a.sum += v
	a.last = v
	a.n++
}

func (a *aggState) result(agg string) (float64, bool) {
	if a.n == 0 {
		return 0, false
	}
	switch agg {
	case "max":
		return a.max, true
	case "min":
		return a.min, true
	case "last":
		return a.last, true
	default:
		return a.sum / float64(a.n), true
	}
}

// Gauges returns the store's occupancy gauges.
func (p *Pulse) Gauges() map[string]int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return map[string]int64{
		"pulse_series":         int64(len(p.series)),
		"pulse_bytes":          p.bytes,
		"pulse_interval_ms":    int64(p.cfg.Interval / time.Millisecond),
		"pulse_series_dropped": p.droppedN,
	}
}
