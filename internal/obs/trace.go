// Package obs is the zero-dependency observability layer for ppclust:
// a Trace/Span model carried on context.Context, a structured (slog)
// logger factory, and a Prometheus text-format renderer for the metrics
// registry. Traces are in-process span trees keyed by a request ID that
// is minted at the transport edge and propagated across ring forwards
// and client calls via the X-Ppclust-Trace header; each node records its
// own tree for the shared ID, so stitching is a log query away. All Span
// methods are nil-safe: code paths that run without a trace pay one
// context lookup and nothing else.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries the trace ID across
// process boundaries: client → daemon, daemon → ring peer (forwards and
// replica failovers), and back on every response so callers can quote
// the ID when reporting a slow or failed request.
const TraceHeader = "X-Ppclust-Trace"

type ctxKey int

const (
	traceKey ctxKey = iota // *Trace (server side, span recording active)
	spanKey                // *Span (current innermost open span)
	idKey                  // string (client side, pin an outgoing ID only)
)

// NewTraceID mints a 16-hex-character random request ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the platforms we target; a fixed
		// fallback keeps the request path alive if it somehow does.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Trace is one request's span tree on one node. Safe for concurrent use:
// spans may be opened and closed from multiple goroutines (e.g. engine
// stages running while the transport edge still owns the root).
type Trace struct {
	id    string
	start time.Time

	mu   sync.Mutex
	root *Span
}

// Span is a named, timed segment of a trace. The zero of *Span (nil) is
// a valid no-op span, so instrumented code never branches on "is tracing
// enabled".
type Span struct {
	trace    *Trace
	name     string
	start    time.Time
	dur      time.Duration // set by End; 0 while open
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// ValidTraceID reports whether s is acceptable as an adopted trace ID:
// 8–64 characters of [0-9a-zA-Z-]. Anything else (too long, control
// characters, quote/brace injection) is rejected and the edge mints a
// fresh ID instead — adopted IDs land verbatim in log lines and response
// headers, so they must be inert.
func ValidTraceID(s string) bool {
	if len(s) < 8 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-':
		default:
			return false
		}
	}
	return true
}

// StartTrace begins a new trace with the given ID (minting one if the
// given one is empty or invalid) and opens its root span. The returned
// context carries both, so downstream Start calls attach children and
// TraceID resolves the ID.
func StartTrace(ctx context.Context, id, name string) (context.Context, *Span) {
	if !ValidTraceID(id) {
		id = NewTraceID()
	}
	now := time.Now()
	t := &Trace{id: id, start: now}
	root := &Span{trace: t, name: name, start: now}
	t.root = root
	ctx = context.WithValue(ctx, traceKey, t)
	ctx = context.WithValue(ctx, spanKey, root)
	return ctx, root
}

// Start opens a child span of the current span in ctx. When ctx carries
// no trace it returns (ctx, nil); the nil span's methods are no-ops.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	if parent == nil || parent.trace == nil {
		return ctx, nil
	}
	t := parent.trace
	s := &Span{trace: t, name: name, start: time.Now()}
	t.mu.Lock()
	parent.children = append(parent.children, s)
	t.mu.Unlock()
	return context.WithValue(ctx, spanKey, s), s
}

// End closes the span. Closing twice, or closing a nil span, is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	t.mu.Unlock()
}

// Set attaches a key/value annotation (status code, row count, peer ID).
// Nil-safe.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	t.mu.Unlock()
}

// Duration returns the span's recorded duration (0 while open or nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.dur
}

// FromContext returns the active trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// WithTraceID pins an outgoing trace ID on a context without starting
// span recording. Clients (ppclient, pploadgen) use it to choose the ID
// the daemon will adopt, so load reports can quote server-side traces.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, idKey, id)
}

// TraceID resolves the trace ID carried by ctx: an active trace's ID,
// else a pinned outgoing ID, else "".
func TraceID(ctx context.Context) string {
	if t := FromContext(ctx); t != nil {
		return t.id
	}
	id, _ := ctx.Value(idKey).(string)
	return id
}

// ID returns the trace's request ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanNode is the exported (JSON-friendly) form of one span, used by the
// slow-request log and by tests.
type SpanNode struct {
	Name     string      `json:"name"`
	StartUs  int64       `json:"start_us"` // offset from trace start
	DurUs    int64       `json:"dur_us"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree snapshots the span tree. Open spans report their duration so far,
// so a tree dumped mid-flight (e.g. from a streaming handler) is still
// meaningful.
func (t *Trace) Tree() *SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.export(t.root)
}

func (t *Trace) export(s *Span) *SpanNode {
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	n := &SpanNode{
		Name:    s.name,
		StartUs: s.start.Sub(t.start).Microseconds(),
		DurUs:   d.Microseconds(),
		Attrs:   append([]Attr(nil), s.attrs...),
	}
	for _, c := range s.children {
		n.Children = append(n.Children, t.export(c))
	}
	return n
}

// Stage is one entry of a flattened per-stage timeline (job records keep
// these as their persistent trace residue).
type Stage struct {
	Name       string  `json:"stage"`
	DurationMs float64 `json:"duration_ms"`
}

// Stages flattens the tree below the root depth-first into a timeline.
// The root span itself is omitted: its duration is the caller's total.
func (t *Trace) Stages() []Stage {
	tree := t.Tree()
	if tree == nil {
		return nil
	}
	var out []Stage
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		out = append(out, Stage{Name: n.Name, DurationMs: float64(n.DurUs) / 1000})
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range tree.Children {
		walk(c)
	}
	return out
}
