package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"ppclust/internal/metrics"
)

// PromContentType is the content type for the Prometheus text exposition
// format served at GET /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePromText renders the registry's counters and histograms plus a
// flat map of derived gauges (queue depths, ring membership, cache
// occupancy — keys may carry {labels}) as Prometheus text format: one
// `# TYPE` line per metric family, histogram buckets in ascending
// numeric bound order with `+Inf` last, and `_sum`/`_count` series per
// histogram. Families are emitted in sorted name order so scrapes and
// tests are deterministic.
func WritePromText(w io.Writer, reg *metrics.Registry, gauges map[string]int64) error {
	type family struct {
		kind  string   // "counter", "gauge", "histogram"
		lines []string // fully rendered sample lines
	}
	fams := map[string]*family{}
	add := func(base, kind, line string) {
		f := fams[base]
		if f == nil {
			f = &family{kind: kind}
			fams[base] = f
		}
		f.lines = append(f.lines, line)
	}

	if reg != nil {
		for name, v := range reg.CounterViews() {
			base, _ := SplitMetricName(name)
			add(base, "counter", fmt.Sprintf("%s %d", name, v))
		}
		for _, h := range reg.HistogramViews() {
			for _, b := range h.Bucket {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
				}
				labels := fmt.Sprintf("le=%q", le)
				if h.Labels != "" {
					labels = h.Labels + "," + labels
				}
				add(h.Base, "histogram", fmt.Sprintf("%s_bucket{%s} %d", h.Base, labels, b.Count))
			}
			suffix := ""
			if h.Labels != "" {
				suffix = "{" + h.Labels + "}"
			}
			add(h.Base, "histogram", fmt.Sprintf("%s_sum%s %s", h.Base, suffix,
				strconv.FormatFloat(h.Sum, 'g', -1, 64)))
			add(h.Base, "histogram", fmt.Sprintf("%s_count%s %d", h.Base, suffix, h.Count))
		}
	}
	for name, v := range gauges {
		base, _ := SplitMetricName(name)
		// Derived values named *_total are cumulative (jobs_submitted_total,
		// datastore_cache_hits_total); per Prometheus naming conventions
		// they expose as counters even though they arrive via the gauge map.
		kind := "gauge"
		if strings.HasSuffix(base, "_total") {
			kind = "counter"
		}
		add(base, kind, fmt.Sprintf("%s %d", name, v))
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		// Counter sample lines must sort too: the map iteration above is
		// random, and Prometheus requires all series of a family to be
		// contiguous (they are) — sorted lines just keep diffs stable.
		// Histogram lines keep insertion order (numeric bucket order).
		if f.kind != "histogram" {
			sort.Strings(f.lines)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// SplitMetricName separates `base{labels}` into base and the label body
// (without braces); labels is "" for a bare name.
func SplitMetricName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}
