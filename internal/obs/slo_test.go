package obs

// SLO engine unit tests: spec parsing (routes, quantiles, rates,
// rejection of malformed input), the burn-rate budget math, window
// rotation under an injected clock, observed-quantile estimation, the
// gauge surface and worst-first ordering.

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	objs, err := ParseSLO("protect:p99<250ms,err<0.5%; upload:p95<1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("parsed %d objectives, want 3", len(objs))
	}
	lat := objs[0]
	if lat.Route != "protect" || lat.Quantile != 0.99 || lat.ThresholdMs != 250 {
		t.Errorf("latency objective = %+v", lat)
	}
	if lat.Name() != "protect:p99<250ms" || lat.Kind() != "latency" {
		t.Errorf("Name/Kind = %q %q", lat.Name(), lat.Kind())
	}
	if got := lat.Budget(); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("p99 budget = %g, want 0.01", got)
	}
	errObj := objs[1]
	if errObj.Kind() != "error" || math.Abs(errObj.ErrBudget-0.005) > 1e-9 {
		t.Errorf("error objective = %+v", errObj)
	}
	if objs[2].ThresholdMs != 1000 {
		t.Errorf("1s threshold = %g ms", objs[2].ThresholdMs)
	}

	// Bare milliseconds, bare fraction, wildcard route.
	objs, err = ParseSLO("*:p50<5")
	if err != nil || objs[0].Route != "" || objs[0].ThresholdMs != 5 {
		t.Errorf("wildcard route: %+v %v", objs, err)
	}
	objs, err = ParseSLO("err<0.01")
	if err != nil || objs[0].ErrBudget != 0.01 {
		t.Errorf("bare fraction: %+v %v", objs, err)
	}

	for _, bad := range []string{"p99", "p0<10ms", "p100<10ms", "q99<10ms", "err<200%", "err<-1%", "protect:p99<-5ms", "p99<abc"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestObjectiveMatchesAndBad(t *testing.T) {
	o := Objective{Route: "protect", Quantile: 0.99, ThresholdMs: 100}
	if !o.Matches("POST /v1/protect") || !o.Matches("PROTECT") || o.Matches("GET /v1/datasets") {
		t.Error("substring route matching broken")
	}
	if (Objective{}).Matches("anything") != true {
		t.Error("empty route must match all")
	}
	if !o.Bad(101, false) || o.Bad(100, false) || o.Bad(1, true) {
		t.Error("latency Bad: strictly over threshold only")
	}
	e := Objective{ErrBudget: 0.1}
	if !e.Bad(1, true) || e.Bad(10000, false) {
		t.Error("error Bad: errors only")
	}
}

func TestEvalBudget(t *testing.T) {
	if burn, state := EvalBudget(0, 0, 0.01); burn != 0 || state != SLOStateOK {
		t.Errorf("no observations: %g %s", burn, state)
	}
	// 2 bad of 100 at 1% budget: burn 2, breach.
	if burn, state := EvalBudget(100, 2, 0.01); burn != 2 || state != SLOStateBreach {
		t.Errorf("breach case: %g %s", burn, state)
	}
	// Exactly at budget: burn 1, warning (not breach).
	if burn, state := EvalBudget(100, 1, 0.01); burn != 1 || state != SLOStateWarning {
		t.Errorf("at-budget case: %g %s", burn, state)
	}
	if _, state := EvalBudget(1000, 1, 0.01); state != SLOStateOK {
		t.Errorf("well under budget must be ok, got %s", state)
	}
	// Zero budget breaches on the first bad request.
	if burn, state := EvalBudget(10, 1, 0); !math.IsInf(burn, 1) || state != SLOStateBreach {
		t.Errorf("zero budget: %g %s", burn, state)
	}
	if _, state := EvalBudget(10, 0, 0); state != SLOStateOK {
		t.Errorf("zero budget with no bad must be ok, got %s", state)
	}
}

func TestWorseSLOState(t *testing.T) {
	if WorseSLOState(SLOStateOK, SLOStateWarning) != SLOStateWarning ||
		WorseSLOState(SLOStateBreach, SLOStateWarning) != SLOStateBreach ||
		WorseSLOState(SLOStateOK, SLOStateOK) != SLOStateOK {
		t.Error("state ordering broken")
	}
}

// testEngine builds an engine with a controllable clock.
func testEngine(t *testing.T, spec string, window time.Duration) (*SLOEngine, *time.Time) {
	t.Helper()
	objs, err := ParseSLO(spec)
	if err != nil {
		t.Fatal(err)
	}
	e := NewSLOEngine(objs, window)
	now := time.Unix(1_700_000_000, 0)
	e.now = func() time.Time { return now }
	return e, &now
}

func TestSLOEngineEvaluates(t *testing.T) {
	e, _ := testEngine(t, "protect:p99<100ms,err<10%", time.Minute)
	for i := 0; i < 98; i++ {
		e.Observe("POST /v1/protect", 5, false)
	}
	e.Observe("POST /v1/protect", 500, false)  // slow: bad for latency only
	e.Observe("POST /v1/protect", 5, true)     // error: bad for err only
	e.Observe("GET /v1/datasets", 10000, true) // other route: ignored

	sts := e.Statuses()
	if len(sts) != 2 {
		t.Fatalf("got %d statuses, want 2", len(sts))
	}
	lat, errSt := sts[0], sts[1]
	if lat.Requests != 100 || lat.Bad != 1 {
		t.Errorf("latency counts = %d/%d, want 1/100", lat.Bad, lat.Requests)
	}
	// 1 bad of 100 at 1% budget: burn exactly 1 → warning.
	if lat.BurnRate != 1 || lat.State != SLOStateWarning {
		t.Errorf("latency burn/state = %g %s", lat.BurnRate, lat.State)
	}
	if lat.ObservedMs <= 0 {
		t.Errorf("latency observed_ms = %g, want > 0", lat.ObservedMs)
	}
	// 1 error of 100 at 10% budget: burn 0.1 → ok.
	if errSt.Bad != 1 || errSt.State != SLOStateOK {
		t.Errorf("error status = %+v", errSt)
	}
}

func TestSLOEngineWindowExpiry(t *testing.T) {
	e, now := testEngine(t, "err<50%", time.Second)
	e.Observe("x", 1, true)
	if sts := e.Statuses(); sts[0].Requests != 1 || sts[0].State != SLOStateBreach {
		t.Fatalf("fresh observation: %+v", sts[0])
	}
	// Step the clock past the whole window; the observation must age out.
	*now = now.Add(2 * time.Second)
	if sts := e.Statuses(); sts[0].Requests != 0 || sts[0].State != SLOStateOK {
		t.Fatalf("expired window: %+v", sts[0])
	}
	// New observations land in fresh slots (stale epochs are reset).
	e.Observe("x", 1, false)
	e.Observe("x", 1, false)
	if sts := e.Statuses(); sts[0].Requests != 2 || sts[0].Bad != 0 {
		t.Fatalf("post-expiry observation: %+v", sts[0])
	}
}

func TestQuantileFromHist(t *testing.T) {
	var hist [len(sloBoundsMs) + 1]int64
	// 90 obs in the <=10ms bucket (index 3), 10 in the <=250ms bucket.
	hist[3] = 90
	hist[7] = 10
	if got := quantileFromHist(hist[:], 100, 0.5); got != 10 {
		t.Errorf("p50 = %g, want 10", got)
	}
	if got := quantileFromHist(hist[:], 100, 0.99); got != 250 {
		t.Errorf("p99 = %g, want 250", got)
	}
	hist = [len(sloBoundsMs) + 1]int64{}
	hist[len(sloBoundsMs)] = 1 // one +Inf overflow
	if got := quantileFromHist(hist[:], 1, 0.99); !math.IsInf(got, 1) {
		t.Errorf("overflow bucket p99 = %g, want +Inf", got)
	}
}

func TestSLOGauges(t *testing.T) {
	e, _ := testEngine(t, "err<1%", time.Minute)
	for i := 0; i < 10; i++ {
		e.Observe("x", 1, true)
	}
	g := e.Gauges()
	if g[`slo_state{objective="err<1%"}`] != 2 {
		t.Errorf("slo_state = %d, want 2 (breach)", g[`slo_state{objective="err<1%"}`])
	}
	if g["slo_breaching"] != 1 {
		t.Errorf("slo_breaching = %d, want 1", g["slo_breaching"])
	}
	if g[`slo_burn_rate_milli{objective="err<1%"}`] < 1000 {
		t.Errorf("burn milli = %d, want >= 1000", g[`slo_burn_rate_milli{objective="err<1%"}`])
	}
	// Nil engine is a valid no-op surface.
	var nilEngine *SLOEngine
	if nilEngine.Gauges() != nil || nilEngine.Statuses() != nil {
		t.Error("nil engine must report nothing")
	}
	nilEngine.Observe("x", 1, false) // must not panic
}

func TestSortStatuses(t *testing.T) {
	sts := []SLOStatus{
		{Objective: "b", State: SLOStateOK},
		{Objective: "a", State: SLOStateWarning},
		{Objective: "c", State: SLOStateBreach},
	}
	SortStatuses(sts)
	got := []string{sts[0].Objective, sts[1].Objective, sts[2].Objective}
	if strings.Join(got, ",") != "c,a,b" {
		t.Errorf("order = %v, want worst first", got)
	}
}
