package obs

// Stitch unit tests: grafting a forwarded node's tree under the entry
// node's ring.forward span, wall-clock rebasing, the synthetic root for
// unconnected records, cycle safety and input immutability.

import (
	"testing"
	"time"
)

func fwdRecord(node, peer string, start time.Time) TraceRecord {
	return TraceRecord{
		ID: "t1", Node: node, Route: "ring.forward", Start: start, DurMs: 10,
		Spans: &SpanNode{Name: "http", DurUs: 10_000, Children: []*SpanNode{{
			Name:    "ring.forward",
			StartUs: 1_000,
			DurUs:   8_000,
			Attrs:   []Attr{{Key: "peer", Value: peer}},
		}}},
	}
}

func homeRecord(node string, start time.Time) TraceRecord {
	return TraceRecord{
		ID: "t1", Node: node, Route: "POST /v1/protect", Start: start, DurMs: 8,
		Spans: &SpanNode{Name: "http", DurUs: 8_000, Children: []*SpanNode{{
			Name: "engine.normalize", DurUs: 2_000,
		}}},
	}
}

func findSpan(n *SpanNode, name string) *SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if got := findSpan(c, name); got != nil {
			return got
		}
	}
	return nil
}

func TestStitchGraftsForwardedRecord(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	entry := fwdRecord("n1", "n2", base)
	home := homeRecord("n2", base.Add(2*time.Millisecond))
	got := Stitch([]TraceRecord{home, entry}) // order must not matter

	if got == nil || got.Name != "http" {
		t.Fatalf("root = %+v, want the entry node's http span", got)
	}
	fwd := findSpan(got, "ring.forward")
	if fwd == nil {
		t.Fatal("no ring.forward span in stitched tree")
	}
	sub := findSpan(fwd, "engine.normalize")
	if sub == nil {
		t.Fatal("home node's engine span not grafted under ring.forward")
	}
	// The grafted root carries node/route annotations and a rebased clock.
	peerRoot := fwd.Children[len(fwd.Children)-1]
	if attrString(peerRoot, "node") != "n2" || attrString(peerRoot, "route") != "POST /v1/protect" {
		t.Errorf("grafted root attrs = %+v", peerRoot.Attrs)
	}
	if peerRoot.StartUs != 2_000 {
		t.Errorf("grafted root StartUs = %d, want 2000 (wall-clock rebase)", peerRoot.StartUs)
	}
}

func TestStitchInputsNotMutated(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	entry := fwdRecord("n1", "n2", base)
	home := homeRecord("n2", base.Add(time.Millisecond))
	Stitch([]TraceRecord{entry, home})
	if len(entry.Spans.Children[0].Children) != 0 {
		t.Error("stitching mutated the entry record's span tree")
	}
	if home.Spans.StartUs != 0 || len(home.Spans.Attrs) != 0 {
		t.Error("stitching mutated the home record's span tree")
	}
}

func TestStitchSyntheticRootForUnconnectedRecords(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	a := homeRecord("n1", base)
	b := homeRecord("n2", base.Add(time.Millisecond))
	got := Stitch([]TraceRecord{a, b})
	if got == nil || got.Name != "trace" || len(got.Children) != 2 {
		t.Fatalf("unconnected records: %+v, want synthetic 2-child root", got)
	}
	if got.DurUs < got.Children[1].StartUs+got.Children[1].DurUs {
		t.Error("synthetic root duration must span its children")
	}
}

func TestStitchForwardCycleTerminates(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	a := fwdRecord("n1", "n2", base)
	b := fwdRecord("n2", "n1", base.Add(time.Millisecond))
	got := Stitch([]TraceRecord{a, b}) // must terminate, not recurse forever
	if got == nil {
		t.Fatal("cycle stitched to nil")
	}
	if findSpan(got, "ring.forward") == nil {
		t.Fatal("cycle lost its spans")
	}
}

func TestStitchDegenerateInputs(t *testing.T) {
	if Stitch(nil) != nil {
		t.Error("no records must stitch to nil")
	}
	if Stitch([]TraceRecord{{ID: "x"}}) != nil {
		t.Error("records without spans must stitch to nil")
	}
	one := homeRecord("n1", time.Unix(1_700_000_000, 0))
	got := Stitch([]TraceRecord{one})
	if got == nil || got.Name != "http" || attrString(got, "node") != "n1" {
		t.Errorf("single record = %+v, want its annotated root", got)
	}
}
