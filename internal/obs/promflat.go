package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"ppclust/internal/metrics"
)

// WritePromFlat renders a flat name → int64 map (such as the merged
// cluster snapshot from metrics.MergeSnapshots) as Prometheus text
// format. Unlike WritePromText it has no live registry to consult, so
// histogram families are reconstructed from the flat keys: `*_bucket`
// series with an `le` label are regrouped per label set, ordered by
// numeric bound with `+Inf` last, and reunited with their `_count` and
// `_sum` series. `*_total` series render as counters, the rest as
// gauges. Families are emitted in sorted name order.
func WritePromFlat(w io.Writer, flat map[string]int64) error {
	fams := map[string]bool{}
	for name := range flat {
		base, labels := metrics.SplitName(name)
		if strings.HasSuffix(base, "_bucket") {
			if _, _, ok := metrics.LabelValue(labels, "le"); ok {
				fams[strings.TrimSuffix(base, "_bucket")] = true
			}
		}
	}

	type bucket struct {
		le    float64
		count int64
	}
	type histSeries struct {
		labels  string // label body without le
		buckets []bucket
		count   int64
		sum     int64
	}
	type family struct {
		kind  string
		lines []string               // non-histogram sample lines
		hist  map[string]*histSeries // histogram label set → series
	}
	get := func(byName map[string]*family, base, kind string) *family {
		f := byName[base]
		if f == nil {
			f = &family{kind: kind}
			if kind == "histogram" {
				f.hist = map[string]*histSeries{}
			}
			byName[base] = f
		}
		return f
	}
	series := func(f *family, labels string) *histSeries {
		s := f.hist[labels]
		if s == nil {
			s = &histSeries{labels: labels}
			f.hist[labels] = s
		}
		return s
	}

	byName := map[string]*family{}
	for name, v := range flat {
		base, labels := metrics.SplitName(name)
		switch {
		case strings.HasSuffix(base, "_bucket") && fams[strings.TrimSuffix(base, "_bucket")]:
			fam := strings.TrimSuffix(base, "_bucket")
			le, rest, ok := metrics.LabelValue(labels, "le")
			if !ok {
				continue
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				if b, err := strconv.ParseFloat(le, 64); err == nil {
					bound = b
				}
			}
			s := series(get(byName, fam, "histogram"), rest)
			s.buckets = append(s.buckets, bucket{le: bound, count: v})
		case strings.HasSuffix(base, "_count") && fams[strings.TrimSuffix(base, "_count")]:
			series(get(byName, strings.TrimSuffix(base, "_count"), "histogram"), labels).count = v
		case strings.HasSuffix(base, "_sum") && fams[strings.TrimSuffix(base, "_sum")]:
			series(get(byName, strings.TrimSuffix(base, "_sum"), "histogram"), labels).sum = v
		case strings.HasSuffix(base, "_total"):
			f := get(byName, base, "counter")
			f.lines = append(f.lines, fmt.Sprintf("%s %d", name, v))
		default:
			f := get(byName, base, "gauge")
			f.lines = append(f.lines, fmt.Sprintf("%s %d", name, v))
		}
	}

	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := byName[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		if f.kind != "histogram" {
			sort.Strings(f.lines)
			for _, line := range f.lines {
				if _, err := io.WriteString(w, line+"\n"); err != nil {
					return err
				}
			}
			continue
		}
		keys := make([]string, 0, len(f.hist))
		for k := range f.hist {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.hist[k]
			sort.Slice(s.buckets, func(i, j int) bool { return s.buckets[i].le < s.buckets[j].le })
			for _, b := range s.buckets {
				le := "+Inf"
				if !math.IsInf(b.le, 1) {
					le = strconv.FormatFloat(b.le, 'g', -1, 64)
				}
				labels := fmt.Sprintf("le=%q", le)
				if s.labels != "" {
					labels = s.labels + "," + labels
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, labels, b.count); err != nil {
					return err
				}
			}
			suffix := ""
			if s.labels != "" {
				suffix = "{" + s.labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
				name, suffix, s.sum, name, suffix, s.count); err != nil {
				return err
			}
		}
	}
	return nil
}
