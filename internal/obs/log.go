package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a JSON slog logger writing to w at the given level,
// with any extra attrs (typically node="<ring node ID>") attached to
// every record. This is the one place the daemon's log shape is decided.
func NewLogger(w io.Writer, level slog.Level, attrs ...slog.Attr) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	if len(attrs) > 0 {
		return slog.New(h.WithAttrs(attrs))
	}
	return slog.New(h)
}

// LogAttrs returns the standard per-request trace attribute for ctx, or
// nothing when untraced, so call sites stay one-liners:
//
//	logger.Info("...", obs.LogAttrs(ctx)...)
func LogAttrs(ctx context.Context) []any {
	if id := TraceID(ctx); id != "" {
		return []any{slog.String("trace", id)}
	}
	return nil
}
