package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppclust/internal/metrics"
)

// Flight recorder: when an alert fires, capture the evidence an
// operator would otherwise have lost by the time they look — a CPU
// profile of the next second, the goroutine and heap state, the trace
// IDs of the window's slowest and error requests, and the metrics
// history around the breach — into one bounded on-disk incident bundle.
//
// A bundle is a directory under the incident dir:
//
//	<id>/meta.json        rule, series, value, trace IDs, file list
//	<id>/goroutines.txt   full goroutine dump (pprof debug=2)
//	<id>/heap.pprof       heap profile
//	<id>/cpu.pprof        CPU profile over CPUProfile (when available)
//	<id>/traces.json      the retained slowest/error trace records
//	<id>/history.json     pulse excerpt for the alert's series
//
// meta.json is written last, so a listing never shows a half-captured
// bundle. Captures are serialized (one at a time, overlap skipped and
// counted) and debounced per rule; retention deletes the oldest bundles
// past MaxIncidents.

// RecorderConfig bounds the flight recorder.
type RecorderConfig struct {
	// Dir is the incident directory, created if missing.
	Dir string
	// Node labels bundles with this node's identity.
	Node string
	// MaxIncidents caps retained bundles (0: 16).
	MaxIncidents int
	// CPUProfile is the CPU capture duration (0: 1s; negative: no CPU
	// profile).
	CPUProfile time.Duration
	// HistoryWindow is how far back the metrics-history excerpt reaches
	// (0: 10m).
	HistoryWindow time.Duration
	// TraceCount caps the trace records quoted in the bundle (0: 10).
	TraceCount int
	// Now overrides the clock (tests).
	Now func() time.Time
}

// IncidentMeta is one bundle's manifest — the GET /v1/incidents listing
// entry and the bundle's own meta.json.
type IncidentMeta struct {
	ID        string    `json:"id"`
	Rule      string    `json:"rule"`
	Kind      string    `json:"kind,omitempty"`
	Series    string    `json:"series,omitempty"`
	Node      string    `json:"node,omitempty"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	At        time.Time `json:"at"`
	TraceIDs  []string  `json:"trace_ids,omitempty"`
	Files     []string  `json:"files"`
	Notes     []string  `json:"notes,omitempty"`
}

// Recorder captures incident bundles. Construct with NewRecorder; feed
// it alert events via OnEvent (typically as part of the alert engine's
// notify fan-out).
type Recorder struct {
	cfg    RecorderConfig
	traces *TraceStore
	pulse  *Pulse

	captures *metrics.Counter
	skipped  *metrics.Counter

	mu   sync.Mutex
	seq  atomic.Int64
	busy atomic.Bool
	wg   sync.WaitGroup
}

// NewRecorder builds a recorder writing bundles under cfg.Dir, reading
// evidence from traces and pulse (either may be nil), registering its
// counters on reg (nil: counters kept private).
func NewRecorder(cfg RecorderConfig, traces *TraceStore, pulse *Pulse, reg *metrics.Registry) (*Recorder, error) {
	if cfg.MaxIncidents <= 0 {
		cfg.MaxIncidents = 16
	}
	if cfg.CPUProfile == 0 {
		cfg.CPUProfile = time.Second
	}
	if cfg.HistoryWindow <= 0 {
		cfg.HistoryWindow = 10 * time.Minute
	}
	if cfg.TraceCount <= 0 {
		cfg.TraceCount = 10
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if err := os.MkdirAll(cfg.Dir, 0o700); err != nil {
		return nil, fmt.Errorf("incident dir: %w", err)
	}
	return &Recorder{
		cfg:      cfg,
		traces:   traces,
		pulse:    pulse,
		captures: reg.Counter("incidents_captured_total"),
		skipped:  reg.Counter("incidents_skipped_total"),
	}, nil
}

// SetPulse wires the metrics-history source after construction — the
// daemon builds the recorder before the pulse store exists (the
// recorder's counters live on the same registry the pulse samples).
// Must be called before any capture can run.
func (r *Recorder) SetPulse(p *Pulse) {
	if r != nil {
		r.pulse = p
	}
}

// OnEvent captures a bundle for a firing alert, asynchronously. The
// alert engine's per-rule notification debounce is the capture
// debounce: every event that reaches the sink is capture-worthy.
// Overlapping captures are skipped (counted) — a CPU profile cannot be
// taken twice at once, and a storm of simultaneous firings describes
// one incident.
func (r *Recorder) OnEvent(ev AlertEvent) {
	if r == nil || ev.State != AlertFiring {
		return
	}
	if !r.busy.CompareAndSwap(false, true) {
		r.skipped.Inc()
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.busy.Store(false)
		r.Capture(ev)
	}()
}

// Wait blocks until in-flight captures finish — shutdown and tests.
func (r *Recorder) Wait() {
	if r != nil {
		r.wg.Wait()
	}
}

// Capture synchronously writes one bundle and returns its meta.
func (r *Recorder) Capture(ev AlertEvent) IncidentMeta {
	now := r.cfg.Now()
	id := fmt.Sprintf("%s-%03d-%s", now.UTC().Format("20060102T150405"), r.seq.Add(1)%1000, slugify(ev.Rule))
	dir := filepath.Join(r.cfg.Dir, id)
	meta := IncidentMeta{
		ID: id, Rule: ev.Rule, Kind: ev.Kind, Series: ev.Series,
		Node: r.cfg.Node, Value: ev.Value, Threshold: ev.Threshold, At: now,
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		meta.Notes = append(meta.Notes, "mkdir: "+err.Error())
		return meta
	}
	writeFile := func(name string, write func(*os.File) error) {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
		if err != nil {
			meta.Notes = append(meta.Notes, name+": "+err.Error())
			return
		}
		werr := write(f)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			meta.Notes = append(meta.Notes, name+": "+werr.Error())
			os.Remove(filepath.Join(dir, name))
			return
		}
		meta.Files = append(meta.Files, name)
	}

	writeFile("goroutines.txt", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 2)
	})
	writeFile("heap.pprof", func(f *os.File) error {
		return pprof.Lookup("heap").WriteTo(f, 0)
	})
	if r.cfg.CPUProfile > 0 {
		writeFile("cpu.pprof", func(f *os.File) error {
			// StartCPUProfile fails when profiling is already active
			// (another subsystem, or -pprof-addr's /debug/pprof/profile);
			// the note records the gap instead of failing the bundle.
			if err := pprof.StartCPUProfile(f); err != nil {
				return err
			}
			time.Sleep(r.cfg.CPUProfile)
			pprof.StopCPUProfile()
			return nil
		})
	}
	if r.traces != nil {
		recs := worstTraces(r.traces, r.cfg.TraceCount)
		if len(recs) > 0 {
			for _, rec := range recs {
				meta.TraceIDs = append(meta.TraceIDs, rec.ID)
			}
			writeFile("traces.json", func(f *os.File) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(recs)
			})
		}
	}
	if r.pulse != nil {
		var filters []string
		if ev.Series != "" {
			filters = append(filters, ev.Series)
		}
		series, _ := r.pulse.Query(HistoryQuery{
			Series: filters,
			Since:  now.Add(-r.cfg.HistoryWindow),
		})
		if len(series) > 0 {
			writeFile("history.json", func(f *os.File) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(map[string]any{"series": series})
			})
		}
	}
	// meta.json last: its presence is what marks the bundle complete. It
	// lists itself so Files is the full downloadable set, which is why it
	// bypasses writeFile (whose on-success append would double the entry).
	meta.Files = append(meta.Files, "meta.json")
	if raw, err := json.MarshalIndent(meta, "", "  "); err != nil {
		meta.Notes = append(meta.Notes, "meta.json: "+err.Error())
	} else if err := os.WriteFile(filepath.Join(dir, "meta.json"), append(raw, '\n'), 0o600); err != nil {
		meta.Notes = append(meta.Notes, "meta.json: "+err.Error())
	}
	r.captures.Inc()
	r.enforceRetention()
	return meta
}

// worstTraces returns the store's error traces first, then the slowest,
// capped at n — the request-level evidence for the breach window.
func worstTraces(store *TraceStore, n int) []TraceRecord {
	recs := store.Query(TraceQuery{Limit: 20 * n})
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Error != recs[j].Error {
			return recs[i].Error
		}
		return recs[i].DurMs > recs[j].DurMs
	})
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// enforceRetention deletes the oldest complete bundles past the cap.
// Bundle IDs start with a UTC timestamp, so name order is age order.
func (r *Recorder) enforceRetention() {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := r.bundleIDs()
	for len(ids) > r.cfg.MaxIncidents {
		os.RemoveAll(filepath.Join(r.cfg.Dir, ids[0]))
		ids = ids[1:]
	}
}

// bundleIDs lists complete bundles (meta.json present), oldest first.
func (r *Recorder) bundleIDs() []string {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.cfg.Dir, e.Name(), "meta.json")); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids
}

// List returns every complete bundle's meta, newest first.
func (r *Recorder) List() []IncidentMeta {
	if r == nil {
		return nil
	}
	ids := r.bundleIDs()
	out := make([]IncidentMeta, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if meta, err := r.Get(ids[i]); err == nil {
			out = append(out, meta)
		}
	}
	return out
}

// Get reads one bundle's meta.
func (r *Recorder) Get(id string) (IncidentMeta, error) {
	if err := validBundlePart(id); err != nil {
		return IncidentMeta{}, err
	}
	raw, err := os.ReadFile(filepath.Join(r.cfg.Dir, id, "meta.json"))
	if err != nil {
		return IncidentMeta{}, err
	}
	var meta IncidentMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return IncidentMeta{}, err
	}
	return meta, nil
}

// ReadFile returns one bundle file's raw bytes.
func (r *Recorder) ReadFile(id, name string) ([]byte, error) {
	if err := validBundlePart(id); err != nil {
		return nil, err
	}
	if err := validBundlePart(name); err != nil {
		return nil, err
	}
	return os.ReadFile(filepath.Join(r.cfg.Dir, id, name))
}

// validBundlePart rejects path elements that could escape the incident
// dir.
func validBundlePart(s string) error {
	if s == "" || s == "." || s == ".." ||
		strings.ContainsAny(s, "/\\") || strings.Contains(s, "..") {
		return fmt.Errorf("bad incident path element %q", s)
	}
	return nil
}

// slugify reduces a rule name to a filesystem-safe suffix.
func slugify(s string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return strings.Trim(b.String(), "-")
}
