package obs

import (
	"strings"
	"testing"
	"time"

	"ppclust/internal/metrics"
)

func TestParseAlertRule(t *testing.T) {
	r, err := ParseAlertRule("ring_replication_pending>100 for 30s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Series != "ring_replication_pending" || r.Op != ">" || r.Threshold != 100 || r.For != 30*time.Second {
		t.Fatalf("parsed: %+v", r)
	}
	r, err = ParseAlertRule("  free_bytes < 1.5  ")
	if err != nil {
		t.Fatal(err)
	}
	if r.Series != "free_bytes" || r.Op != "<" || r.Threshold != 1.5 || r.For != 0 {
		t.Fatalf("parsed: %+v", r)
	}
}

func TestParseAlertRuleErrorsNameOffendingToken(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"no_operator_here", "no comparison operator"},
		{">5", `missing series name before ">"`},
		{"x>", `missing threshold after ">"`},
		{"x>abc", `bad threshold "abc"`},
		{"x>5 whenever 3s", `unexpected token "whenever"`},
		{"x>5 for", "missing duration after 'for'"},
		{"x>5 for quickly", `bad duration "quickly"`},
		{"x>5 for 3s extra", `unexpected token "extra"`},
	}
	for _, c := range cases {
		_, err := ParseAlertRule(c.expr)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err=%v, want mention of %q", c.expr, err, c.want)
		}
	}
	if _, err := ParseAlertRules("a>1; x>5 for quickly"); err == nil || !strings.Contains(err.Error(), "quickly") {
		t.Fatalf("list parse: err=%v", err)
	}
	rules, err := ParseAlertRules("a>1 ; ; b<2 for 5s")
	if err != nil || len(rules) != 2 {
		t.Fatalf("list parse: %v %v", rules, err)
	}
}

type alertHarness struct {
	clk    *pulseClock
	eng    *AlertEngine
	events []AlertEvent
}

func newAlertHarness(t *testing.T, cfg AlertEngineConfig, reg *metrics.Registry) *alertHarness {
	t.Helper()
	h := &alertHarness{clk: newPulseClock()}
	cfg.Now = h.clk.now
	cfg.Notify = func(ev AlertEvent) { h.events = append(h.events, ev) }
	h.eng = NewAlertEngine(cfg, reg)
	return h
}

func (h *alertHarness) tick(values map[string]float64) {
	h.eng.Eval(h.clk.now(), values)
	h.clk.advance(time.Second)
}

func stateOf(t *testing.T, eng *AlertEngine, rule string) string {
	t.Helper()
	for _, a := range eng.Alerts() {
		if a.Rule == rule {
			return a.State
		}
	}
	return ""
}

func TestAlertLifecycle(t *testing.T) {
	rule, _ := ParseAlertRule("depth>10 for 2s")
	reg := metrics.NewRegistry()
	h := newAlertHarness(t, AlertEngineConfig{Rules: []AlertRule{rule}, Node: "n1"}, reg)

	h.tick(map[string]float64{"depth": 5})
	if got := stateOf(t, h.eng, rule.Expr); got != "" {
		t.Fatalf("below threshold: state %q", got)
	}
	h.tick(map[string]float64{"depth": 20}) // breach starts: pending
	if got := stateOf(t, h.eng, rule.Expr); got != AlertPending {
		t.Fatalf("first breach: state %q, want pending", got)
	}
	h.tick(map[string]float64{"depth": 21}) // 1s held < 2s: still pending
	if got := stateOf(t, h.eng, rule.Expr); got != AlertPending {
		t.Fatalf("held 1s: state %q, want pending", got)
	}
	h.tick(map[string]float64{"depth": 22}) // 2s held: fires
	if got := stateOf(t, h.eng, rule.Expr); got != AlertFiring {
		t.Fatalf("held 2s: state %q, want firing", got)
	}
	if len(h.events) != 1 || h.events[0].State != AlertFiring || h.events[0].Node != "n1" {
		t.Fatalf("firing events: %+v", h.events)
	}
	if reg.Snapshot()["alerts_fired_total"] != 1 {
		t.Fatalf("fired counter: %v", reg.Snapshot())
	}
	h.tick(map[string]float64{"depth": 3}) // back under: resolved
	if got := stateOf(t, h.eng, rule.Expr); got != AlertResolved {
		t.Fatalf("recovered: state %q, want resolved", got)
	}
	if len(h.events) != 2 || h.events[1].State != AlertResolved {
		t.Fatalf("resolve events: %+v", h.events)
	}
	g := h.eng.Gauges()
	if g["alerts_firing"] != 0 || g["alerts_pending"] != 0 {
		t.Fatalf("gauges after resolve: %v", g)
	}
}

func TestAlertZeroHoldStillObservablyPending(t *testing.T) {
	rule, _ := ParseAlertRule("depth>10")
	h := newAlertHarness(t, AlertEngineConfig{Rules: []AlertRule{rule}}, nil)
	h.tick(map[string]float64{"depth": 20})
	if got := stateOf(t, h.eng, rule.Expr); got != AlertPending {
		t.Fatalf("single spike fired immediately: state %q", got)
	}
	h.tick(map[string]float64{"depth": 20})
	if got := stateOf(t, h.eng, rule.Expr); got != AlertFiring {
		t.Fatalf("second consecutive breach: state %q, want firing", got)
	}
}

func TestAlertPendingDropsSilently(t *testing.T) {
	rule, _ := ParseAlertRule("depth>10 for 30s")
	h := newAlertHarness(t, AlertEngineConfig{Rules: []AlertRule{rule}}, nil)
	h.tick(map[string]float64{"depth": 20})
	h.tick(map[string]float64{"depth": 5}) // recovered before firing
	if got := stateOf(t, h.eng, rule.Expr); got != "" {
		t.Fatalf("pending survived recovery: %q", got)
	}
	if len(h.events) != 0 {
		t.Fatalf("pending-only cycle notified: %+v", h.events)
	}
}

func TestAlertDebounce(t *testing.T) {
	rule, _ := ParseAlertRule("depth>10")
	h := newAlertHarness(t, AlertEngineConfig{
		Rules:    []AlertRule{rule},
		Debounce: time.Minute,
	}, nil)
	flap := func() {
		h.tick(map[string]float64{"depth": 20})
		h.tick(map[string]float64{"depth": 20}) // fires
		h.tick(map[string]float64{"depth": 1})  // resolves
	}
	flap()
	if len(h.events) != 2 { // firing + resolved
		t.Fatalf("first cycle events: %+v", h.events)
	}
	flap() // 3s later: inside the 1m debounce — no notifications at all
	if len(h.events) != 2 {
		t.Fatalf("debounced cycle still notified: %+v", h.events)
	}
	// The re-fire itself is visible in listings even though not notified.
	h.tick(map[string]float64{"depth": 20})
	h.tick(map[string]float64{"depth": 20})
	if got := stateOf(t, h.eng, rule.Expr); got != AlertFiring {
		t.Fatalf("debounced alert not listed as firing: %q", got)
	}
	for h.clk.now().Sub(time.Unix(1_700_000_000, 0)) < 2*time.Minute {
		h.tick(map[string]float64{"depth": 1})
		h.tick(map[string]float64{"depth": 20})
		h.tick(map[string]float64{"depth": 20})
	}
	if len(h.events) <= 2 {
		t.Fatalf("debounce never expired: %+v", h.events)
	}
}

func TestAlertSubstringFanOut(t *testing.T) {
	rule, _ := ParseAlertRule("duration_us_p99>1000")
	h := newAlertHarness(t, AlertEngineConfig{Rules: []AlertRule{rule}}, nil)
	vals := map[string]float64{
		`http_request_duration_us_p99{route="a"}`: 5000,
		`http_request_duration_us_p99{route="b"}`: 10,
		`unrelated_gauge`:                         99999,
	}
	h.tick(vals)
	h.tick(vals)
	alerts := h.eng.Alerts()
	if len(alerts) != 1 || alerts[0].Series != `http_request_duration_us_p99{route="a"}` || alerts[0].State != AlertFiring {
		t.Fatalf("fan-out alerts: %+v", alerts)
	}
}

func TestAlertVanishedSeriesResolves(t *testing.T) {
	rule, _ := ParseAlertRule("depth>10")
	h := newAlertHarness(t, AlertEngineConfig{Rules: []AlertRule{rule}}, nil)
	h.tick(map[string]float64{`depth{q="a"}`: 20})
	h.tick(map[string]float64{`depth{q="a"}`: 20}) // fires
	h.tick(map[string]float64{})                   // series gone entirely
	alerts := h.eng.Alerts()
	if len(alerts) != 1 || alerts[0].State != AlertResolved {
		t.Fatalf("vanished series: %+v", alerts)
	}
	if h.events[len(h.events)-1].State != AlertResolved {
		t.Fatalf("no resolve event for vanished series: %+v", h.events)
	}
}

func TestAlertSLORule(t *testing.T) {
	objs, err := ParseSLO("protect:p99<1ms,err<50%")
	if err != nil {
		t.Fatal(err)
	}
	slo := NewSLOEngine(objs, 0)
	h := newAlertHarness(t, AlertEngineConfig{
		SLO:    slo,
		SLOFor: time.Second,
	}, nil)
	for i := 0; i < 200; i++ {
		slo.Observe("POST /v1/protect", 50, false) // 50ms >> 1ms: all bad
	}
	h.tick(nil)
	h.tick(nil)
	h.tick(nil)
	alerts := h.eng.Alerts()
	if len(alerts) != 1 || alerts[0].Kind != "slo" || alerts[0].State != AlertFiring {
		t.Fatalf("slo alert: %+v", alerts)
	}
	if !strings.HasPrefix(alerts[0].Rule, "slo:") {
		t.Fatalf("slo rule name: %+v", alerts[0])
	}
	if len(h.events) != 1 || h.events[0].Kind != "slo" {
		t.Fatalf("slo events: %+v", h.events)
	}
}

func TestAlertEngineNilSafe(t *testing.T) {
	var e *AlertEngine
	e.Eval(time.Now(), nil)
	if e.Alerts() != nil || e.Gauges() != nil {
		t.Fatal("nil engine leaked state")
	}
}
