package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"ppclust/internal/metrics"
)

// WebhookConfig bounds the webhook sink's delivery behavior.
type WebhookConfig struct {
	// URL receives each alert event as a JSON POST.
	URL string
	// Attempts caps deliveries per event, first try included (0: 5).
	Attempts int
	// BaseBackoff is the first retry delay; it doubles per attempt (0:
	// 500ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (0: 30s).
	MaxBackoff time.Duration
	// Timeout bounds one HTTP attempt (0: 5s).
	Timeout time.Duration
	// QueueSize bounds buffered undelivered events; a full queue drops
	// new events, counted, rather than blocking the alert engine (0: 64).
	QueueSize int
}

// WebhookSink delivers alert events to an HTTP endpoint from a single
// worker goroutine, with capped exponential backoff per event. Notify
// never blocks the caller.
type WebhookSink struct {
	cfg    WebhookConfig
	client *http.Client

	sent     *metrics.Counter
	failed   *metrics.Counter
	droppedC *metrics.Counter

	events   chan AlertEvent
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewWebhookSink builds and starts a sink posting to cfg.URL,
// registering its counters on reg (nil: counters kept private).
func NewWebhookSink(cfg WebhookConfig, reg *metrics.Registry) *WebhookSink {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &WebhookSink{
		cfg:      cfg,
		client:   &http.Client{Timeout: cfg.Timeout},
		sent:     reg.Counter("alerts_webhook_sent_total"),
		failed:   reg.Counter("alerts_webhook_failed_total"),
		droppedC: reg.Counter("alerts_webhook_dropped_total"),
		events:   make(chan AlertEvent, cfg.QueueSize),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.worker()
	return s
}

// Notify queues one event for delivery, dropping (counted) when the
// queue is full.
func (s *WebhookSink) Notify(ev AlertEvent) {
	if s == nil {
		return
	}
	select {
	case s.events <- ev:
	default:
		s.droppedC.Inc()
	}
}

// Close stops the worker after draining queued events (each still
// bounded by its own attempts/backoff).
func (s *WebhookSink) Close() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *WebhookSink) worker() {
	defer close(s.done)
	for {
		select {
		case ev := <-s.events:
			s.deliver(ev)
		case <-s.stop:
			for {
				select {
				case ev := <-s.events:
					s.deliver(ev)
				default:
					return
				}
			}
		}
	}
}

// deliver posts one event, retrying transport errors and 5xx responses
// with capped exponential backoff. 4xx responses are not retried — the
// receiver rejected the payload, and replaying it cannot help.
func (s *WebhookSink) deliver(ev AlertEvent) {
	raw, err := json.Marshal(ev)
	if err != nil {
		s.failed.Inc()
		return
	}
	backoff := s.cfg.BaseBackoff
	for attempt := 0; attempt < s.cfg.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-s.stop:
				// Shutting down: one last immediate try below.
			}
			backoff = min(backoff*2, s.cfg.MaxBackoff)
		}
		switch s.post(raw) {
		case postDelivered:
			s.sent.Inc()
			return
		case postRejected:
			s.failed.Inc()
			return
		}
	}
	s.failed.Inc()
}

const (
	postDelivered = iota
	postRejected
	postRetry
)

func (s *WebhookSink) post(raw []byte) int {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.cfg.URL, bytes.NewReader(raw))
	if err != nil {
		return postRejected
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return postRetry
	}
	resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		return postDelivered
	case resp.StatusCode < 500:
		return postRejected
	default:
		return postRetry
	}
}
