package obs

import (
	"fmt"
	"math"
	"testing"
	"time"

	"ppclust/internal/metrics"
)

// pulseClock is a manual clock for deterministic sampling.
type pulseClock struct{ t time.Time }

func newPulseClock() *pulseClock {
	return &pulseClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *pulseClock) now() time.Time          { return c.t }
func (c *pulseClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testPulse(t *testing.T, src func() map[string]int64) (*Pulse, *pulseClock) {
	t.Helper()
	clk := newPulseClock()
	p := NewPulse(PulseConfig{
		Interval:  time.Second,
		Retention: 10 * time.Second,
		Now:       clk.now,
	}, src, nil)
	return p, clk
}

func TestPulseCounterRate(t *testing.T) {
	var total int64
	p, clk := testPulse(t, func() map[string]int64 {
		return map[string]int64{`requests_total{route="a"}`: total}
	})
	total = 10
	p.SampleNow() // first sample: no previous snapshot, no rate yet
	clk.advance(2 * time.Second)
	total = 30
	p.SampleNow()
	vals := p.Latest(nil)
	got, ok := vals[`requests:rate{route="a"}`]
	if !ok || math.Abs(got-10) > 1e-9 { // (30-10)/2s
		t.Fatalf("counter rate: got %v (vals %v), want 10", got, vals)
	}
}

func TestPulseCounterResetRatesFromZero(t *testing.T) {
	var total int64 = 100
	p, clk := testPulse(t, func() map[string]int64 {
		return map[string]int64{"ops_total": total}
	})
	p.SampleNow()
	clk.advance(time.Second)
	total = 5 // process restarted: counter went backwards
	p.SampleNow()
	if got := p.Latest(nil)["ops:rate"]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("reset rate: got %v, want 5", got)
	}
}

func TestPulseHistogramPercentilesPerStep(t *testing.T) {
	snap := map[string]int64{}
	p, clk := testPulse(t, func() map[string]int64 {
		out := make(map[string]int64, len(snap))
		for k, v := range snap {
			out[k] = v
		}
		return out
	})
	set := func(le string, n int64) {
		snap[fmt.Sprintf(`lat_bucket{route="a",le="%s"}`, le)] = n
	}
	// First window: 100 observations uniform under 10.
	set("5", 50)
	set("10", 100)
	set("+Inf", 100)
	snap[`lat_count{route="a"}`] = 100
	snap[`lat_sum{route="a"}`] = 500
	p.SampleNow()
	clk.advance(time.Second)
	// Second window adds 100 observations, all in (5, 10]: the cumulative
	// p50 would stay near 5, but the step's own p50 must be in (5, 10].
	set("5", 50)
	set("10", 200)
	set("+Inf", 200)
	p.SampleNow()
	vals := p.Latest(nil)
	p50, ok := vals[`lat_p50{route="a"}`]
	if !ok || p50 <= 5 || p50 > 10 {
		t.Fatalf("step p50: got %v (ok=%v), want in (5,10]; vals %v", p50, ok, vals)
	}
	if rate := vals[`lat:rate{route="a"}`]; math.Abs(rate-100) > 1e-9 {
		t.Fatalf("observation rate: got %v, want 100", rate)
	}
	// Raw histogram components must not leak into the store as gauges.
	for name := range vals {
		switch name {
		case `lat_bucket{route="a",le="5"}`, `lat_count{route="a"}`, `lat_sum{route="a"}`:
			t.Fatalf("raw histogram series %q retained", name)
		}
	}
}

func TestPulseGaugeStoredAsIs(t *testing.T) {
	p, _ := testPulse(t, func() map[string]int64 {
		return map[string]int64{"queue_depth": 7}
	})
	p.SampleNow()
	if got := p.Latest(nil)["queue_depth"]; got != 7 {
		t.Fatalf("gauge: got %v, want 7", got)
	}
}

func TestPulseQueryFilterSinceAndOrder(t *testing.T) {
	var depth int64
	p, clk := testPulse(t, func() map[string]int64 {
		return map[string]int64{"queue_depth": depth, "other_gauge": 1}
	})
	var mid time.Time
	for i := 0; i < 6; i++ {
		depth = int64(i)
		if i == 3 {
			mid = clk.now()
		}
		p.SampleNow()
		clk.advance(time.Second)
	}
	series, truncated := p.Query(HistoryQuery{Series: []string{"QUEUE"}, Since: mid})
	if truncated || len(series) != 1 || series[0].Name != "queue_depth" {
		t.Fatalf("filtered query: %+v truncated=%v", series, truncated)
	}
	pts := series[0].Points
	if len(pts) != 3 {
		t.Fatalf("since cut: got %d points, want 3: %+v", len(pts), pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TMs <= pts[i-1].TMs {
			t.Fatalf("points not oldest-first: %+v", pts)
		}
	}
	if pts[0].V != 3 || pts[2].V != 5 {
		t.Fatalf("since window values: %+v", pts)
	}
}

func TestPulseQueryDownsamples(t *testing.T) {
	var depth int64
	p, clk := testPulse(t, func() map[string]int64 {
		return map[string]int64{"queue_depth": depth}
	})
	for i := 1; i <= 6; i++ {
		depth = int64(i)
		p.SampleNow()
		clk.advance(time.Second)
	}
	series, _ := p.Query(HistoryQuery{Step: 3 * time.Second, Agg: "max"})
	if len(series) != 1 {
		t.Fatalf("series: %+v", series)
	}
	pts := series[0].Points
	if len(pts) < 2 || len(pts) > 3 {
		t.Fatalf("downsample: got %d points, want 2-3: %+v", len(pts), pts)
	}
	last := pts[len(pts)-1]
	if last.V != 6 {
		t.Fatalf("max agg of last group: got %v, want 6: %+v", last, pts)
	}
	avg, _ := p.Query(HistoryQuery{Step: 6 * time.Second, Agg: "avg"})
	total := 0.0
	n := 0.0
	for _, pt := range avg[0].Points {
		total += pt.V
		n++
	}
	if math.Abs(total/n-3.5) > 1.0 { // mean of 1..6 = 3.5, grouping may split
		t.Fatalf("avg agg drifted: %+v", avg[0].Points)
	}
}

func TestPulseRetentionWraps(t *testing.T) {
	var depth int64
	p, clk := testPulse(t, func() map[string]int64 {
		return map[string]int64{"queue_depth": depth}
	}) // 10 slots
	for i := 0; i < 25; i++ {
		depth = int64(i)
		p.SampleNow()
		clk.advance(time.Second)
	}
	series, _ := p.Query(HistoryQuery{})
	pts := series[0].Points
	if len(pts) > 10 {
		t.Fatalf("retention exceeded slot count: %d points", len(pts))
	}
	if pts[len(pts)-1].V != 24 {
		t.Fatalf("newest point lost: %+v", pts)
	}
	if pts[0].V < 15 {
		t.Fatalf("stale point survived wrap: %+v", pts)
	}
}

func TestPulseByteBudgetRefusesNewSeries(t *testing.T) {
	clk := newPulseClock()
	reg := metrics.NewRegistry()
	n := 0
	p := NewPulse(PulseConfig{
		Interval:  time.Second,
		Retention: 10 * time.Second,
		MaxBytes:  600, // room for a handful of series only
		Now:       clk.now,
	}, func() map[string]int64 {
		out := map[string]int64{}
		for i := 0; i < n; i++ {
			out[fmt.Sprintf("gauge_%02d", i)] = int64(i)
		}
		return out
	}, reg)
	n = 50
	p.SampleNow()
	g := p.Gauges()
	if g["pulse_series"] >= 50 {
		t.Fatalf("budget did not refuse: %v", g)
	}
	if g["pulse_series_dropped"] == 0 {
		t.Fatalf("refusals not counted: %v", g)
	}
	if g["pulse_bytes"] > 600 {
		t.Fatalf("budget exceeded: %v", g)
	}
	if reg.Snapshot()["pulse_series_dropped_total"] == 0 {
		t.Fatal("registry drop counter not incremented")
	}
	// Existing series keep recording even at budget. Which series were
	// admitted is arbitrary (map order), so check the admitted set.
	admitted := p.Latest(nil)
	clk.advance(time.Second)
	p.SampleNow()
	after := p.Latest(nil)
	for name := range admitted {
		if _, ok := after[name]; !ok {
			t.Fatalf("admitted series %q stopped recording at budget", name)
		}
	}
}

func TestPulseOnSampleHookAndStartClose(t *testing.T) {
	got := make(chan map[string]float64, 1)
	p := NewPulse(PulseConfig{
		Interval:  time.Hour, // ticker must not interfere
		Retention: 2 * time.Hour,
		OnSample: func(_ time.Time, values map[string]float64) {
			select {
			case got <- values:
			default:
			}
		},
	}, func() map[string]int64 { return map[string]int64{"g": 3} }, nil)
	p.Start()
	p.SampleNow()
	select {
	case vals := <-got:
		if vals["g"] != 3 {
			t.Fatalf("hook values: %v", vals)
		}
	case <-time.After(time.Second):
		t.Fatal("OnSample hook never ran")
	}
	p.Close()
	p.Close() // idempotent
}

func TestPulseGaugesNilSafe(t *testing.T) {
	var p *Pulse
	if g := p.Gauges(); g != nil {
		t.Fatalf("nil pulse gauges: %v", g)
	}
}
