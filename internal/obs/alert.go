package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ppclust/internal/metrics"
)

// Alert engine: threshold rules over any pulse series plus the SLO
// engine's breach states, evaluated once per sample with a
// pending → firing → resolved lifecycle.
//
// Rules arrive as compact expressions:
//
//	-alert 'ring_replication_pending>100 for 30s'
//	-alert 'http_request_duration_us_p99>250000'
//
// A rule matches its series exactly when one exists under that name,
// otherwise by substring — so a rule over a labelled family
// ("..._p99>x") spawns one alert instance per matching series. Each
// configured SLO objective is an implicit rule that goes pending when
// the objective breaches and fires once it has stayed in breach for the
// SLOFor hold.

// Alert lifecycle states.
const (
	AlertPending  = "pending"
	AlertFiring   = "firing"
	AlertResolved = "resolved"
)

// DefaultAlertDebounce spaces firing notifications per rule.
const DefaultAlertDebounce = 2 * time.Minute

// defaultResolvedRetention keeps resolved alerts listable after the
// fact without growing without bound.
const defaultResolvedRetention = 10 * time.Minute

// AlertRule is one parsed threshold expression.
type AlertRule struct {
	// Expr is the original text, used as the rule's display name.
	Expr string
	// Series is the series name (or substring) the rule watches.
	Series string
	// Op is ">" or "<".
	Op string
	// Threshold is the compared value.
	Threshold float64
	// For is how long the condition must hold before pending becomes
	// firing (0: fires on the second consecutive true evaluation).
	For time.Duration
}

// breached evaluates the rule's comparison.
func (r AlertRule) breached(v float64) bool {
	if r.Op == "<" {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// ParseAlertRules parses a ';'-separated rule list via ParseAlertRule.
func ParseAlertRules(spec string) ([]AlertRule, error) {
	var out []AlertRule
	for _, part := range strings.Split(spec, ";") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		r, err := ParseAlertRule(part)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ParseAlertRule parses one `SERIES>VALUE [for DURATION]` (or `<`)
// expression. Every failure names the offending token, so a bad spec
// dies at flag parsing with an actionable message instead of surfacing
// at first evaluation.
func ParseAlertRule(expr string) (AlertRule, error) {
	text := strings.TrimSpace(expr)
	fail := func(format string, args ...any) (AlertRule, error) {
		return AlertRule{}, fmt.Errorf("alert rule %q: %s", text, fmt.Sprintf(format, args...))
	}
	i := strings.IndexAny(text, "><")
	if i < 0 {
		return fail("no comparison operator; want SERIES>VALUE or SERIES<VALUE")
	}
	r := AlertRule{Expr: text, Op: string(text[i]), Series: strings.TrimSpace(text[:i])}
	if r.Series == "" {
		return fail("missing series name before %q", r.Op)
	}
	rest := strings.Fields(text[i+1:])
	if len(rest) == 0 {
		return fail("missing threshold after %q", r.Op)
	}
	v, err := strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return fail("bad threshold %q", rest[0])
	}
	r.Threshold = v
	switch {
	case len(rest) == 1:
	case rest[1] != "for":
		return fail("unexpected token %q (want 'for DURATION')", rest[1])
	case len(rest) == 2:
		return fail("missing duration after 'for'")
	case len(rest) > 3:
		return fail("unexpected token %q after duration", rest[3])
	default:
		d, err := time.ParseDuration(rest[2])
		if err != nil || d < 0 {
			return fail("bad duration %q", rest[2])
		}
		r.For = d
	}
	return r, nil
}

// Alert is one rule instance's live state, as served at GET /v1/alerts.
type Alert struct {
	Rule       string    `json:"rule"`
	Kind       string    `json:"kind"` // "threshold" or "slo"
	Series     string    `json:"series,omitempty"`
	Node       string    `json:"node,omitempty"`
	State      string    `json:"state"`
	Value      float64   `json:"value"`
	Threshold  float64   `json:"threshold"`
	Since      time.Time `json:"since"`
	FiredAt    time.Time `json:"fired_at,omitzero"`
	ResolvedAt time.Time `json:"resolved_at,omitzero"`
}

// AlertEvent is one lifecycle transition, delivered to the notify sink
// (webhook, flight recorder). State is AlertFiring or AlertResolved;
// pending transitions are visible in listings but not notified.
type AlertEvent struct {
	Rule      string    `json:"rule"`
	Kind      string    `json:"kind"`
	Series    string    `json:"series,omitempty"`
	Node      string    `json:"node,omitempty"`
	State     string    `json:"state"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
	At        time.Time `json:"at"`
}

// AlertEngineConfig wires an AlertEngine.
type AlertEngineConfig struct {
	// Rules are the threshold rules.
	Rules []AlertRule
	// SLO, when set, contributes one implicit breach rule per objective.
	SLO *SLOEngine
	// SLOFor is the hold before a breaching objective fires (0: fires on
	// the second consecutive breaching evaluation).
	SLOFor time.Duration
	// Debounce spaces firing notifications per rule (0:
	// DefaultAlertDebounce; negative: no debounce).
	Debounce time.Duration
	// Node labels every alert and event with this node's identity.
	Node string
	// Notify receives firing and resolved events (nil: no sink). Called
	// outside the engine lock, on the evaluation goroutine.
	Notify func(AlertEvent)
	// Now overrides the clock (tests).
	Now func() time.Time
}

// AlertEngine tracks rule instances across evaluations. Eval is called
// once per pulse sample; Alerts and Gauges read the live state.
type AlertEngine struct {
	cfg   AlertEngineConfig
	fired *metrics.Counter

	mu         sync.Mutex
	states     map[string]*alertState // rule|series → state
	lastNotify map[string]time.Time   // rule → last firing notification
}

type alertState struct {
	alert    Alert
	notified bool // the firing event reached the sink (not debounced)
}

// NewAlertEngine builds an engine, registering its counter on reg
// (nil: counter kept private).
func NewAlertEngine(cfg AlertEngineConfig, reg *metrics.Registry) *AlertEngine {
	if cfg.Debounce == 0 {
		cfg.Debounce = DefaultAlertDebounce
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &AlertEngine{
		cfg:        cfg,
		fired:      reg.Counter("alerts_fired_total"),
		states:     map[string]*alertState{},
		lastNotify: map[string]time.Time{},
	}
}

// condition is one rule instance's evaluation for a single tick.
type condition struct {
	rule      string
	kind      string
	series    string
	value     float64
	threshold float64
	breached  bool
	hold      time.Duration
}

// Eval advances every rule instance against this sample's values.
func (e *AlertEngine) Eval(now time.Time, values map[string]float64) {
	if e == nil {
		return
	}
	conds := e.conditions(values)
	var events []AlertEvent
	e.mu.Lock()
	seen := map[string]bool{}
	for _, c := range conds {
		key := c.rule + "|" + c.series
		seen[key] = true
		events = append(events, e.advance(now, key, c)...)
	}
	// Instances whose series vanished from the sample (route went quiet,
	// series dropped) read as condition-false so they resolve rather
	// than firing forever on a stale value.
	for key, st := range e.states {
		if seen[key] || st.alert.State == AlertResolved {
			continue
		}
		c := condition{
			rule:      st.alert.Rule,
			kind:      st.alert.Kind,
			series:    st.alert.Series,
			value:     st.alert.Value,
			threshold: st.alert.Threshold,
		}
		events = append(events, e.advance(now, key, c)...)
	}
	// Resolved alerts stay listable for a while, then age out.
	for key, st := range e.states {
		if st.alert.State == AlertResolved && now.Sub(st.alert.ResolvedAt) > defaultResolvedRetention {
			delete(e.states, key)
		}
	}
	e.mu.Unlock()
	if e.cfg.Notify != nil {
		for _, ev := range events {
			e.cfg.Notify(ev)
		}
	}
}

// conditions expands the configured rules and SLO objectives against
// this sample.
func (e *AlertEngine) conditions(values map[string]float64) []condition {
	var out []condition
	for _, r := range e.cfg.Rules {
		if v, ok := values[r.Series]; ok {
			out = append(out, condition{
				rule: r.Expr, kind: "threshold", series: r.Series,
				value: v, threshold: r.Threshold, breached: r.breached(v), hold: r.For,
			})
			continue
		}
		needle := strings.ToLower(r.Series)
		for name, v := range values {
			if strings.Contains(strings.ToLower(name), needle) {
				out = append(out, condition{
					rule: r.Expr, kind: "threshold", series: name,
					value: v, threshold: r.Threshold, breached: r.breached(v), hold: r.For,
				})
			}
		}
	}
	if e.cfg.SLO != nil {
		for _, st := range e.cfg.SLO.Statuses() {
			out = append(out, condition{
				rule: "slo:" + st.Objective, kind: "slo",
				value: st.BurnRate, threshold: 1,
				breached: st.State == SLOStateBreach, hold: e.cfg.SLOFor,
			})
		}
	}
	return out
}

// advance moves one instance through the lifecycle, returning the
// events to notify. Callers hold e.mu.
func (e *AlertEngine) advance(now time.Time, key string, c condition) []AlertEvent {
	st := e.states[key]
	if c.breached {
		if st == nil || st.alert.State == AlertResolved {
			st = &alertState{alert: Alert{
				Rule: c.rule, Kind: c.kind, Series: c.series, Node: e.cfg.Node,
				State: AlertPending, Since: now,
			}}
			e.states[key] = st
		}
		st.alert.Value = c.value
		st.alert.Threshold = c.threshold
		// Pending holds for at least one full evaluation even with a zero
		// hold, so the pending state is observable and a single spike
		// sample cannot fire on its own.
		if st.alert.State == AlertPending && now.After(st.alert.Since) && now.Sub(st.alert.Since) >= c.hold {
			st.alert.State = AlertFiring
			st.alert.FiredAt = now
			e.fired.Inc()
			if e.cfg.Debounce < 0 || now.Sub(e.lastNotify[c.rule]) >= e.cfg.Debounce {
				e.lastNotify[c.rule] = now
				st.notified = true
				return []AlertEvent{e.event(st.alert, AlertFiring, now)}
			}
		}
		return nil
	}
	if st == nil {
		return nil
	}
	switch st.alert.State {
	case AlertPending:
		// Never fired: drop silently.
		delete(e.states, key)
	case AlertFiring:
		st.alert.State = AlertResolved
		st.alert.ResolvedAt = now
		if st.notified {
			return []AlertEvent{e.event(st.alert, AlertResolved, now)}
		}
	}
	return nil
}

func (e *AlertEngine) event(a Alert, state string, now time.Time) AlertEvent {
	return AlertEvent{
		Rule: a.Rule, Kind: a.Kind, Series: a.Series, Node: e.cfg.Node,
		State: state, Value: a.Value, Threshold: a.Threshold, At: now,
	}
}

// Alerts lists every live instance: firing first, then pending, then
// resolved, name-sorted within each state.
func (e *AlertEngine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]Alert, 0, len(e.states))
	for _, st := range e.states {
		out = append(out, st.alert)
	}
	e.mu.Unlock()
	rank := map[string]int{AlertFiring: 0, AlertPending: 1, AlertResolved: 2}
	sort.Slice(out, func(i, j int) bool {
		if rank[out[i].State] != rank[out[j].State] {
			return rank[out[i].State] < rank[out[j].State]
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Series < out[j].Series
	})
	return out
}

// Gauges returns the engine's live state counts.
func (e *AlertEngine) Gauges() map[string]int64 {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var firing, pending int64
	for _, st := range e.states {
		switch st.alert.State {
		case AlertFiring:
			firing++
		case AlertPending:
			pending++
		}
	}
	return map[string]int64{
		"alerts_firing":  firing,
		"alerts_pending": pending,
	}
}
