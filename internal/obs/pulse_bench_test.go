package obs

import (
	"fmt"
	"testing"
	"time"
)

// benchPulse builds a store with nSeries gauges fully wound through its
// retention window.
func benchPulse(nSeries int) (*Pulse, *pulseClock) {
	clk := newPulseClock()
	snap := make(map[string]int64, nSeries)
	for i := 0; i < nSeries; i++ {
		snap[fmt.Sprintf(`bench_gauge{idx="%03d"}`, i)] = int64(i)
	}
	p := NewPulse(PulseConfig{
		Interval:  time.Second,
		Retention: 90 * time.Second,
		MaxBytes:  64 << 20,
		Now:       clk.now,
	}, func() map[string]int64 { return snap }, nil)
	for i := 0; i < 90; i++ {
		p.SampleNow()
		clk.advance(time.Second)
	}
	return p, clk
}

func BenchmarkPulseHistoryQuery(b *testing.B) {
	p, _ := benchPulse(200)
	q := HistoryQuery{Series: []string{"bench_gauge"}, MaxSeries: 200}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, _ := p.Query(q); len(out) == 0 {
			b.Fatal("empty query result")
		}
	}
}

func BenchmarkPulseHistoryQueryDownsampled(b *testing.B) {
	p, _ := benchPulse(200)
	q := HistoryQuery{Series: []string{"bench_gauge"}, Step: 15 * time.Second, Agg: "max", MaxSeries: 200}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, _ := p.Query(q); len(out) == 0 {
			b.Fatal("empty query result")
		}
	}
}

func BenchmarkPulseSample(b *testing.B) {
	snap := make(map[string]int64, 220)
	for i := 0; i < 200; i++ {
		snap[fmt.Sprintf(`bench_total{idx="%03d"}`, i)] = int64(i)
	}
	for _, le := range []string{"10", "100", "1000", "+Inf"} {
		snap[fmt.Sprintf(`bench_lat_bucket{le="%s"}`, le)] = 100
	}
	snap["bench_lat_count"] = 100
	snap["bench_lat_sum"] = 5000
	clk := newPulseClock()
	p := NewPulse(PulseConfig{
		Interval:  time.Second,
		Retention: 90 * time.Second,
		MaxBytes:  64 << 20,
		Now:       clk.now,
	}, func() map[string]int64 { return snap }, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.advance(time.Second)
		p.SampleNow()
	}
}

func BenchmarkAlertEval(b *testing.B) {
	var rules []AlertRule
	for i := 0; i < 20; i++ {
		r, err := ParseAlertRule(fmt.Sprintf(`bench_gauge{idx="%03d"}>1e12 for 30s`, i))
		if err != nil {
			b.Fatal(err)
		}
		rules = append(rules, r)
	}
	clk := newPulseClock()
	eng := NewAlertEngine(AlertEngineConfig{Rules: rules, Now: clk.now}, nil)
	values := make(map[string]float64, 200)
	for i := 0; i < 200; i++ {
		values[fmt.Sprintf(`bench_gauge{idx="%03d"}`, i)] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.advance(time.Second)
		eng.Eval(clk.now(), values)
	}
}
