// Package ring places owners on a set of ppclustd nodes with a
// consistent-hash ring, the classic Karger construction: every physical
// node projects a fixed number of virtual nodes onto a 64-bit hash
// circle, and a key is owned by the first virtual node clockwise of the
// key's hash. Virtual nodes smooth the load split (with v vnodes per
// node the expected imbalance shrinks as 1/sqrt(v)), and a membership
// change only moves the keys adjacent to the vnodes that appeared or
// disappeared — the property that makes join/leave rebalancing
// proportional to 1/n of the data instead of all of it.
//
// Membership is deliberately gossip-free: the member list is small,
// changes are rare, and every change is stamped with a monotonically
// increasing epoch. Nodes exchange full member lists and adopt whichever
// carries the newer epoch (last-writer-wins), which converges without
// vector clocks because the list is tiny and a stale adoption is
// corrected by the next sync.
//
// The package is pure data structure — no I/O, no goroutines — so the
// daemon's transport layer and ppclient can share one placement
// implementation and always agree on who owns what.
package ring

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVnodes is the virtual-node count used when a Ring is built
// with vnodes <= 0. 64 keeps the expected owner imbalance across a
// handful of nodes under ~15% while the full vnode table for a
// 16-node ring still fits in a few KiB.
const DefaultVnodes = 64

// ErrDuplicateID reports a join with a node ID that is already a member
// under a different address — the caller distinguishes a benign rejoin
// (same address) from a misconfigured second node stealing an identity.
var ErrDuplicateID = errors.New("ring: node id already joined from a different address")

// Node is one ppclustd process: a stable identity plus the base URL the
// rest of the ring reaches it at.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// vnode is one point on the hash circle.
type vnode struct {
	hash uint64
	node int // index into members
}

// Ring is a versioned membership set plus the derived hash circle.
// All methods are safe for concurrent use.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	epoch   int64
	members []Node  // sorted by ID for deterministic snapshots
	circle  []vnode // sorted by hash
}

// New returns an empty ring using the given virtual-node count per
// member (DefaultVnodes when vnodes <= 0).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes}
}

// Vnodes returns the per-member virtual-node count.
func (r *Ring) Vnodes() int { return r.vnodes }

// hashKey is fnv-1a 64 followed by a murmur-style finalizer. fnv alone
// is cheap and — unlike maphash — identical across processes, which
// placement requires, but its avalanche is weak on the short,
// near-identical strings we hash ("n1#7", "owner:alice"): sequential
// suffixes land in correlated bands and a node can end up owning half
// the circle. The fmix64 finalizer spreads those bands uniformly.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rebuildLocked recomputes the hash circle from the member list.
func (r *Ring) rebuildLocked() {
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].ID < r.members[j].ID })
	r.circle = r.circle[:0]
	for i, m := range r.members {
		for v := 0; v < r.vnodes; v++ {
			r.circle = append(r.circle, vnode{hash: hashKey(m.ID + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.circle, func(i, j int) bool { return r.circle[i].hash < r.circle[j].hash })
}

// Snapshot returns the current epoch and a copy of the member list.
func (r *Ring) Snapshot() (int64, []Node) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Node, len(r.members))
	copy(out, r.members)
	return r.epoch, out
}

// Epoch returns the current membership version.
func (r *Ring) Epoch() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Len returns the current member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member with the given ID, if present.
func (r *Ring) Lookup(id string) (Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.members {
		if m.ID == id {
			return m, true
		}
	}
	return Node{}, false
}

// Adopt replaces the membership with the given list if its epoch is
// newer than ours, reporting whether it was adopted. Equal epochs keep
// the local view: the sender and receiver already agree or will be
// reconciled by the next bump.
func (r *Ring) Adopt(epoch int64, nodes []Node) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch <= r.epoch {
		return false
	}
	r.epoch = epoch
	r.members = append(r.members[:0:0], nodes...)
	r.rebuildLocked()
	return true
}

// Seed installs an initial membership without epoch comparison — the
// bootstrap path for a node told its peers on the command line.
func (r *Ring) Seed(epoch int64, nodes []Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch = epoch
	r.members = append(r.members[:0:0], nodes...)
	r.rebuildLocked()
}

// Join adds a node and bumps the epoch. A node re-announcing itself at
// the same address is a no-op rejoin (rejoined=true, epoch unchanged);
// the same ID at a different address is ErrDuplicateID so a
// copy-pasted -node-id cannot silently split an identity across two
// processes.
func (r *Ring) Join(n Node) (epoch int64, rejoined bool, err error) {
	if n.ID == "" || n.Addr == "" {
		return 0, false, fmt.Errorf("ring: join needs id and addr")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m.ID == n.ID {
			if m.Addr == n.Addr {
				return r.epoch, true, nil
			}
			return 0, false, ErrDuplicateID
		}
	}
	r.members = append(r.members, n)
	r.epoch++
	r.rebuildLocked()
	return r.epoch, false, nil
}

// Remove drops a node by ID and bumps the epoch, reporting whether it
// was a member.
func (r *Ring) Remove(id string) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, m := range r.members {
		if m.ID == id {
			r.members = append(r.members[:i], r.members[i+1:]...)
			r.epoch++
			r.rebuildLocked()
			return r.epoch, true
		}
	}
	return r.epoch, false
}

// Owner returns the member owning key — the first virtual node
// clockwise of the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (Node, bool) {
	nodes := r.Place(key, 0)
	if len(nodes) == 0 {
		return Node{}, false
	}
	return nodes[0], true
}

// Place returns the owner of key followed by up to `replicas` distinct
// successor members, walking the circle clockwise. With fewer members
// than replicas+1 every member is returned once. The result order is
// the failover order: primary first, then successors by ring distance.
func (r *Ring) Place(key string, replicas int) []Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.circle) == 0 {
		return nil
	}
	want := replicas + 1
	if want > len(r.members) {
		want = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.circle), func(i int) bool { return r.circle[i].hash >= h })
	out := make([]Node, 0, want)
	seen := make(map[int]bool, want)
	for i := 0; i < len(r.circle) && len(out) < want; i++ {
		vn := r.circle[(start+i)%len(r.circle)]
		if seen[vn.node] {
			continue
		}
		seen[vn.node] = true
		out = append(out, r.members[vn.node])
	}
	return out
}

// OwnerKey is the placement key for owner-scoped state: the owner's
// keyring entries, credentials, datasets and jobs all hash under it so
// one node serves an owner's whole world.
func OwnerKey(owner string) string { return "owner:" + owner }

// FedKey is the placement key for a federation and its contribution
// datasets, so the federation record and the rows it freezes co-locate.
func FedKey(id string) string { return "fed:" + id }
