package ring

import (
	"errors"
	"fmt"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "n1", Addr: "http://127.0.0.1:1001"},
		{ID: "n2", Addr: "http://127.0.0.1:1002"},
		{ID: "n3", Addr: "http://127.0.0.1:1003"},
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a := New(0)
	a.Seed(1, threeNodes())
	b := New(0)
	// Seed in a different order: placement must not depend on insertion.
	ns := threeNodes()
	b.Seed(1, []Node{ns[2], ns[0], ns[1]})
	for i := 0; i < 200; i++ {
		key := OwnerKey(fmt.Sprintf("owner-%d", i))
		pa := a.Place(key, 2)
		pb := b.Place(key, 2)
		if len(pa) != 3 || len(pb) != 3 {
			t.Fatalf("want 3 placements, got %d and %d", len(pa), len(pb))
		}
		for j := range pa {
			if pa[j].ID != pb[j].ID {
				t.Fatalf("key %s: placement diverged at %d: %s vs %s", key, j, pa[j].ID, pb[j].ID)
			}
		}
	}
}

func TestPlaceDistinctAndOrdered(t *testing.T) {
	r := New(32)
	r.Seed(1, threeNodes())
	for i := 0; i < 100; i++ {
		key := OwnerKey(fmt.Sprintf("o%d", i))
		p := r.Place(key, 5) // more replicas than members
		if len(p) != 3 {
			t.Fatalf("want all 3 members, got %d", len(p))
		}
		seen := map[string]bool{}
		for _, n := range p {
			if seen[n.ID] {
				t.Fatalf("duplicate node %s in placement", n.ID)
			}
			seen[n.ID] = true
		}
		own, ok := r.Owner(key)
		if !ok || own.ID != p[0].ID {
			t.Fatalf("Owner disagrees with Place[0]")
		}
	}
}

func TestDistributionBalance(t *testing.T) {
	r := New(DefaultVnodes)
	r.Seed(1, threeNodes())
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		n, _ := r.Owner(OwnerKey(fmt.Sprintf("user-%d", i)))
		counts[n.ID]++
	}
	for id, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.0f%% of keys — ring badly unbalanced: %v", id, frac*100, counts)
		}
	}
}

func TestJoinMovesMinority(t *testing.T) {
	r := New(DefaultVnodes)
	r.Seed(1, threeNodes())
	before := map[string]string{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := OwnerKey(fmt.Sprintf("k%d", i))
		n, _ := r.Owner(key)
		before[key] = n.ID
	}
	if _, _, err := r.Join(Node{ID: "n4", Addr: "http://127.0.0.1:1004"}); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key, prev := range before {
		n, _ := r.Owner(key)
		if n.ID != prev {
			if n.ID != "n4" {
				t.Fatalf("key %s moved %s -> %s, not to the joining node", key, prev, n.ID)
			}
			moved++
		}
	}
	// A fourth node should claim roughly a quarter of the space; well under half.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("join moved %d/%d keys, want a small minority", moved, keys)
	}
}

func TestJoinRejoinAndDuplicate(t *testing.T) {
	r := New(8)
	r.Seed(1, threeNodes())
	ep0 := r.Epoch()
	// Same ID, same addr: benign rejoin, no epoch bump.
	ep, rejoined, err := r.Join(Node{ID: "n2", Addr: "http://127.0.0.1:1002"})
	if err != nil || !rejoined || ep != ep0 {
		t.Fatalf("rejoin: ep=%d rejoined=%v err=%v", ep, rejoined, err)
	}
	// Same ID, different addr: identity conflict.
	if _, _, err := r.Join(Node{ID: "n2", Addr: "http://127.0.0.1:9999"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("want ErrDuplicateID, got %v", err)
	}
	// Fresh node bumps the epoch.
	ep, rejoined, err = r.Join(Node{ID: "n9", Addr: "http://127.0.0.1:1009"})
	if err != nil || rejoined || ep != ep0+1 {
		t.Fatalf("join: ep=%d rejoined=%v err=%v", ep, rejoined, err)
	}
}

func TestAdoptEpochs(t *testing.T) {
	r := New(8)
	r.Seed(3, threeNodes())
	// Older epoch refused.
	if r.Adopt(2, threeNodes()[:1]) {
		t.Fatal("adopted an older epoch")
	}
	// Equal epoch refused (local view wins until a bump).
	if r.Adopt(3, threeNodes()[:1]) {
		t.Fatal("adopted an equal epoch")
	}
	// Newer epoch adopted.
	if !r.Adopt(5, threeNodes()[:2]) {
		t.Fatal("refused a newer epoch")
	}
	if r.Len() != 2 || r.Epoch() != 5 {
		t.Fatalf("after adopt: len=%d epoch=%d", r.Len(), r.Epoch())
	}
}

func TestRemove(t *testing.T) {
	r := New(8)
	r.Seed(1, threeNodes())
	ep, ok := r.Remove("n2")
	if !ok || ep != 2 || r.Len() != 2 {
		t.Fatalf("remove: ep=%d ok=%v len=%d", ep, ok, r.Len())
	}
	if _, ok := r.Lookup("n2"); ok {
		t.Fatal("removed node still resolvable")
	}
	if _, ok := r.Remove("n2"); ok {
		t.Fatal("second remove reported a member")
	}
	for i := 0; i < 50; i++ {
		n, ok := r.Owner(OwnerKey(fmt.Sprintf("x%d", i)))
		if !ok || n.ID == "n2" {
			t.Fatalf("key placed on removed node (%v, %v)", n, ok)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(8)
	if _, ok := r.Owner("owner:a"); ok {
		t.Fatal("empty ring returned an owner")
	}
	if p := r.Place("owner:a", 2); p != nil {
		t.Fatalf("empty ring returned placements: %v", p)
	}
}
