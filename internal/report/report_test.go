package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("id", "value")
	tb.AddRow("x", "1.5")
	tb.AddRow("longer-label", "2")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "id") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "--") {
		t.Fatalf("rule missing: %q", lines[1])
	}
	// All rows should be padded to the same column start for col 2.
	col := strings.Index(lines[0], "value")
	if !strings.Contains(lines[3][col:], "2") {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only-a")
	tb.AddRow("1", "2", "3") // extends width
	s := tb.String()
	if !strings.Contains(s, "only-a") || !strings.Contains(s, "3") {
		t.Fatalf("table = %q", s)
	}
}

func TestAddFloats(t *testing.T) {
	tb := NewTable("row", "v1", "v2")
	tb.AddFloats("r1", "%.2f", 1.234, 5.678)
	s := tb.String()
	if !strings.Contains(s, "1.23") || !strings.Contains(s, "5.68") {
		t.Fatalf("AddFloats = %q", s)
	}
}

func TestHeaderlessTable(t *testing.T) {
	tb := NewTable()
	tb.AddRow("x", "y")
	s := tb.String()
	if strings.Contains(s, "--") {
		t.Fatal("headerless table should have no rule")
	}
}

func TestLowerTriangle(t *testing.T) {
	s := LowerTriangle([][]float64{{1.8723}, {2.7674, 2.294}})
	if !strings.Contains(s, "1.8723") || !strings.Contains(s, "2.2940") {
		t.Fatalf("triangle = %q", s)
	}
	if !strings.HasPrefix(s, "0\n") {
		t.Fatal("triangle should start with the diagonal zero")
	}
}

func TestSection(t *testing.T) {
	s := Section("Table 3")
	if !strings.Contains(s, "Table 3") || !strings.Contains(s, "=======") {
		t.Fatalf("section = %q", s)
	}
}
