// Package report renders fixed-width text tables for experiment output and
// the CLIs, in a layout close to the paper's tables.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows extend the width.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddFloats appends a row of formatted float cells with a leading label.
func (t *Table) AddFloats(label string, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		for i, w := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", w))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// LowerTriangle renders a dissimilarity lower triangle in the layout of the
// paper's Tables 4-6 (zeros on the diagonal).
func LowerTriangle(tri [][]float64) string {
	var b strings.Builder
	b.WriteString("0\n")
	for _, row := range tri {
		for _, v := range row {
			fmt.Fprintf(&b, "%8.4f ", v)
		}
		b.WriteString("       0\n")
	}
	return b.String()
}

// Section renders a titled block with an underline, used to separate
// experiments in ppcbench output.
func Section(title string) string {
	return fmt.Sprintf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
