package attack

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ppclust/internal/core"
	"ppclust/internal/dataset"
	"ppclust/internal/matrix"
	"ppclust/internal/stats"
)

// skewedAnisotropicData builds a dataset whose covariance has distinct
// eigenvalues (so eigenvector alignment is well-posed) and whose marginals
// are skewed (so the sign ambiguity is resolvable) — the regime where the
// PCA attack provably works.
func skewedAnisotropicData(m int, rng *rand.Rand) *matrix.Dense {
	data := matrix.NewDense(m, 3, nil)
	for i := 0; i < m; i++ {
		// Squared normals are chi-square (skewness sqrt(8)); different
		// scales give distinct eigenvalues.
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		c := rng.NormFloat64()
		data.SetAt(i, 0, 4*a*a)
		data.SetAt(i, 1, 2*b*b+0.3*a)
		data.SetAt(i, 2, 1*c*c)
	}
	return data
}

func TestPCAAttackRecoversRotatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := skewedAnisotropicData(4000, rng)
	res, err := core.Transform(data, core.Options{
		Pairs:      []core.Pair{{I: 0, J: 1}, {I: 2, J: 0}},
		Thresholds: []core.PST{{Rho1: 1e-9, Rho2: 1e-9}},
		Rand:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The attacker's knowledge: covariance and skewness of the population,
	// here estimated from a *different* sample of the same generator.
	ref := skewedAnisotropicData(4000, rand.New(rand.NewSource(8)))
	refCov := stats.CovarianceMatrix(ref, stats.Sample)
	refSkew := []float64{Skewness(ref.Col(0)), Skewness(ref.Col(1)), Skewness(ref.Col(2))}

	out, err := PCA(res.DPrime, refCov, refSkew)
	if err != nil {
		t.Fatal(err)
	}
	if out.CandidatesTried != 8 {
		t.Fatalf("candidates = %d, want 2^3", out.CandidatesTried)
	}
	if !matrix.IsOrthogonal(out.Q, 1e-6) {
		t.Fatal("estimated Q must be orthogonal")
	}
	met, err := Measure(data, out.Recovered, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling noise limits precision, but the attack must recover the bulk
	// of the data far better than chance (random guessing RMSE would be on
	// the order of the data std, >= 2 here).
	if met.RMSE > 1.0 {
		t.Fatalf("PCA attack RMSE = %v; expected substantial recovery", met.RMSE)
	}
	if met.WithinTol < 0.8 {
		t.Fatalf("PCA attack recovered only %.0f%% of cells within 0.5", met.WithinTol*100)
	}
}

func TestPCAErrors(t *testing.T) {
	released := matrix.RandomDense(10, 3, rand.New(rand.NewSource(1)))
	cov := stats.CovarianceMatrix(released, stats.Sample)
	skew := []float64{0, 0, 0}
	if _, err := PCA(matrix.NewDense(1, 3, nil), cov, skew); !errors.Is(err, ErrAttack) {
		t.Fatal("single row should fail")
	}
	if _, err := PCA(released, matrix.Identity(2), skew); !errors.Is(err, ErrAttack) {
		t.Fatal("covariance shape mismatch should fail")
	}
	if _, err := PCA(released, cov, []float64{0}); !errors.Is(err, ErrAttack) {
		t.Fatal("skew length mismatch should fail")
	}
	wide := matrix.RandomDense(30, 17, rand.New(rand.NewSource(2)))
	wideCov := stats.CovarianceMatrix(wide, stats.Sample)
	if _, err := PCA(wide, wideCov, make([]float64, 17)); !errors.Is(err, ErrAttack) {
		t.Fatal("dimension cap should apply")
	}
}

func TestSkewness(t *testing.T) {
	if Skewness([]float64{1, 1, 1}) != 0 {
		t.Fatal("constant sample skewness should be 0")
	}
	// Symmetric sample: zero skew.
	if math.Abs(Skewness([]float64{-2, -1, 0, 1, 2})) > 1e-12 {
		t.Fatal("symmetric sample should have zero skewness")
	}
	// Right-tailed sample: positive skew.
	if Skewness([]float64{0, 0, 0, 0, 10}) <= 0 {
		t.Fatal("right-tailed sample should have positive skewness")
	}
}

// The attack also defeats the full random-orthogonal baseline, not just
// pairwise RBT — the vulnerability is structural to distance-preserving
// perturbation, which is the modern reading of this paper's limits.
func TestPCAAttackOnRandomOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := skewedAnisotropicData(4000, rng)
	q := matrix.RandomOrthogonal(3, rng)
	released := matrix.MustMul(data, q.T())
	ref := skewedAnisotropicData(4000, rand.New(rand.NewSource(10)))
	refCov := stats.CovarianceMatrix(ref, stats.Sample)
	refSkew := []float64{Skewness(ref.Col(0)), Skewness(ref.Col(1)), Skewness(ref.Col(2))}
	out, err := PCA(released, refCov, refSkew)
	if err != nil {
		t.Fatal(err)
	}
	met, err := Measure(data, out.Recovered, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if met.WithinTol < 0.8 {
		t.Fatalf("PCA attack on random orthogonal recovered only %.0f%%", met.WithinTol*100)
	}
}

// Embedded end-to-end sanity: attacking the paper's own 5-row release with
// PCA is hopeless (n=5 sample, eigenvalues from 5 points) — the attack
// needs distributional knowledge, which the tiny sample cannot supply.
// This documents the attack's data requirements honestly.
func TestPCAAttackSmallSampleIsWeak(t *testing.T) {
	z := dataset.CardiacNormalized().Data
	res, err := core.Transform(z, core.Options{
		Pairs:       []core.Pair{{I: 0, J: 2}, {I: 1, J: 0}},
		Thresholds:  []core.PST{{Rho1: 0.30, Rho2: 0.55}, {Rho1: 2.30, Rho2: 2.30}},
		FixedAngles: []float64{312.47, 147.29},
	})
	if err != nil {
		t.Fatal(err)
	}
	refCov := stats.CovarianceMatrix(z, stats.Sample)
	refSkew := []float64{Skewness(z.Col(0)), Skewness(z.Col(1)), Skewness(z.Col(2))}
	out, err := PCA(res.DPrime, refCov, refSkew)
	if err != nil {
		t.Fatal(err)
	}
	// With the exact sample covariance the attack is actually exact up to
	// sign choice; this asserts it runs end to end and returns a valid Q.
	if !matrix.IsOrthogonal(out.Q, 1e-6) {
		t.Fatal("Q must be orthogonal")
	}
}
