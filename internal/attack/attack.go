// Package attack implements adversary models against RBT-released data.
//
// Two of them come straight from the paper: the re-normalization attempt of
// Section 5.2 (shown there — and here, as Table 5 — to destroy distances
// rather than recover data) and the brute-force angle search the paper's
// "computational security" argument appeals to. The other two are the
// attacks later shown to break rotation perturbation (cf. Liu, Giannella &
// Kargupta 2006): exact recovery from a few known input-output record
// pairs, and PCA eigenstructure alignment using only distributional
// knowledge. Their success here is the quantitative form of the paper's
// soundness caveat recorded in DESIGN.md.
package attack

import (
	"errors"
	"fmt"
	"math"

	"ppclust/internal/matrix"
	"ppclust/internal/norm"
	"ppclust/internal/rotate"
	"ppclust/internal/stats"
)

// ErrAttack is wrapped by attack precondition failures.
var ErrAttack = errors.New("attack: invalid input")

// RecoveryMetrics quantifies how well an attack reconstructed the original
// (normalized) data.
type RecoveryMetrics struct {
	// RMSE is the root mean squared error over all cells.
	RMSE float64
	// MaxAbs is the worst single-cell absolute error.
	MaxAbs float64
	// WithinTol is the fraction of cells recovered within the tolerance
	// passed to Measure.
	WithinTol float64
}

// Measure compares recovered data against the truth.
func Measure(truth, recovered *matrix.Dense, tol float64) (RecoveryMetrics, error) {
	tr, tc := truth.Dims()
	rr, rc := recovered.Dims()
	if tr != rr || tc != rc {
		return RecoveryMetrics{}, fmt.Errorf("%w: %dx%d vs %dx%d", ErrAttack, tr, tc, rr, rc)
	}
	var sq, maxAbs float64
	var within int
	for i := 0; i < tr; i++ {
		a, b := truth.RawRow(i), recovered.RawRow(i)
		for j := range a {
			d := math.Abs(a[j] - b[j])
			sq += d * d
			if d > maxAbs {
				maxAbs = d
			}
			if d <= tol {
				within++
			}
		}
	}
	n := float64(tr * tc)
	return RecoveryMetrics{
		RMSE:      math.Sqrt(sq / n),
		MaxAbs:    maxAbs,
		WithinTol: float64(within) / n,
	}, nil
}

// Renormalize re-standardizes released data exactly as the Section 5.2
// attacker does: fit a z-score on the released matrix and transform it.
// The paper's defense argument is that this changes the dissimilarity
// matrix (Table 5 vs Table 6), making the result useless; the experiments
// verify that claim.
func Renormalize(released *matrix.Dense) (*matrix.Dense, error) {
	z := &norm.ZScore{Denominator: stats.Sample}
	out, err := norm.FitTransform(z, released)
	if err != nil {
		return nil, fmt.Errorf("attack: renormalize: %w", err)
	}
	return out, nil
}

// KnownRecord is one record the attacker knows in the original
// (normalized) space, along with its row index in the released data.
// Row correspondence is the standard known input-output attack assumption:
// the adversary re-identified a few released rows out of band (e.g. a
// patient knowing their own record).
type KnownRecord struct {
	Row    int
	Values []float64
}

// BruteForceAngle recovers the rotation angle of a single attribute pair by
// scanning [0, 360) at stepDeg resolution and refining around the best
// candidate, minimizing the squared error between the rotated known
// originals and the released values on columns (i, j). It assumes those two
// columns were distorted by one rotation (true for any RBT pair whose
// attributes are not reused by a later pair).
//
// It returns the best angle and its root mean squared error on the known
// records. The paper argues this search is hard because θ is a continuous
// value; the experiment shows a coarse-to-fine scan needs only a few
// thousand probes per pair.
func BruteForceAngle(released *matrix.Dense, i, j int, known []KnownRecord, stepDeg float64) (theta float64, rmse float64, err error) {
	if len(known) == 0 {
		return 0, 0, fmt.Errorf("%w: no known records", ErrAttack)
	}
	if stepDeg <= 0 {
		stepDeg = 0.1
	}
	m, n := released.Dims()
	if i < 0 || i >= n || j < 0 || j >= n || i == j {
		return 0, 0, fmt.Errorf("%w: bad pair (%d,%d) for %d attributes", ErrAttack, i, j, n)
	}
	for _, k := range known {
		if k.Row < 0 || k.Row >= m {
			return 0, 0, fmt.Errorf("%w: known row %d out of range", ErrAttack, k.Row)
		}
		if len(k.Values) != n {
			return 0, 0, fmt.Errorf("%w: known record has %d values, want %d", ErrAttack, len(k.Values), n)
		}
	}
	cost := func(t float64) float64 {
		rad := rotate.Degrees(t)
		c, s := math.Cos(rad), math.Sin(rad)
		var sq float64
		for _, k := range known {
			xi, xj := k.Values[i], k.Values[j]
			pi := c*xi + s*xj
			pj := -s*xi + c*xj
			di := pi - released.At(k.Row, i)
			dj := pj - released.At(k.Row, j)
			sq += di*di + dj*dj
		}
		return sq
	}
	best, bestCost := 0.0, math.Inf(1)
	for t := 0.0; t < 360; t += stepDeg {
		if c := cost(t); c < bestCost {
			best, bestCost = t, c
		}
	}
	// Golden-section refinement around the best grid point.
	lo, hi := best-stepDeg, best+stepDeg
	for it := 0; it < 80 && hi-lo > 1e-10; it++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if cost(m1) < cost(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	theta = rotate.NormalizeDegrees((lo + hi) / 2)
	rmse = math.Sqrt(cost(theta) / float64(2*len(known)))
	return theta, rmse, nil
}

// KnownIO recovers the full orthogonal transform Q (where each released row
// is y = Q·x) from k known (original, released) record pairs. It solves the
// least-squares system Xᵀ·Qᵀ ≈ Yᵀ via the normal equations and then
// projects the estimate onto the orthogonal group with a polar
// decomposition, which both denoises and enforces Q's known structure.
//
// With n linearly independent known records the recovery is exact: this is
// the classic result that rotation perturbation offers no protection
// against an adversary who knows a handful of records.
func KnownIO(knownOriginal, knownReleased *matrix.Dense) (*matrix.Dense, error) {
	kr, n := knownOriginal.Dims()
	kr2, n2 := knownReleased.Dims()
	if kr != kr2 || n != n2 {
		return nil, fmt.Errorf("%w: known pairs %dx%d vs %dx%d", ErrAttack, kr, n, kr2, n2)
	}
	if kr < n {
		return nil, fmt.Errorf("%w: need at least %d known records for %d attributes, got %d", ErrAttack, n, n, kr)
	}
	// Normal equations: (XᵀX)·Qᵀ = Xᵀ·Y.
	xt := knownOriginal.T()
	xtx := matrix.MustMul(xt, knownOriginal)
	xty := matrix.MustMul(xt, knownReleased)
	lu, err := matrix.NewLU(xtx)
	if err != nil {
		return nil, err
	}
	qt, err := lu.SolveMatrix(xty)
	if err != nil {
		return nil, fmt.Errorf("%w: known records are linearly dependent: %v", ErrAttack, err)
	}
	q := qt.T()
	return NearestOrthogonal(q)
}

// NearestOrthogonal projects a square matrix onto the orthogonal group via
// the polar decomposition M = Q·(MᵀM)^½, computed with the symmetric
// eigensolver.
func NearestOrthogonal(m *matrix.Dense) (*matrix.Dense, error) {
	r, c := m.Dims()
	if r != c {
		return nil, fmt.Errorf("%w: non-square %dx%d", ErrAttack, r, c)
	}
	mtm := matrix.MustMul(m.T(), m)
	eig, err := matrix.SymEigen(mtm)
	if err != nil {
		return nil, err
	}
	invSqrt := make([]float64, r)
	for i, v := range eig.Values {
		if v <= 1e-12 {
			return nil, fmt.Errorf("%w: rank-deficient estimate (eigenvalue %g)", ErrAttack, v)
		}
		invSqrt[i] = 1 / math.Sqrt(v)
	}
	s := matrix.MustMul(matrix.MustMul(eig.Vectors, matrix.Diagonal(invSqrt)), eig.Vectors.T())
	return matrix.Mul(m, s)
}

// RecoverWithQ inverts the release given an estimated Q: since y = Q·x per
// row, X̂ = Y·Q (row-major convention, Qᵀ inverse of Q).
func RecoverWithQ(released, q *matrix.Dense) (*matrix.Dense, error) {
	return matrix.Mul(released, q)
}
