package attack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppclust/internal/core"
	"ppclust/internal/dataset"
	"ppclust/internal/dist"
	"ppclust/internal/matrix"
	"ppclust/internal/norm"
	"ppclust/internal/stats"
)

// paperRelease reproduces the paper's released cardiac data (Table 3) along
// with the normalized original (Table 2 values, computed).
func paperRelease(t *testing.T) (normalized, released *matrix.Dense, key core.Key) {
	t.Helper()
	z := &norm.ZScore{Denominator: stats.Sample}
	nd, err := norm.FitTransform(z, dataset.CardiacSample().Data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Transform(nd, core.Options{
		Pairs:       []core.Pair{{I: 0, J: 2}, {I: 1, J: 0}},
		Thresholds:  []core.PST{{Rho1: 0.30, Rho2: 0.55}, {Rho1: 2.30, Rho2: 2.30}},
		FixedAngles: []float64{312.47, 147.29},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nd, res.DPrime, res.Key
}

// Table 5: re-normalizing the released data yields exactly the paper's
// distorted dissimilarity matrix — the attack fails to restore geometry.
func TestRenormalizeReproducesTable5(t *testing.T) {
	_, released, _ := paperRelease(t)
	renorm, err := Renormalize(released)
	if err != nil {
		t.Fatal(err)
	}
	dm := dist.NewDissimMatrix(renorm, dist.Euclidean{})
	want := dataset.PaperTable5()
	got := dm.LowerTriangle()
	for i, row := range want {
		for j, v := range row {
			if math.Abs(got[i][j]-v) > 5e-4 {
				t.Fatalf("renormalized d(%d,%d) = %.4f, Table 5 says %.4f", i+1, j, got[i][j], v)
			}
		}
	}
}

func TestRenormalizeChangesDistances(t *testing.T) {
	nd, released, _ := paperRelease(t)
	renorm, err := Renormalize(released)
	if err != nil {
		t.Fatal(err)
	}
	orig := dist.NewDissimMatrix(nd, dist.Euclidean{})
	attacked := dist.NewDissimMatrix(renorm, dist.Euclidean{})
	d, err := orig.MaxAbsDiff(attacked)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.5 {
		t.Fatalf("paper claims renormalization distorts distances; max diff only %v", d)
	}
}

func TestRenormalizeDegenerate(t *testing.T) {
	constant := matrix.FromRows([][]float64{{1, 2}, {1, 3}})
	if _, err := Renormalize(constant); err == nil {
		t.Fatal("constant column should fail renormalization")
	}
}

func TestMeasure(t *testing.T) {
	a := matrix.FromRows([][]float64{{0, 0}, {1, 1}})
	b := matrix.FromRows([][]float64{{0.1, 0}, {1, 1}})
	m, err := Measure(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MaxAbs-0.1) > 1e-12 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs)
	}
	if math.Abs(m.WithinTol-0.75) > 1e-12 {
		t.Fatalf("WithinTol = %v", m.WithinTol)
	}
	if math.Abs(m.RMSE-math.Sqrt(0.01/4)) > 1e-12 {
		t.Fatalf("RMSE = %v", m.RMSE)
	}
	if _, err := Measure(a, matrix.NewDense(1, 2, nil), 0.1); !errors.Is(err, ErrAttack) {
		t.Fatal("shape mismatch should fail")
	}
}

// A single known record pins down the rotation angle of a pair: the paper's
// continuous-angle argument does not survive known plaintext.
func TestBruteForceAngleRecoversTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := matrix.RandomDense(30, 4, rng)
	const trueTheta = 123.456
	res, err := core.Transform(data, core.Options{
		Pairs:       []core.Pair{{I: 0, J: 1}, {I: 2, J: 3}},
		Thresholds:  []core.PST{{Rho1: 1e-9, Rho2: 1e-9}},
		FixedAngles: []float64{trueTheta, 77},
	})
	if err != nil {
		t.Fatal(err)
	}
	known := []KnownRecord{{Row: 4, Values: data.Row(4)}, {Row: 9, Values: data.Row(9)}}
	theta, rmse, err := BruteForceAngle(res.DPrime, 0, 1, known, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta-trueTheta) > 0.01 {
		t.Fatalf("recovered θ = %v, want %v", theta, trueTheta)
	}
	if rmse > 1e-6 {
		t.Fatalf("rmse = %v, want ~0", rmse)
	}
}

func TestBruteForceAngleErrors(t *testing.T) {
	released := matrix.NewDense(5, 3, nil)
	known := []KnownRecord{{Row: 0, Values: []float64{0, 0, 0}}}
	if _, _, err := BruteForceAngle(released, 0, 0, known, 0.1); !errors.Is(err, ErrAttack) {
		t.Fatal("bad pair should fail")
	}
	if _, _, err := BruteForceAngle(released, 0, 1, nil, 0.1); !errors.Is(err, ErrAttack) {
		t.Fatal("no known records should fail")
	}
	if _, _, err := BruteForceAngle(released, 0, 1, []KnownRecord{{Row: 9, Values: []float64{0, 0, 0}}}, 0.1); !errors.Is(err, ErrAttack) {
		t.Fatal("row out of range should fail")
	}
	if _, _, err := BruteForceAngle(released, 0, 1, []KnownRecord{{Row: 0, Values: []float64{0}}}, 0.1); !errors.Is(err, ErrAttack) {
		t.Fatal("short record should fail")
	}
}

// With n linearly independent known records the full RBT key matrix is
// recovered exactly and every record is decrypted.
func TestKnownIORecoversEverything(t *testing.T) {
	nd, released, key := paperRelease(t)
	// Attacker knows 3 of the 5 records (n = 3 attributes).
	knownOrig := nd.SelectRows([]int{0, 2, 4})
	knownRel := released.SelectRows([]int{0, 2, 4})
	qhat, err := KnownIO(knownOrig, knownRel)
	if err != nil {
		t.Fatal(err)
	}
	qtrue, err := key.AsOrthogonal(3)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.EqualApprox(qhat, qtrue, 1e-8) {
		t.Fatalf("Q estimate wrong:\n%v\nwant\n%v", qhat, qtrue)
	}
	recovered, err := RecoverWithQ(released, qhat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(nd, recovered, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if m.WithinTol < 1 {
		t.Fatalf("known-IO attack should recover all cells, got %v", m.WithinTol)
	}
}

func TestKnownIOErrors(t *testing.T) {
	if _, err := KnownIO(matrix.NewDense(2, 3, nil), matrix.NewDense(2, 3, nil)); !errors.Is(err, ErrAttack) {
		t.Fatal("too few records should fail")
	}
	if _, err := KnownIO(matrix.NewDense(3, 3, nil), matrix.NewDense(2, 3, nil)); !errors.Is(err, ErrAttack) {
		t.Fatal("shape mismatch should fail")
	}
	// Linearly dependent known records.
	dep := matrix.FromRows([][]float64{{1, 0}, {2, 0}, {3, 0}})
	if _, err := KnownIO(dep, dep); !errors.Is(err, ErrAttack) {
		t.Fatal("dependent records should fail")
	}
}

func TestNearestOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := matrix.RandomOrthogonal(4, rng)
	// Perturb slightly; projection should return near q.
	noisy := q.Clone()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			noisy.SetAt(i, j, noisy.At(i, j)+0.01*rng.NormFloat64())
		}
	}
	proj, err := NearestOrthogonal(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.IsOrthogonal(proj, 1e-9) {
		t.Fatal("projection must be orthogonal")
	}
	if d, _ := matrix.MaxAbsDiff(proj, q); d > 0.05 {
		t.Fatalf("projection drifted from truth by %v", d)
	}
	if _, err := NearestOrthogonal(matrix.NewDense(2, 3, nil)); !errors.Is(err, ErrAttack) {
		t.Fatal("non-square should fail")
	}
	if _, err := NearestOrthogonal(matrix.NewDense(2, 2, nil)); !errors.Is(err, ErrAttack) {
		t.Fatal("rank-deficient should fail")
	}
}

// Property: known-IO with exactly n random independent records recovers a
// random RBT key's matrix.
func TestQuickKnownIOExactRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := n + 5 + rng.Intn(20)
		data := matrix.RandomDense(m, n, rng)
		res, err := core.Transform(data, core.Options{
			Pairs:      core.RandomPairs(n, rng),
			Thresholds: []core.PST{{Rho1: 1e-9, Rho2: 1e-9}},
			Rand:       rng,
		})
		if err != nil {
			return false
		}
		rows := rng.Perm(m)[:n]
		qhat, err := KnownIO(data.SelectRows(rows), res.DPrime.SelectRows(rows))
		if err != nil {
			return false
		}
		recovered, err := RecoverWithQ(res.DPrime, qhat)
		if err != nil {
			return false
		}
		met, err := Measure(data, recovered, 1e-6)
		return err == nil && met.WithinTol == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
