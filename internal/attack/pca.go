package attack

import (
	"fmt"
	"math"

	"ppclust/internal/matrix"
	"ppclust/internal/stats"
)

// PCAResult is the outcome of the PCA eigenstructure-alignment attack.
type PCAResult struct {
	// Q is the estimated orthogonal transform (y = Q·x per row).
	Q *matrix.Dense
	// Recovered is the reconstructed original data.
	Recovered *matrix.Dense
	// CandidatesTried counts the eigenvector sign combinations evaluated.
	CandidatesTried int
	// SkewScore is the objective value of the winning candidate (lower is
	// a better match to the reference skewness).
	SkewScore float64
}

// maxPCADims caps the 2^n sign enumeration.
const maxPCADims = 16

// PCA mounts the eigenstructure-alignment attack on orthogonally perturbed
// data: because Y = X·Qᵀ implies Cov(Y) = Q·Cov(X)·Qᵀ, the eigenvectors of
// the released covariance are the rotated eigenvectors of the original
// covariance. An attacker who knows Cov(X) (e.g. from a public dataset
// drawn from the same population) can align the two eigenbases to estimate
// Q up to a per-eigenvector sign.
//
// The remaining 2^n sign ambiguity is resolved by matching per-attribute
// skewness against referenceSkew (the attacker's knowledge of the original
// marginals' third moments); for symmetric marginals the ambiguity is
// fundamental and the attack degrades gracefully. Eigenvalue ties
// (isotropic directions) also weaken the attack — both caveats are
// surfaced by the experiments rather than hidden.
func PCA(released, referenceCov *matrix.Dense, referenceSkew []float64) (*PCAResult, error) {
	m, n := released.Dims()
	if m < 2 {
		return nil, fmt.Errorf("%w: need at least 2 released rows", ErrAttack)
	}
	if r, c := referenceCov.Dims(); r != n || c != n {
		return nil, fmt.Errorf("%w: reference covariance %dx%d for %d attributes", ErrAttack, r, c, n)
	}
	if len(referenceSkew) != n {
		return nil, fmt.Errorf("%w: %d reference skews for %d attributes", ErrAttack, len(referenceSkew), n)
	}
	if n > maxPCADims {
		return nil, fmt.Errorf("%w: %d attributes exceeds the %d-dimension sign-search cap", ErrAttack, n, maxPCADims)
	}
	releasedCov := stats.CovarianceMatrix(released, stats.Sample)
	eigY, err := matrix.SymEigen(releasedCov)
	if err != nil {
		return nil, err
	}
	eigX, err := matrix.SymEigen(referenceCov)
	if err != nil {
		return nil, err
	}
	w := eigY.Vectors // eigenvectors of released covariance
	v := eigX.Vectors // eigenvectors of reference covariance

	best := &PCAResult{SkewScore: math.Inf(1)}
	signs := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				signs[b] = -1
			} else {
				signs[b] = 1
			}
		}
		// Candidate Q = W · S · Vᵀ.
		ws := w.Clone()
		for col := 0; col < n; col++ {
			if signs[col] < 0 {
				for row := 0; row < n; row++ {
					ws.SetAt(row, col, -ws.At(row, col))
				}
			}
		}
		q := matrix.MustMul(ws, v.T())
		recovered, err := RecoverWithQ(released, q)
		if err != nil {
			return nil, err
		}
		score := 0.0
		for j := 0; j < n; j++ {
			score += sqDiff(Skewness(recovered.Col(j)), referenceSkew[j])
		}
		if score < best.SkewScore {
			best.Q = q
			best.Recovered = recovered
			best.SkewScore = score
		}
	}
	best.CandidatesTried = 1 << n
	return best, nil
}

func sqDiff(a, b float64) float64 { d := a - b; return d * d }

// Skewness returns the standardized third central moment of xs, or 0 for a
// constant sample.
func Skewness(xs []float64) float64 {
	m := stats.Mean(xs)
	var m2, m3 float64
	for _, v := range xs {
		d := v - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
