// Package multiparty extends RBT to the paper's second motivating scenario
// (Section 1): several organizations hold different attributes for a common
// set of individuals — a vertical partition — and want to cluster the union
// of their data without revealing attribute values to each other.
//
// The paper defers this setting to the secure-multiparty literature [13];
// the observation implemented here is that RBT composes across parties for
// free. If each party applies its own RBT key to its own attribute block,
// the joint transform on the concatenated data is block-diagonal
// orthogonal, hence still an isometry of the full space: squared distances
// add across blocks and each block's distances are preserved. The
// concatenated release therefore supports any distance-based joint
// clustering (Corollary 1 carries over verbatim), while each party's raw
// values stay private from the others and from the analyst, and each party
// can still invert its own block with its own secret.
//
// The same adversarial caveats as single-party RBT apply per block (see
// internal/attack): this is a reproduction-era protocol, not a modern
// privacy mechanism.
package multiparty

import (
	"errors"
	"fmt"
	"math/rand"

	"ppclust/internal/core"
	"ppclust/internal/dataset"
	"ppclust/internal/matrix"
	"ppclust/internal/norm"
	"ppclust/internal/stats"
)

// ErrParty is wrapped by party-level validation failures.
var ErrParty = errors.New("multiparty: invalid party input")

// ErrDegenerate reports a join of fewer than two parties — a "multiparty"
// protocol with one participant silently degenerates into a single-party
// release with a misleading name, so it is rejected outright. It wraps
// ErrParty, so existing errors.Is(err, ErrParty) checks keep matching.
var ErrDegenerate = fmt.Errorf("%w: fewer than two parties", ErrParty)

// ErrMismatch reports releases whose shapes do not line up: differing row
// counts or object IDs for a vertical join, differing column counts for a
// horizontal join, or a rotation key that does not fit its release's
// column count. It wraps ErrParty.
var ErrMismatch = fmt.Errorf("%w: releases do not line up", ErrParty)

// Party is one organization's private view: a dataset whose rows are the
// common objects (aligned across parties by position or by IDs) and whose
// columns are the attributes only this party holds.
type Party struct {
	// Name identifies the organization in errors and reports.
	Name string
	// Data is the party's private attribute block.
	Data *dataset.Dataset
	// Thresholds is the party's own PST policy (broadcast like
	// core.Options.Thresholds).
	Thresholds []core.PST
	// Seed drives this party's angle randomness; each party keeps its seed
	// (and resulting key) private.
	Seed int64
}

// Release is one party's published block.
type Release struct {
	PartyName string
	// Released is the normalized, rotated attribute block.
	Released *dataset.Dataset
	// Reports describes the party's rotated pairs.
	Reports []core.PairReport

	key       core.Key
	normMeans []float64
	normStds  []float64
}

// Protect produces the party's release. Parties with a single attribute are
// rejected: a lone column cannot form a rotation pair, which is exactly why
// the protocol requires every participant to hold at least two confidential
// attributes (or to pad with a synthetic one — the caller's policy choice).
func (p *Party) Protect() (*Release, error) {
	if p.Data == nil {
		return nil, fmt.Errorf("%w: party %q has no data", ErrParty, p.Name)
	}
	if err := p.Data.Validate(); err != nil {
		return nil, fmt.Errorf("party %q: %w", p.Name, err)
	}
	if p.Data.Cols() < 2 {
		return nil, fmt.Errorf("%w: party %q holds %d attribute(s); RBT pairs need at least 2",
			ErrParty, p.Name, p.Data.Cols())
	}
	z := &norm.ZScore{Denominator: stats.Sample}
	normalized, err := norm.FitTransform(z, p.Data.Data)
	if err != nil {
		return nil, fmt.Errorf("party %q: %w", p.Name, err)
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	res, err := core.Transform(normalized, core.Options{
		Thresholds: p.Thresholds,
		Rand:       rng,
	})
	if err != nil {
		return nil, fmt.Errorf("party %q: %w", p.Name, err)
	}
	released, err := p.Data.WithData(res.DPrime)
	if err != nil {
		return nil, err
	}
	released.Labels = nil
	means, stds := z.Params()
	return &Release{
		PartyName: p.Name,
		Released:  released,
		Reports:   res.Reports,
		key:       res.Key,
		normMeans: means,
		normStds:  stds,
	}, nil
}

// Recover inverts the party's own block using its private key and
// normalization parameters.
func (r *Release) Recover() (*dataset.Dataset, error) {
	normalized, err := core.Recover(r.Released.Data, r.key)
	if err != nil {
		return nil, err
	}
	z, err := norm.NewZScoreWithParams(r.normMeans, r.normStds)
	if err != nil {
		return nil, err
	}
	raw, err := z.Inverse(normalized)
	if err != nil {
		return nil, err
	}
	return r.Released.WithData(raw)
}

// Join concatenates the parties' releases column-wise into the analyst's
// joint view. All releases must describe the same objects: equal row
// counts, and when two releases both carry IDs, identical ID sequences.
// Joining fewer than two releases is ErrDegenerate.
func Join(releases ...*Release) (*dataset.Dataset, error) {
	if len(releases) < 2 {
		return nil, fmt.Errorf("%w: got %d release(s) to join", ErrDegenerate, len(releases))
	}
	rows := releases[0].Released.Rows()
	var ids []string
	var names []string
	totalCols := 0
	for _, r := range releases {
		if r.Released.Rows() != rows {
			return nil, fmt.Errorf("%w: release %q has %d rows, want %d",
				ErrMismatch, r.PartyName, r.Released.Rows(), rows)
		}
		if err := keyFitsRelease(r); err != nil {
			return nil, err
		}
		if r.Released.IDs != nil {
			if ids == nil {
				ids = r.Released.IDs
			} else {
				for i := range ids {
					if ids[i] != r.Released.IDs[i] {
						return nil, fmt.Errorf("%w: releases disagree on object IDs at row %d (%q vs %q)",
							ErrMismatch, i, ids[i], r.Released.IDs[i])
					}
				}
			}
		}
		for _, n := range r.Released.Names {
			names = append(names, r.PartyName+"."+n)
		}
		totalCols += r.Released.Cols()
	}
	joined := matrix.NewDense(rows, totalCols, nil)
	col := 0
	for _, r := range releases {
		for j := 0; j < r.Released.Cols(); j++ {
			joined.SetCol(col, r.Released.Data.Col(j))
			col++
		}
	}
	out := &dataset.Dataset{Names: names, Data: joined}
	if ids != nil {
		out.IDs = append([]string(nil), ids...)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// keyFitsRelease checks that a release's rotation key (when it carries
// one — hand-built releases used for shape tests may not) is structurally
// valid for the release's column count. A key whose pair indices reach
// beyond the released columns means the release and its key come from
// different transforms; joining it would corrupt the joint view silently.
func keyFitsRelease(r *Release) error {
	if len(r.key.Pairs) == 0 {
		return nil
	}
	if err := r.key.Validate(r.Released.Cols()); err != nil {
		return fmt.Errorf("%w: release %q key does not fit its %d columns: %v",
			ErrMismatch, r.PartyName, r.Released.Cols(), err)
	}
	return nil
}

// JoinHorizontal concatenates row blocks that share one column space — the
// federation scenario, where several data holders protect horizontal
// partitions of a common schema under a common key and the miner clusters
// the union. Blocks with differing column counts are ErrMismatch; fewer
// than two blocks is ErrDegenerate.
func JoinHorizontal(blocks ...*matrix.Dense) (*matrix.Dense, error) {
	if len(blocks) < 2 {
		return nil, fmt.Errorf("%w: got %d block(s) to join", ErrDegenerate, len(blocks))
	}
	cols := blocks[0].Cols()
	rows := 0
	for i, b := range blocks {
		if b.Cols() != cols {
			return nil, fmt.Errorf("%w: block %d has %d columns, want %d",
				ErrMismatch, i, b.Cols(), cols)
		}
		rows += b.Rows()
	}
	out := matrix.NewDense(rows, cols, nil)
	r := 0
	for _, b := range blocks {
		for i := 0; i < b.Rows(); i++ {
			copy(out.RawRow(r), b.RawRow(i))
			r++
		}
	}
	return out, nil
}

// JointKey expresses the combined transform of all releases as one
// block-diagonal orthogonal matrix over the concatenated attribute space —
// the object whose orthogonality makes the joint release an isometry.
// It exists for analysis and tests; no single party ever holds it in the
// protocol (each party only knows its own block). Like Join, it rejects
// fewer than two releases (ErrDegenerate) and keys that do not fit their
// release's columns (ErrMismatch).
func JointKey(releases ...*Release) (*matrix.Dense, error) {
	if len(releases) < 2 {
		return nil, fmt.Errorf("%w: got %d release(s)", ErrDegenerate, len(releases))
	}
	total := 0
	for _, r := range releases {
		if err := keyFitsRelease(r); err != nil {
			return nil, err
		}
		total += r.Released.Cols()
	}
	q := matrix.NewDense(total, total, nil)
	offset := 0
	for _, r := range releases {
		n := r.Released.Cols()
		block, err := r.key.AsOrthogonal(n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				q.SetAt(offset+i, offset+j, block.At(i, j))
			}
		}
		offset += n
	}
	return q, nil
}
